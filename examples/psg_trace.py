#!/usr/bin/env python3
"""Trace every UNC and BNP algorithm over the peer set graphs (Table 1).

The PSG suite exists precisely for this: graphs small enough that you
can read the schedule an algorithm produced and understand *why* it made
each decision.  This example reproduces the paper's Table 1 and then
walks through one graph in detail with Gantt charts.

Run:  python examples/psg_trace.py
"""

from repro import Machine, get_scheduler
from repro.bench.tables import render, table1
from repro.generators.psg import kwok_ahmad_9
from repro.io import gantt
from repro.metrics import average_ranks
from repro.bench.runner import BNP_ALGORITHMS, UNC_ALGORITHMS, run_grid
from repro.bench.suites import psg_suite

# ----------------------------------------------------------------------
# Table 1: schedule lengths on the whole suite.
# ----------------------------------------------------------------------
print(render(table1()))
print()

# ----------------------------------------------------------------------
# Rank algorithms across the suite (the paper's Section 6.1 commentary).
# ----------------------------------------------------------------------
rows = run_grid(list(UNC_ALGORITHMS) + list(BNP_ALGORITHMS), psg_suite())
print("average rank by schedule length (1 = best):")
for alg, rank in average_ranks(rows):
    print(f"  {alg:8s} {rank:.2f}")
print()

# ----------------------------------------------------------------------
# Zoom in: how differently do MCP and LC treat the same graph?
# ----------------------------------------------------------------------
graph = kwok_ahmad_9()
for name in ("MCP", "LC"):
    scheduler = get_scheduler(name)
    schedule = scheduler.schedule(graph, Machine.unbounded(graph))
    print(f"--- {name}: length {schedule.length:g} ---")
    print(gantt(schedule, width=64))
    print()

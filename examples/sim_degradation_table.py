"""Regenerate the predicted-vs-simulated BNP degradation table.

Produces the markdown table in EXPERIMENTS.md ("Executed schedules"):
every BNP algorithm on reduced-scale RGNOS graphs at CCR 0.1 / 1 / 10,
100 Monte-Carlo trials per cell under lognormal duration noise.

Run with::

    PYTHONPATH=src python examples/sim_degradation_table.py
"""

from collections import defaultdict

from repro.bench.runner import BNP_ALGORITHMS
from repro.generators.random_graphs import rgnos_graph
from repro.sim import PerturbationModel, SimConfig, run_sim_grid

SIZES = (50, 100, 150)
CCRS = (0.1, 1.0, 10.0)
NOISE = PerturbationModel.lognormal(0.3)


def main() -> None:
    sim = SimConfig(perturb=NOISE, trials=100, seed=7)
    acc = defaultdict(lambda: defaultdict(list))
    for ccr in CCRS:
        graphs = [
            rgnos_graph(v, ccr, 3,
                        seed=3_000_000 + 10_000 * int(10 * ccr) + 300 + v)
            for v in SIZES
        ]
        for row in run_sim_grid(list(BNP_ALGORITHMS), graphs, sim=sim):
            acc[row.algorithm][ccr].append(row)

    header = ("| algorithm | CCR 0.1 mean / p95 | CCR 1 mean / p95 "
              "| CCR 10 mean / p95 | mean slack |")
    print(header)
    print("|-----------|--------------------|------------------"
          "|-------------------|------------|")
    for alg in sorted(BNP_ALGORITHMS):
        cells, slacks = [], []
        for ccr in CCRS:
            rows = acc[alg][ccr]
            mean = sum(r.mean_degradation_pct for r in rows) / len(rows)
            p95 = sum(r.p95_degradation_pct for r in rows) / len(rows)
            slacks += [r.slack for r in rows]
            cells.append(f"+{mean:.1f}% / +{p95:.1f}%")
        slack = sum(slacks) / len(slacks)
        print(f"| {alg:9s} | {cells[0]:18s} | {cells[1]:16s} "
              f"| {cells[2]:17s} | {slack:.3f}      |")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Schedule a real numerical workload: Cholesky factorization.

The traced-graph suite (paper Section 5.5) models the macro-dataflow of
column-oriented Cholesky: ``cdiv(k)`` normalises column k, ``cmod(j,k)``
applies it to column j.  Graph size grows as O(N^2) with the matrix
dimension N, so this is also the paper's scalability probe (Figure 4).

This example sweeps N, schedules each graph with one algorithm per
class, and reports speedup and processor usage — the numbers an HPC
user would check before committing to a runtime scheduler.

Run:  python examples/cholesky_pipeline.py
"""

from repro import Machine, NetworkMachine, Topology, get_scheduler, validate
from repro.generators import cholesky_graph
from repro.metrics import efficiency, nsl, speedup

ALGORITHMS = (
    ("MCP", "BNP"),   # bounded processors, static priorities
    ("DCP", "UNC"),   # clustering, dynamic critical path
    ("BSA", "APN"),   # 8-processor hypercube with link contention
)

print(f"{'N':>4} {'tasks':>6} | "
      + " | ".join(f"{name:>22}" for name, _ in ALGORITHMS))
print(f"{'':>4} {'':>6} | "
      + " | ".join(f"{'len / NSL / procs':>22}" for _ in ALGORITHMS))
print("-" * (13 + 25 * len(ALGORITHMS)))

for n in (4, 6, 8, 10, 12):
    graph = cholesky_graph(n, ccr=1.0)
    cells = []
    for name, klass in ALGORITHMS:
        scheduler = get_scheduler(name)
        if klass == "APN":
            machine = NetworkMachine(Topology.hypercube(3))
            schedule = scheduler.schedule(graph, machine)
            validate(schedule, network=machine.topology)
        else:
            machine = Machine.unbounded(graph)
            schedule = scheduler.schedule(graph, machine)
            validate(schedule)
        cells.append(
            f"{schedule.length:7.1f} /{nsl(schedule):5.2f} /"
            f"{schedule.processors_used():3d}"
        )
    print(f"{n:>4} {graph.num_nodes:>6} | " + " | ".join(cells))

print()
print("Reading the table: NSL -> 1.0 means the schedule approaches the")
print("computation-only critical path, the best any machine could do;")
print("the APN column pays real link contention on the hypercube, so its")
print("NSL sits above the clique-model columns, and the gap is the price")
print("of the interconnect.")

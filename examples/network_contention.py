#!/usr/bin/env python3
"""How much does the interconnect matter?  APN scheduling across
topologies.

The paper's APN class schedules messages on links; this example makes
the contention visible: the same task graph, the same four algorithms,
machines from a chain (weakest) to a clique (strongest), plus a look at
one schedule's actual message reservations.

Run:  python examples/network_contention.py
"""

from repro import NetworkMachine, Topology, get_scheduler, validate
from repro.bench.runner import APN_ALGORITHMS
from repro.generators.random_graphs import rgnos_graph
from repro.io import gantt
from repro.metrics import nsl

graph = rgnos_graph(40, ccr=2.0, parallelism=3, seed=7)
print(f"workload: {graph} (communication-heavy: CCR {graph.ccr:.2f})\n")

topologies = [
    Topology.chain(8),
    Topology.ring(8),
    Topology.mesh2d(2, 4),
    Topology.hypercube(3),
    Topology.clique(8),
]

print(f"{'topology':>14} {'links':>6} | "
      + " | ".join(f"{a:>8}" for a in APN_ALGORITHMS))
print("-" * (24 + 11 * len(APN_ALGORITHMS)))
for topo in topologies:
    cells = []
    for name in APN_ALGORITHMS:
        machine = NetworkMachine(topo)
        schedule = get_scheduler(name).schedule(graph, machine)
        validate(schedule, network=topo)
        cells.append(f"{nsl(schedule):8.3f}")
    print(f"{topo.name:>14} {topo.num_links:>6} | " + " | ".join(cells))

print()
print("NSL falls as connectivity rises — the experiment the paper ran but")
print("had to exclude 'due to space limitations' (Section 6.4.1).\n")

# ----------------------------------------------------------------------
# Inspect one schedule's message reservations on the weakest network.
# ----------------------------------------------------------------------
small = rgnos_graph(12, ccr=2.0, parallelism=2, seed=3)
topo = Topology.chain(3)
schedule = get_scheduler("BSA").schedule(small, NetworkMachine(topo))
validate(schedule, network=topo)
print(f"BSA on {topo.name}: every cross-processor edge occupies links")
print(gantt(schedule, width=60, show_messages=True))

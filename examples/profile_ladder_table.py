"""Regenerate the self-time profile of the 1200-node ladder rung.

Produces the table in EXPERIMENTS.md ("Where the time goes"): the top
rung of the ``scalability-ladder`` scenario (one RGNOS graph, 1200
nodes, seed 53) is scheduled by each of the ladder's fast heuristics
with the tracing layer armed (``REPRO_TRACE=1``), then the recorded
spans are aggregated into the top-N self-time table that
``repro-bench profile`` prints — plus the deterministic counter
manifest the regression gate compares.

Run with::

    PYTHONPATH=src python examples/profile_ladder_table.py
"""

import os

from repro.obs import report, trace

# EZ is excluded at this size for the same reason as the
# kernel-speedup table (quadratic in edges); MCP additionally runs as
# its component-spec twin so the table shows a nested span (the
# component loop's self time splits out of sched.schedule's total).
ALGORITHMS = ["HLFET", "ISH", "MCP", "LC", "DSC",
              "param:prio=alaplist,ready=prio,proc=est,insert=on"]
SIZE = 1200


def main() -> None:
    os.environ[trace.ENV_VAR] = "1"
    trace.reset()

    from repro import Machine, get_scheduler
    from repro.scenarios import compile_scenario, get_scenario
    from repro.sim import simulate

    compiled = compile_scenario(get_scenario("scalability-ladder"))
    (graph,) = [g for g in compiled.variants[0].graphs
                if g.num_nodes == SIZE]
    machine = Machine.unbounded(graph)
    for alg in ALGORITHMS:
        schedule = get_scheduler(alg).schedule(graph, machine)
    # One executed replay of the last schedule adds the sim.run lane.
    simulate(schedule, label="MCP")

    manifest = report.build_manifest()
    print(f"graph: {graph.name} ({graph.num_nodes} nodes, "
          f"{graph.num_edges} edges)")
    print()
    print(report.render_profile(manifest, top=8))
    print()
    counters = {**manifest["counters"], **manifest["local"]}
    for name in sorted(counters):
        print(f"{name} = {counters[name]}")


if __name__ == "__main__":
    main()

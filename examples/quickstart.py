#!/usr/bin/env python3
"""Quickstart: build a task graph, schedule it three ways, compare.

Run:  python examples/quickstart.py
"""

from repro import Machine, TaskGraph, get_scheduler, validate
from repro.io import gantt
from repro.metrics import nsl

# ----------------------------------------------------------------------
# 1. A task graph: nodes carry computation costs, edges carry the cost
#    of moving data between processors (free when co-located).
#    This is the 9-node example from the authors' papers.
# ----------------------------------------------------------------------
graph = TaskGraph(
    weights=[2, 3, 3, 4, 5, 4, 4, 4, 1],
    edges={
        (0, 1): 4, (0, 2): 1, (0, 3): 1, (0, 4): 1, (0, 5): 10,
        (1, 6): 1, (2, 6): 1,
        (3, 7): 1, (4, 7): 1,
        (5, 8): 5, (6, 8): 5, (7, 8): 10,
    },
    name="kwok-ahmad-9",
)
print(f"graph: {graph}")
print(f"serial execution time: {graph.total_computation:g}\n")

# ----------------------------------------------------------------------
# 2. Schedule on 3 identical processors with three different heuristics.
#    MCP: static critical-path priorities.  DLS: dynamic levels.
#    DCP: dynamic critical path (unbounded processors).
# ----------------------------------------------------------------------
machine = Machine(3)
for name in ("MCP", "DLS", "DCP"):
    scheduler = get_scheduler(name)
    m = Machine.unbounded(graph) if scheduler.klass == "UNC" else machine
    schedule = scheduler.schedule(graph, m)
    validate(schedule)  # precedence + communication + no-overlap checks
    print(f"--- {name} ({scheduler.klass}) ---")
    print(f"schedule length: {schedule.length:g}   "
          f"NSL: {nsl(schedule):.3f}   "
          f"processors used: {schedule.processors_used()}")
    print(gantt(schedule, width=60))
    print()

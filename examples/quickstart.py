#!/usr/bin/env python3
"""Quickstart: build a task graph, schedule it three ways, compare.

Run:  python examples/quickstart.py

Everything goes through the stable facade (:mod:`repro.api`): one call
parses the input, resolves the scheduler spec, schedules and validates.
"""

from repro import api
from repro.io import gantt
from repro.metrics import nsl

# ----------------------------------------------------------------------
# 1. A task graph: nodes carry computation costs, edges carry the cost
#    of moving data between processors (free when co-located).
#    This is the 9-node example from the authors' papers.  The facade
#    also accepts a ready TaskGraph or STG-format text.
# ----------------------------------------------------------------------
graph = api.as_graph({
    "weights": [2, 3, 3, 4, 5, 4, 4, 4, 1],
    "edges": [
        [0, 1, 4], [0, 2, 1], [0, 3, 1], [0, 4, 1], [0, 5, 10],
        [1, 6, 1], [2, 6, 1],
        [3, 7, 1], [4, 7, 1],
        [5, 8, 5], [6, 8, 5], [7, 8, 10],
    ],
    "name": "kwok-ahmad-9",
})
print(f"graph: {graph}")
print(f"serial execution time: {graph.total_computation:g}\n")

# ----------------------------------------------------------------------
# 2. Schedule on 3 identical processors with three different heuristics.
#    MCP: static critical-path priorities.  DLS: dynamic levels.
#    DCP: dynamic critical path (machine=None means one processor per
#    task, the unbounded UNC convention).  api.schedule validates every
#    result (precedence + communication + no-overlap checks).
# ----------------------------------------------------------------------
for spec, machine in (("MCP", 3), ("DLS", 3), ("DCP", None)):
    schedule = api.schedule(graph, machine, spec)
    print(f"--- {spec} ---")
    print(f"schedule length: {schedule.length:g}   "
          f"NSL: {nsl(schedule):.3f}   "
          f"processors used: {schedule.processors_used()}")
    print(gantt(schedule, width=60))
    print()

# ----------------------------------------------------------------------
# 3. Which heuristic wins overall?  api.rank replays the paper's
#    ranking methodology over any graph set.
# ----------------------------------------------------------------------
for row in api.rank(graph, 3, specs=("MCP", "DLS", "HLFET")):
    print(f"{row['spec']:>24}: avg rank {row['avg_rank']:.2f}, "
          f"mean NSL {row['mean_nsl']:.3f}, wins {row['wins']}")

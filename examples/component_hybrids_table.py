"""Regenerate the EXPERIMENTS.md component-hybrid ranking table.

Expands the full decoupled + coupled component grid of the
``component-grid`` scenario (``repro-bench scenario run
component-grid``), runs every synthesized scheduler and the paper's six
BNP monoliths over a small RGNOS panel on a bounded 8-processor
machine, and ranks them by mean NSL — the estee-style question: do any
component hybrids beat the named designs they generalise?

Usage::

    PYTHONPATH=src python examples/component_hybrids_table.py

Deterministic: the graph panel is fixed by the seeds below, every
scheduler is deterministic, so reruns reproduce the table exactly.
"""

from __future__ import annotations

from repro.algorithms import BNP_SPECS, get_scheduler
from repro.bench.runner import BenchConfig, run_grid
from repro.generators.random_graphs import rgnos_graph
from repro.scenarios import get_scenario

PANEL = [rgnos_graph(size, ccr=ccr, parallelism=3, seed=seed)
         for size, ccr, seed in
         ((40, 0.5, 3), (40, 2.0, 5), (60, 1.0, 7), (60, 5.0, 11))]


def mean_nsl_ranking():
    names = get_scenario("component-grid").algorithm_names
    rows = run_grid(names, PANEL, config=BenchConfig(bnp_procs=8))
    by_alg = {}
    for row in rows:
        by_alg.setdefault(row.algorithm, []).append(row.nsl)
    return sorted(
        ((sum(v) / len(v), name) for name, v in by_alg.items()),
        key=lambda pair: (pair[0], pair[1]))


def main():
    ranking = []
    for score, name in mean_nsl_ranking():
        sched = get_scheduler(name)
        if name.startswith("param:") and any(
                getattr(sched, "spec", None) == spec
                for spec in BNP_SPECS.values()):
            # The spec spelling of a named design produces the exact
            # same schedules (pinned by the differential tests); the
            # acronym row already represents it.
            continue
        ranking.append((score, name))
    print(f"{'rank':>4}  {'mean NSL':>8}  scheduler")
    for i, (score, name) in enumerate(ranking, start=1):
        paper = "" if name.startswith("param:") else "  <- paper design"
        # The table keeps the head and tail of the field plus every
        # named design; the midfield is elided to stay readable.
        if i <= 8 or i > len(ranking) - 4 or paper:
            print(f"{i:>4}  {score:8.3f}  {name}{paper}")
        elif i == 9:
            print("   ...")


if __name__ == "__main__":
    main()

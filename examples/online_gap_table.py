"""Regenerate the static-vs-online rank-shift table.

Produces the markdown table in EXPERIMENTS.md ("Online scheduling
under partial information"): the ``online-gap`` registry scenario runs
every BNP algorithm statically and as its event-driven online
counterpart under each information mode, then compares mean makespans
and paper-style average ranks within each group.

Run with::

    PYTHONPATH=src python examples/online_gap_table.py
"""

from repro.scenarios import (compile_scenario, get_scenario, online_tables,
                             run_scenario)


def main() -> None:
    compiled = compile_scenario(get_scenario("online-gap"))
    table = online_tables(run_scenario(compiled, jobs=4))

    # One variant in this scenario, so drop that column for the docs.
    cols = table.columns[1:]
    print("| " + " | ".join(cols) + " |")
    print("|" + "|".join("-" * (len(c) + 2) for c in cols) + "|")
    for row in table.rows:
        print("| " + " | ".join(row[1:]) + " |")
    for note in table.notes:
        print(f"\n{note}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""How far from optimal are the heuristics?  (The RGBOS experiment.)

Generates small random graphs, solves them exactly with branch-and-
bound, and reports each heuristic's percentage degradation — the measure
behind Tables 2 and 3 of the paper.  Watch the effect of CCR: at 0.1
nearly everything is optimal; at 10 the spread blows up.

Run:  python examples/optimal_gap.py
"""

from repro import Machine, get_scheduler
from repro.generators.random_graphs import rgbos_graph
from repro.metrics import degradation_pct
from repro.optimal import solve_optimal

ALGORITHMS = ("HLFET", "ISH", "MCP", "ETF", "DLS", "LAST", "DSC", "DCP")

for ccr in (0.1, 1.0, 10.0):
    print(f"=== CCR {ccr:g} ===")
    print(f"{'v':>4} {'optimal':>8} {'proved':>7} | "
          + " | ".join(f"{a:>6}" for a in ALGORITHMS))
    for v in (10, 14, 18):
        graph = rgbos_graph(v, ccr, seed=100 + v)
        result = solve_optimal(graph, budget=60_000)
        cells = []
        for name in ALGORITHMS:
            scheduler = get_scheduler(name)
            machine = Machine.unbounded(graph)
            length = scheduler.schedule(graph, machine).length
            cells.append(
                f"{degradation_pct(length, result.length):6.1f}"
            )
        proved = "yes" if result.proved else "no*"
        print(f"{v:>4} {result.length:8.1f} {proved:>7} | "
              + " | ".join(cells))
    print()

print("Degradations are % above the branch-and-bound result ('no*' rows")
print("compare against the best schedule found within the search budget).")
print("The paper's Tables 2/3 show the same pattern: near-zero columns at")
print("CCR 0.1, growing spread at CCR 10, LAST trailing the BNP class.")

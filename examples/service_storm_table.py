"""Regenerate the EXPERIMENTS.md traffic-storm table.

Produces the markdown table in EXPERIMENTS.md ("Schedule as a
service"): the default :class:`~repro.scenarios.storm.StormConfig`
(200 requests, 8 templates cycling 120/200/300-node RGNOS graphs over
mcp/dls/param specs, Zipf-1.1 popularity) is replayed against a
self-hosted in-process server, once per worker setting, and the
report's RPS / latency / cold-vs-warm numbers are printed per run.

Latency and RPS are machine-dependent; the request mix, cold/warm
split per seed, and the shape of the speedup are not.

Run with::

    PYTHONPATH=src python examples/service_storm_table.py
"""

from repro.scenarios.storm import StormConfig
from repro.service import run_loadtest


def main() -> None:
    config = StormConfig()
    cols = ["jobs", "ok/429/504", "RPS", "p50 (ms)", "p99 (ms)",
            "cold p50 (ms)", "warm p50 (ms)", "speedup", "warm ratio"]
    print("| " + " | ".join(cols) + " |")
    print("|" + "|".join("-" * (len(c) + 2) for c in cols) + "|")
    for jobs in (1, 2, 4):
        r = run_loadtest(config, jobs=jobs, concurrency=16)
        print("| " + " | ".join([
            str(jobs),
            f"{r.ok}/{r.rejected}/{r.timeouts}",
            f"{r.rps:.0f}",
            f"{r.p50_ms:.2f}",
            f"{r.p99_ms:.2f}",
            f"{r.cold_p50_ms:.1f} ({r.cold})",
            f"{r.warm_p50_ms:.2f} ({r.warm})",
            f"{r.speedup:.1f}x",
            f"{r.warm_hit_ratio:.2f}",
        ]) + " |")
    print(f"\nstorm: `{config.fingerprint()}`")


if __name__ == "__main__":
    main()

"""Regenerate the EXPERIMENTS.md worst-case ratio table.

Runs the adversarial instance search (:mod:`repro.adversarial`) for a
panel of ordered BNP and APN pairs and prints the per-pair worst-case
makespan ratio found, next to the pair's *average* ratio over the seed
suite — the PISA-style contrast: averages close to 1.0 can coexist
with large adversarial gaps.

Usage::

    PYTHONPATH=src python examples/adv_worst_case_table.py

Deterministic: every search chain derives its stream from the fixed
seed below, so reruns reproduce the table exactly.
"""

from __future__ import annotations

from repro.adversarial import Objective, SearchConfig, run_search
from repro.generators.random_graphs import rgnos_graph

BNP_PAIRS = [
    ("LAST", "MCP"),
    ("HLFET", "MCP"),
    ("ISH", "MCP"),
    ("MCP", "DLS"),
    ("ETF", "MCP"),
    ("MCP", "LAST"),
]
APN_PAIRS = [
    ("BU", "BSA"),
    ("MH", "BSA"),
]


def search_pair(pair, seeds, steps, chains):
    cfg = SearchConfig(pair=pair, steps=steps, chains=chains,
                       temperature=0.02, cooling=0.97, seed=5)
    rows = run_search(cfg, seeds, jobs=0)
    best = max(rows, key=lambda r: r.score)
    objective = Objective(alg_a=pair[0], alg_b=pair[1])
    avg = sum(objective.evaluate(g).score for g in seeds) / len(seeds)
    return avg, best


def main() -> None:
    bnp_seeds = [rgnos_graph(50, 1.0, 3, seed=131 + i) for i in range(2)]
    apn_seeds = [rgnos_graph(18, 1.0, 3, seed=137)]
    print(f"{'pair':12s} {'class':5s} {'avg ratio':>9s} "
          f"{'worst found':>11s} {'v':>4s} {'chain':>8s}")
    for pair in BNP_PAIRS:
        avg, best = search_pair(pair, bnp_seeds, steps=150, chains=4)
        print(f"{'/'.join(pair):12s} {'BNP':5s} {avg:9.3f} "
              f"{best.score:11.3f} {best.num_nodes:4d} {best.graph:>8s}")
    for pair in APN_PAIRS:
        avg, best = search_pair(pair, apn_seeds, steps=60, chains=2)
        print(f"{'/'.join(pair):12s} {'APN':5s} {avg:9.3f} "
              f"{best.score:11.3f} {best.num_nodes:4d} {best.graph:>8s}")


if __name__ == "__main__":
    main()

"""Shared fixtures for the test suite.

Hypothesis strategies live in :mod:`strategies` (``tests/strategies.py``)
so test modules can import them unambiguously; ``task_graphs`` is
re-exported here for backwards compatibility.
"""

from __future__ import annotations

import pytest

from repro import Machine, NetworkMachine, TaskGraph, Topology
from strategies import task_graphs  # noqa: F401  (re-export)


# ----------------------------------------------------------------------
# Deterministic example graphs
# ----------------------------------------------------------------------
@pytest.fixture
def chain4() -> TaskGraph:
    """0 -> 1 -> 2 -> 3 with mixed costs."""
    return TaskGraph(
        [2.0, 3.0, 1.0, 4.0],
        {(0, 1): 5.0, (1, 2): 1.0, (2, 3): 2.0},
        name="chain4",
    )


@pytest.fixture
def fork3() -> TaskGraph:
    """0 fans out to 1 and 2."""
    return TaskGraph(
        [1.0, 2.0, 3.0],
        {(0, 1): 4.0, (0, 2): 1.0},
        name="fork3",
    )


@pytest.fixture
def join3() -> TaskGraph:
    """1 and 2 join into 0... inverted: 0,1 -> 2."""
    return TaskGraph(
        [2.0, 3.0, 1.0],
        {(0, 2): 4.0, (1, 2): 1.0},
        name="join3",
    )


@pytest.fixture
def diamond4() -> TaskGraph:
    """0 -> {1, 2} -> 3."""
    return TaskGraph(
        [1.0, 2.0, 4.0, 1.0],
        {(0, 1): 3.0, (0, 2): 1.0, (1, 3): 2.0, (2, 3): 5.0},
        name="diamond4",
    )


@pytest.fixture
def kwok9() -> TaskGraph:
    from repro.generators.psg import kwok_ahmad_9

    return kwok_ahmad_9()


@pytest.fixture
def machine2() -> Machine:
    return Machine(2)


@pytest.fixture
def machine4() -> Machine:
    return Machine(4)


@pytest.fixture
def net_ring4() -> NetworkMachine:
    return NetworkMachine(Topology.ring(4))


@pytest.fixture
def net_cube8() -> NetworkMachine:
    return NetworkMachine(Topology.hypercube(3))

"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

from typing import Dict, Tuple

import pytest
from hypothesis import strategies as st

from repro import Machine, NetworkMachine, TaskGraph, Topology


# ----------------------------------------------------------------------
# Deterministic example graphs
# ----------------------------------------------------------------------
@pytest.fixture
def chain4() -> TaskGraph:
    """0 -> 1 -> 2 -> 3 with mixed costs."""
    return TaskGraph(
        [2.0, 3.0, 1.0, 4.0],
        {(0, 1): 5.0, (1, 2): 1.0, (2, 3): 2.0},
        name="chain4",
    )


@pytest.fixture
def fork3() -> TaskGraph:
    """0 fans out to 1 and 2."""
    return TaskGraph(
        [1.0, 2.0, 3.0],
        {(0, 1): 4.0, (0, 2): 1.0},
        name="fork3",
    )


@pytest.fixture
def join3() -> TaskGraph:
    """1 and 2 join into 0... inverted: 0,1 -> 2."""
    return TaskGraph(
        [2.0, 3.0, 1.0],
        {(0, 2): 4.0, (1, 2): 1.0},
        name="join3",
    )


@pytest.fixture
def diamond4() -> TaskGraph:
    """0 -> {1, 2} -> 3."""
    return TaskGraph(
        [1.0, 2.0, 4.0, 1.0],
        {(0, 1): 3.0, (0, 2): 1.0, (1, 3): 2.0, (2, 3): 5.0},
        name="diamond4",
    )


@pytest.fixture
def kwok9() -> TaskGraph:
    from repro.generators.psg import kwok_ahmad_9

    return kwok_ahmad_9()


@pytest.fixture
def machine2() -> Machine:
    return Machine(2)


@pytest.fixture
def machine4() -> Machine:
    return Machine(4)


@pytest.fixture
def net_ring4() -> NetworkMachine:
    return NetworkMachine(Topology.ring(4))


@pytest.fixture
def net_cube8() -> NetworkMachine:
    return NetworkMachine(Topology.hypercube(3))


# ----------------------------------------------------------------------
# Hypothesis strategy: random weighted DAGs
# ----------------------------------------------------------------------
@st.composite
def task_graphs(draw, min_nodes: int = 2, max_nodes: int = 14,
                max_weight: int = 20, max_comm: int = 40,
                edge_prob: float = 0.35) -> TaskGraph:
    """Random DAG: edges only from lower to higher ids (always acyclic)."""
    n = draw(st.integers(min_nodes, max_nodes))
    weights = [
        draw(st.integers(1, max_weight)) for _ in range(n)
    ]
    edges: Dict[Tuple[int, int], float] = {}
    for u in range(n):
        for v in range(u + 1, n):
            if draw(st.booleans() if edge_prob >= 0.5 else
                    st.sampled_from([True] + [False] * int(1 / edge_prob))):
                edges[(u, v)] = float(draw(st.integers(0, max_comm)))
    return TaskGraph([float(w) for w in weights], edges, name=f"hyp-{n}")

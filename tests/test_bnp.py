"""Behavioural tests for the six BNP algorithms."""

import pytest

from repro import Machine, TaskGraph, get_scheduler, validate
from repro.bench.runner import BNP_ALGORITHMS

ALL_BNP = list(BNP_ALGORITHMS)


@pytest.mark.parametrize("name", ALL_BNP)
class TestCommonBNP:
    def test_valid_on_kwok9(self, name, kwok9, machine4):
        sched = get_scheduler(name).schedule(kwok9, machine4)
        validate(sched)
        assert sched.length > 0

    def test_deterministic(self, name, kwok9, machine4):
        s1 = get_scheduler(name).schedule(kwok9, machine4)
        s2 = get_scheduler(name).schedule(kwok9, machine4)
        assert s1.to_dict() == s2.to_dict()

    def test_single_proc_serialises(self, name, kwok9):
        sched = get_scheduler(name).schedule(kwok9, Machine(1))
        validate(sched)
        assert sched.length == pytest.approx(kwok9.total_computation)

    def test_single_node(self, name):
        g = TaskGraph([5.0], {})
        sched = get_scheduler(name).schedule(g, Machine(2))
        assert sched.length == 5.0
        assert sched.start_of(0) == 0.0

    def test_independent_tasks_spread(self, name):
        g = TaskGraph([4.0, 4.0, 4.0, 4.0], {})
        sched = get_scheduler(name).schedule(g, Machine(4))
        validate(sched)
        assert sched.length == 4.0  # all run in parallel

    def test_respects_proc_bound(self, name, kwok9):
        sched = get_scheduler(name).schedule(kwok9, Machine(2))
        validate(sched)
        assert sched.processors_used() <= 2

    def test_metadata(self, name):
        s = get_scheduler(name)
        assert s.klass == "BNP"
        assert s.name in (name, name.upper())


class TestHLFET:
    def test_priority_is_static_level(self):
        # Node 1 (SL=6) must be scheduled before node 2 (SL=2) even
        # though node 2 has the cheaper edge.
        g = TaskGraph(
            [1.0, 2.0, 2.0, 4.0],
            {(0, 1): 1.0, (0, 2): 100.0, (1, 3): 1.0},
            name="prio",
        )
        sched = get_scheduler("HLFET").schedule(g, Machine(1))
        assert sched.start_of(1) < sched.start_of(2)

    def test_no_insertion(self):
        # A hole forms on P0 while waiting for comm; HLFET cannot fill it.
        g = TaskGraph(
            [1.0, 8.0, 1.0, 1.0],
            {(0, 1): 0.0, (0, 2): 6.0, (2, 3): 0.0},
            name="hole",
        )
        sched = get_scheduler("HLFET").schedule(g, Machine(2))
        validate(sched)


class TestISH:
    def test_hole_filling_improves_on_hlfet(self):
        """The signature ISH behaviour: a ready node is slotted into the
        idle gap the communication delay opens up."""
        g = TaskGraph(
            [2.0, 2.0, 3.0, 9.0],
            {(0, 1): 8.0, (0, 3): 8.0, (1, 2): 1.0},
            name="ish-gap",
        )
        hl = get_scheduler("HLFET").schedule(g, Machine(2)).length
        ish = get_scheduler("ISH").schedule(g, Machine(2)).length
        assert ish <= hl

    def test_hole_filling_happens(self):
        # Node 0 on P0 finishes at 2; node 3 (high SL, needs comm 8)
        # waits; independent node 1... construct explicit scenario.
        g = TaskGraph(
            [2.0, 1.0, 5.0],
            {(0, 2): 10.0},
            name="ish-fill",
        )
        sched = get_scheduler("ISH").schedule(g, Machine(1))
        validate(sched)
        assert sched.length == pytest.approx(8.0)


class TestMCP:
    def test_uses_insertion(self):
        g = TaskGraph(
            [2.0, 2.0, 3.0, 9.0],
            {(0, 1): 8.0, (0, 3): 8.0, (1, 2): 1.0},
            name="mcp-gap",
        )
        sched = get_scheduler("MCP").schedule(g, Machine(2))
        validate(sched)

    def test_alap_order_topological(self, kwok9, machine4):
        # MCP's lexicographic ALAP-list order must schedule parents
        # before children; validation would explode otherwise, but make
        # the check explicit via start times along each edge.
        sched = get_scheduler("MCP").schedule(kwok9, machine4)
        for u, v, _c in kwok9.edges():
            assert sched.start_of(u) < sched.start_of(v) + 1e-9

    def test_cp_node_first(self, kwok9, machine4):
        # The entry node of the CP has ALAP 0 and is scheduled at t=0.
        sched = get_scheduler("MCP").schedule(kwok9, machine4)
        assert sched.start_of(0) == 0.0


class TestETF:
    def test_picks_globally_earliest_pair(self):
        # Two ready nodes: node 1 can start at 1 on P0; node 2 must wait
        # for comm. ETF places node 1 first even with lower SL.
        g = TaskGraph(
            [1.0, 1.0, 10.0],
            {(0, 1): 0.0, (0, 2): 50.0},
            name="etf",
        )
        sched = get_scheduler("ETF").schedule(g, Machine(2))
        validate(sched)
        # Node 2 (heavy SL) is co-located with 0 to avoid the giant comm.
        assert sched.proc_of(2) == sched.proc_of(0)

    def test_matches_paper_class(self):
        s = get_scheduler("ETF")
        assert s.dynamic_priority and not s.uses_insertion


class TestDLS:
    def test_dynamic_level_tradeoff(self, kwok9, machine4):
        sched = get_scheduler("DLS").schedule(kwok9, machine4)
        validate(sched)

    def test_prefers_high_static_level_at_t0(self):
        # At step 0 all ESTs are 0, so DL reduces to SL: the heavy chain
        # head must be placed first.
        g = TaskGraph(
            [1.0, 1.0, 20.0, 1.0],
            {(1, 2): 0.0, (2, 3): 0.0},
            name="dls",
        )
        sched = get_scheduler("DLS").schedule(g, Machine(1))
        assert sched.start_of(1) == 0.0


class TestLAST:
    def test_d_node_priority(self):
        """After scheduling node 0, LAST prefers the child with the
        dominant settled-edge fraction (node 1: its only edge touches the
        scheduled region) over node 2 (big unsettled out-edge)."""
        g = TaskGraph(
            [1.0, 1.0, 1.0, 9.0],
            {(0, 1): 5.0, (0, 2): 5.0, (2, 3): 50.0},
            name="last",
        )
        sched = get_scheduler("LAST").schedule(g, Machine(1))
        validate(sched)
        assert sched.start_of(1) < sched.start_of(2)

    def test_often_worst_on_join_graphs(self, kwok9):
        """Not a theorem, but the paper's central LAST finding on a
        structured suite: level-blind scheduling loses to MCP on graphs
        whose CP matters.  Locks the qualitative relation on a seeded
        set so regressions surface."""
        from repro.generators.random_graphs import rgnos_graph

        machine = Machine(8)
        worse = 0
        total = 0
        for seed in range(6):
            g = rgnos_graph(60, 1.0, 2, seed=seed)
            last = get_scheduler("LAST").schedule(g, machine).length
            mcp = get_scheduler("MCP").schedule(g, machine).length
            total += 1
            if last >= mcp - 1e-9:
                worse += 1
        assert worse >= total - 1  # LAST no better than MCP almost always

"""Tests for performance measures and rankings."""

import pytest

from repro import Machine, Schedule, TaskGraph, get_scheduler
from repro.metrics import (
    RunResult,
    average_ranks,
    degradation_pct,
    efficiency,
    nsl,
    speedup,
    summarize_by_algorithm,
)


@pytest.fixture
def sched2(chain4):
    s = Schedule(chain4, 2)
    s.place(0, 0, 0.0)
    s.place(1, 0, 2.0)
    s.place(2, 0, 5.0)
    s.place(3, 0, 6.0)
    return s


class TestMeasures:
    def test_nsl_serial_chain_is_one(self, chain4, sched2):
        # Chain: CP computation = total = 10; serial schedule length 10.
        assert nsl(sched2) == pytest.approx(1.0)

    def test_nsl_above_one_with_delay(self, chain4):
        s = Schedule(chain4, 2)
        s.place(0, 0, 0.0)
        s.place(1, 1, 7.0)   # pays comm 5
        s.place(2, 1, 10.0)
        s.place(3, 1, 11.0)
        assert nsl(s) == pytest.approx(1.5)

    def test_degradation(self):
        assert degradation_pct(110.0, 100.0) == pytest.approx(10.0)
        assert degradation_pct(100.0, 100.0) == 0.0

    def test_degradation_bad_optimal(self):
        with pytest.raises(ValueError):
            degradation_pct(10.0, 0.0)

    def test_speedup_and_efficiency(self, sched2):
        assert speedup(sched2) == pytest.approx(1.0)
        assert efficiency(sched2) == pytest.approx(1.0)

    def test_efficiency_splits_over_procs(self, chain4):
        g = TaskGraph([4.0, 4.0], {})
        s = Schedule(g, 2)
        s.place(0, 0, 0.0)
        s.place(1, 1, 0.0)
        assert speedup(s) == pytest.approx(2.0)
        assert efficiency(s) == pytest.approx(1.0)


class TestRunResult:
    def test_degradation_property(self):
        r = RunResult("MCP", "BNP", "g", 10, 110.0, 1.1, 3, 0.01,
                      optimal=100.0)
        assert r.degradation == pytest.approx(10.0)
        assert not r.is_optimal

    def test_optimal_flag(self):
        r = RunResult("MCP", "BNP", "g", 10, 100.0, 1.0, 3, 0.01,
                      optimal=100.0)
        assert r.is_optimal

    def test_missing_optimal(self):
        r = RunResult("MCP", "BNP", "g", 10, 100.0, 1.0, 3, 0.01)
        assert r.degradation is None
        assert not r.is_optimal


def _mk(alg, graph, length):
    return RunResult(alg, "BNP", graph, 10, length, length / 100.0, 2, 0.0)


class TestRanking:
    def test_simple_order(self):
        rows = [
            _mk("A", "g1", 100), _mk("B", "g1", 110),
            _mk("A", "g2", 90), _mk("B", "g2", 120),
        ]
        ranks = average_ranks(rows)
        assert ranks[0] == ("A", 1.0)
        assert ranks[1] == ("B", 2.0)

    def test_ties_share_rank(self):
        rows = [_mk("A", "g1", 100), _mk("B", "g1", 100)]
        ranks = dict(average_ranks(rows))
        assert ranks["A"] == ranks["B"] == 1.5

    def test_mixed(self):
        rows = [
            _mk("A", "g1", 100), _mk("B", "g1", 100), _mk("C", "g1", 120),
            _mk("A", "g2", 80), _mk("B", "g2", 90), _mk("C", "g2", 70),
        ]
        ranks = dict(average_ranks(rows))
        assert ranks["C"] == pytest.approx(2.0)   # (3 + 1) / 2
        assert ranks["A"] == pytest.approx(1.75)  # (1.5 + 2) / 2

    def test_summarize(self):
        rows = [_mk("A", "g1", 100), _mk("A", "g2", 200)]
        summary = summarize_by_algorithm(rows)
        assert summary["A"]["count"] == 2
        assert summary["A"]["mean_length"] == 150.0
        assert summary["A"]["mean_nsl"] == pytest.approx(1.5)

    def test_empty_results(self):
        assert average_ranks([]) == []
        assert summarize_by_algorithm([]) == {}

    def test_three_way_tie_shares_rank(self):
        rows = [_mk(a, "g1", 100) for a in ("A", "B", "C")]
        ranks = dict(average_ranks(rows))
        # Average of ranks 1..3 for all three.
        assert ranks == {"A": 2.0, "B": 2.0, "C": 2.0}

    def test_near_tie_within_epsilon_is_a_tie(self):
        # Lengths within 1e-9 are treated as equal (competition ranking
        # would exaggerate float noise the paper treats as ties).
        rows = [_mk("A", "g1", 100.0), _mk("B", "g1", 100.0 + 1e-12)]
        ranks = dict(average_ranks(rows))
        assert ranks["A"] == ranks["B"] == 1.5

    def test_tie_then_strict_winner(self):
        rows = [
            _mk("A", "g1", 100), _mk("B", "g1", 100), _mk("C", "g1", 90),
        ]
        ranks = dict(average_ranks(rows))
        assert ranks["C"] == 1.0
        assert ranks["A"] == ranks["B"] == 2.5

    def test_algorithms_missing_on_some_graphs(self):
        # B only ran on g1; its average is over its own runs alone.
        rows = [
            _mk("A", "g1", 100), _mk("B", "g1", 90),
            _mk("A", "g2", 100),
        ]
        ranks = dict(average_ranks(rows))
        assert ranks["B"] == 1.0
        assert ranks["A"] == pytest.approx(1.5)  # (2 + 1) / 2

    def test_rank_by_alternate_key(self):
        rows = [
            RunResult("A", "BNP", "g1", 10, 100.0, 1.0, 7, 0.0),
            RunResult("B", "BNP", "g1", 10, 110.0, 1.1, 2, 0.0),
        ]
        ranks = dict(average_ranks(rows, key="procs_used"))
        assert ranks["B"] == 1.0
        assert ranks["A"] == 2.0

"""Unit tests for shared list-scheduling machinery."""

import pytest

from repro import Machine, Schedule, TaskGraph
from repro.core.listsched import (
    ReadyTracker,
    best_proc_min_est,
    candidate_procs,
    est_on_proc,
)


@pytest.fixture
def diamond():
    return TaskGraph(
        [1.0, 2.0, 4.0, 1.0],
        {(0, 1): 3.0, (0, 2): 1.0, (1, 3): 2.0, (2, 3): 5.0},
        name="diamond",
    )


class TestReadyTracker:
    def test_initial_ready_is_entries(self, diamond):
        rt = ReadyTracker(diamond)
        assert rt.ready == {0}

    def test_release_children(self, diamond):
        rt = ReadyTracker(diamond)
        released = rt.mark_scheduled(0)
        assert set(released) == {1, 2}
        assert rt.ready == {1, 2}

    def test_join_waits_for_all_parents(self, diamond):
        rt = ReadyTracker(diamond)
        rt.mark_scheduled(0)
        assert rt.mark_scheduled(1) == []
        assert rt.mark_scheduled(2) == [3]

    def test_all_scheduled(self, diamond):
        rt = ReadyTracker(diamond)
        for n in (0, 1, 2, 3):
            assert not rt.all_scheduled()
            rt.mark_scheduled(n)
        assert rt.all_scheduled()

    def test_is_ready(self, diamond):
        rt = ReadyTracker(diamond)
        assert rt.is_ready(0)
        assert not rt.is_ready(3)

    def test_ready_view_is_frozen(self, diamond):
        # Regression: ``ready`` used to leak the internal mutable set —
        # a caller could .add()/.discard() and corrupt the tracker.
        rt = ReadyTracker(diamond)
        view = rt.ready
        assert isinstance(view, frozenset)
        with pytest.raises(AttributeError):
            view.add(3)
        with pytest.raises(AttributeError):
            view.discard(0)

    def test_ready_view_does_not_alias_tracker_state(self, diamond):
        rt = ReadyTracker(diamond)
        before = rt.ready
        rt.mark_scheduled(0)
        # The snapshot taken earlier must not mutate under the caller...
        assert before == {0}
        # ...and a fresh view reflects the new state.
        assert rt.ready == {1, 2}

    def test_iter_ready_matches_view(self, diamond):
        rt = ReadyTracker(diamond)
        rt.mark_scheduled(0)
        assert set(rt.iter_ready()) == rt.ready == {1, 2}


class TestCandidateProcs:
    def test_empty_schedule_single_candidate(self, diamond):
        s = Schedule(diamond, 5)
        assert candidate_procs(s) == [0]

    def test_used_plus_one(self, diamond):
        s = Schedule(diamond, 5)
        s.place(0, 1, 0.0)
        assert candidate_procs(s) == [0, 1]

    def test_all_used(self, diamond):
        s = Schedule(diamond, 2)
        s.place(0, 0, 0.0)
        s.place(1, 1, 4.0)
        assert candidate_procs(s) == [0, 1]


class TestEst:
    def test_est_includes_comm(self, diamond):
        s = Schedule(diamond, 2)
        s.place(0, 0, 0.0)
        assert est_on_proc(s, 1, 0, insertion=False) == 1.0
        assert est_on_proc(s, 1, 1, insertion=False) == 4.0

    def test_est_includes_proc_ready(self, diamond):
        s = Schedule(diamond, 2)
        s.place(0, 0, 0.0)
        s.place(2, 0, 1.0)  # occupies [1, 5)
        assert est_on_proc(s, 1, 0, insertion=False) == 5.0
        assert est_on_proc(s, 1, 0, insertion=True) == 5.0

    def test_best_proc_prefers_lower_id_on_tie(self, diamond):
        s = Schedule(diamond, 3)
        p, t = best_proc_min_est(s, 0, insertion=False)
        assert (p, t) == (0, 0.0)

    def test_best_proc_minimises(self, diamond):
        s = Schedule(diamond, 2)
        s.place(0, 0, 0.0)
        p, t = best_proc_min_est(s, 1, insertion=False)
        assert (p, t) == (0, 1.0)

    def test_best_proc_spills_when_busy(self, diamond):
        s = Schedule(diamond, 2)
        s.place(0, 0, 0.0)
        s.place(2, 0, 1.0)  # P0 busy until 5
        p, t = best_proc_min_est(s, 1, insertion=False)
        assert (p, t) == (1, 4.0)  # comm 3 beats waiting to 5

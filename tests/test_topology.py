"""Unit tests for network topologies and routing."""

import pytest

from repro import MachineError, RoutingError, Topology


class TestFamilies:
    def test_clique(self):
        t = Topology.clique(5)
        assert t.num_procs == 5
        assert t.num_links == 10
        assert t.diameter == 1

    def test_ring(self):
        t = Topology.ring(6)
        assert t.num_links == 6
        assert t.diameter == 3
        assert t.degree(0) == 2

    def test_ring_small(self):
        assert Topology.ring(2).num_links == 1
        assert Topology.ring(1).num_procs == 1

    def test_chain(self):
        t = Topology.chain(5)
        assert t.num_links == 4
        assert t.diameter == 4

    def test_star(self):
        t = Topology.star(5)
        assert t.degree(0) == 4
        assert t.diameter == 2

    def test_mesh(self):
        t = Topology.mesh2d(3, 4)
        assert t.num_procs == 12
        assert t.num_links == 3 * 3 + 2 * 4  # vertical + horizontal
        assert t.diameter == (3 - 1) + (4 - 1)

    def test_hypercube(self):
        t = Topology.hypercube(3)
        assert t.num_procs == 8
        assert t.num_links == 12
        assert t.diameter == 3
        for p in range(8):
            assert t.degree(p) == 3

    def test_hypercube_zero(self):
        assert Topology.hypercube(0).num_procs == 1

    def test_random_connected(self):
        t = Topology.random_connected(10, extra_links=5, seed=3)
        assert t.num_procs == 10
        assert t.num_links == 9 + 5
        # connectivity is checked in the constructor; reaching here passes

    def test_random_deterministic(self):
        a = Topology.random_connected(8, 3, seed=1)
        b = Topology.random_connected(8, 3, seed=1)
        assert a.links == b.links


class TestValidation:
    def test_disconnected_rejected(self):
        with pytest.raises(MachineError, match="not connected"):
            Topology(4, [(0, 1), (2, 3)])

    def test_self_link_rejected(self):
        with pytest.raises(MachineError):
            Topology(2, [(0, 0)])

    def test_unknown_proc_rejected(self):
        with pytest.raises(MachineError):
            Topology(2, [(0, 5)])

    def test_zero_procs_rejected(self):
        with pytest.raises(MachineError):
            Topology(0, [])


class TestRouting:
    def test_self_route(self):
        t = Topology.ring(4)
        assert t.route(2, 2) == (2,)
        assert t.hop_count(2, 2) == 0

    def test_shortest(self):
        t = Topology.ring(6)
        assert t.route(0, 2) == (0, 1, 2)
        assert t.hop_count(0, 3) == 3

    def test_deterministic_tie_break(self):
        # On a 4-ring both directions to the opposite node have 2 hops;
        # BFS with ascending neighbour order must pick via node 1.
        t = Topology.ring(4)
        assert t.route(0, 2) == (0, 1, 2)

    def test_route_memoised(self):
        t = Topology.mesh2d(3, 3)
        r1 = t.route(0, 8)
        r2 = t.route(0, 8)
        assert r1 is r2

    def test_route_valid_links(self):
        t = Topology.random_connected(12, 4, seed=9)
        for a in range(12):
            for b in range(12):
                r = t.route(a, b)
                assert r[0] == a and r[-1] == b
                for x, y in zip(r, r[1:]):
                    assert t.has_link(x, y)

    def test_channels_two_per_link(self):
        t = Topology.chain(3)
        assert sorted(t.channels()) == [(0, 1), (1, 0), (1, 2), (2, 1)]

"""Property-based tests for the extension packages (TDB, UNC+CS)."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Machine, get_scheduler, validate
from repro.algorithms.cs import (
    cluster_schedule,
    clusters_from_schedule,
    rcp_assignment,
    sarkar_assignment,
)
from repro.core.attributes import cp_computation_cost
from repro.duplication import dsh_schedule, validate_duplication

from strategies import task_graphs

SLOW = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestDuplicationProperties:
    @given(g=task_graphs(max_nodes=12), procs=st.integers(1, 4))
    @SLOW
    def test_dsh_always_valid(self, g, procs):
        sched = dsh_schedule(g, procs)
        validate_duplication(sched)

    @given(g=task_graphs(max_nodes=12), procs=st.integers(2, 4))
    @SLOW
    def test_dsh_never_beats_cp_computation(self, g, procs):
        """Duplication can kill communication but not computation: the
        computation-only critical path still lower-bounds the makespan."""
        sched = dsh_schedule(g, procs)
        assert sched.length >= cp_computation_cost(g) - 1e-6

    @given(g=task_graphs(max_nodes=10))
    @SLOW
    def test_dsh_bounded_by_serial_plus_messages(self, g):
        """Greedy min-EST list scheduling (duplication included) is NOT
        guaranteed to beat serial execution — communication anomalies
        can make spreading out lose to one processor (e.g. 4 unit tasks
        with edges {(0,2):3, (1,2):1, (1,3):3, (2,3):1} schedule to 5 >
        4).  What does hold is the loose bound: every start waits on at
        most the work and messages already committed."""
        sched = dsh_schedule(g, 2)
        bound = g.total_computation + g.total_communication
        assert sched.length <= bound + 1e-6

    def test_dsh_serial_anomaly_is_real_and_small(self):
        """The known counterexample to 'DSH <= serial': keep it pinned
        so the bound above is not accidentally weakened to hide it."""
        from repro import TaskGraph

        g = TaskGraph([1.0] * 4,
                      {(0, 2): 3.0, (1, 2): 1.0, (1, 3): 3.0,
                       (2, 3): 1.0}, name="dsh-anomaly")
        sched = dsh_schedule(g, 2)
        validate_duplication(sched)
        assert sched.length == 5.0  # > total computation of 4


class TestClusterSchedulingProperties:
    @given(g=task_graphs(min_nodes=4, max_nodes=12),
           procs=st.integers(1, 3))
    @SLOW
    def test_pipeline_valid_and_bounded(self, g, procs):
        for method in ("sarkar", "rcp"):
            sched = cluster_schedule(g, procs, unc="DSC", method=method)
            validate(sched)
            assert sched.processors_used() <= procs

    @given(g=task_graphs(min_nodes=4, max_nodes=12))
    @SLOW
    def test_clusters_atomic_under_both_assignments(self, g):
        unc = get_scheduler("DSC").schedule(g, Machine.unbounded(g))
        clusters = clusters_from_schedule(unc)
        for assign in (sarkar_assignment, rcp_assignment):
            proc_of = assign(g, clusters, 2)
            for cluster in clusters:
                assert len({proc_of[n] for n in cluster}) == 1

"""Service tests: the robustness contract of ``repro.service``.

Each test boots a real :class:`~repro.service.ScheduleService` on an
ephemeral port inside ``asyncio.run`` and talks to it over actual HTTP
with the blocking :class:`~repro.service.ServiceClient` pushed onto a
side thread (the server owns its own executor, so in-process clients
cannot starve it).  Covered contract:

* malformed graphs answer 400 with a ``Violation`` table, never a
  traceback;
* the per-request deadline answers 504;
* the bounded queue answers 429 backpressure;
* a warm hit is byte-for-byte the same schedule the cold request
  computed (the cache-correctness half of the cold/warm speedup);
* drain is clean, idempotent and join-able.

Plus the storm generator's determinism (equal configs ⇒ identical
request streams), which the loadtest's rankable tables rest on.
"""

from __future__ import annotations

import asyncio
import json
from collections import Counter

import pytest

from repro.scenarios.storm import StormConfig, make_storm, storm_bodies
from repro.service import ScheduleCache, ScheduleService, ServiceClient, ServiceConfig

GRAPH = {
    "weights": [2.0, 3.0, 4.0, 1.0],
    "edges": [[0, 1, 4.0], [0, 2, 1.0], [1, 3, 1.0], [2, 3, 5.0]],
    "name": "svc-test",
}


def _run(coro):
    return asyncio.run(coro)


async def _with_service(config, body):
    """Start a service, run ``body(service, client)`` off-loop, drain."""
    service = ScheduleService(config)
    await service.start()
    loop = asyncio.get_running_loop()
    client = ServiceClient(port=service.port, timeout=10.0)
    try:
        return await loop.run_in_executor(
            None, lambda: body(service, client))
    finally:
        await service.drain()


def _serve(body, **config_kwargs):
    config = ServiceConfig(port=0, **config_kwargs)
    return _run(_with_service(config, body))


# ----------------------------------------------------------------------
# happy path + cold/warm equivalence
# ----------------------------------------------------------------------
class TestScheduleEndpoint:
    def test_cold_then_warm_same_schedule(self):
        def body(service, client):
            raw = json.dumps({"graph": GRAPH, "machine": 2,
                              "spec": "mcp"}, sort_keys=True).encode()
            s1, cold = client.post_body(raw)
            s2, warm = client.post_body(raw)
            return s1, cold, s2, warm, dict(service.stats)

        s1, cold, s2, warm, stats = _serve(body)
        assert (s1, s2) == (200, 200)
        assert cold["cached"] is False and warm["cached"] is True
        assert warm["schedule"] == cold["schedule"]
        assert warm["length"] == cold["length"]
        assert warm["key"] == cold["key"]
        assert stats["cache_hits"] == 1 and stats["scheduled"] == 1

    def test_equivalent_spelling_hits_same_cache_entry(self):
        # Different JSON bytes (spec case, axis order), same request
        # identity: the second must be a cache hit, not a recompute.
        def body(service, client):
            r1 = client.schedule(GRAPH, 2, "MCP")
            r2 = client.schedule(GRAPH, 2, "mcp")
            return r1, r2, dict(service.stats)

        (s1, cold), (s2, warm), stats = _serve(body)
        assert (s1, s2) == (200, 200)
        assert warm["cached"] is True
        assert warm["schedule"] == cold["schedule"]
        assert stats["scheduled"] == 1

    def test_stg_text_request(self):
        def body(service, client):
            from repro.io.stg import dumps_stg
            from repro import api

            return client.schedule_stg(dumps_stg(api.as_graph(GRAPH)))

        status, payload = _serve(body)
        assert status == 200
        assert payload["length"] > 0

    def test_healthz_stats_and_unknown_routes(self):
        def body(service, client):
            return (client.healthz(), client.stats(),
                    client._request("GET", "/nope"),
                    client._request("GET", "/schedule"))

        health, stats, missing, wrong_method = _serve(body)
        assert health == (200, {"status": "ok"})
        assert stats[0] == 200 and "cache" in stats[1]
        assert missing[0] == 404
        assert wrong_method[0] == 405


# ----------------------------------------------------------------------
# error shapes: violations, not tracebacks
# ----------------------------------------------------------------------
class TestErrorContract:
    @pytest.mark.parametrize("raw, code", [
        (b'{"graph": {"edges": [[0, 1, 1.0]]}}', "graph"),
        (b'{"graph": {"weights": [1.0, "x"]}}', "graph"),
        (b'{"spec": "mcp"}', "graph"),          # no graph at all
        (b'not json and not stg', "graph"),
        (b'{"graph": ' + json.dumps(GRAPH).encode()
         + b', "spec": "NOPE"}', "spec"),
        (b'{"graph": ' + json.dumps(GRAPH).encode()
         + b', "machine": {"procs": "many"}}', "machine"),
    ])
    def test_malformed_requests_answer_violation_tables(self, raw, code):
        def body(service, client):
            return client.post_body(raw)

        status, payload = _serve(body)
        assert status == 400
        assert "traceback" not in json.dumps(payload).lower()
        assert payload["violations"], payload
        assert payload["violations"][0]["code"] == code
        assert code in payload["table"] and "CODE" in payload["table"]

    def test_bad_request_counts_but_never_kills_the_server(self):
        def body(service, client):
            client.post_body(b"\xff\xfe broken bytes")
            client.post_body(b"{}")
            status, payload = client.schedule(GRAPH, 2, "mcp")
            return status, payload, dict(service.stats)

        status, payload, stats = _serve(body)
        assert status == 200 and payload["length"] > 0
        assert stats["bad_requests"] == 2


# ----------------------------------------------------------------------
# deadlines and backpressure
# ----------------------------------------------------------------------
class TestTimeoutsAndBackpressure:
    def test_deadline_answers_504(self):
        async def scenario():
            config = ServiceConfig(port=0, timeout_s=0.0)
            service = ScheduleService(config)
            await service.start()
            # Park the batch loop so the future can never resolve
            # inside the (zero) deadline.
            service._batch_task.cancel()
            loop = asyncio.get_running_loop()
            client = ServiceClient(port=service.port, timeout=10.0)
            try:
                status, payload = await loop.run_in_executor(
                    None, client.schedule, GRAPH, 2, "mcp")
                return status, payload, dict(service.stats), service
            finally:
                # Nothing consumes the queue: hand-settle it so drain's
                # queue.join() completes.
                while True:
                    try:
                        _k, _s, fut = service._queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    fut.cancel()
                    service._queue.task_done()
                service._pending.clear()
                await service.drain()

        status, payload, stats, _ = _run(scenario())
        assert status == 504
        assert payload["timeout_s"] == 0.0
        assert stats["timeouts"] == 1

    def test_full_queue_answers_429(self):
        async def scenario():
            config = ServiceConfig(port=0, queue_limit=1, timeout_s=0.0)
            service = ScheduleService(config)
            await service.start()
            service._batch_task.cancel()
            loop = asyncio.get_running_loop()
            client = ServiceClient(port=service.port, timeout=10.0)
            other = dict(GRAPH, weights=[5.0, 6.0, 7.0, 8.0])
            try:
                # First distinct request occupies the single queue slot
                # (and 504s on the zero deadline); the second distinct
                # request must bounce with 429.
                first = await loop.run_in_executor(
                    None, client.schedule, GRAPH, 2, "mcp")
                second = await loop.run_in_executor(
                    None, client.schedule, other, 2, "mcp")
                return first[0], second, dict(service.stats)
            finally:
                while True:
                    try:
                        _k, _s, fut = service._queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    fut.cancel()
                    service._queue.task_done()
                service._pending.clear()
                await service.drain()

        first_status, (second_status, payload), stats = _run(scenario())
        assert first_status == 504
        assert second_status == 429
        assert payload["queue_limit"] == 1
        assert stats["rejected"] == 1


# ----------------------------------------------------------------------
# lifecycle
# ----------------------------------------------------------------------
class TestDrain:
    def test_drain_is_idempotent_and_final(self):
        async def scenario():
            service = ScheduleService(ServiceConfig(port=0))
            await service.start()
            loop = asyncio.get_running_loop()
            client = ServiceClient(port=service.port, timeout=10.0)
            status, _ = await loop.run_in_executor(
                None, client.schedule, GRAPH, 2, "mcp")
            # Concurrent and repeated drains all join the same work.
            await asyncio.gather(service.drain(), service.drain())
            await service.drain()
            refused = False
            try:
                await loop.run_in_executor(None, client.healthz)
            except OSError:
                refused = True
            return status, refused

        status, refused = _run(scenario())
        assert status == 200
        assert refused

    def test_persistent_cache_survives_restart(self, tmp_path):
        cache_dir = str(tmp_path / "cache")

        def body(service, client):
            return client.schedule(GRAPH, 2, "mcp")

        status, cold = _serve(body, cache_dir=cache_dir)
        assert status == 200 and cold["cached"] is False

        status, warm = _serve(body, cache_dir=cache_dir)
        assert status == 200 and warm["cached"] is True
        assert warm["schedule"] == cold["schedule"]

    def test_unusable_cache_dir_raises_value_error(self, tmp_path):
        not_a_dir = tmp_path / "file"
        not_a_dir.write_text("occupied")
        with pytest.raises(ValueError):
            ScheduleCache(directory=str(not_a_dir))


# ----------------------------------------------------------------------
# the storm generator
# ----------------------------------------------------------------------
class TestStorm:
    CONFIG = StormConfig(requests=60, templates=4, sizes=(20, 30),
                         specs=("mcp", "dls"), rate=100.0, seed=7)

    def test_equal_configs_are_request_identical(self):
        a = make_storm(self.CONFIG)
        b = make_storm(StormConfig(requests=60, templates=4,
                                   sizes=(20, 30), specs=("mcp", "dls"),
                                   rate=100.0, seed=7))
        assert [(r.arrival, r.template) for r in a] == \
               [(r.arrival, r.template) for r in b]
        assert a[0].body == b[0].body

    def test_seed_changes_the_storm(self):
        a = make_storm(self.CONFIG)
        b = make_storm(StormConfig(requests=60, templates=4,
                                   sizes=(20, 30), specs=("mcp", "dls"),
                                   rate=100.0, seed=8))
        assert [(r.arrival, r.template) for r in a] != \
               [(r.arrival, r.template) for r in b]

    def test_popularity_is_zipf_skewed(self):
        counts = Counter(r.template for r in make_storm(self.CONFIG))
        assert counts[0] == max(counts.values())
        assert counts[0] > self.CONFIG.requests / self.CONFIG.templates

    def test_arrivals_sorted_and_bodies_distinct(self):
        storm = make_storm(self.CONFIG)
        arrivals = [r.arrival for r in storm]
        assert arrivals == sorted(arrivals)
        bodies = storm_bodies(self.CONFIG)
        assert len(bodies) == self.CONFIG.templates
        fps = {json.dumps(b, sort_keys=True) for b in bodies}
        assert len(fps) == self.CONFIG.templates

"""Discrete-event engine: exact replay, noise semantics, backends."""

import numpy as np
import pytest

from repro import Machine, NetworkMachine, Schedule, Topology, get_scheduler
from repro.core.exceptions import ScheduleError
from repro.core.rng import as_generator, derive_rng, seed_label
from repro.core.schedule import validate
from repro.generators.psg import kwok_ahmad_9
from repro.generators.random_graphs import rgnos_graph
from repro.sim import (
    DETERMINISTIC,
    ContentionNetwork,
    Dist,
    FixedDelayNetwork,
    InstantNetwork,
    PerturbationModel,
    RecordedDelays,
    perturbation_from_dict,
    replay_network,
    simulate,
)


def _schedule(alg="MCP", graph=None, machine=None):
    graph = graph if graph is not None else kwok_ahmad_9()
    machine = machine or Machine.unbounded(graph)
    return get_scheduler(alg).schedule(graph, machine)


# ----------------------------------------------------------------------
# exact replay (the zero-noise anchor)
# ----------------------------------------------------------------------
class TestExactReplay:
    ALGS = ["HLFET", "ISH", "MCP", "ETF", "DLS", "LAST",
            "EZ", "LC", "DSC", "MD", "DCP"]

    @pytest.mark.parametrize("alg", ALGS)
    def test_clique_schedules_reproduce_exactly(self, alg):
        graph = rgnos_graph(40, 1.0, 3, seed=17)
        sched = _schedule(alg, graph)
        res = simulate(sched)
        assert res.makespan == pytest.approx(sched.length)
        assert res.degradation_pct == pytest.approx(0.0)
        for v in range(graph.num_nodes):
            assert res.schedule.proc_of(v) == sched.proc_of(v)
            assert res.schedule.start_of(v) == pytest.approx(
                sched.start_of(v))
            assert res.schedule.finish_of(v) == pytest.approx(
                sched.finish_of(v))

    @pytest.mark.parametrize("alg", ["MH", "DLS-APN", "BU", "BSA"])
    def test_apn_schedules_reproduce_exactly(self, alg):
        graph = kwok_ahmad_9()
        sched = _schedule(alg, graph, NetworkMachine(Topology.hypercube(2)))
        res = simulate(sched)  # auto-picks the recorded-message backend
        assert isinstance(replay_network(sched),
                          (RecordedDelays, FixedDelayNetwork))
        for v in range(graph.num_nodes):
            assert res.schedule.start_of(v) == pytest.approx(
                sched.start_of(v))

    def test_bounded_and_heterogeneous_machines(self):
        graph = rgnos_graph(30, 1.0, 2, seed=5)
        for machine in (Machine(3), Machine(3, speeds=[1.0, 2.0, 4.0])):
            sched = _schedule("MCP", graph, machine)
            res = simulate(sched)
            assert res.makespan == pytest.approx(sched.length)

    def test_replay_is_a_valid_schedule(self):
        sched = _schedule("MCP")
        res = simulate(sched)
        validate(res.schedule)  # zero noise: even durations match

    def test_incomplete_schedule_rejected(self):
        graph = kwok_ahmad_9()
        partial = Schedule(graph, 2)
        partial.place(0, 0, 0.0)
        with pytest.raises(ScheduleError):
            simulate(partial)


# ----------------------------------------------------------------------
# noise semantics
# ----------------------------------------------------------------------
class TestNoise:
    def test_same_seed_same_trial(self):
        sched = _schedule("HLFET", rgnos_graph(30, 1.0, 3, seed=3))
        noise = PerturbationModel.lognormal(0.3)
        a = simulate(sched, perturb=noise, rng=42)
        b = simulate(sched, perturb=noise, rng=42)
        assert a.makespan == b.makespan
        assert a.schedule.to_dict() == b.schedule.to_dict()

    def test_different_seeds_differ(self):
        sched = _schedule("HLFET", rgnos_graph(30, 1.0, 3, seed=3))
        noise = PerturbationModel.lognormal(0.3)
        lengths = {simulate(sched, perturb=noise, rng=s).makespan
                   for s in range(8)}
        assert len(lengths) > 1

    def test_noisy_replay_keeps_mapping_and_order(self):
        sched = _schedule("MCP", rgnos_graph(30, 1.0, 3, seed=3))
        res = simulate(sched, perturb=PerturbationModel.uniform(0.4), rng=1)
        for v in range(sched.graph.num_nodes):
            assert res.schedule.proc_of(v) == sched.proc_of(v)
        for p in range(sched.num_procs):
            assert ([pl.node for pl in res.schedule.tasks_on(p)]
                    == [pl.node for pl in sched.tasks_on(p)])
        # Executed timeline is precedence- and overlap-consistent under
        # duration-only noise (clique delays are preserved).
        validate(res.schedule, check_durations=False)

    def test_speed_jitter_scales_whole_processors(self):
        graph = rgnos_graph(30, 1.0, 3, seed=3)
        sched = _schedule("MCP", graph, Machine(2))
        noise = PerturbationModel(speed=Dist("uniform", 0.5))
        res = simulate(sched, perturb=noise, rng=9)
        # Within one processor every task shares the trial's speed
        # factor: executed/base duration is constant per processor.
        for p in range(2):
            ratios = set()
            for pl in res.schedule.tasks_on(p):
                base = sched.duration_of(pl.node, p)
                ratios.add(round((pl.finish - pl.start) / base, 9))
            assert len(ratios) == 1

    def test_comm_noise_requires_cross_proc_messages(self):
        graph = kwok_ahmad_9()
        sched = _schedule("MCP", graph, Machine(4))
        noise = PerturbationModel(comm=Dist("uniform", 0.9))
        lengths = {simulate(sched, perturb=noise, rng=s).makespan
                   for s in range(6)}
        assert len(lengths) > 1  # kwok9 schedules do communicate


# ----------------------------------------------------------------------
# network backends
# ----------------------------------------------------------------------
class TestBackends:
    def test_instant_never_slower_than_fixed(self):
        sched = _schedule("MCP", rgnos_graph(40, 10.0, 3, seed=7))
        inst = simulate(sched, network=InstantNetwork()).makespan
        fixed = simulate(sched, network=FixedDelayNetwork()).makespan
        assert inst <= fixed
        assert fixed == pytest.approx(sched.length)

    def test_fixed_latency_slows_execution(self):
        sched = _schedule("MCP", rgnos_graph(40, 1.0, 3, seed=7))
        base = simulate(sched, network=FixedDelayNetwork()).makespan
        slow = simulate(
            sched, network=FixedDelayNetwork(latency=25.0)).makespan
        assert slow >= base

    def test_zero_cost_cross_proc_edges_still_pay_latency(self):
        # A free edge is a real message: backends with per-message
        # latency must charge it (only same-processor data is free).
        from repro.core.graph import TaskGraph

        g = TaskGraph([5.0, 5.0], {(0, 1): 0.0}, name="free-edge")
        sched = Schedule(g, 2)
        sched.place(0, 0, 0.0)
        sched.place(1, 1, 5.0)
        res = simulate(sched, network=FixedDelayNetwork(latency=25.0))
        assert res.schedule.start_of(1) == pytest.approx(30.0)
        # ...while the default clique backend keeps zero-noise replay
        # exact: a zero-cost message arrives instantly.
        assert simulate(sched).makespan == pytest.approx(sched.length)

    def test_contention_backend_serialises_channels(self):
        graph = kwok_ahmad_9()
        topo = Topology.hypercube(2)
        sched = _schedule("MCP", graph, Machine(4))
        res = simulate(sched, network=ContentionNetwork(topo))
        # With fixed orders, contention can only delay data relative to
        # zero-time transport, and delays propagate monotonically.
        instant = simulate(sched, network=InstantNetwork()).makespan
        assert res.makespan >= instant
        # Committed messages carry hop reservations on real channels.
        hops = [h for m in res.schedule.messages.values() for h in m.hops]
        assert hops
        for (a, b), s, f in hops:
            assert topo.has_link(a, b) and f > s
        validate(res.schedule, network=topo, check_durations=False)

    def test_network_fingerprints_distinct(self):
        fps = {InstantNetwork().fingerprint(),
               FixedDelayNetwork().fingerprint(),
               FixedDelayNetwork(scale=2.0).fingerprint(),
               ContentionNetwork(Topology.hypercube(2)).fingerprint()}
        assert len(fps) == 4

    def test_network_from_spec(self):
        from repro.sim import network_from_spec

        assert network_from_spec("auto") is None
        assert isinstance(network_from_spec("instant"), InstantNetwork)
        fixed = network_from_spec("fixed", scale=2.0, latency=3.0)
        assert (fixed.scale, fixed.latency) == (2.0, 3.0)
        topo = Topology.ring(4)
        assert network_from_spec("contention",
                                 topology=topo).topology is topo
        with pytest.raises(ValueError, match="needs a topology"):
            network_from_spec("contention")
        with pytest.raises(ValueError, match="unknown network"):
            network_from_spec("wormhole")

    def test_fixed_delay_rejects_negative_params(self):
        with pytest.raises(ValueError):
            FixedDelayNetwork(scale=-1.0)

    def test_recorded_delays_fall_back_to_edge_cost(self):
        sched = _schedule("MCP", machine=Machine(3))
        backend = RecordedDelays(sched)  # clique run: nothing recorded
        arrival, msg = backend.arrival(0, 1, 0, 1, 10.0, 4.0)
        assert arrival == pytest.approx(14.0) and msg is None


# ----------------------------------------------------------------------
# perturbation models and distributions
# ----------------------------------------------------------------------
class TestPerturb:
    def test_dist_validation(self):
        with pytest.raises(ValueError):
            Dist("exponential", 0.5)
        with pytest.raises(ValueError):
            Dist("uniform", 1.5)
        with pytest.raises(ValueError):
            Dist("normal", -0.1)

    @pytest.mark.parametrize("kind", ["uniform", "normal", "lognormal"])
    def test_dist_mean_one(self, kind):
        rng = np.random.default_rng(0)
        samples = Dist(kind, 0.3).sample(rng, 20_000)
        assert samples.mean() == pytest.approx(1.0, abs=0.02)
        assert (samples > 0).all()

    def test_zero_param_is_identity(self):
        rng = np.random.default_rng(0)
        assert (Dist("uniform", 0.0).sample(rng, 5) == 1.0).all()

    def test_deterministic_model(self):
        assert DETERMINISTIC.is_deterministic
        assert DETERMINISTIC.fingerprint() == "deterministic"
        noise = DETERMINISTIC.begin_trial(np.random.default_rng(0), 4, 2)
        assert noise.duration(0, 0, 7.5) == 7.5
        assert noise.comm_factor() == 1.0

    def test_from_dict_round_trip(self):
        model = PerturbationModel(
            duration=Dist("lognormal", 0.3), comm=Dist("uniform", 0.2))
        assert perturbation_from_dict(model.to_dict()) == model

    def test_from_dict_rejects_bad_input(self):
        with pytest.raises(ValueError):
            perturbation_from_dict({"wall_clock": {}})
        with pytest.raises(ValueError):
            perturbation_from_dict({"duration": {"dist": "nope",
                                                 "param": 1}})
        with pytest.raises(ValueError):
            perturbation_from_dict({"duration": {"dist": "uniform",
                                                 "param": 0.2,
                                                 "extra": 1}})

    def test_fingerprints_distinguish_models(self):
        fps = {PerturbationModel.uniform(0.2).fingerprint(),
               PerturbationModel.normal(0.2).fingerprint(),
               PerturbationModel.lognormal(0.2).fingerprint(),
               PerturbationModel.lognormal(0.3).fingerprint(),
               DETERMINISTIC.fingerprint()}
        assert len(fps) == 5


# ----------------------------------------------------------------------
# rng helpers
# ----------------------------------------------------------------------
class TestRngHelpers:
    def test_as_generator_passthrough(self):
        rng = np.random.default_rng(1)
        assert as_generator(rng) is rng

    def test_as_generator_int_matches_default_rng(self):
        a = as_generator(5).integers(0, 100, 10)
        b = np.random.default_rng(5).integers(0, 100, 10)
        assert (a == b).all()

    def test_seed_label(self):
        assert seed_label(7) == "7"
        assert seed_label(None) == "0"
        rng = np.random.default_rng(0)
        label = seed_label(rng)
        assert label.startswith("rng-")
        assert seed_label(rng) == label  # no draw => state unchanged
        rng.integers(0, 10)
        assert seed_label(rng) != label  # draws advance the label

    def test_derive_rng_stable_and_keyed(self):
        a = derive_rng(1, "mc", "MCP", "g").integers(0, 1000, 5)
        b = derive_rng(1, "mc", "MCP", "g").integers(0, 1000, 5)
        c = derive_rng(1, "mc", "ISH", "g").integers(0, 1000, 5)
        d = derive_rng(2, "mc", "MCP", "g").integers(0, 1000, 5)
        assert (a == b).all()
        assert not (a == c).all() or not (a == d).all()


# ----------------------------------------------------------------------
# degradation contract and stall diagnostics
# ----------------------------------------------------------------------
class TestDegradationContract:
    def test_zero_for_exact_replay(self):
        res = simulate(_schedule())
        assert res.degradation_pct == pytest.approx(0.0)

    def test_corrupt_prediction_raises_instead_of_zero(self):
        # A non-positive prediction for a real graph is corrupt input;
        # returning 0.0 would silently report "no degradation".
        from repro.sim.engine import SimResult

        base = simulate(_schedule())
        corrupt = SimResult(schedule=base.schedule, predicted=0.0,
                            makespan=base.makespan,
                            num_events=base.num_events)
        with pytest.raises(ScheduleError, match="not positive"):
            corrupt.degradation_pct
        negative = SimResult(schedule=base.schedule, predicted=-1.0,
                             makespan=base.makespan,
                             num_events=base.num_events)
        with pytest.raises(ScheduleError, match="not positive"):
            negative.degradation_pct


class TestStallDiagnostics:
    def test_stall_error_names_task_processor_and_inputs(self):
        # A chain placed in reverse order on one processor can never
        # replay: the head waits forever on its unexecuted predecessor.
        from repro import TaskGraph

        g = TaskGraph([2.0, 3.0], {(0, 1): 1.0}, name="reversed-chain")
        sched = Schedule(g, 1)
        sched.place(1, 0, 0.0)
        sched.place(0, 0, 3.0)
        with pytest.raises(ScheduleError) as err:
            simulate(sched)
        text = str(err.value)
        assert "replay stalled" in text
        assert "stalled" in text and "P0" in text
        assert "[0]" in text  # the blocking predecessor, by name


class TestEventCountPins:
    """The event loop emits exactly one FINISH per task and one ARRIVAL
    per cross-processor edge — pinned so refactors of the re-entry
    points cannot silently double-process events."""

    @pytest.mark.parametrize("alg", ["HLFET", "MCP", "ETF"])
    def test_event_counts_on_golden_corpus(self, alg):
        from differential_corpus import build_machine, corpus_graphs

        for graph in list(corpus_graphs())[:10]:
            machine = build_machine("p4", graph)
            sched = get_scheduler(alg).schedule(graph, machine)
            res = simulate(sched)
            cross = sum(1 for u, v, _ in graph.edges()
                        if sched.proc_of(u) != sched.proc_of(v))
            assert res.num_events == graph.num_nodes + cross, graph.name

"""Differential proof: the absorbed fixed-order executor is unchanged.

``algorithms/apn/netsim.py`` is now a thin wrapper over
``repro.sim.netmodel.execute_fixed_order``.  This module pins the move
two ways:

1. a **reference copy** of the historical netsim loop (kept verbatim
   here, independent of the production code) must produce identical
   timings — placements *and* message schedules — on every small golden
   corpus graph, for per-processor sequences drawn from real APN runs;
2. the wrapper must hand back exactly what the sim implementation does.

(The golden corpus JSON files additionally pin BU/BSA end-to-end, since
both schedulers time through this executor.)
"""

import pytest

import differential_corpus as dc
from repro import NetworkMachine, Topology, get_scheduler
from repro.algorithms.apn.netsim import simulate_on_network
from repro.core.schedule import Schedule
from repro.network.contention import LinkSchedule
from repro.sim import execute_fixed_order


def _reference_fixed_order(graph, topology, sequences):
    """The pre-refactor netsim loop, preserved as the reference."""
    n = graph.num_nodes
    proc_of, pos = {}, {}
    for p, seq in enumerate(sequences):
        for i, node in enumerate(seq):
            proc_of[node] = p
            pos[node] = i
    links = LinkSchedule(topology)
    schedule = Schedule(graph, topology.num_procs)
    remaining = [graph.in_degree(i) for i in range(n)]
    next_slot = [0] * len(sequences)
    ready = [i for i in range(n) if remaining[i] == 0]
    placed = 0
    while placed < n:
        new_ready = []
        for node in sorted(ready):
            p = proc_of[node]
            if pos[node] != next_slot[p]:
                continue
            arrival = 0.0
            parents = sorted(
                graph.predecessors(node),
                key=lambda q: (schedule.finish_of(q), q),
            )
            for parent in parents:
                cost = graph.comm_cost(parent, node)
                src = proc_of[parent]
                if src == p:
                    arr = schedule.finish_of(parent)
                else:
                    msg = links.commit(parent, node, src, p,
                                       schedule.finish_of(parent), cost)
                    schedule.record_message(msg)
                    arr = msg.arrival
                arrival = max(arrival, arr)
            schedule.place(node, p, max(schedule.proc_ready_time(p),
                                        arrival))
            ready.remove(node)
            next_slot[p] += 1
            placed += 1
            for child in graph.successors(node):
                remaining[child] -= 1
                if remaining[child] == 0:
                    new_ready.append(child)
        ready.extend(new_ready)
    return schedule


def _small_corpus():
    return [g for g in dc.corpus_graphs()
            if g.num_nodes <= dc.APN_MAX_NODES]


def _sequences_from(schedule, num_procs):
    return [[pl.node for pl in schedule.tasks_on(p)]
            for p in range(num_procs)]


@pytest.mark.parametrize("alg", ["MH", "BSA"])
def test_identical_timings_on_golden_corpus(alg):
    topo = Topology.hypercube(2)
    for graph in _small_corpus():
        planned = get_scheduler(alg).schedule(graph, NetworkMachine(topo))
        sequences = _sequences_from(planned, topo.num_procs)
        ours = execute_fixed_order(graph, topo, sequences)
        ref = _reference_fixed_order(graph, topo, sequences)
        assert ours.to_dict() == ref.to_dict(), graph.name
        assert set(ours.messages) == set(ref.messages)
        for key, msg in ours.messages.items():
            other = ref.messages[key]
            assert msg.arrival == pytest.approx(other.arrival)
            assert msg.hops == other.hops
            assert msg.route == other.route


def test_wrapper_delegates_verbatim():
    graph = _small_corpus()[0]
    topo = Topology.hypercube(2)
    planned = get_scheduler("MH").schedule(graph, NetworkMachine(topo))
    sequences = _sequences_from(planned, topo.num_procs)
    assert (simulate_on_network(graph, topo, sequences).to_dict()
            == execute_fixed_order(graph, topo, sequences).to_dict())

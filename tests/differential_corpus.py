"""Differential-testing corpus: graphs, machines, and run plumbing.

The flat-array scheduling kernel is a semantics-preserving rewrite of
every scheduler's inner loop; the proof obligation is discharged by a
*golden corpus*: ~40 deterministic graphs spanning the paper's families
(PSG, RGBOS, RGNOS, traced) and the CCR extremes, scheduled by every
algorithm on every applicable machine model, with the full schedules —
placement for placement, not just lengths — pinned as JSON under
``tests/golden/``.

Lives in its own importable module (not ``conftest.py``) for the same
reason as :mod:`strategies`: pytest puts every conftest directory on
``sys.path``, so only an unambiguous module name imports reliably.

Regenerate the goldens (after an *intentional* behaviour change only —
review the diff consciously) with::

    PYTHONPATH=src:tests python -m differential_corpus

Verify that the committed goldens still match the live kernel — the
CI ``golden-sync`` job — with::

    PYTHONPATH=src:tests python -m differential_corpus --check
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Tuple

from repro import Machine, NetworkMachine, Topology, get_scheduler
from repro.core.graph import TaskGraph
from repro.generators.psg import peer_set_graphs
from repro.generators.random_graphs import rgbos_graph, rgnos_graph
from repro.generators.traced import (
    cholesky_graph,
    fft_graph,
    gaussian_elimination_graph,
    laplace_graph,
)

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

BNP_ALGOS = ("HLFET", "ISH", "MCP", "ETF", "DLS", "LAST")
UNC_ALGOS = ("EZ", "LC", "DSC", "MD", "DCP")
APN_ALGOS = ("MH", "DLS-APN", "BU", "BSA")

# APN schedulers walk a network simulation per message; keep them to the
# small end of the corpus so tier-1 stays fast.
APN_MAX_NODES = 20
# Heterogeneous speeds exercise the min-EFT processor choice; a mid-size
# cap keeps the config distinct without doubling the corpus runtime.
HET_MAX_NODES = 40


def corpus_graphs() -> List[TaskGraph]:
    """The ~40 corpus graphs, deterministic and name-unique."""
    graphs: List[TaskGraph] = []
    graphs.extend(peer_set_graphs())
    # RGBOS-style random graphs at the CCR extremes and the middle.
    for v in (16, 24, 32):
        for ccr in (0.1, 1.0, 10.0):
            graphs.append(rgbos_graph(v, ccr, seed=9000 + 10 * v + int(ccr)))
    # RGNOS: size x CCR x parallelism spread.
    for v, ccr, par in (
        (30, 0.1, 2), (30, 1.0, 2), (30, 10.0, 2),
        (30, 1.0, 5), (50, 0.1, 3), (50, 1.0, 3),
        (50, 10.0, 3), (50, 1.0, 5), (60, 1.0, 2),
        (60, 10.0, 5),
    ):
        graphs.append(
            rgnos_graph(v, ccr, par, seed=7000 + v + int(10 * ccr) + par))
    # Traced application graphs at low and high CCR.
    for ccr in (0.5, 5.0):
        graphs.append(cholesky_graph(5, ccr))
        graphs.append(gaussian_elimination_graph(5, ccr))
        graphs.append(fft_graph(3, ccr))
        graphs.append(laplace_graph(4, 4, ccr=ccr))
    names = [_graph_key(g) for g in graphs]
    assert len(set(names)) == len(names), "corpus graph keys must be unique"
    return graphs


def _graph_key(graph: TaskGraph) -> str:
    """Filesystem-safe unique key for one corpus graph."""
    key = graph.name.replace("/", "-").replace(" ", "_")
    return f"{key}-v{graph.num_nodes}-e{graph.num_edges}"


def corpus_cases(graph: TaskGraph) -> List[Tuple[str, str]]:
    """``(algorithm, machine-tag)`` pairs to pin for ``graph``."""
    cases: List[Tuple[str, str]] = []
    for alg in BNP_ALGOS:
        cases.append((alg, "unb"))
        cases.append((alg, "p4"))
        if graph.num_nodes <= HET_MAX_NODES:
            cases.append((alg, "het3"))
    for alg in UNC_ALGOS:
        cases.append((alg, "unb"))
    if graph.num_nodes <= APN_MAX_NODES:
        for alg in APN_ALGOS:
            cases.append((alg, "hcube4"))
    return cases


def build_machine(tag: str, graph: TaskGraph):
    if tag == "unb":
        return Machine.unbounded(graph)
    if tag == "p4":
        return Machine(4)
    if tag == "het3":
        return Machine(3, speeds=[1.0, 2.0, 4.0])
    if tag == "hcube4":
        return NetworkMachine(Topology.hypercube(2))
    raise ValueError(f"unknown machine tag {tag!r}")


def run_case(graph: TaskGraph, alg: str, machine_tag: str) -> Dict:
    """One schedule, rendered to the JSON-stable golden form."""
    schedule = get_scheduler(alg).schedule(graph, build_machine(machine_tag,
                                                               graph))
    placements = {
        str(node): [proc, start, finish]
        for node, (proc, start, finish) in sorted(schedule.to_dict().items())
    }
    return {"length": schedule.length, "placements": placements}


def golden_path(graph: TaskGraph) -> str:
    return os.path.join(GOLDEN_DIR, _graph_key(graph) + ".json")


def _corpus_document(graph: TaskGraph) -> Dict:
    """The golden document for one corpus graph, freshly computed."""
    return {
        "graph": {"name": graph.name, "nodes": graph.num_nodes,
                  "edges": graph.num_edges},
        "cases": {
            f"{alg}@{tag}": run_case(graph, alg, tag)
            for alg, tag in corpus_cases(graph)
        },
    }


def generate() -> None:  # pragma: no cover - developer/regen tool
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    for graph in corpus_graphs():
        doc = _corpus_document(graph)
        path = golden_path(graph)
        with open(path, "w") as fh:
            json.dump(doc, fh, indent=None, separators=(",", ":"),
                      sort_keys=True)
            fh.write("\n")
        print(f"wrote {path} ({len(doc['cases'])} cases)")


def check() -> int:
    """Verify the committed goldens against the live kernel.

    Recomputes every corpus case and compares it to ``tests/golden/``;
    prints one line per drifted or missing file and returns the number
    of problems (0 = in sync).  This is what the CI ``golden-sync``
    job runs: a kernel change that shifts any schedule fails CI until
    the goldens are regenerated — and reviewed — deliberately.
    """
    problems = 0
    graphs = corpus_graphs()
    for graph in graphs:
        path = golden_path(graph)
        if not os.path.exists(path):
            print(f"MISSING {path}")
            problems += 1
            continue
        with open(path) as fh:
            committed = json.load(fh)
        current = _corpus_document(graph)
        if committed == current:
            continue
        problems += 1
        drifted = sorted(
            case for case in set(committed["cases"]) | set(current["cases"])
            if committed["cases"].get(case) != current["cases"].get(case)
        )
        print(f"DRIFT   {path}: {len(drifted)} case(s) differ "
              f"({', '.join(drifted[:4])}"
              f"{', ...' if len(drifted) > 4 else ''})")
    if problems:
        print(f"\n{problems} golden file(s) out of sync with the kernel; "
              "regenerate with 'python -m differential_corpus' and "
              "review the diff", file=sys.stderr)
    else:
        print(f"all {len(graphs)} golden files in sync with the kernel")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate (default) or --check the golden "
                    "differential corpus under tests/golden/.")
    parser.add_argument("--check", action="store_true",
                        help="verify the committed goldens against the "
                             "live kernel instead of rewriting them; "
                             "exit 1 on drift")
    args = parser.parse_args(argv)
    if args.check:
        return 1 if check() else 0
    generate()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

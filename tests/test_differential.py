"""Differential harness: every algorithm vs. the pinned golden corpus.

Unlike :mod:`test_golden` (three graphs, lengths only), this asserts
*schedule-for-schedule* equality — processor, start and finish of every
task — for every algorithm over the ~40-graph corpus defined in
:mod:`differential_corpus`.  It is the safety net that proves the
flat-array kernel rewrite preserved the semantics of every scheduler's
inner loop.

A failure means the scheduler produced a *different schedule* than the
committed corpus.  That is only acceptable for an intentional algorithm
change; regenerate with::

    PYTHONPATH=src:tests python -m differential_corpus

and review the golden diff consciously before committing it.
"""

from __future__ import annotations

import json
import os

import pytest

from differential_corpus import (
    corpus_cases,
    corpus_graphs,
    golden_path,
    run_case,
)

_GRAPHS = corpus_graphs()


def _load(graph):
    path = golden_path(graph)
    if not os.path.exists(path):
        pytest.fail(
            f"missing golden file {path}; regenerate the corpus with "
            "`PYTHONPATH=src:tests python -m differential_corpus`"
        )
    with open(path) as fh:
        return json.load(fh)


@pytest.mark.parametrize("graph", _GRAPHS, ids=[g.name for g in _GRAPHS])
def test_schedules_match_golden_corpus(graph):
    doc = _load(graph)
    expected_cases = doc["cases"]
    actual_keys = {f"{alg}@{tag}" for alg, tag in corpus_cases(graph)}
    # The corpus definition and the committed goldens must agree on the
    # case list, else a silently-skipped algorithm loses its coverage.
    assert actual_keys == set(expected_cases), (
        "corpus case list drifted from the golden file; regenerate"
    )
    mismatches = []
    for alg, tag in corpus_cases(graph):
        key = f"{alg}@{tag}"
        got = run_case(graph, alg, tag)
        want = expected_cases[key]
        if got["length"] != pytest.approx(want["length"], abs=1e-9):
            mismatches.append(
                f"{key}: length {got['length']} != {want['length']}")
            continue
        if set(got["placements"]) != set(want["placements"]):
            mismatches.append(f"{key}: scheduled node set differs")
            continue
        for node, (proc, start, finish) in got["placements"].items():
            wproc, wstart, wfinish = want["placements"][node]
            if (proc != wproc or abs(start - wstart) > 1e-9
                    or abs(finish - wfinish) > 1e-9):
                mismatches.append(
                    f"{key}: node {node} placed (P{proc}, {start}, {finish})"
                    f" vs golden (P{wproc}, {wstart}, {wfinish})"
                )
                break
    assert not mismatches, (
        "schedules diverged from the golden corpus:\n  "
        + "\n  ".join(mismatches)
    )


def test_every_corpus_graph_has_a_golden_file():
    missing = [g.name for g in _GRAPHS if not os.path.exists(golden_path(g))]
    assert not missing, f"graphs without goldens: {missing}"

"""Differential harness: every algorithm vs. the pinned golden corpus.

Unlike :mod:`test_golden` (three graphs, lengths only), this asserts
*schedule-for-schedule* equality — processor, start and finish of every
task — for every algorithm over the ~40-graph corpus defined in
:mod:`differential_corpus`.  It is the safety net that proves the
flat-array kernel rewrite preserved the semantics of every scheduler's
inner loop.

A failure means the scheduler produced a *different schedule* than the
committed corpus.  That is only acceptable for an intentional algorithm
change; regenerate with::

    PYTHONPATH=src:tests python -m differential_corpus

and review the golden diff consciously before committing it.
"""

from __future__ import annotations

import json
import os

import pytest

from differential_corpus import (
    corpus_cases,
    corpus_graphs,
    golden_path,
    run_case,
)

_GRAPHS = corpus_graphs()


def _load(graph):
    path = golden_path(graph)
    if not os.path.exists(path):
        pytest.fail(
            f"missing golden file {path}; regenerate the corpus with "
            "`PYTHONPATH=src:tests python -m differential_corpus`"
        )
    with open(path) as fh:
        return json.load(fh)


@pytest.mark.parametrize("graph", _GRAPHS, ids=[g.name for g in _GRAPHS])
def test_schedules_match_golden_corpus(graph):
    doc = _load(graph)
    expected_cases = doc["cases"]
    actual_keys = {f"{alg}@{tag}" for alg, tag in corpus_cases(graph)}
    # The corpus definition and the committed goldens must agree on the
    # case list, else a silently-skipped algorithm loses its coverage.
    assert actual_keys == set(expected_cases), (
        "corpus case list drifted from the golden file; regenerate"
    )
    mismatches = []
    for alg, tag in corpus_cases(graph):
        key = f"{alg}@{tag}"
        got = run_case(graph, alg, tag)
        want = expected_cases[key]
        if got["length"] != pytest.approx(want["length"], abs=1e-9):
            mismatches.append(
                f"{key}: length {got['length']} != {want['length']}")
            continue
        if set(got["placements"]) != set(want["placements"]):
            mismatches.append(f"{key}: scheduled node set differs")
            continue
        for node, (proc, start, finish) in got["placements"].items():
            wproc, wstart, wfinish = want["placements"][node]
            if (proc != wproc or abs(start - wstart) > 1e-9
                    or abs(finish - wfinish) > 1e-9):
                mismatches.append(
                    f"{key}: node {node} placed (P{proc}, {start}, {finish})"
                    f" vs golden (P{wproc}, {wstart}, {wfinish})"
                )
                break
    assert not mismatches, (
        "schedules diverged from the golden corpus:\n  "
        + "\n  ".join(mismatches)
    )


def test_every_corpus_graph_has_a_golden_file():
    missing = [g.name for g in _GRAPHS if not os.path.exists(golden_path(g))]
    assert not missing, f"graphs without goldens: {missing}"


class TestCheckMode:
    """The CI golden-sync gate: ``python -m differential_corpus --check``.

    The corpus is shrunk to its two smallest graphs here: the full
    recomputation already happens per graph in
    ``test_schedules_match_golden_corpus`` above (and once more in the
    dedicated CI ``golden-sync`` job), so these tests only need to
    exercise the check/drift/missing *reporting* paths cheaply.
    """

    @pytest.fixture(autouse=True)
    def small_corpus(self, monkeypatch):
        import differential_corpus as dc

        subset = sorted(_GRAPHS, key=lambda g: g.num_nodes)[:2]
        monkeypatch.setattr(dc, "corpus_graphs", lambda: subset)
        return subset

    def test_check_passes_on_committed_goldens(self, capsys):
        import differential_corpus as dc

        assert dc.main(["--check"]) == 0
        assert "in sync" in capsys.readouterr().out

    def test_check_fails_on_drift(self, capsys, monkeypatch, tmp_path,
                                  small_corpus):
        import shutil

        import differential_corpus as dc

        # Copy the goldens, corrupt one case, point the checker at it.
        golden_copy = tmp_path / "golden"
        golden_copy.mkdir()
        for graph in small_corpus:
            shutil.copy(dc.golden_path(graph), golden_copy)
        monkeypatch.setattr(dc, "GOLDEN_DIR", str(golden_copy))
        victim = dc.golden_path(small_corpus[0])
        doc = json.loads(open(victim).read())
        case = sorted(doc["cases"])[0]
        doc["cases"][case]["length"] += 1.0
        with open(victim, "w") as fh:
            fh.write(json.dumps(doc))

        assert dc.main(["--check"]) == 1
        captured = capsys.readouterr()
        assert "DRIFT" in captured.out
        assert "out of sync" in captured.err

    def test_check_fails_on_missing_file(self, capsys, monkeypatch,
                                         tmp_path):
        import differential_corpus as dc

        monkeypatch.setattr(dc, "GOLDEN_DIR", str(tmp_path / "empty"))
        assert dc.main(["--check"]) == 1
        assert "MISSING" in capsys.readouterr().out

"""Unit tests for machine models."""

import pytest

from repro import Machine, MachineError, NetworkMachine, TaskGraph, Topology


class TestMachine:
    def test_basic(self):
        m = Machine(4)
        assert m.num_procs == 4
        assert not m.contention_aware

    def test_zero_procs_rejected(self):
        with pytest.raises(MachineError):
            Machine(0)

    def test_unbounded_from_graph(self):
        g = TaskGraph([1.0] * 7, {})
        m = Machine.unbounded(g)
        assert m.num_procs == 7

    def test_unbounded_from_int(self):
        assert Machine.unbounded(12).num_procs == 12

    def test_comm_delay(self):
        m = Machine(2)
        assert m.comm_delay(0, 0, 9.0) == 0.0
        assert m.comm_delay(0, 1, 9.0) == 9.0


class TestNetworkMachine:
    def test_wraps_topology(self):
        nm = NetworkMachine(Topology.ring(4))
        assert nm.num_procs == 4
        assert nm.contention_aware

    def test_comm_delay_counts_hops(self):
        nm = NetworkMachine(Topology.ring(4))
        assert nm.comm_delay(0, 0, 5.0) == 0.0
        assert nm.comm_delay(0, 1, 5.0) == 5.0
        assert nm.comm_delay(0, 2, 5.0) == 10.0  # two hops on a 4-ring

    def test_apn_scheduler_requires_network(self):
        from repro import get_scheduler

        g = TaskGraph([1.0, 1.0], {(0, 1): 1.0})
        with pytest.raises(TypeError):
            get_scheduler("BSA").schedule(g, Machine(2))

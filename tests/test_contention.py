"""Unit tests for link contention (LinkSchedule)."""

import pytest

from repro import LinkSchedule, ScheduleError, Topology


@pytest.fixture
def chain3():
    return LinkSchedule(Topology.chain(3))


class TestProbe:
    def test_same_proc_instant(self, chain3):
        assert chain3.probe_arrival(1, 1, 5.0, 10.0) == 5.0

    def test_zero_cost_instant(self, chain3):
        assert chain3.probe_arrival(0, 2, 5.0, 0.0) == 5.0

    def test_single_hop(self, chain3):
        assert chain3.probe_arrival(0, 1, 2.0, 3.0) == 5.0

    def test_multi_hop_store_and_forward(self, chain3):
        # 0 -> 1 -> 2, cost 3 per hop: 2 + 3 + 3.
        assert chain3.probe_arrival(0, 2, 2.0, 3.0) == 8.0

    def test_probe_does_not_commit(self, chain3):
        a1 = chain3.probe_arrival(0, 1, 0.0, 4.0)
        a2 = chain3.probe_arrival(0, 1, 0.0, 4.0)
        assert a1 == a2 == 4.0


class TestCommit:
    def test_commit_reserves(self, chain3):
        m1 = chain3.commit(10, 11, 0, 1, 0.0, 4.0)
        assert m1.arrival == 4.0
        # Second message on the same channel must wait.
        m2 = chain3.commit(12, 13, 0, 1, 0.0, 4.0)
        assert m2.arrival == 8.0

    def test_opposite_channels_independent(self, chain3):
        chain3.commit(1, 2, 0, 1, 0.0, 4.0)
        m = chain3.commit(3, 4, 1, 0, 0.0, 4.0)
        assert m.arrival == 4.0  # full duplex

    def test_insertion_into_gap(self, chain3):
        chain3.commit(1, 2, 0, 1, 10.0, 4.0)  # [10, 14)
        m = chain3.commit(3, 4, 0, 1, 0.0, 4.0)
        assert m.arrival == 4.0  # fits before

    def test_message_record_fields(self, chain3):
        m = chain3.commit(7, 8, 0, 2, 1.0, 2.0)
        assert m.src == 7 and m.dst == 8
        assert m.route == (0, 1, 2)
        assert len(m.hops) == 2
        assert m.hops[0][0] == (0, 1)
        assert m.hops[1][0] == (1, 2)

    def test_same_proc_no_hops(self, chain3):
        m = chain3.commit(7, 8, 1, 1, 3.0, 5.0)
        assert m.hops == []
        assert m.arrival == 3.0

    def test_release_frees_channel(self, chain3):
        m = chain3.commit(1, 2, 0, 1, 0.0, 4.0)
        chain3.release(m)
        m2 = chain3.commit(3, 4, 0, 1, 0.0, 4.0)
        assert m2.arrival == 4.0

    def test_release_unknown_fails(self, chain3):
        m = chain3.commit(1, 2, 0, 1, 0.0, 4.0)
        chain3.release(m)
        with pytest.raises(ScheduleError):
            chain3.release(m)

    def test_busy_time(self, chain3):
        assert chain3.busy_time() == 0.0
        chain3.commit(1, 2, 0, 2, 0.0, 3.0)  # 2 hops x 3
        assert chain3.busy_time() == 6.0


class TestContentionEffects:
    def test_contention_serialises(self):
        links = LinkSchedule(Topology.chain(2))
        arrivals = [links.commit(i, 100 + i, 0, 1, 0.0, 5.0).arrival
                    for i in range(4)]
        assert arrivals == [5.0, 10.0, 15.0, 20.0]

    def test_hop_pipeline_ordering(self):
        links = LinkSchedule(Topology.chain(3))
        m = links.commit(1, 2, 0, 2, 0.0, 5.0)
        (l1, s1, f1), (l2, s2, f2) = m.hops
        assert f1 <= s2  # store and forward: second hop after first

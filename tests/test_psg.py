"""Tests for the peer set graph suite."""

import pytest

from repro.generators.psg import (
    dsc_style_7,
    fork_join_13,
    kwok_ahmad_9,
    peer_set_graphs,
)


class TestKwokAhmad9:
    def test_exact_structure(self):
        g = kwok_ahmad_9()
        assert g.num_nodes == 9
        assert g.num_edges == 12
        assert g.weights.tolist() == [2, 3, 3, 4, 5, 4, 4, 4, 1]
        assert g.comm_cost(0, 5) == 10.0
        assert g.comm_cost(7, 8) == 10.0
        assert g.entry_nodes == (0,)
        assert g.exit_nodes == (8,)


class TestSuite:
    def test_count(self):
        assert len(peer_set_graphs()) >= 10

    def test_names_unique(self):
        names = [g.name for g in peer_set_graphs()]
        assert len(names) == len(set(names))

    def test_all_small(self):
        for g in peer_set_graphs():
            assert 5 <= g.num_nodes <= 20, g.name

    def test_all_have_edges(self):
        for g in peer_set_graphs():
            assert g.num_edges > 0, g.name

    def test_deterministic(self):
        a = [g.edges() for g in peer_set_graphs()]
        b = [g.edges() for g in peer_set_graphs()]
        assert a == b

    def test_structural_diversity(self):
        """The paper demands diverse structures: the suite must span
        single-chain-like and wide graphs, trees and non-trees."""
        graphs = peer_set_graphs()
        widths = [g.width() for g in graphs]
        depths = [g.depth() for g in graphs]
        assert max(widths) >= 4
        assert max(depths) >= 4
        multi_entry = sum(1 for g in graphs if len(g.entry_nodes) > 1)
        single_entry = sum(1 for g in graphs if len(g.entry_nodes) == 1)
        assert multi_entry >= 1 and single_entry >= 1


class TestIndividualShapes:
    def test_dsc_style(self):
        g = dsc_style_7()
        assert g.num_nodes == 7
        assert g.exit_nodes == (6,)

    def test_fork_join(self):
        g = fork_join_13()
        assert len(g.entry_nodes) == 1
        assert len(g.exit_nodes) == 1
        assert g.width() >= 5

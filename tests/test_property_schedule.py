"""Property tests for Schedule mutation invariants and metrics algebra."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Machine, Schedule, get_scheduler
from repro.metrics import efficiency, nsl, speedup

from strategies import task_graphs

FAST = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestUnplaceInvariants:
    @given(g=task_graphs(min_nodes=4, max_nodes=12))
    @FAST
    def test_unplace_restores_state(self, g):
        """Placing then unplacing a node leaves the schedule exactly as
        it was (the invariant BSA-style migration relies on)."""
        sched = get_scheduler("MCP").schedule(g, Machine(3))
        before = sched.to_dict()
        length_before = sched.length
        victim = max(g.nodes(), key=lambda n: sched.start_of(n))
        pl = sched.unplace(victim)
        assert not sched.is_scheduled(victim)
        sched.place(victim, pl.proc, pl.start)
        assert sched.to_dict() == before
        assert sched.length == pytest.approx(length_before)

    @given(g=task_graphs(min_nodes=4, max_nodes=12))
    @FAST
    def test_length_monotone_in_placements(self, g):
        """Makespan never decreases as placements accumulate."""
        order = list(g.topological_order)
        sched = Schedule(g, 2)
        prev = 0.0
        for node in order:
            drt = sched.data_ready_time(node, 0)
            start = max(sched.proc_ready_time(0), drt)
            sched.place(node, 0, start)
            assert sched.length >= prev - 1e-12
            prev = sched.length


class TestMetricsAlgebra:
    @given(g=task_graphs(min_nodes=3, max_nodes=12),
           procs=st.integers(1, 4))
    @FAST
    def test_speedup_efficiency_relations(self, g, procs):
        sched = get_scheduler("MCP").schedule(g, Machine(procs))
        s = speedup(sched)
        e = efficiency(sched)
        used = sched.processors_used()
        assert 0 < s <= used + 1e-9   # can't beat the used parallelism
        assert e == pytest.approx(s / used)
        assert e <= 1.0 + 1e-9

    @given(g=task_graphs(min_nodes=3, max_nodes=12))
    @FAST
    def test_nsl_at_least_one(self, g):
        sched = get_scheduler("MCP").schedule(g, Machine(2))
        assert nsl(sched) >= 1.0 - 1e-9

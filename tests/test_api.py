"""Facade tests: ``repro.api`` adapters, fingerprints and entry points.

The load-bearing property is the cache contract of the scheduling
service: equal :func:`repro.api.request_key` values must imply
bit-identical schedules — that is what lets the service answer a
request from the cache without re-running the scheduler.  Hypothesis
drives it over random DAGs and over representationally different but
content-equal graph inputs (TaskGraph vs mapping vs STG round-trip).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from strategies import task_graphs

from repro import GraphError, Machine, MachineError, TaskGraph, api
from repro.io.stg import dumps_stg

_SPECS = ["mcp", "DLS", "hlfet", "param:prio=blevel,proc=est"]


def _mapping_of(graph: TaskGraph) -> dict:
    return {
        "weights": [float(w) for w in graph.weights],
        "edges": [[int(u), int(v), float(c)] for u, v, c in graph.edges()],
        "name": graph.name,
    }


# ----------------------------------------------------------------------
# adapters
# ----------------------------------------------------------------------
class TestAdapters:
    def test_as_graph_passthrough(self):
        g = TaskGraph([1.0, 2.0], {(0, 1): 3.0})
        assert api.as_graph(g) is g

    def test_as_graph_mapping_and_stg_agree(self):
        g = TaskGraph([1.0, 2.0, 3.0], {(0, 1): 3.0, (0, 2): 1.0},
                      name="tri")
        from_map = api.as_graph(_mapping_of(g))
        from_stg = api.as_graph(dumps_stg(g))
        assert from_map.fingerprint() == g.fingerprint()
        assert from_stg.fingerprint() == g.fingerprint()

    @pytest.mark.parametrize("bad", [
        {"edges": [[0, 1, 1.0]]},                      # no weights
        {"weights": [1.0, "x"]},                        # non-numeric
        {"weights": [1.0, 2.0], "edges": [[0, 1]]},     # not a triple
        42,
    ])
    def test_as_graph_rejects_malformed(self, bad):
        with pytest.raises(GraphError):
            api.as_graph(bad)

    def test_as_machine_forms(self):
        g = TaskGraph([1.0, 2.0], {(0, 1): 1.0})
        assert api.as_machine(None, g).num_procs >= g.num_nodes
        assert api.as_machine(3, g).num_procs == 3
        m = api.as_machine({"procs": 2, "speeds": [1.0, 2.0]}, g)
        assert m.num_procs == 2 and m.speeds is not None
        existing = Machine(5)
        assert api.as_machine(existing, g) is existing

    def test_as_machine_rejects_malformed(self):
        g = TaskGraph([1.0], {})
        with pytest.raises(MachineError):
            api.as_machine({"procs": "many"}, g)
        with pytest.raises(MachineError):
            api.as_machine(object(), g)


# ----------------------------------------------------------------------
# fingerprints and the cache contract
# ----------------------------------------------------------------------
class TestFingerprints:
    def test_spec_fingerprint_canonicalizes(self):
        assert api.spec_fingerprint("mcp") == api.spec_fingerprint("MCP")
        assert (api.spec_fingerprint("param:prio=blevel,proc=est")
                == api.spec_fingerprint("param:proc=est,prio=blevel"))

    def test_machine_fingerprint_separates_models(self):
        g = TaskGraph([1.0, 2.0], {(0, 1): 1.0})
        fps = {api.machine_fingerprint(api.as_machine(src, g))
               for src in (2, 3, {"procs": 2, "speeds": [1.0, 0.5]})}
        assert len(fps) == 3

    def test_graph_name_does_not_change_key(self):
        a = TaskGraph([1.0, 2.0], {(0, 1): 2.0}, name="alpha")
        b = TaskGraph([1.0, 2.0], {(0, 1): 2.0}, name="beta")
        assert api.request_key(a, 2, "mcp") == api.request_key(b, 2, "mcp")

    @settings(max_examples=25, deadline=None)
    @given(graph=task_graphs(max_nodes=10),
           spec=st.sampled_from(_SPECS),
           procs=st.integers(1, 4))
    def test_equal_keys_imply_identical_schedules(self, graph, spec,
                                                  procs):
        """The service-cache invariant: same request_key, same bits.

        The second request presents the *same content* through a
        different representation (the JSON-style mapping the HTTP
        service receives); its key must match and its schedule must be
        placement-for-placement identical.
        """
        other = _mapping_of(graph)
        key_a = api.request_key(graph, procs, spec)
        key_b = api.request_key(other, procs, spec)
        assert key_a == key_b
        sched_a = api.schedule(graph, procs, spec)
        sched_b = api.schedule(other, procs, spec)
        assert sched_a.to_dict() == sched_b.to_dict()
        assert sched_a.length == sched_b.length

    @settings(max_examples=15, deadline=None)
    @given(graph=task_graphs(max_nodes=10))
    def test_stg_round_trip_preserves_key(self, graph):
        text = dumps_stg(graph)
        assert (api.request_key(text, 2, "mcp")
                == api.request_key(graph, 2, "mcp"))


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
class TestEntryPoints:
    def test_schedule_is_validated_and_deterministic(self):
        body = {"weights": [2.0, 3.0, 4.0, 1.0],
                "edges": [[0, 1, 4.0], [0, 2, 1.0], [1, 3, 1.0],
                          [2, 3, 5.0]]}
        s1 = api.schedule(body, 2, "mcp")
        s2 = api.schedule(body, 2, "mcp")
        assert s1.to_dict() == s2.to_dict()
        assert s1.length > 0

    def test_schedule_unknown_spec_raises(self):
        with pytest.raises(KeyError, match="unknown scheduler"):
            api.schedule({"weights": [1.0]}, 1, "NOPE")

    def test_simulate_exact_replay_matches_prediction(self):
        g = TaskGraph([2.0, 3.0, 4.0], {(0, 1): 1.0, (0, 2): 2.0})
        row = api.simulate(g, 2, "mcp", noise="none:0", trials=3)
        predicted = api.schedule(g, 2, "mcp").length
        assert row.predicted == pytest.approx(predicted)
        assert row.mean == pytest.approx(predicted)

    def test_simulate_rejects_bad_noise(self):
        g = TaskGraph([1.0, 2.0], {(0, 1): 1.0})
        with pytest.raises(ValueError, match="bad noise spec"):
            api.simulate(g, 2, "mcp", noise="sideways:9")

    def test_rank_orders_specs_best_first(self):
        g = TaskGraph([2.0, 3.0, 3.0, 4.0, 5.0, 4.0, 4.0, 4.0, 1.0],
                      {(0, 1): 4.0, (0, 2): 1.0, (0, 3): 1.0,
                       (0, 4): 1.0, (0, 5): 10.0, (1, 6): 1.0,
                       (2, 6): 1.0, (3, 7): 1.0, (4, 7): 1.0,
                       (5, 8): 5.0, (6, 8): 5.0, (7, 8): 10.0},
                      name="kwok-ahmad-9")
        table = api.rank(g, 3, specs=("MCP", "DLS", "HLFET"))
        assert [set(r) for r in table] == [
            {"spec", "avg_rank", "mean_nsl", "wins"}] * 3
        ranks = [r["avg_rank"] for r in table]
        assert ranks == sorted(ranks)

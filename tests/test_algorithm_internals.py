"""White-box tests of algorithm-specific machinery.

Each scheduling algorithm's distinguishing mechanism is pinned down on a
hand-sized instance where the expected decision is checkable by hand —
priority lists, mobility, AEST/ALST, CPN-dominant sequences.
"""

import pytest

from repro import Machine, TaskGraph
from repro.algorithms.apn.bsa import cpn_dominant_list
from repro.algorithms.bnp.mcp import _descendant_alap_lists
from repro.algorithms.unc.lc import LC
from repro.algorithms.unc.md import MD
from repro.core.attributes import alap, blevel, tlevel


@pytest.fixture
def wgraph():
    """0 -> 1 -> 3, 0 -> 2 -> 3; CP through node 2 (heavier)."""
    return TaskGraph(
        [1.0, 2.0, 4.0, 1.0],
        {(0, 1): 3.0, (0, 2): 1.0, (1, 3): 2.0, (2, 3): 5.0},
        name="w",
    )


class TestMCPInternals:
    def test_descendant_alap_lists(self, wgraph):
        al = alap(wgraph)
        lists = _descendant_alap_lists(wgraph, al)
        # Exit node: only its own ALAP.
        assert lists[3] == [al[3]]
        # Node 1's list: own + node 3's.
        assert lists[1] == sorted([al[1], al[3]])
        # Root carries everything.
        assert len(lists[0]) == 4

    def test_lex_order_parents_first(self, wgraph):
        al = alap(wgraph)
        lists = _descendant_alap_lists(wgraph, al)
        order = sorted(wgraph.nodes(), key=lambda n: (lists[n], n))
        pos = {n: i for i, n in enumerate(order)}
        for u, v, _ in wgraph.edges():
            assert pos[u] < pos[v]

    def test_alap_values(self, wgraph):
        # CP length = 1 + 1 + 4 + 5 + 1 = 12 (via node 2).
        al = alap(wgraph)
        assert al[0] == 0.0
        assert al[2] == pytest.approx(1.0 + 1.0)
        assert al[3] == pytest.approx(11.0)


class TestLCInternals:
    def test_longest_path_full_graph(self, wgraph):
        path = LC._longest_path(wgraph, set(wgraph.nodes()))
        assert path == [0, 2, 3]

    def test_longest_path_after_removal(self, wgraph):
        path = LC._longest_path(wgraph, {1, 3})
        assert path == [1, 3]

    def test_longest_path_singleton(self, wgraph):
        assert LC._longest_path(wgraph, {1}) == [1]


class TestMDInternals:
    def test_tlevels_with_pinning(self, wgraph):
        t = MD._tlevels(wgraph, zeroed=set(), pinned={0: 5.0})
        # Node 0 pinned at 5 pushes every descendant.
        assert t[0] == 5.0
        assert t[2] == pytest.approx(5.0 + 1.0 + 1.0)

    def test_tlevels_with_zeroing(self, wgraph):
        t = MD._tlevels(wgraph, zeroed={(0, 2)}, pinned={})
        assert t[2] == pytest.approx(1.0)

    def test_blevels_with_zeroing(self, wgraph):
        b = MD._blevels(wgraph, zeroed={(2, 3)})
        assert b[2] == pytest.approx(4.0 + 1.0)

    def test_find_slot_gap(self):
        starts, fins = [0.0, 10.0], [4.0, 12.0]
        assert MD._find_slot(starts, fins, 0.0, 3.0) == 4.0
        assert MD._find_slot(starts, fins, 0.0, 7.0) == 12.0
        assert MD._find_slot([], [], 2.5, 1.0) == 2.5


class TestBSAInternals:
    def test_cpn_dominant_prefix_is_cp_closure(self, kwok9):
        """The first elements must be the CP entry and its in-branch
        ancestors; for kwok9 node 0 is the entry CPN."""
        order = cpn_dominant_list(kwok9)
        assert order[0] == 0

    def test_blevel_descending_tail(self, kwok9):
        """Out-branch nodes are appended in descending b-level order."""
        order = cpn_dominant_list(kwok9)
        b = blevel(kwok9)
        from repro.core.attributes import critical_path

        cp_and_ancestors = set(critical_path(kwok9))
        tail = [n for n in order if n not in cp_and_ancestors]
        # The tail's b-levels never increase between non-ancestor nodes
        # of the same "insertion batch"; weaker but checkable: the tail
        # is topologically valid (checked globally in test_apn).
        assert len(tail) + len(cp_and_ancestors) >= kwok9.num_nodes


class TestDSCPriorities:
    def test_priority_is_path_length(self, wgraph):
        t, b = tlevel(wgraph), blevel(wgraph)
        # Node 2 lies on the CP: t + b == CP length 12.
        assert t[2] + b[2] == pytest.approx(12.0)
        # Node 1 is off-CP: strictly smaller priority.
        assert t[1] + b[1] < 12.0


class TestEZMonotonicity:
    def test_each_accepted_merge_never_worsens(self, kwok9):
        """Replay EZ's merge loop and assert the estimated makespan is
        non-increasing after every accepted step."""
        from repro.algorithms.mapping import mapping_makespan

        prio = blevel(kwok9)
        cluster = list(kwok9.nodes())
        best = mapping_makespan(kwok9, cluster, prio)
        history = [best]
        for u, v, _c in sorted(kwok9.edges(), key=lambda t: (-t[2], t[0])):
            cu, cv = cluster[u], cluster[v]
            if cu == cv:
                continue
            trial = [cu if c == cv else c for c in cluster]
            length = mapping_makespan(kwok9, trial, prio)
            if length <= best + 1e-9:
                cluster, best = trial, length
                history.append(best)
        assert all(b <= a + 1e-9 for a, b in zip(history, history[1:]))

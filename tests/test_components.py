"""Component-model tests: spec grammar, golden pinning, properties.

The heart of the file is the golden-pinning class: each of the six
named :data:`BNP_SPECS` configurations must reproduce its hand-written
monolith *placement-for-placement* against the committed differential
corpus — the same corpus files :mod:`test_differential` holds the
monoliths to, so spec-vs-monolith equality is checked transitively
through goldens that predate the component model.  Hypothesis
properties then hold every random component combination to the model
invariants (complete, validated schedules on bounded machines).
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from differential_corpus import corpus_cases, corpus_graphs, golden_path, run_case
from strategies import task_graphs

from repro.algorithms import (
    BNP_SPECS,
    ParamScheduler,
    SchedulerSpec,
    get_scheduler,
    parse_spec,
)
from repro.algorithms.components import AXES, expand_param_grid
from repro.core.machine import Machine
from repro.core.schedule import validate

_GRAPHS = corpus_graphs()


# ----------------------------------------------------------------------
# golden pinning: six named specs == six monoliths, bit for bit
# ----------------------------------------------------------------------
@pytest.mark.parametrize("graph", _GRAPHS, ids=[g.name for g in _GRAPHS])
def test_named_specs_match_golden_corpus(graph):
    with open(golden_path(graph)) as fh:
        doc = json.load(fh)
    mismatches = []
    for alg, tag in corpus_cases(graph):
        if alg not in BNP_SPECS:
            continue
        got = run_case(graph, BNP_SPECS[alg].canonical(), tag)
        want = doc["cases"][f"{alg}@{tag}"]
        if got["length"] != pytest.approx(want["length"], abs=1e-9):
            mismatches.append(
                f"{alg}@{tag}: length {got['length']} != {want['length']}")
            continue
        if set(got["placements"]) != set(want["placements"]):
            mismatches.append(f"{alg}@{tag}: scheduled node set differs")
            continue
        for node, (proc, start, finish) in got["placements"].items():
            wproc, wstart, wfinish = want["placements"][node]
            if (proc != wproc or abs(start - wstart) > 1e-9
                    or abs(finish - wfinish) > 1e-9):
                mismatches.append(
                    f"{alg}@{tag}: node {node} placed "
                    f"(P{proc}, {start}, {finish}) vs golden "
                    f"(P{wproc}, {wstart}, {wfinish})")
                break
    assert not mismatches, (
        "component specs diverged from the monoliths' golden corpus:\n  "
        + "\n  ".join(mismatches))


def test_bnp_specs_cover_exactly_the_six_monoliths():
    assert sorted(BNP_SPECS) == ["DLS", "ETF", "HLFET", "ISH", "LAST",
                                 "MCP"]
    # Distinct designs must map to distinct coordinates.
    assert len(set(BNP_SPECS.values())) == 6
    for acro, spec in BNP_SPECS.items():
        mono = get_scheduler(acro)
        param = get_scheduler(spec.canonical())
        assert param.klass == "BNP"
        # The taxonomy flags the paper keys its analysis on must agree
        # between monolith and component spelling.
        assert param.cp_based == mono.cp_based, acro
        assert param.dynamic_priority == mono.dynamic_priority, acro
        assert param.uses_insertion == mono.uses_insertion, acro


# ----------------------------------------------------------------------
# spec grammar
# ----------------------------------------------------------------------
class TestSpecGrammar:
    def test_canonical_round_trip(self):
        spec = parse_spec("PARAM:insert=ON,prio=Alap")
        assert spec == SchedulerSpec(prio="alap", insert="on")
        assert spec.canonical() == (
            "param:prio=alap,ready=prio,proc=est,insert=on")
        assert parse_spec(spec.canonical()) == spec
        assert spec.fingerprint() == spec.canonical()

    def test_defaults_reproduce_hlfet(self):
        assert SchedulerSpec() == BNP_SPECS["HLFET"]

    def test_named_shorthands(self):
        for acro, spec in BNP_SPECS.items():
            assert parse_spec(f"param:{acro.lower()}") == spec

    def test_unknown_value_lists_the_options(self):
        with pytest.raises(ValueError, match="slevel"):
            parse_spec("param:prio=bogus")

    def test_unknown_axis_lists_the_axes(self):
        with pytest.raises(ValueError, match="prio, ready, proc, insert"):
            parse_spec("param:priority=slevel")

    def test_duplicate_axis_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            parse_spec("param:prio=slevel,prio=alap")

    def test_malformed_assignment_rejected(self):
        with pytest.raises(ValueError, match="axis=value"):
            parse_spec("param:prio")

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            parse_spec("param:")

    def test_spec_validates_fields_at_construction(self):
        with pytest.raises(ValueError, match="unknown 'proc' component"):
            SchedulerSpec(proc="bogus")

    def test_components_resolve_in_axis_order(self):
        spec = BNP_SPECS["MCP"]
        parts = spec.components()
        assert list(parts) == ["prio", "ready", "proc", "insert"]
        assert parts["prio"] is AXES["prio"]["alaplist"]


class TestExpandParamGrid:
    def test_cartesian_order_later_axes_fastest(self):
        specs = expand_param_grid({"prio": ["alap", "slevel"],
                                   "insert": ["off", "on"]})
        assert specs == [
            SchedulerSpec(prio="alap", insert="off"),
            SchedulerSpec(prio="alap", insert="on"),
            SchedulerSpec(prio="slevel", insert="off"),
            SchedulerSpec(prio="slevel", insert="on"),
        ]

    def test_values_deduplicate_case_insensitively(self):
        specs = expand_param_grid({"prio": ["alap", "ALAP", "alap"]})
        assert len(specs) == 1

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown component axis"):
            expand_param_grid({"pool": ["fifo"]})

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            expand_param_grid({"prio": []})


# ----------------------------------------------------------------------
# unified lookup API
# ----------------------------------------------------------------------
class TestLookup:
    def test_spec_spellings_share_one_memoized_instance(self):
        a = get_scheduler("param:prio=alap")
        b = get_scheduler("PARAM:proc=est,prio=ALAP,insert=off,ready=prio")
        assert a is b
        assert isinstance(a, ParamScheduler)
        assert a.name == "param:prio=alap,ready=prio,proc=est,insert=off"

    def test_registered_names_memoized(self):
        assert get_scheduler("mcp") is get_scheduler("MCP")

    def test_unknown_acronym_mentions_spec_grammar(self):
        with pytest.raises(KeyError, match="param"):
            get_scheduler("NOPE")

    def test_bad_spec_string_raises_value_error(self):
        with pytest.raises(ValueError, match="bogus"):
            get_scheduler("param:prio=bogus")

    def test_class_shim_is_retired(self):
        # The deprecated class-returning lookup is gone for good:
        # get_scheduler(name) is the one resolver (it returns
        # ready-to-call instances and also resolves specs).
        import repro.algorithms as algorithms
        from repro.algorithms import base

        assert not hasattr(base, "get_scheduler_class")
        assert not hasattr(algorithms, "get_scheduler_class")
        assert "get_scheduler_class" not in algorithms.__all__

    def test_taxonomy_flags_derive_from_components(self):
        s = get_scheduler("param:prio=alap,proc=etf,insert=on")
        assert s.cp_based and s.dynamic_priority and s.uses_insertion
        h = get_scheduler("param:hlfet")
        assert not (h.cp_based or h.dynamic_priority or h.uses_insertion)


# ----------------------------------------------------------------------
# Hypothesis: every combination yields complete, valid schedules
# ----------------------------------------------------------------------
@given(graph=task_graphs(max_nodes=12),
       prio=st.sampled_from(sorted(AXES["prio"])),
       ready=st.sampled_from(sorted(AXES["ready"])),
       proc=st.sampled_from(sorted(AXES["proc"])),
       insert=st.sampled_from(sorted(AXES["insert"])),
       procs=st.integers(1, 4))
@settings(max_examples=60, deadline=None)
def test_random_component_combinations_schedule_validly(
        graph, prio, ready, proc, insert, procs):
    spec = SchedulerSpec(prio, ready, proc, insert)
    schedule = get_scheduler(spec.canonical()).schedule(graph,
                                                        Machine(procs))
    assert schedule.is_complete()  # every node placed exactly once
    # Full model invariants: precedence + communication delays +
    # per-processor no-overlap.
    assert validate(schedule, collect=True) == []


@given(graph=task_graphs(max_nodes=10),
       prio=st.sampled_from(sorted(AXES["prio"])),
       insert=st.sampled_from(sorted(AXES["insert"])))
@settings(max_examples=30, deadline=None)
def test_random_combinations_valid_under_heterogeneous_speeds(
        graph, prio, insert):
    spec = SchedulerSpec(prio=prio, insert=insert, proc="eft")
    machine = Machine(3, speeds=[1.0, 2.0, 4.0])
    schedule = get_scheduler(spec.canonical()).schedule(graph, machine)
    assert schedule.is_complete()
    assert validate(schedule, collect=True) == []


# ----------------------------------------------------------------------
# scenario engine integration
# ----------------------------------------------------------------------
class TestScenarioIntegration:
    MINIMAL = {
        "name": "t",
        "graphs": {"generator": "rgbos", "sizes": [10], "ccrs": [1.0]},
        "algorithms": ["MCP"],
    }

    def _doc(self, **overrides):
        doc = {k: (dict(v) if isinstance(v, dict) else v)
               for k, v in self.MINIMAL.items()}
        doc.update(overrides)
        return doc

    def test_spec_strings_canonicalise_and_param_grids_expand(self):
        from repro.scenarios import validate_spec

        spec = validate_spec(self._doc(algorithms=[
            "mcp",
            "PARAM:prio=alap",
            {"param": {"prio": ["slevel", "alap"],
                       "insert": ["off", "on"]}},
        ]))
        names = spec.algorithm_names
        assert names[0] == "MCP"
        assert names[1] == "param:prio=alap,ready=prio,proc=est,insert=off"
        # The grid contributes 4 combos, one of which duplicates the
        # explicit alap spec above — expansion deduplicates it.
        assert len(names) == 2 + 3
        assert len(set(names)) == len(names)
        # The canonical document round-trips, param selector included.
        from repro.scenarios import validate_spec as revalidate
        assert revalidate(spec.to_dict()).algorithm_names == names

    def test_param_selector_errors_are_spec_errors(self):
        from repro.scenarios import SpecError, validate_spec

        with pytest.raises(SpecError, match="unknown component axis"):
            validate_spec(self._doc(algorithms=[{"param": {"pool": ["x"]}}]))
        with pytest.raises(SpecError, match="slevel"):
            validate_spec(self._doc(
                algorithms=[{"param": {"prio": ["bogus"]}}]))
        with pytest.raises(SpecError, match="exactly the key"):
            validate_spec(self._doc(
                algorithms=[{"param": {"prio": ["alap"]}, "x": 1}]))
        with pytest.raises(SpecError, match="axis=value"):
            validate_spec(self._doc(algorithms=["param:prio"]))

    def test_component_grid_scenario_sweeps_at_least_48_combos(self):
        from repro.scenarios import get_scenario

        spec = get_scenario("component-grid")
        names = spec.algorithm_names
        params = [n for n in names if n.startswith("param:")]
        assert len(params) >= 48
        assert len(names) == len(set(names))
        # The six monoliths ride along for the head-to-head ranking.
        for acro in BNP_SPECS:
            assert acro in names

    def test_adversarial_pair_accepts_spec_names(self):
        from repro.scenarios import validate_spec

        spec = validate_spec(self._doc(adversarial={
            "pair": ["mcp", "param:prio=btlevel,proc=etf"]}))
        assert spec.adversarial["pair"] == [
            "MCP", "param:prio=btlevel,ready=prio,proc=etf,insert=off"]

    def test_component_sweep_resume_replays_with_zero_recompute(
            self, tmp_path, monkeypatch):
        import repro.bench.parallel as parallel
        from repro.bench.store import ResultStore
        from repro.scenarios import (
            compile_scenario,
            run_scenario,
            validate_spec,
        )

        doc = self._doc(
            name="mini-components",
            graphs={"generator": "rgnos", "sizes": [12], "ccrs": [1.0],
                    "parallelisms": [3], "seed": 9},
            algorithms=[{"param": {"prio": ["slevel", "alap"],
                                   "insert": ["off", "on"]}}],
            machine={"bnp_procs": 4})
        compiled = compile_scenario(validate_spec(doc))
        first = run_scenario(compiled, store=ResultStore(str(tmp_path)),
                             resume=True)

        def boom(args):
            raise AssertionError(
                "cell recomputed despite a warm cache — spec "
                "fingerprints are unstable")

        monkeypatch.setattr(parallel, "_run_cell", boom)
        second = run_scenario(compiled, store=ResultStore(str(tmp_path)),
                              resume=True)
        rows1 = [r for _, rows in first.rows for r in rows]
        rows2 = [r for _, rows in second.rows for r in rows]
        assert rows1 == rows2
        assert len(rows1) == compiled.num_cells == 4

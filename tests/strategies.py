"""Hypothesis strategies shared by the property-based test modules.

Lives in its own importable module (not ``conftest.py``) because pytest
inserts *every* conftest directory onto ``sys.path``: a bare
``import conftest`` resolves to whichever conftest was loaded first
(``benchmarks/conftest.py`` when the whole repo is collected), which
does not define the strategies.  ``strategies`` is unambiguous.
"""

from __future__ import annotations

from typing import Dict, Tuple

from hypothesis import strategies as st

from repro import TaskGraph

__all__ = ["task_graphs"]


@st.composite
def task_graphs(draw, min_nodes: int = 2, max_nodes: int = 14,
                max_weight: int = 20, max_comm: int = 40,
                edge_prob: float = 0.35) -> TaskGraph:
    """Random DAG: edges only from lower to higher ids (always acyclic)."""
    n = draw(st.integers(min_nodes, max_nodes))
    weights = [
        draw(st.integers(1, max_weight)) for _ in range(n)
    ]
    edges: Dict[Tuple[int, int], float] = {}
    for u in range(n):
        for v in range(u + 1, n):
            if draw(st.booleans() if edge_prob >= 0.5 else
                    st.sampled_from([True] + [False] * int(1 / edge_prob))):
                edges[(u, v)] = float(draw(st.integers(0, max_comm)))
    return TaskGraph([float(w) for w in weights], edges, name=f"hyp-{n}")

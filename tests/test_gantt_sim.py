"""Gantt round-trip on *simulated* timelines.

The sim engine returns real :class:`~repro.core.schedule.Schedule`
objects (with executed durations), so ``repro.io.gantt`` must render
them unchanged.  These tests parse the ASCII output back and check it
against the schedule that produced it: one overlap-free lane per
non-empty processor, message arrows for contention runs, and the
empty-processor / empty-schedule edge cases.
"""

import re

import pytest

from repro import Machine, NetworkMachine, Schedule, Topology, get_scheduler
from repro.generators.psg import kwok_ahmad_9
from repro.generators.random_graphs import rgnos_graph
from repro.io import gantt
from repro.sim import ContentionNetwork, PerturbationModel, simulate


def _simulated(alg="MCP", noise=PerturbationModel.lognormal(0.3), rng=7):
    graph = rgnos_graph(25, 1.0, 3, seed=5)
    sched = get_scheduler(alg).schedule(graph, Machine(4))
    return simulate(sched, perturb=noise, rng=rng)


def _lanes(text):
    """``{proc: row_string}`` parsed from a gantt chart."""
    out = {}
    for line in text.splitlines():
        m = re.match(r"^P(\d+)\s*\|(.*)\|$", line)
        if m:
            out[int(m.group(1))] = m.group(2)
    return out


class TestSimulatedGantt:
    def test_one_lane_per_used_processor(self):
        res = _simulated()
        lanes = _lanes(gantt(res.schedule))
        assert set(lanes) == set(res.schedule.used_proc_ids())

    def test_lane_cells_are_overlap_free(self):
        # Bars may only abut, never interleave: scanning a lane, every
        # task label appears exactly once, in start-time order.
        res = _simulated()
        text = gantt(res.schedule, width=400)  # wide => labels disjoint
        for proc, row in _lanes(text).items():
            labels = [int(tok) for tok in re.findall(r"\d+", row)]
            expected = [pl.node for pl in res.schedule.tasks_on(proc)]
            assert labels == expected

    def test_header_reports_simulated_length(self):
        res = _simulated()
        assert res.makespan != pytest.approx(res.predicted)  # noise real
        assert f"length={res.makespan:g}" in gantt(res.schedule)

    def test_message_arrows_for_contention_runs(self):
        graph = kwok_ahmad_9()
        topo = Topology.hypercube(2)
        sched = get_scheduler("MH").schedule(graph, NetworkMachine(topo))
        res = simulate(sched, network=ContentionNetwork(topo))
        text = gantt(res.schedule, show_messages=True)
        assert "messages:" in text
        arrows = [l for l in text.splitlines() if "via" in l]
        committed = [m for m in res.schedule.messages.values() if m.hops]
        assert len(arrows) == len(committed)
        for line in arrows:
            assert re.search(r"\d+->\d+@\[", line)  # hop reservations
            assert "arr=" in line

    def test_empty_processor_is_skipped_not_blank(self):
        # A 6-processor machine whose schedule uses fewer lanes: empty
        # processors contribute no row at all.
        graph = rgnos_graph(12, 1.0, 1, seed=2)
        sched = get_scheduler("MCP").schedule(graph, Machine(6))
        res = simulate(sched)
        text = gantt(res.schedule)
        lanes = _lanes(text)
        assert len(lanes) == res.schedule.processors_used() < 6
        for row in lanes.values():
            assert row.strip()  # no rendered lane is empty

    def test_empty_schedule_renders_placeholder(self):
        assert "empty" in gantt(Schedule(kwok_ahmad_9(), 2))

    def test_zero_noise_chart_matches_static_chart(self):
        graph = rgnos_graph(25, 1.0, 3, seed=5)
        sched = get_scheduler("MCP").schedule(graph, Machine(4))
        res = simulate(sched)
        assert gantt(res.schedule) == gantt(sched)

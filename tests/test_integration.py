"""Cross-module integration tests.

Every algorithm x every generator family must produce a schedule that
passes full validation; class-level conventions (UNC unbounded, APN with
messages) are exercised through the public API end to end.
"""

import pytest

from repro import (
    Machine,
    NetworkMachine,
    Topology,
    get_scheduler,
    list_schedulers,
    validate,
)
from repro.core.attributes import cp_computation_cost
from repro.generators import (
    cholesky_graph,
    fft_graph,
    gaussian_elimination_graph,
    laplace_graph,
    peer_set_graphs,
    rgbos_graph,
    rgnos_graph,
    rgpos_instance,
)

ALL_NAMES = list_schedulers()
CLIQUE_NAMES = [n for n in ALL_NAMES
                if get_scheduler(n).klass in ("BNP", "UNC")]
APN_NAMES = [n for n in ALL_NAMES if get_scheduler(n).klass == "APN"]

FAMILY_GRAPHS = [
    ("rgbos", rgbos_graph(16, 1.0, seed=42)),
    ("rgbos-high-ccr", rgbos_graph(16, 10.0, seed=42)),
    ("rgnos", rgnos_graph(50, 1.0, 3, seed=42)),
    ("rgpos", rgpos_instance(40, 1.0, 4, seed=42).graph),
    ("cholesky", cholesky_graph(6)),
    ("gauss", gaussian_elimination_graph(5)),
    ("fft", fft_graph(3)),
    ("laplace", laplace_graph(4)),
    ("psg", peer_set_graphs()[0]),
]


@pytest.mark.parametrize("name", CLIQUE_NAMES)
@pytest.mark.parametrize("family,graph", FAMILY_GRAPHS,
                         ids=[f for f, _ in FAMILY_GRAPHS])
class TestCliqueAlgorithmsOnAllFamilies:
    def test_valid_schedule(self, name, family, graph):
        sched = get_scheduler(name).schedule(graph, Machine.unbounded(graph))
        validate(sched)
        assert sched.length >= cp_computation_cost(graph) - 1e-6


@pytest.mark.parametrize("name", APN_NAMES)
@pytest.mark.parametrize("family,graph", FAMILY_GRAPHS[:6],
                         ids=[f for f, _ in FAMILY_GRAPHS[:6]])
class TestAPNAlgorithmsOnFamilies:
    def test_valid_schedule_with_messages(self, name, family, graph):
        topo = Topology.hypercube(2)
        sched = get_scheduler(name).schedule(graph, NetworkMachine(topo))
        validate(sched, network=topo)


class TestModelConsistency:
    def test_apn_on_clique_close_to_bnp_model(self):
        """On a clique topology every route is one hop, so an APN
        schedule is a valid clique schedule as well; its length can
        still differ (channel contention), but never below the CP
        computation floor."""
        g = rgbos_graph(16, 1.0, seed=3)
        topo = Topology.clique(4)
        sched = get_scheduler("MH").schedule(g, NetworkMachine(topo))
        validate(sched, network=topo)
        assert sched.length >= cp_computation_cost(g) - 1e-6

    def test_zero_ccr_limit_matches_no_comm(self):
        """With all-zero communication the clique and network models
        coincide; MCP and MH then solve the same problem instance."""
        g = rgbos_graph(14, 1.0, seed=5)
        g0 = type(g)(
            g.weights, {(u, v): 0.0 for u, v, _ in g.edges()},
            name="zero-comm",
        )
        mcp = get_scheduler("MCP").schedule(g0, Machine(4)).length
        topo = Topology.clique(4)
        mh = get_scheduler("MH").schedule(g0, NetworkMachine(topo)).length
        assert mh == pytest.approx(mcp, rel=0.25)

    def test_unbounded_never_beats_cp_floor(self):
        g = rgnos_graph(60, 0.1, 5, seed=8)
        floor = cp_computation_cost(g)
        for name in CLIQUE_NAMES:
            sched = get_scheduler(name).schedule(g, Machine.unbounded(g))
            assert sched.length >= floor - 1e-6

    def test_more_procs_never_hurt_greedy_bnp(self):
        """For the greedy min-EST algorithms, doubling the processor
        supply cannot lengthen the schedule on these instances (sanity
        of the machine-size conventions; not a general theorem, hence a
        fixed seeded instance)."""
        g = rgnos_graph(40, 0.5, 3, seed=1)
        for name in ("HLFET", "MCP", "ETF"):
            s2 = get_scheduler(name).schedule(g, Machine(2)).length
            s8 = get_scheduler(name).schedule(g, Machine(8)).length
            assert s8 <= s2 + 1e-9


class TestPublicAPI:
    def test_list_schedulers_complete(self):
        assert len(ALL_NAMES) == 15
        assert len([n for n in ALL_NAMES
                    if get_scheduler(n).klass == "BNP"]) == 6
        assert len([n for n in ALL_NAMES
                    if get_scheduler(n).klass == "UNC"]) == 5
        assert len(APN_NAMES) == 4

    def test_list_schedulers_filter(self):
        from repro import list_schedulers as ls

        assert set(ls("BNP")) == {"HLFET", "ISH", "MCP", "ETF", "DLS",
                                  "LAST"}
        assert ls("unc") == sorted(["EZ", "LC", "DSC", "MD", "DCP"])

    def test_unknown_scheduler(self):
        with pytest.raises(KeyError):
            get_scheduler("NOPE")

    def test_top_level_import_surface(self):
        import repro

        for sym in ("TaskGraph", "Machine", "Schedule", "Topology",
                    "validate", "get_scheduler", "blevel", "tlevel"):
            assert hasattr(repro, sym)

    def test_version(self):
        import repro

        assert repro.__version__

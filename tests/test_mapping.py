"""Tests for mapping simulation (cluster timing, fixed sequences)."""

import pytest

from repro import ScheduleError, TaskGraph, validate
from repro.algorithms.mapping import (
    mapping_makespan,
    schedule_from_mapping,
    simulate_fixed_sequences,
)


@pytest.fixture
def diamond():
    return TaskGraph(
        [1.0, 2.0, 4.0, 1.0],
        {(0, 1): 3.0, (0, 2): 1.0, (1, 3): 2.0, (2, 3): 5.0},
        name="diamond",
    )


class TestMappingMakespan:
    def test_all_one_proc_is_serial(self, diamond):
        assert mapping_makespan(diamond, [0, 0, 0, 0]) == pytest.approx(8.0)

    def test_fully_distributed(self, diamond):
        # 0 at 0-1; 1 from 4-6 (comm 3); 2 from 2-6 (comm 1);
        # 3 from max(6+2, 6+5)=11 to 12.
        assert mapping_makespan(diamond, [0, 1, 2, 3]) == pytest.approx(12.0)

    def test_partial_clustering(self, diamond):
        # {0, 2, 3} together, 1 alone: 0:0-1, 2:1-5, 1:4-6 (comm 3),
        # 3: max(5, 6+2)=8-9.
        assert mapping_makespan(diamond, [0, 1, 0, 0]) == pytest.approx(9.0)

    def test_matches_schedule_from_mapping(self, diamond):
        for mapping in ([0, 0, 0, 0], [0, 1, 2, 3], [0, 1, 0, 0],
                        [0, 0, 1, 1]):
            mk = mapping_makespan(diamond, mapping)
            sched = schedule_from_mapping(diamond, mapping, 4)
            validate(sched)
            assert sched.length == pytest.approx(mk)

    def test_arbitrary_labels_compacted(self, diamond):
        sched = schedule_from_mapping(diamond, [7, 42, 7, 7], 4)
        validate(sched)
        assert sched.processors_used() == 2

    def test_too_many_clusters_rejected(self, diamond):
        with pytest.raises(ScheduleError):
            schedule_from_mapping(diamond, [0, 1, 2, 3], 2)


class TestFixedSequences:
    def test_respects_sequence_order(self, diamond):
        sched = simulate_fixed_sequences(diamond, [[0, 2, 1, 3], []], 2)
        validate(sched)
        # Sequence forces 1 after 2 on the same processor.
        assert sched.start_of(1) >= sched.finish_of(2) - 1e-9

    def test_two_procs(self, diamond):
        sched = simulate_fixed_sequences(diamond, [[0, 1], [2, 3]], 2)
        validate(sched)
        assert sched.proc_of(2) == 1

    def test_inconsistent_order_recovers(self, diamond):
        # Descendant queued before ancestor on one processor: the
        # fallback re-sorts by topological index instead of failing.
        sched = simulate_fixed_sequences(diamond, [[3, 0, 1, 2], []], 2)
        validate(sched)

    def test_missing_node_rejected(self, diamond):
        with pytest.raises(ScheduleError):
            simulate_fixed_sequences(diamond, [[0, 1], [2]], 2)

    def test_idle_gap_when_waiting(self):
        g = TaskGraph([1.0, 1.0, 5.0], {(0, 1): 10.0}, name="gap")
        sched = simulate_fixed_sequences(g, [[0], [1, 2]], 2)
        validate(sched)
        # 1 waits for comm until 11; 2 queued behind it in sequence.
        assert sched.start_of(1) == pytest.approx(11.0)
        assert sched.start_of(2) == pytest.approx(12.0)

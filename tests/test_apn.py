"""Behavioural tests for the four APN algorithms and the network
simulation engine."""

import pytest

from repro import (
    NetworkMachine,
    ScheduleError,
    TaskGraph,
    Topology,
    get_scheduler,
    validate,
)
from repro.algorithms.apn import cpn_dominant_list, simulate_on_network
from repro.bench.runner import APN_ALGORITHMS

ALL_APN = list(APN_ALGORITHMS)


@pytest.mark.parametrize("name", ALL_APN)
@pytest.mark.parametrize("topo_factory", [
    lambda: Topology.ring(4),
    lambda: Topology.chain(3),
    lambda: Topology.hypercube(3),
    lambda: Topology.clique(4),
], ids=["ring4", "chain3", "cube8", "clique4"])
class TestCommonAPN:
    def test_valid_with_messages(self, name, topo_factory, kwok9):
        topo = topo_factory()
        sched = get_scheduler(name).schedule(kwok9, NetworkMachine(topo))
        validate(sched, network=topo)

    def test_deterministic(self, name, topo_factory, kwok9):
        topo = topo_factory()
        s1 = get_scheduler(name).schedule(kwok9, NetworkMachine(topo))
        s2 = get_scheduler(name).schedule(kwok9, NetworkMachine(topo))
        assert s1.to_dict() == s2.to_dict()


@pytest.mark.parametrize("name", ALL_APN)
class TestAPNBasics:
    def test_single_node(self, name):
        g = TaskGraph([2.0], {})
        topo = Topology.ring(3)
        sched = get_scheduler(name).schedule(g, NetworkMachine(topo))
        assert sched.length == 2.0

    def test_heavy_chain_on_one_proc(self, name):
        g = TaskGraph([2.0, 2.0], {(0, 1): 100.0})
        topo = Topology.ring(4)
        sched = get_scheduler(name).schedule(g, NetworkMachine(topo))
        validate(sched, network=topo)
        assert sched.proc_of(0) == sched.proc_of(1)

    def test_random_graph_valid(self, name):
        from repro.generators.random_graphs import rgnos_graph

        g = rgnos_graph(30, 1.0, 2, seed=7)
        topo = Topology.hypercube(2)
        sched = get_scheduler(name).schedule(g, NetworkMachine(topo))
        validate(sched, network=topo)

    def test_metadata(self, name):
        assert get_scheduler(name).klass == "APN"


class TestNetsim:
    def test_chain_across_network(self):
        g = TaskGraph([1.0, 1.0], {(0, 1): 3.0})
        topo = Topology.chain(3)
        sched = simulate_on_network(g, topo, [[0], [], [1]])
        validate(sched, network=topo)
        # 1 (compute) + 3 + 3 (two store-and-forward hops) = 7 start.
        assert sched.start_of(1) == pytest.approx(7.0)

    def test_contention_delays_second_message(self):
        g = TaskGraph(
            [1.0, 1.0, 1.0, 1.0],
            {(0, 2): 4.0, (1, 3): 4.0},
            name="2msgs",
        )
        topo = Topology.chain(2)
        sched = simulate_on_network(g, topo, [[0, 1], [2, 3]])
        validate(sched, network=topo)
        starts = sorted([sched.start_of(2), sched.start_of(3)])
        # First message arrives at 1+4=5 at best; the second must queue
        # behind it on the single channel.
        assert starts[1] >= starts[0] + 4.0 - 1e-9

    def test_missing_node_rejected(self):
        g = TaskGraph([1.0, 1.0], {(0, 1): 1.0})
        topo = Topology.chain(2)
        with pytest.raises(ScheduleError):
            simulate_on_network(g, topo, [[0], []])

    def test_duplicate_node_rejected(self):
        g = TaskGraph([1.0, 1.0], {(0, 1): 1.0})
        topo = Topology.chain(2)
        with pytest.raises(ScheduleError):
            simulate_on_network(g, topo, [[0, 1], [1]])

    def test_bad_order_deadlocks(self):
        g = TaskGraph([1.0, 1.0], {(0, 1): 1.0})
        topo = Topology.chain(2)
        with pytest.raises(ScheduleError, match="deadlock"):
            simulate_on_network(g, topo, [[1, 0], []])


class TestCPNDominantList:
    def test_is_topological(self, kwok9):
        order = cpn_dominant_list(kwok9)
        pos = {n: i for i, n in enumerate(order)}
        assert sorted(order) == list(kwok9.nodes())
        for u, v, _c in kwok9.edges():
            assert pos[u] < pos[v]

    def test_cp_entry_first(self, kwok9):
        order = cpn_dominant_list(kwok9)
        assert order[0] == 0  # single entry node heads the list

    def test_covers_disconnected_parts(self):
        g = TaskGraph([1.0, 2.0, 3.0], {})
        order = cpn_dominant_list(g)
        assert sorted(order) == [0, 1, 2]


class TestBSA:
    def test_improves_on_serial_injection(self, kwok9):
        """Bubbling must never yield something worse than the serial
        pivot schedule it starts from."""
        topo = Topology.ring(4)
        serial = kwok9.total_computation
        sched = get_scheduler("BSA").schedule(kwok9, NetworkMachine(topo))
        assert sched.length <= serial + 1e-9

    def test_pivot_is_max_degree(self):
        g = TaskGraph([1.0], {})
        topo = Topology.star(4)  # processor 0 has degree 3
        sched = get_scheduler("BSA").schedule(g, NetworkMachine(topo))
        assert sched.proc_of(0) == 0


class TestBU:
    def test_children_pull_parents(self):
        """With one heavy child chain per branch, the bottom-up pass
        keeps each parent with its child to kill the communication."""
        g = TaskGraph(
            [1.0, 1.0, 5.0, 5.0],
            {(0, 2): 40.0, (1, 3): 40.0},
            name="bu-pull",
        )
        topo = Topology.chain(2)
        sched = get_scheduler("BU").schedule(g, NetworkMachine(topo))
        validate(sched, network=topo)
        assert sched.proc_of(0) == sched.proc_of(2)
        assert sched.proc_of(1) == sched.proc_of(3)


class TestMHvsDLS:
    def test_both_respect_contention(self):
        """On a chain topology a hub-to-leaf broadcast must serialise;
        both schedulers' schedules must reflect queueing delays."""
        fan = TaskGraph(
            [1.0] + [1.0] * 4,
            {(0, i): 5.0 for i in range(1, 5)},
            name="fan",
        )
        topo = Topology.chain(2)
        for name in ("MH", "DLS-APN"):
            sched = get_scheduler(name).schedule(fan, NetworkMachine(topo))
            validate(sched, network=topo)

"""Documentation and example hygiene checks.

Cheap guarantees that the repo's promises stay true: examples are
runnable scripts, every public module carries a docstring, the README's
quickstart snippet actually executes, and the artifact inventory in
DESIGN.md matches the bench directory.
"""

import ast
import importlib
import os
import pkgutil
import subprocess
import sys

import pytest

import repro

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _walk_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing __main__ would execute the CLI
        yield info.name


class TestDocstrings:
    def test_every_module_has_docstring(self):
        missing = []
        for name in _walk_modules():
            mod = importlib.import_module(name)
            if not (mod.__doc__ or "").strip():
                missing.append(name)
        assert not missing, f"modules without docstrings: {missing}"

    def test_public_api_documented(self):
        undocumented = []
        for sym in repro.__all__:
            obj = getattr(repro, sym, None)
            if obj is None or isinstance(obj, str):
                continue
            if callable(obj) and not (obj.__doc__ or "").strip():
                undocumented.append(sym)
        assert not undocumented

    def test_scheduler_docstrings(self):
        from repro import get_scheduler, list_schedulers

        for name in list_schedulers():
            cls = type(get_scheduler(name))
            module = importlib.import_module(cls.__module__)
            assert (module.__doc__ or "").strip(), cls.__module__


class TestExamples:
    def test_examples_exist(self):
        examples = os.listdir(os.path.join(REPO, "examples"))
        assert "quickstart.py" in examples
        assert len([e for e in examples if e.endswith(".py")]) >= 3

    def test_examples_parse(self):
        ex_dir = os.path.join(REPO, "examples")
        for fname in os.listdir(ex_dir):
            if fname.endswith(".py"):
                with open(os.path.join(ex_dir, fname)) as fh:
                    ast.parse(fh.read(), filename=fname)

    def test_quickstart_runs(self):
        result = subprocess.run(
            [sys.executable, os.path.join(REPO, "examples", "quickstart.py")],
            capture_output=True, text=True, timeout=120,
        )
        assert result.returncode == 0, result.stderr
        assert "schedule length" in result.stdout


class TestDocsInventory:
    def test_readme_quickstart_code_runs(self):
        """Extract and execute the first python block of the README."""
        with open(os.path.join(REPO, "README.md")) as fh:
            text = fh.read()
        start = text.index("```python") + len("```python")
        end = text.index("```", start)
        code = text[start:end]
        namespace: dict = {}
        exec(compile(code, "<readme>", "exec"), namespace)  # noqa: S102

    def test_design_lists_every_bench(self):
        with open(os.path.join(REPO, "DESIGN.md")) as fh:
            design = fh.read()
        bench_dir = os.path.join(REPO, "benchmarks")
        for fname in os.listdir(bench_dir):
            if fname.startswith("bench_") and fname.endswith(".py"):
                assert fname in design, f"DESIGN.md does not map {fname}"

    def test_experiments_covers_all_artifacts(self):
        with open(os.path.join(REPO, "EXPERIMENTS.md")) as fh:
            exp = fh.read()
        for artifact in ("Table 1", "Table 2", "Table 4", "Table 6",
                         "Figure 2", "Figure 3", "Figure 4"):
            assert artifact in exp

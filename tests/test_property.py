"""Property-based tests (hypothesis) on core invariants.

These cover the guarantees every downstream component leans on: schedule
validity for all 15 algorithms on arbitrary DAGs, level/ALAP algebra,
slot-search correctness, serialization round-trips, and the optimal
solver's relation to heuristics and lower bounds.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    Machine,
    NetworkMachine,
    Schedule,
    TaskGraph,
    Topology,
    get_scheduler,
    validate,
)
from repro.core.attributes import (
    alap,
    blevel,
    cp_computation_cost,
    cp_length,
    critical_path,
    static_blevel,
    tlevel,
)
from repro.io import dumps_stg, loads_stg
from repro.optimal import lb_combined, solve_optimal

from strategies import task_graphs

FAST = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
SLOW = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestAttributeProperties:
    @given(g=task_graphs())
    @FAST
    def test_tlevel_blevel_cp_consistency(self, g):
        t, b = tlevel(g), blevel(g)
        cp = cp_length(g)
        assert max(b) == pytest.approx(cp)
        for n in g.nodes():
            assert t[n] + b[n] <= cp + 1e-6
        assert any(abs(t[n] + b[n] - cp) < 1e-6 for n in g.nodes())

    @given(g=task_graphs())
    @FAST
    def test_alap_in_range(self, g):
        al = alap(g)
        cp = cp_length(g)
        for n in g.nodes():
            assert -1e-9 <= al[n] <= cp - g.weight(n) + 1e-6

    @given(g=task_graphs())
    @FAST
    def test_static_blevel_monotone_along_edges(self, g):
        sb = static_blevel(g)
        for u, v, _c in g.edges():
            assert sb[u] >= sb[v] + g.weight(u) - 1e-9

    @given(g=task_graphs())
    @FAST
    def test_critical_path_edges_exist(self, g):
        path = critical_path(g)
        for u, v in zip(path, path[1:]):
            assert g.has_edge(u, v)

    @given(g=task_graphs())
    @FAST
    def test_cp_computation_cost_bounds(self, g):
        c = cp_computation_cost(g)
        assert c <= g.total_computation + 1e-9
        assert c >= max(g.weights) - 1e-9


BNP_NAMES = ["HLFET", "ISH", "MCP", "ETF", "DLS", "LAST"]
UNC_NAMES = ["EZ", "LC", "DSC", "MD", "DCP"]
APN_NAMES = ["MH", "DLS-APN", "BU", "BSA"]


class TestSchedulerValidity:
    @given(g=task_graphs(max_nodes=12), procs=st.integers(1, 4))
    @SLOW
    def test_bnp_always_valid(self, g, procs):
        for name in BNP_NAMES:
            sched = get_scheduler(name).schedule(g, Machine(procs))
            validate(sched)
            assert sched.processors_used() <= procs

    @given(g=task_graphs(max_nodes=12))
    @SLOW
    def test_unc_always_valid(self, g):
        for name in UNC_NAMES:
            sched = get_scheduler(name).schedule(g, Machine.unbounded(g))
            validate(sched)

    @given(g=task_graphs(max_nodes=10))
    @SLOW
    def test_apn_always_valid_with_contention(self, g):
        topo = Topology.ring(3)
        for name in APN_NAMES:
            sched = get_scheduler(name).schedule(g, NetworkMachine(topo))
            validate(sched, network=topo)

    @given(g=task_graphs(max_nodes=12))
    @SLOW
    def test_length_at_least_cp_computation(self, g):
        """No clique schedule can beat the computation-only CP bound."""
        floor = cp_computation_cost(g)
        for name in ("MCP", "DCP", "DSC"):
            machine = Machine.unbounded(g)
            sched = get_scheduler(name).schedule(g, machine)
            assert sched.length >= floor - 1e-6

    @given(g=task_graphs(max_nodes=12))
    @SLOW
    def test_length_at_most_serial(self, g):
        """List schedulers with greedy placement never exceed serial
        execution on one processor... but clustering penalties can; only
        assert for the BNP class, which owns this guarantee on 1 proc."""
        serial = g.total_computation
        for name in BNP_NAMES:
            sched = get_scheduler(name).schedule(g, Machine(1))
            assert sched.length == pytest.approx(serial)


class TestSlotProperties:
    @given(
        g=task_graphs(min_nodes=4, max_nodes=10),
        est=st.floats(0, 50),
        dur=st.floats(0.5, 10),
    )
    @FAST
    def test_earliest_slot_fits(self, g, est, dur):
        s = Schedule(g, 2)
        # Fill processor 0 with the first few nodes back to back.
        t = 0.0
        for n in list(g.topological_order)[:3]:
            s.place(n, 0, t)
            t += g.weight(n)
        slot = s.earliest_slot(0, est, dur, insertion=True)
        assert slot >= est - 1e-9
        # The returned window must not overlap any placed task.
        for pl in s.tasks_on(0):
            assert slot + dur <= pl.start + 1e-6 or slot >= pl.finish - 1e-6


class TestSerialization:
    @given(g=task_graphs())
    @FAST
    def test_stg_round_trip(self, g):
        back = loads_stg(dumps_stg(g), name=g.name)
        assert back.num_nodes == g.num_nodes
        assert back.edges() == g.edges()
        assert back.weights.tolist() == g.weights.tolist()


class TestOptimalProperties:
    @given(g=task_graphs(min_nodes=3, max_nodes=8))
    @SLOW
    def test_optimal_bounded_by_heuristics_and_lb(self, g):
        res = solve_optimal(g, num_procs=3, budget=30_000)
        assert res.length >= lb_combined(g, 3) - 1e-6
        for name in ("MCP", "ETF"):
            h = get_scheduler(name).schedule(g, Machine(3)).length
            assert res.length <= h + 1e-6
        validate(res.schedule)

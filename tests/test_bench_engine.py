"""Tests for the parallel, persisted benchmark engine.

Covers the engine's three contracts: parallel execution returns rows
identical to the serial path (same order, same values, runtimes aside),
the ResultStore round-trips and merges its JSON/CSV persistence, and
``resume`` reuses cached rows instead of re-scheduling.
"""

import json

import pytest

from repro.bench import parallel as parallel_mod
from repro.bench import runner as runner_mod
from repro.bench.parallel import default_jobs, grid_cells
from repro.bench.runner import BenchConfig, run_grid, run_one
from repro.bench.store import (
    RESULT_FIELDS,
    SCHEMA_VERSION,
    OptimaStore,
    ResultStore,
    result_from_dict,
    result_to_dict,
)
from repro.bench.suites import psg_suite
from repro.generators.psg import kwok_ahmad_9
from repro.metrics.measures import RunResult
from repro.network.topology import Topology

NAMES = ["MCP", "DCP", "HLFET", "MH"]  # one per class + one extra BNP


def _graphs():
    return psg_suite()[:3]


def _comparable(rows):
    """Everything except the measured runtime, which varies per run."""
    return [
        (r.algorithm, r.klass, r.graph, r.num_nodes, r.length, r.nsl,
         r.procs_used, r.optimal)
        for r in rows
    ]


# ----------------------------------------------------------------------
# serial vs parallel
# ----------------------------------------------------------------------
class TestParallelEquality:
    def test_rows_identical_to_serial(self):
        graphs = _graphs()
        serial = run_grid(NAMES, graphs)
        parallel = run_grid(NAMES, graphs, jobs=4)
        assert _comparable(serial) == _comparable(parallel)

    def test_serial_order_is_graphs_outer(self):
        graphs = _graphs()
        rows = run_grid(NAMES, graphs, jobs=2)
        expected = [(g.name, a) for g in graphs for a in NAMES]
        assert [(r.graph, r.algorithm) for r in rows] == expected

    def test_optima_populate_rows_in_parallel(self):
        g = kwok_ahmad_9()
        rows = run_grid(["MCP", "DCP"], [g], jobs=2, optima={g.name: 15.0})
        assert all(r.optimal == 15.0 for r in rows)
        assert all(r.degradation is not None for r in rows)

    def test_jobs_zero_means_auto(self):
        assert default_jobs() >= 1
        rows = run_grid(["MCP"], [kwok_ahmad_9()], jobs=0)
        assert len(rows) == 1

    def test_grid_cells_order(self):
        graphs = _graphs()
        cells = grid_cells(NAMES, graphs, optima={graphs[0].name: 9.0})
        assert [(g.name, n) for n, g, _ in cells] == [
            (g.name, a) for g in graphs for a in NAMES
        ]
        assert cells[0][2] == 9.0 and cells[len(NAMES)][2] is None


# ----------------------------------------------------------------------
# ResultStore persistence
# ----------------------------------------------------------------------
class TestResultStore:
    def test_save_load_round_trip(self, tmp_path):
        store = ResultStore(str(tmp_path))
        rows = run_grid(NAMES, _graphs(), store=store)
        assert len(store) == len(rows)

        reloaded = ResultStore(str(tmp_path))
        assert len(reloaded) == len(rows)
        fp = BenchConfig().fingerprint()
        for r in rows:
            cached = reloaded.get(r.algorithm, r.graph, fp)
            assert cached == r  # runtime_s included: persisted verbatim

    def test_json_schema(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put(run_one("MCP", kwok_ahmad_9()), "fp")
        store.save()
        doc = json.loads((tmp_path / "results.json").read_text())
        assert doc["schema"] == SCHEMA_VERSION
        assert len(doc["rows"]) == 1
        assert set(RESULT_FIELDS) <= set(doc["rows"][0])

    def test_csv_export(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put(run_one("MCP", kwok_ahmad_9()), "fp")
        store.save()
        lines = (tmp_path / "results.csv").read_text().splitlines()
        assert lines[0] == "fingerprint," + ",".join(RESULT_FIELDS)
        assert lines[1].startswith("fp,MCP,")

    def test_merge_incoming_wins(self, tmp_path):
        a = ResultStore(str(tmp_path / "a"))
        b = ResultStore(str(tmp_path / "b"))
        row = run_one("MCP", kwok_ahmad_9())
        a.put(row, "fp")
        b.put(row, "fp")
        b.put(run_one("DCP", kwok_ahmad_9()), "fp")
        assert a.merge(b) == 2
        assert len(a) == 2
        assert a.get("DCP", row.graph, "fp") is not None

    def test_unsupported_schema_rejected(self, tmp_path):
        path = tmp_path / "results.json"
        path.write_text(json.dumps({"schema": 999, "rows": []}))
        with pytest.raises(ValueError, match="schema"):
            ResultStore(str(tmp_path))

    def test_row_dict_round_trip(self):
        row = run_one("MCP", kwok_ahmad_9(), optimal=15.0)
        data = result_to_dict(row)
        data["future_field"] = "ignored"
        assert result_from_dict(data) == row

    def test_miss_on_other_fingerprint(self, tmp_path):
        store = ResultStore(str(tmp_path))
        row = run_one("MCP", kwok_ahmad_9())
        store.put(row, "fp-a")
        assert store.get("MCP", row.graph, "fp-b") is None


# ----------------------------------------------------------------------
# resume
# ----------------------------------------------------------------------
class TestResume:
    def test_resume_skips_cached_cells(self, tmp_path, monkeypatch):
        graphs = _graphs()
        store = ResultStore(str(tmp_path))
        first = run_grid(NAMES, graphs, store=store)

        def boom(*args, **kwargs):
            raise AssertionError("cell was re-scheduled despite resume")

        monkeypatch.setattr(runner_mod, "run_one", boom)
        second = run_grid(NAMES, graphs, store=store, resume=True)
        # Cached rows come back verbatim, measured runtimes included.
        assert second == first

    def test_no_resume_recomputes(self, tmp_path, monkeypatch):
        store = ResultStore(str(tmp_path))
        run_grid(["MCP"], [kwok_ahmad_9()], store=store)

        def boom(*args, **kwargs):
            raise AssertionError("recompute expected")

        monkeypatch.setattr(runner_mod, "run_one", boom)
        with pytest.raises(AssertionError, match="recompute expected"):
            run_grid(["MCP"], [kwok_ahmad_9()], store=store)

    def test_resume_runs_only_missing_cells(self, tmp_path):
        g = kwok_ahmad_9()
        store = ResultStore(str(tmp_path))
        run_grid(["MCP"], [g], store=store)
        calls = []
        real = runner_mod.run_one

        def counting(name, graph, **kwargs):
            calls.append(name)
            return real(name, graph, **kwargs)

        try:
            runner_mod.run_one = counting
            rows = run_grid(["MCP", "DCP"], [g], store=store, resume=True)
        finally:
            runner_mod.run_one = real
        assert calls == ["DCP"]
        assert [r.algorithm for r in rows] == ["MCP", "DCP"]
        assert len(store) == 2  # the new cell was persisted too

    def test_interrupted_grid_checkpoints_completed_cells(self, tmp_path,
                                                          monkeypatch):
        """An exception mid-grid must not lose the finished cells: the
        next resume run picks up from the checkpoint, not from cell 0."""
        graphs = _graphs()
        store = ResultStore(str(tmp_path))
        monkeypatch.setattr(parallel_mod, "SAVE_EVERY", 1)
        real = runner_mod.run_one
        calls = []

        def flaky(name, graph, **kwargs):
            if len(calls) == 5:
                raise KeyboardInterrupt
            calls.append(name)
            return real(name, graph, **kwargs)

        monkeypatch.setattr(runner_mod, "run_one", flaky)
        with pytest.raises(KeyboardInterrupt):
            run_grid(NAMES, graphs, store=store)
        assert len(ResultStore(str(tmp_path))) == 5  # persisted on disk

        monkeypatch.setattr(runner_mod, "run_one", real)
        rows = run_grid(NAMES, graphs, store=store, resume=True)
        assert len(rows) == len(NAMES) * len(graphs)

    def test_cached_rows_rebased_onto_new_optima(self, tmp_path):
        g = kwok_ahmad_9()
        store = ResultStore(str(tmp_path))
        run_grid(["MCP"], [g], store=store)
        rows = run_grid(["MCP"], [g], store=store, resume=True,
                        optima={g.name: 15.0})
        assert rows[0].optimal == 15.0
        assert rows[0].degradation is not None

    def test_different_config_is_a_miss(self, tmp_path):
        g = kwok_ahmad_9()
        store = ResultStore(str(tmp_path))
        run_grid(["MCP"], [g], store=store)
        bounded = BenchConfig(bnp_procs=2)
        rows = run_grid(["MCP"], [g], config=bounded, store=store,
                        resume=True)
        assert rows[0].procs_used <= 2
        assert len(store) == 2


# ----------------------------------------------------------------------
# optima sidecar
# ----------------------------------------------------------------------
class TestOptimaStore:
    def test_round_trip(self, tmp_path):
        cache = OptimaStore(str(tmp_path))
        cache.put("g1", 1000, 15.0, True)
        cache.save()
        reloaded = OptimaStore(str(tmp_path))
        assert reloaded.get("g1", 1000) == (15.0, True)
        assert reloaded.get("g1", 2000) is None  # budget is part of the key

    def test_rgbos_optima_resume_skips_search(self, tmp_path, monkeypatch):
        from repro.bench import tables as tables_mod

        g = kwok_ahmad_9()
        cache = OptimaStore(str(tmp_path))
        monkeypatch.setattr(tables_mod, "_OPTIMA_CACHE", {})
        first = tables_mod.rgbos_optima([g], budget=50_000, cache=cache)
        assert len(cache) == 1

        def boom(*args, **kwargs):
            raise AssertionError("B&B re-ran despite cached optimum")

        monkeypatch.setattr(tables_mod, "_OPTIMA_CACHE", {})
        monkeypatch.setattr(tables_mod, "solve_optimal", boom)
        resumed = tables_mod.rgbos_optima(
            [g], budget=50_000, cache=OptimaStore(str(tmp_path)), resume=True
        )
        assert resumed == first

    def test_in_process_hits_still_persisted(self, tmp_path, monkeypatch):
        """A store attached *after* the optima were computed in-process
        must still get the sidecar written."""
        from repro.bench import tables as tables_mod

        g = kwok_ahmad_9()
        monkeypatch.setattr(tables_mod, "_OPTIMA_CACHE", {})
        tables_mod.rgbos_optima([g], budget=50_000)  # no cache: memory only

        cache = OptimaStore(str(tmp_path))
        tables_mod.rgbos_optima([g], budget=50_000, cache=cache)
        assert OptimaStore(str(tmp_path)).get(g.name, 50_000) is not None


# ----------------------------------------------------------------------
# fingerprints
# ----------------------------------------------------------------------
class TestFingerprint:
    def test_default_stable(self):
        assert BenchConfig().fingerprint() == BenchConfig().fingerprint()

    def test_distinguishes_machine_models(self):
        fps = {
            BenchConfig().fingerprint(),
            BenchConfig(bnp_procs=4).fingerprint(),
            BenchConfig(apn_topology=Topology.ring(4)).fingerprint(),
            BenchConfig(validate_schedules=False).fingerprint(),
        }
        assert len(fps) == 4

    def test_distinguishes_same_shape_custom_topologies(self):
        """Same default name, same processor and link counts, different
        structure — the link-set hash must keep the fingerprints apart."""
        a = Topology(4, [(0, 1), (1, 2), (2, 3)])        # chain
        b = Topology(4, [(0, 1), (0, 2), (0, 3)])        # star
        fp_a = BenchConfig(apn_topology=a).fingerprint()
        fp_b = BenchConfig(apn_topology=b).fingerprint()
        assert fp_a != fp_b


class TestGetSuite:
    def test_names_dispatch(self):
        from repro.bench.suites import get_suite, suite_names

        for name in suite_names():
            graphs = get_suite(name, full=False)
            assert graphs and all(hasattr(g, "num_nodes") for g in graphs)

    def test_runs_through_engine(self):
        from repro.bench.suites import get_suite

        rows = run_grid(["MCP"], get_suite("psg")[:2], jobs=2)
        assert len(rows) == 2

    def test_unknown_suite(self):
        from repro.bench.suites import get_suite

        with pytest.raises(ValueError, match="unknown suite"):
            get_suite("nope")

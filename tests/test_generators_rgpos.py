"""Tests for the RGPOS generator: the optimality guarantees must hold."""

import pytest

from repro import GeneratorError, Machine, get_scheduler, validate
from repro.core.attributes import cp_computation_cost
from repro.generators.rgpos import rgpos_instance
from repro.optimal.bounds import lb_critical_path, lb_workload


class TestConstruction:
    def test_deterministic(self):
        a = rgpos_instance(60, 1.0, 8, seed=1)
        b = rgpos_instance(60, 1.0, 8, seed=1)
        assert a.graph.edges() == b.graph.edges()
        assert a.optimal_length == b.optimal_length

    def test_node_count(self):
        inst = rgpos_instance(100, 1.0, 8, seed=0)
        assert inst.graph.num_nodes == 100

    def test_bad_params(self):
        with pytest.raises(GeneratorError):
            rgpos_instance(4, 1.0, 8)
        with pytest.raises(GeneratorError):
            rgpos_instance(50, 0.0, 8)


class TestOptimalityInvariants:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("ccr", [0.1, 1.0, 10.0])
    def test_reference_schedule_feasible_and_tight(self, seed, ccr):
        inst = rgpos_instance(60, ccr, 6, seed=seed)
        ref = inst.reference_schedule()
        validate(ref)  # feasibility: every edge honoured
        assert ref.length == pytest.approx(inst.optimal_length)

    @pytest.mark.parametrize("seed", range(4))
    def test_reference_has_no_idle(self, seed):
        inst = rgpos_instance(48, 1.0, 6, seed=seed)
        ref = inst.reference_schedule()
        for p in range(inst.num_procs):
            tasks = ref.tasks_on(p)
            assert tasks, "every processor carries work"
            assert tasks[0].start == 0.0
            for a, b in zip(tasks, tasks[1:]):
                assert b.start == pytest.approx(a.finish)
            assert tasks[-1].finish == pytest.approx(inst.optimal_length)

    @pytest.mark.parametrize("seed", range(4))
    def test_chain_strengthening_makes_cp_bound_tight(self, seed):
        """With ensure_chains, the computation-only critical path equals
        L_opt: the optimum is provable for ANY processor count."""
        inst = rgpos_instance(60, 1.0, 6, seed=seed)
        assert cp_computation_cost(inst.graph) == pytest.approx(
            inst.optimal_length
        )

    def test_workload_bound_tight(self):
        inst = rgpos_instance(60, 1.0, 6, seed=0)
        assert lb_workload(inst.graph, 6) == pytest.approx(
            inst.optimal_length
        )

    @pytest.mark.parametrize("name", ["MCP", "DCP", "DSC", "HLFET"])
    def test_no_heuristic_beats_optimal(self, name):
        """The whole point: L_opt is a true floor."""
        inst = rgpos_instance(60, 1.0, 6, seed=3)
        machine = Machine.unbounded(inst.graph)
        sched = get_scheduler(name).schedule(inst.graph, machine)
        assert sched.length >= inst.optimal_length - 1e-9

    def test_without_chains_p_bound_only(self):
        inst = rgpos_instance(60, 1.0, 6, seed=2, ensure_chains=False)
        ref = inst.reference_schedule()
        validate(ref)
        assert ref.length == pytest.approx(inst.optimal_length)
        # The CP bound may now be loose; only the p-processor workload
        # bound certifies optimality (as in the paper's construction).
        assert lb_critical_path(inst.graph) <= inst.optimal_length + 1e-9

    def test_cross_edges_fit_in_slack(self):
        """Cross-processor edge weights never exceed the receiver's
        slack, so they cannot delay the reference schedule."""
        inst = rgpos_instance(80, 10.0, 8, seed=5)
        ref = inst.reference_schedule()
        for u, v, c in inst.graph.edges():
            pu, pv = ref.placement(u), ref.placement(v)
            if pu.proc != pv.proc:
                assert pu.finish + c <= pv.start + 1e-9

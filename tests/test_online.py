"""Online scheduling under partial information (repro.sim.online).

Covers the four layers of the subsystem: the ``online:`` spec grammar,
the information-mode observation filter, the event-driven engine (its
complete-plan contract and stall diagnostics), and the headline
guarantees — exact static equivalence under zero noise + ``exact``
mode, and cross-process placement-trace determinism.
"""

import json
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from differential_corpus import BNP_ALGOS, build_machine, corpus_graphs
from repro import Machine, get_scheduler
from repro.algorithms.components import BNP_SPECS
from repro.core.exceptions import ScheduleError
from repro.core.schedule import validate
from repro.generators.random_graphs import rgnos_graph
from repro.sim import PerturbationModel
from repro.sim.online import (
    IMODES,
    OnlinePolicy,
    OnlineResult,
    OnlineScheduler,
    OnlineSchedulerSpec,
    observe,
    parse_online_spec,
    simulate_online,
)
from strategies import task_graphs


# ----------------------------------------------------------------------
# spec grammar
# ----------------------------------------------------------------------
class TestOnlineSpec:
    def test_named_shorthand_resolves_bnp_axes(self):
        spec = parse_online_spec("online:mcp")
        base = BNP_SPECS["MCP"]
        assert (spec.prio, spec.ready, spec.proc, spec.insert) == (
            base.prio, base.ready, base.proc, base.insert)
        assert spec.imode == "exact"

    def test_canonical_round_trips(self):
        spec = parse_online_spec("online:etf,imode=mean")
        assert parse_online_spec(spec.canonical()) == spec

    def test_seed_spelled_only_for_user_mode(self):
        assert ",seed=" not in parse_online_spec(
            "online:mcp,imode=mean,seed=5").canonical()
        assert ",seed=5" in parse_online_spec(
            "online:mcp,imode=user,seed=5").canonical()

    def test_explicit_axes_accepted(self):
        spec = parse_online_spec(
            "online:prio=slevel,ready=prio,proc=est,insert=off,imode=blind")
        assert spec.imode == "blind"
        assert spec.base() == BNP_SPECS["HLFET"]

    @pytest.mark.parametrize("text, needle", [
        ("online:mcp,imode=psychic", "information mode"),
        ("online:nosuchalgo", "nosuchalgo"),
        ("online:mcp,imode=mean,imode=blind", "duplicate"),
        ("online:mcp,seed=-3", "seed"),
        ("online:mcp,flavor=spicy", "flavor"),
    ])
    def test_malformed_specs_rejected(self, text, needle):
        with pytest.raises(ValueError, match=needle):
            parse_online_spec(text)

    def test_registry_resolves_and_memoizes(self):
        a = get_scheduler("online:mcp,imode=blind")
        b = get_scheduler(
            "online:prio=alaplist,ready=prio,proc=est,insert=on,"
            "imode=blind")
        assert a is b
        assert isinstance(a, OnlineScheduler)
        assert a.dynamic_priority  # replanning makes every spec dynamic

    def test_scheduler_produces_valid_complete_schedule(self):
        g = rgnos_graph(24, 1.0, 3, seed=3)
        sched = get_scheduler("online:hlfet,imode=mean").schedule(
            g, Machine(3))
        assert sched.is_complete()
        validate(sched)


# ----------------------------------------------------------------------
# information modes
# ----------------------------------------------------------------------
class TestIModes:
    def test_exact_is_the_graph_itself(self):
        g = rgnos_graph(20, 1.0, 3, seed=1)
        assert observe(g, "exact") is g

    def test_blind_unit_weights_and_costs(self):
        g = rgnos_graph(20, 1.0, 3, seed=1)
        obs = observe(g, "blind")
        assert all(obs.weight(v) == 1.0 for v in range(obs.num_nodes))
        assert all(c == 1.0 for _, _, c in obs.edges())
        assert [e[:2] for e in obs.edges()] == [e[:2] for e in g.edges()]

    def test_mean_preserves_totals(self):
        g = rgnos_graph(20, 1.0, 3, seed=1)
        obs = observe(g, "mean")
        assert obs.total_computation == pytest.approx(g.total_computation)
        assert obs.total_communication == pytest.approx(
            g.total_communication)
        weights = {obs.weight(v) for v in range(obs.num_nodes)}
        assert len(weights) == 1  # one scalar mean everywhere

    def test_user_mode_is_keyed_by_rng(self):
        from repro.core.rng import derive_rng

        g = rgnos_graph(20, 1.0, 3, seed=1)
        a = observe(g, "user", rng=derive_rng(7, "imode", g.name))
        b = observe(g, "user", rng=derive_rng(7, "imode", g.name))
        c = observe(g, "user", rng=derive_rng(8, "imode", g.name))
        assert [a.weight(v) for v in range(a.num_nodes)] == \
               [b.weight(v) for v in range(b.num_nodes)]
        assert [a.weight(v) for v in range(a.num_nodes)] != \
               [c.weight(v) for v in range(c.num_nodes)]
        assert all(a.weight(v) > 0 for v in range(a.num_nodes))

    def test_unknown_mode_rejected(self):
        g = rgnos_graph(10, 1.0, 2, seed=1)
        with pytest.raises(ValueError, match="information mode"):
            observe(g, "oracle")


# ----------------------------------------------------------------------
# the headline guarantee: zero noise + exact mode == static replay
# ----------------------------------------------------------------------
class TestStaticEquivalence:
    @pytest.mark.parametrize("alg", BNP_ALGOS)
    def test_golden_corpus_placement_identical(self, alg):
        checked = 0
        for graph in corpus_graphs():
            machine = build_machine("p4", graph)
            static = get_scheduler(
                BNP_SPECS[alg].canonical()).schedule(graph, machine)
            res = simulate_online(
                graph, machine, parse_online_spec(f"online:{alg.lower()}"))
            assert res.num_replans == 0, (graph.name, res.num_replans)
            for v in range(graph.num_nodes):
                assert res.schedule.proc_of(v) == static.proc_of(v), \
                    (graph.name, v)
                assert res.schedule.start_of(v) == static.start_of(v), \
                    (graph.name, v)
            checked += 1
        assert checked >= 30  # the golden corpus

    def test_heterogeneous_machine_equivalence(self):
        for graph in list(corpus_graphs())[:6]:
            machine = build_machine("het3", graph)
            static = get_scheduler(
                BNP_SPECS["MCP"].canonical()).schedule(graph, machine)
            res = simulate_online(graph, machine,
                                  parse_online_spec("online:mcp"))
            assert res.num_replans == 0
            assert res.makespan == static.length


# ----------------------------------------------------------------------
# the engine under noise and partial information
# ----------------------------------------------------------------------
class TestOnlineEngine:
    @pytest.mark.parametrize("imode", IMODES)
    def test_noisy_runs_complete_and_validate(self, imode):
        g = rgnos_graph(40, 1.0, 3, seed=7057)
        res = simulate_online(
            g, Machine(4),
            parse_online_spec(f"online:mcp,imode={imode},seed=5"),
            perturb=PerturbationModel.lognormal(0.3), rng=11)
        assert res.schedule.is_complete()
        assert not validate(res.schedule, check_durations=False,
                            collect=True)
        if imode != "exact":
            # Wrong estimates must actually deviate from reality.
            assert res.num_replans > 0

    def test_partial_information_costs_makespan(self):
        g = rgnos_graph(40, 10.0, 3, seed=9)
        exact = simulate_online(g, Machine(4),
                                parse_online_spec("online:mcp"))
        blind = simulate_online(
            g, Machine(4), parse_online_spec("online:mcp,imode=blind"))
        assert blind.makespan >= exact.makespan

    def test_moved_local_handoff_recharges_communication(self):
        # Regression: under partial information a replan can move a
        # consumer away from the processor its input was locally handed
        # off on; the transfer must then be charged for real or the
        # executed timeline violates precedence.
        for seed in (5, 9, 13):
            g = rgnos_graph(16, 1.0, 3, seed=seed)
            res = simulate_online(
                g, Machine(4), parse_online_spec("online:mcp,imode=blind"))
            validate(res.schedule)  # strict: durations and precedence

    def test_same_inputs_same_trace(self):
        g = rgnos_graph(30, 1.0, 3, seed=4)
        spec = parse_online_spec("online:dls,imode=user,seed=6")
        kwargs = dict(perturb=PerturbationModel.lognormal(0.3), rng=3)
        a = simulate_online(g, Machine(4), spec, **kwargs)
        b = simulate_online(g, Machine(4), spec, **kwargs)
        assert a.trace == b.trace
        assert a.num_events == b.num_events

    def test_degradation_contract(self):
        g = rgnos_graph(10, 1.0, 2, seed=2)
        res = simulate_online(g, Machine(2), parse_online_spec("online:mcp"))
        assert res.degradation_pct == pytest.approx(0.0)
        corrupt = OnlineResult(
            schedule=res.schedule, predicted=0.0, makespan=res.makespan,
            num_events=res.num_events, num_replans=0)
        with pytest.raises(ScheduleError, match="not positive"):
            corrupt.degradation_pct


class _ListPolicy(OnlinePolicy):
    """Fixed initial queues, never replans — for contract tests."""

    def __init__(self, queues):
        self.queues = queues
        self.predicted = 1.0

    def begin(self, machine):
        return [list(q) for q in self.queues]


class TestPolicyContract:
    G = staticmethod(lambda: rgnos_graph(6, 1.0, 2, seed=1))

    def test_wrong_queue_count_rejected(self):
        g = self.G()
        with pytest.raises(ScheduleError, match="queue"):
            simulate_online(g, Machine(2), _ListPolicy([[0, 1, 2, 3, 4, 5]]))

    def test_incomplete_plan_rejected(self):
        g = self.G()
        with pytest.raises(ScheduleError, match="left task"):
            simulate_online(g, Machine(2),
                            _ListPolicy([[0, 1, 2], [3, 4]]))

    def test_duplicate_task_rejected(self):
        g = self.G()
        with pytest.raises(ScheduleError, match="twice"):
            simulate_online(g, Machine(2),
                            _ListPolicy([[0, 1, 2, 3], [3, 4, 5]]))

    def test_stall_names_task_processor_and_missing_preds(self):
        # A chain scheduled in reverse order on one queue can never
        # start its head; the error must say who waits on whom, where.
        from repro import TaskGraph

        g = TaskGraph([2.0, 3.0], {(0, 1): 1.0})
        with pytest.raises(ScheduleError) as err:
            simulate_online(g, Machine(1), _ListPolicy([[1, 0]]))
        text = str(err.value)
        assert "stalled" in text
        assert "P0" in text
        assert "[0]" in text  # the unexecuted predecessor


# ----------------------------------------------------------------------
# cross-process determinism
# ----------------------------------------------------------------------
_TRACE_SCRIPT = """
import json, sys
from repro.core.machine import Machine
from repro.generators.random_graphs import rgnos_graph
from repro.sim import PerturbationModel
from repro.sim.online import parse_online_spec, simulate_online

g = rgnos_graph(25, 1.0, 3, seed=42)
res = simulate_online(
    g, Machine(4), parse_online_spec("online:mcp,imode=user,seed=9"),
    perturb=PerturbationModel.lognormal(0.3), rng=17)
print(json.dumps({"trace": res.trace, "events": res.num_events,
                  "replans": res.num_replans, "makespan": res.makespan}))
"""


class TestCrossProcessDeterminism:
    def test_identical_trace_across_process_boundaries(self):
        runs = []
        for _ in range(2):
            out = subprocess.run(
                [sys.executable, "-c", _TRACE_SCRIPT],
                capture_output=True, text=True, check=True)
            runs.append(json.loads(out.stdout))
        assert runs[0] == runs[1]
        assert runs[0]["replans"] > 0  # the run actually replans


# ----------------------------------------------------------------------
# property: every online run yields a clean executed schedule
# ----------------------------------------------------------------------
class TestOnlineProperties:
    @settings(max_examples=25, deadline=None)
    @given(graph=task_graphs(), imode=st.sampled_from(IMODES),
           seed=st.integers(0, 3))
    def test_any_imode_yields_validate_clean_schedule(self, graph, imode,
                                                      seed):
        spec = OnlineSchedulerSpec(imode=imode, seed=seed)
        res = simulate_online(
            graph, Machine(2), spec,
            perturb=PerturbationModel.lognormal(0.25), rng=seed)
        assert res.schedule.is_complete()
        assert not validate(res.schedule, check_durations=False,
                            collect=True)
        assert res.makespan == res.schedule.length

"""Tests for the UNC+CS pipeline (Sarkar / RCP cluster assignment)."""

import pytest

from repro import Machine, MachineError, get_scheduler, validate
from repro.algorithms.cs import (
    cluster_schedule,
    clusters_from_schedule,
    rcp_assignment,
    sarkar_assignment,
)
from repro.generators.random_graphs import rgnos_graph


class TestClusterExtraction:
    def test_clusters_partition_nodes(self, kwok9):
        sched = get_scheduler("DSC").schedule(kwok9, Machine.unbounded(kwok9))
        clusters = clusters_from_schedule(sched)
        flat = sorted(n for c in clusters for n in c)
        assert flat == list(kwok9.nodes())
        assert len(clusters) == sched.processors_used()


class TestAssignments:
    @pytest.fixture
    def clustered(self, kwok9):
        sched = get_scheduler("DSC").schedule(kwok9, Machine.unbounded(kwok9))
        return clusters_from_schedule(sched)

    def test_sarkar_respects_proc_count(self, kwok9, clustered):
        proc_of = sarkar_assignment(kwok9, clustered, 2)
        assert set(proc_of) <= {0, 1}

    def test_rcp_respects_proc_count(self, kwok9, clustered):
        proc_of = rcp_assignment(kwok9, clustered, 2)
        assert set(proc_of) <= {0, 1}

    def test_clusters_stay_together(self, kwok9, clustered):
        for assign in (sarkar_assignment, rcp_assignment):
            proc_of = assign(kwok9, clustered, 2)
            for cluster in clustered:
                assert len({proc_of[n] for n in cluster}) == 1

    def test_rcp_balances_load(self, kwok9, clustered):
        proc_of = rcp_assignment(kwok9, clustered, 2)
        loads = [0.0, 0.0]
        for n in kwok9.nodes():
            loads[proc_of[n]] += kwok9.weight(n)
        # LPT guarantee: max load <= total (trivial) and both used when
        # there are >= 2 clusters.
        if len(clustered) >= 2:
            assert all(l > 0 for l in loads)

    def test_zero_procs_rejected(self, kwok9, clustered):
        with pytest.raises(MachineError):
            sarkar_assignment(kwok9, clustered, 0)
        with pytest.raises(MachineError):
            rcp_assignment(kwok9, clustered, 0)


class TestPipeline:
    @pytest.mark.parametrize("unc", ["DSC", "EZ", "LC", "DCP", "MD"])
    @pytest.mark.parametrize("method", ["sarkar", "rcp"])
    def test_valid_bounded_schedule(self, kwok9, unc, method):
        sched = cluster_schedule(kwok9, 2, unc=unc, method=method)
        validate(sched)
        assert sched.processors_used() <= 2

    def test_sarkar_no_worse_than_rcp_usually(self):
        """Order-aware assignment should win on aggregate — the paper's
        rationale for Sarkar's higher complexity.  Seeded suite: Sarkar
        must win or tie on a clear majority."""
        better = 0
        total = 0
        for seed in range(8):
            g = rgnos_graph(40, 1.0, 3, seed=seed)
            s = cluster_schedule(g, 4, unc="DSC", method="sarkar").length
            r = cluster_schedule(g, 4, unc="DSC", method="rcp").length
            total += 1
            if s <= r + 1e-9:
                better += 1
        assert better >= total * 0.6

    def test_rejects_non_unc(self, kwok9):
        with pytest.raises(ValueError):
            cluster_schedule(kwok9, 2, unc="MCP")

    def test_rejects_unknown_method(self, kwok9):
        with pytest.raises(ValueError):
            cluster_schedule(kwok9, 2, method="magic")

    def test_single_proc_serialises(self, kwok9):
        sched = cluster_schedule(kwok9, 1, unc="DSC", method="rcp")
        validate(sched)
        assert sched.length == pytest.approx(kwok9.total_computation)

"""Hypothesis properties of the adversarial mutation operators.

Every operator must preserve the two structural invariants the search
engine (and everything downstream of it) relies on:

* **DAG-ness** — the mutated graph is still acyclic.  ``TaskGraph``
  raises ``CycleError`` on construction otherwise, so merely building
  the result proves it; the tests also re-check via the topological
  order for explicitness.
* **connectivity** — a graph with no isolated nodes never gains one:
  mutations that could strand a node (edge removal, merges) must skip
  those sites instead.

Plus the search-level reproducibility contract: a zero-temperature
search draws no acceptance randomness, so it is a pure function of its
seed — two runs replay identical scores, lineages and instances.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adversarial.mutate import MUTATIONS, mutate, mutation_names
from repro.core.graph import TaskGraph
from strategies import task_graphs

PROPS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _isolated(graph: TaskGraph) -> set:
    return {
        n for n in graph.nodes()
        if graph.in_degree(n) == 0 and graph.out_degree(n) == 0
    }


def _connected_graph(graph: TaskGraph) -> TaskGraph:
    """The strategy graph with isolated nodes tied in (search inputs
    come from the generators, which guarantee this)."""
    edges = {(u, v): c for u, v, c in graph.edges()}
    for n in sorted(_isolated(graph)):
        if n == 0:
            edges[(0, 1)] = edges.get((0, 1), 1.0)
        else:
            edges[(n - 1, n)] = edges.get((n - 1, n), 1.0)
    return TaskGraph(graph.weights, edges, name=graph.name)


@pytest.mark.parametrize("op", mutation_names())
class TestMutationInvariants:
    @PROPS
    @given(graph=task_graphs(min_nodes=3, max_nodes=12), seed=st.integers(0, 2**16))
    def test_preserves_dag_and_connectivity(self, op, graph, seed):
        graph = _connected_graph(graph)
        rng = np.random.default_rng(seed)
        out = MUTATIONS[op](graph, rng, name=f"{graph.name}+{op}")
        if out is None:  # operator had no applicable site
            return
        # Construction already re-validated acyclicity (CycleError
        # otherwise); the topological order covering every node is the
        # explicit witness.
        assert sorted(out.topological_order) == list(out.nodes())
        assert not _isolated(out)
        # Model invariants survive too: positive weights, non-negative
        # communication costs.
        assert np.all(np.asarray(out.weights) > 0)
        assert all(c >= 0 for _, _, c in out.edges())

    @PROPS
    @given(graph=task_graphs(min_nodes=3, max_nodes=12), seed=st.integers(0, 2**16))
    def test_deterministic_in_rng_state(self, op, graph, seed):
        graph = _connected_graph(graph)
        a = MUTATIONS[op](graph, np.random.default_rng(seed), name="m")
        b = MUTATIONS[op](graph, np.random.default_rng(seed), name="m")
        if a is None or b is None:
            assert a is None and b is None
            return
        assert list(a.weights) == list(b.weights)
        assert a.edges() == b.edges()


class TestDispatcher:
    @PROPS
    @given(graph=task_graphs(min_nodes=3, max_nodes=10), seed=st.integers(0, 2**16))
    def test_mutate_always_applies_some_operator(self, graph, seed):
        graph = _connected_graph(graph)
        out = mutate(graph, np.random.default_rng(seed))
        assert out is not None
        mutated, op = out
        assert op in MUTATIONS
        assert not _isolated(mutated)

    def test_unknown_operator_rejected(self, diamond4):
        with pytest.raises(ValueError, match="unknown mutation"):
            mutate(diamond4, np.random.default_rng(0), ops=("no-such-op",))

    def test_restricted_operator_set_respected(self, diamond4):
        for seed in range(10):
            out = mutate(diamond4, np.random.default_rng(seed),
                         ops=("rescale-weight",))
            assert out is not None and out[1] == "rescale-weight"


class TestZeroTemperatureSearch:
    def test_zero_temperature_is_deterministic_under_a_fixed_seed(self):
        from repro.adversarial import SearchConfig, run_search
        from repro.generators.random_graphs import rgnos_graph

        seeds = [rgnos_graph(24, 1.0, 3, seed=19)]
        cfg = dict(pair=("LAST", "MCP"), steps=25, chains=2,
                   temperature=0.0, seed=11)
        first = run_search(SearchConfig(**cfg), seeds)
        second = run_search(SearchConfig(**cfg), seeds)
        for a, b in zip(first, second):
            assert a.score == b.score
            assert a.lineage == b.lineage
            assert a.stg == b.stg
            assert a.best_step == b.best_step

    def test_zero_temperature_never_accepts_a_regression(self):
        from repro.adversarial import SearchConfig, run_search
        from repro.generators.random_graphs import rgnos_graph

        seeds = [rgnos_graph(24, 1.0, 3, seed=19)]
        rows = run_search(SearchConfig(pair=("LAST", "MCP"), steps=25,
                                       chains=1, temperature=0.0, seed=3),
                          seeds)
        assert rows[0].score >= rows[0].start_score

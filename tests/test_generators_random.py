"""Tests for the RGBOS / RGNOS random-graph generators."""

import math

import numpy as np
import pytest

from repro import GeneratorError
from repro.generators.random_graphs import rgbos_graph, rgnos_graph
from repro.generators.rgpos import rgpos_instance


class TestRGBOS:
    def test_deterministic(self):
        a = rgbos_graph(20, 1.0, seed=5)
        b = rgbos_graph(20, 1.0, seed=5)
        assert a.edges() == b.edges()
        assert a.weights.tolist() == b.weights.tolist()

    def test_different_seeds_differ(self):
        a = rgbos_graph(20, 1.0, seed=5)
        b = rgbos_graph(20, 1.0, seed=6)
        assert a.edges() != b.edges()

    def test_node_count(self):
        for v in (10, 16, 32):
            assert rgbos_graph(v, 0.1, seed=0).num_nodes == v

    def test_weights_in_paper_range(self):
        g = rgbos_graph(32, 1.0, seed=1)
        assert g.weights.min() >= 2
        assert g.weights.max() <= 78

    def test_ccr_tracks_parameter(self):
        """Average generated CCR across seeds must approximate the target
        (each CCR decade apart is clearly separated)."""
        for target in (0.1, 1.0, 10.0):
            vals = [rgbos_graph(30, target, seed=s).ccr for s in range(10)]
            mean = sum(vals) / len(vals)
            assert target / 2 <= mean <= target * 2

    def test_no_isolated_nodes(self):
        g = rgbos_graph(30, 1.0, seed=3)
        for n in range(1, 30):
            assert g.in_degree(n) + g.out_degree(n) > 0

    def test_acyclic_by_construction(self):
        # Construction would raise CycleError otherwise; check edge
        # direction explicitly.
        g = rgbos_graph(24, 1.0, seed=9)
        assert all(u < v for u, v, _ in g.edges())

    def test_bad_params(self):
        with pytest.raises(GeneratorError):
            rgbos_graph(1, 1.0)
        with pytest.raises(GeneratorError):
            rgbos_graph(10, 0.0)


class TestRGNOS:
    def test_deterministic(self):
        a = rgnos_graph(60, 1.0, 3, seed=2)
        b = rgnos_graph(60, 1.0, 3, seed=2)
        assert a.edges() == b.edges()

    def test_node_count(self):
        for v in (50, 120):
            assert rgnos_graph(v, 1.0, 2, seed=0).num_nodes == v

    def test_width_scales_with_parallelism(self):
        """Average width must increase with the parallelism knob and sit
        near k*sqrt(v) (the paper's definition)."""
        v = 100
        widths = {}
        for par in (1, 3, 5):
            ws = [rgnos_graph(v, 1.0, par, seed=s).width() for s in range(5)]
            widths[par] = sum(ws) / len(ws)
        assert widths[1] < widths[3] < widths[5]
        for par in (1, 3, 5):
            target = par * math.sqrt(v)
            assert 0.5 * target <= widths[par] <= 1.8 * target

    def test_every_nonroot_layer_connected(self):
        g = rgnos_graph(80, 1.0, 2, seed=4)
        for n in range(g.num_nodes):
            if g.in_degree(n) == 0:
                # Entry nodes must all be in the first layer: they have
                # no parents, so nothing forced an edge to them.
                pass  # structural guarantee checked via width above
        # All nodes reachable have at least one parent except layer 0.
        entries = set(g.entry_nodes)
        level = [0] * g.num_nodes
        for u in g.topological_order:
            for s in g.successors(u):
                level[s] = max(level[s], level[u] + 1)
        for n in entries:
            assert level[n] == 0

    def test_ccr_tracks_parameter(self):
        for target in (0.1, 1.0, 10.0):
            vals = [rgnos_graph(60, target, 3, seed=s).ccr for s in range(6)]
            mean = sum(vals) / len(vals)
            assert target / 2 <= mean <= target * 2

    def test_bad_params(self):
        with pytest.raises(GeneratorError):
            rgnos_graph(50, 1.0, 0)
        with pytest.raises(GeneratorError):
            rgnos_graph(50, -1.0, 2)


class TestSeedThreading:
    """``seed`` accepts int | Generator with no global state anywhere."""

    def test_int_seed_equals_equivalent_generator(self):
        by_int = rgbos_graph(20, 1.0, seed=42)
        by_rng = rgbos_graph(20, 1.0, seed=np.random.default_rng(42))
        assert by_int.weights.tolist() == by_rng.weights.tolist()
        assert by_int.edges() == by_rng.edges()

    def test_generator_names_unique_but_reproducible(self):
        rng = np.random.default_rng(42)
        a = rgnos_graph(30, 1.0, 2, seed=rng)
        b = rgnos_graph(30, 1.0, 2, seed=rng)
        assert a.name != b.name  # no collision in name-keyed caches
        rng = np.random.default_rng(42)
        assert rgnos_graph(30, 1.0, 2, seed=rng).name == a.name
        assert "-srng-" in a.name

    def test_shared_stream_threads_through_calls(self):
        # One generator drives two graphs; replaying the stream from the
        # same seed reproduces the *pair*, while the two graphs differ.
        rng = np.random.default_rng(7)
        a1 = rgnos_graph(30, 1.0, 2, seed=rng)
        a2 = rgnos_graph(30, 1.0, 2, seed=rng)
        rng = np.random.default_rng(7)
        b1 = rgnos_graph(30, 1.0, 2, seed=rng)
        b2 = rgnos_graph(30, 1.0, 2, seed=rng)
        assert a1.edges() == b1.edges() and a2.edges() == b2.edges()
        assert a1.edges() != a2.edges()

    def test_rgpos_accepts_generator(self):
        by_int = rgpos_instance(40, 1.0, num_procs=4, seed=13)
        by_rng = rgpos_instance(40, 1.0, num_procs=4,
                                seed=np.random.default_rng(13))
        assert by_int.graph.edges() == by_rng.graph.edges()
        assert by_int.optimal_length == by_rng.optimal_length

    def test_module_has_no_global_rng_state(self):
        import repro.generators.random_graphs as m
        import repro.generators.rgpos as m2

        for mod in (m, m2):
            globals_with_state = [
                k for k, v in vars(mod).items()
                if isinstance(v, np.random.Generator)
            ]
            assert globals_with_state == []

"""Tests for the traced application graphs."""

import pytest

from repro import GeneratorError
from repro.core.attributes import critical_path
from repro.generators.traced import (
    cholesky_graph,
    fft_graph,
    gaussian_elimination_graph,
    laplace_graph,
)


class TestCholesky:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 12])
    def test_node_count_quadratic(self, n):
        g = cholesky_graph(n)
        assert g.num_nodes == n * (n + 1) // 2

    def test_single_column(self):
        g = cholesky_graph(1)
        assert g.num_nodes == 1
        assert g.num_edges == 0

    def test_dependency_structure(self):
        g = cholesky_graph(3)
        # Tasks in creation order: cdiv0, cmod(1,0), cmod(2,0), cdiv1,
        # cmod(2,1), cdiv2.
        assert g.num_nodes == 6
        assert g.has_edge(0, 1)  # cdiv0 -> cmod(1,0)
        assert g.has_edge(0, 2)  # cdiv0 -> cmod(2,0)
        assert g.has_edge(1, 3)  # cmod(1,0) -> cdiv1
        assert g.has_edge(3, 4)  # cdiv1 -> cmod(2,1)
        assert g.has_edge(2, 4)  # serial chain on column 2
        assert g.has_edge(4, 5)  # cmod(2,1) -> cdiv2

    def test_ccr_scaled(self):
        for target in (0.2, 1.0, 5.0):
            g = cholesky_graph(8, ccr=target)
            assert g.ccr == pytest.approx(target, rel=1e-6)

    def test_weights_decrease_with_column(self):
        g = cholesky_graph(6)
        # cdiv(0) handles the longest column -> the largest cdiv weight.
        assert g.weight(0) == 6.0

    def test_bad_dim(self):
        with pytest.raises(GeneratorError):
            cholesky_graph(0)


class TestGaussianElimination:
    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_node_count(self, n):
        g = gaussian_elimination_graph(n)
        # (n-1) pivots + sum_{k} (n-k-1) updates.
        expected = (n - 1) + sum(n - k - 1 for k in range(n - 1))
        assert g.num_nodes == expected

    def test_pivot_chain(self):
        g = gaussian_elimination_graph(3)
        # pivot0 -> update(0,1) -> pivot1 -> update(1,2).
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 3)

    def test_single_entry_single_exit(self):
        g = gaussian_elimination_graph(5)
        assert len(g.entry_nodes) == 1

    def test_bad_dim(self):
        with pytest.raises(GeneratorError):
            gaussian_elimination_graph(1)


class TestFFT:
    @pytest.mark.parametrize("m", [1, 2, 4])
    def test_node_count(self, m):
        g = fft_graph(m)
        assert g.num_nodes == (1 << m) * (m + 1)

    def test_butterfly_parents(self):
        g = fft_graph(2)
        # Stage-1 node (1, 0) has parents (0, 0) and (0, 1).
        assert g.predecessors(4) == [0, 1]
        # Stage-2 node (2, 0) has parents (1, 0) and (1, 2).
        assert g.predecessors(8) == [4, 6]

    def test_uniform_weights(self):
        g = fft_graph(3)
        assert set(g.weights.tolist()) == {1.0}

    def test_entries_are_inputs(self):
        g = fft_graph(2)
        assert len(g.entry_nodes) == 4
        assert len(g.exit_nodes) == 4

    def test_bad_m(self):
        with pytest.raises(GeneratorError):
            fft_graph(0)


class TestLaplace:
    def test_node_count(self):
        assert laplace_graph(4).num_nodes == 16
        assert laplace_graph(3, 5).num_nodes == 15

    def test_wavefront_cp(self):
        g = laplace_graph(3)
        # CP walks the full anti-diagonal sweep: 2*3 - 1 nodes.
        assert len(critical_path(g)) == 5

    def test_corner_dependencies(self):
        g = laplace_graph(3)
        assert g.predecessors(4) == [1, 3]  # centre needs north + west
        assert g.predecessors(0) == []

    def test_bad_dims(self):
        with pytest.raises(GeneratorError):
            laplace_graph(0)

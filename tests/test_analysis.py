"""Tests for the design-decision analysis (paper Section 7 automation)."""

import pytest

from repro.bench.analysis import (
    DecisionReport,
    design_decision_report,
    render_report,
)
from repro.metrics.measures import RunResult


def _row(alg, klass, graph, nsl):
    return RunResult(alg, klass, graph, 10, nsl * 100, nsl, 2, 0.0)


class TestDecisionReport:
    def test_advantage_sign(self):
        r = DecisionReport("x", "yes", "no", 1.0, 1.5, ["A"], ["B"])
        assert r.advantage == pytest.approx(0.5)

    def test_report_from_results(self):
        rows = [
            _row("MCP", "BNP", "g1", 1.2),    # cp_based, insertion
            _row("HLFET", "BNP", "g1", 1.5),  # neither
            _row("DCP", "UNC", "g1", 1.1),    # everything
            _row("LAST", "BNP", "g1", 1.9),
        ]
        reports = design_decision_report(rows)
        flags = {r.flag for r in reports}
        assert "cp_based" in flags
        assert "uses_insertion" in flags
        cp = next(r for r in reports if r.flag == "cp_based")
        assert set(cp.yes_algorithms) == {"MCP", "DCP"}
        assert cp.yes_mean_nsl < cp.no_mean_nsl  # CP-based wins here

    def test_apn_rows_excluded(self):
        rows = [
            _row("MCP", "BNP", "g1", 1.2),
            _row("HLFET", "BNP", "g1", 1.4),
            _row("BSA", "APN", "g1", 9.9),
        ]
        reports = design_decision_report(rows)
        for r in reports:
            assert "BSA" not in r.yes_algorithms + r.no_algorithms

    def test_render(self):
        rows = [
            _row("MCP", "BNP", "g1", 1.2),
            _row("HLFET", "BNP", "g1", 1.5),
        ]
        text = render_report(design_decision_report(rows))
        assert "winner" in text
        assert "MCP" in text

    def test_empty_side_skipped(self):
        rows = [_row("MCP", "BNP", "g1", 1.2)]
        reports = design_decision_report(rows)
        # Every flag has only one side populated -> nothing to compare.
        assert reports == []

    def test_empty_results_give_empty_report(self):
        assert design_decision_report([]) == []

    def test_apn_rows_excluded(self):
        # APN NSLs embed topology effects; only BNP/UNC participate.
        rows = [
            _row("MH", "APN", "g1", 9.9),
            _row("MCP", "BNP", "g1", 1.2),
            _row("HLFET", "BNP", "g1", 1.5),
        ]
        reports = design_decision_report(rows)
        for r in reports:
            assert "MH" not in r.yes_algorithms + r.no_algorithms

    def test_render_empty_report_is_header_only(self):
        text = render_report([])
        assert text.splitlines() == [
            "Design-decision analysis (mean NSL; lower is better)"]


class TestMatchedPairs:
    def test_pair_report_fields(self):
        from repro.bench.analysis import matched_pair_report

        rows = [
            _row("ISH", "BNP", "g1", 1.2), _row("HLFET", "BNP", "g1", 1.4),
            _row("ISH", "BNP", "g2", 1.3), _row("HLFET", "BNP", "g2", 1.3),
        ]
        pairs = matched_pair_report(rows)
        ish = next(p for p in pairs if p.favoured == "ISH")
        assert ish.wins == 1 and ish.losses == 0
        assert ish.advantage == pytest.approx(0.1)

    def test_render_pairs(self):
        from repro.bench.analysis import matched_pair_report, render_pairs

        rows = [
            _row("ISH", "BNP", "g1", 1.2), _row("HLFET", "BNP", "g1", 1.4),
        ]
        text = render_pairs(matched_pair_report(rows))
        assert "confirms" in text

    def test_empty_results_give_no_pairs(self):
        from repro.bench.analysis import matched_pair_report, render_pairs

        pairs = matched_pair_report([])
        assert pairs == []
        assert render_pairs(pairs).splitlines() == [
            "Matched-pair design-decision analysis (NSL; lower is better)"]

    def test_pair_skipped_when_baseline_missing(self):
        from repro.bench.analysis import matched_pair_report

        # ISH ran but HLFET never did: the pair has no common graphs.
        rows = [_row("ISH", "BNP", "g1", 1.2)]
        assert matched_pair_report(rows) == []

    def test_contradiction_is_flagged(self):
        from repro.bench.analysis import matched_pair_report, render_pairs

        rows = [
            _row("ISH", "BNP", "g1", 1.8), _row("HLFET", "BNP", "g1", 1.2),
        ]
        text = render_pairs(matched_pair_report(rows))
        assert "CONTRADICTS" in text


class TestPaperConclusions:
    def test_conclusions_on_seeded_suite(self):
        """Regenerate Section 7's findings on a seeded RGNOS slice via
        the matched pairs (group means confound: see analysis module)."""
        from repro.bench.analysis import matched_pair_report
        from repro.bench.runner import run_grid
        from repro.generators.random_graphs import rgnos_graph

        graphs = [rgnos_graph(60, ccr, 3, seed=s)
                  for ccr in (0.5, 2.0) for s in (0, 1, 2)]
        rows = run_grid(
            ["HLFET", "ISH", "MCP", "ETF", "DLS", "LAST", "DSC", "DCP",
             "LC", "EZ", "MD"],
            graphs,
        )
        pairs = {p.favoured: p for p in matched_pair_report(rows)}
        # Insertion (ISH over HLFET) and CP-based priorities (MCP over
        # HLFET) must not lose on aggregate.
        assert pairs["ISH"].advantage > -0.02
        assert pairs["MCP"].advantage > -0.02
        assert pairs["DCP"].advantage > -0.05

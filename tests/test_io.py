"""Tests for the io package: STG format, DOT export, Gantt charts."""

import io as _io

import pytest

from repro import GraphError, Machine, TaskGraph, get_scheduler
from repro.io import dump_stg, dumps_stg, gantt, load_stg, loads_stg, to_dot


class TestSTGRoundTrip:
    def test_simple(self, kwok9):
        text = dumps_stg(kwok9)
        back = loads_stg(text, name=kwok9.name)
        assert back.num_nodes == kwok9.num_nodes
        assert back.edges() == kwok9.edges()
        assert back.weights.tolist() == kwok9.weights.tolist()

    def test_file_objects(self, kwok9):
        buf = _io.StringIO()
        dump_stg(kwok9, buf)
        buf.seek(0)
        back = load_stg(buf)
        assert back.num_edges == kwok9.num_edges

    def test_float_weights_preserved(self):
        g = TaskGraph([1.5, 2.25], {(0, 1): 0.125})
        back = loads_stg(dumps_stg(g))
        assert back.weight(0) == 1.5
        assert back.comm_cost(0, 1) == 0.125

    def test_comments_ignored(self):
        text = "# hello\n2\n0 1.0 0\n1 2.0 1 0 3.0  # trailing\n"
        g = loads_stg(text)
        assert g.num_nodes == 2
        assert g.comm_cost(0, 1) == 3.0

    def test_any_record_order(self):
        text = "2\n1 2.0 1 0 3.0\n0 1.0 0\n"
        g = loads_stg(text)
        assert g.weight(0) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            loads_stg("")

    def test_truncated_rejected(self):
        with pytest.raises(GraphError):
            loads_stg("3\n0 1.0 0\n")

    def test_bad_token_rejected(self):
        with pytest.raises(GraphError):
            loads_stg("1\n0 abc 0\n")

    def test_duplicate_node_rejected(self):
        with pytest.raises(GraphError):
            loads_stg("2\n0 1.0 0\n0 1.0 0\n")

    def test_out_of_range_rejected(self):
        with pytest.raises(GraphError):
            loads_stg("1\n5 1.0 0\n")

    def test_trailing_tokens_rejected(self):
        with pytest.raises(GraphError):
            loads_stg("1\n0 1.0 0\n99\n")


class TestDot:
    def test_plain_graph(self, kwok9):
        text = to_dot(kwok9)
        assert text.startswith('digraph "psg-kwok-ahmad-9"')
        assert "0 -> 1" in text
        assert text.rstrip().endswith("}")

    def test_with_schedule_colours(self, kwok9):
        sched = get_scheduler("MCP").schedule(kwok9, Machine(3))
        text = to_dot(kwok9, sched)
        assert "fillcolor=" in text
        assert "P0@" in text or "P1@" in text


class TestGantt:
    def test_rows_per_used_proc(self, kwok9):
        sched = get_scheduler("MCP").schedule(kwok9, Machine(3))
        text = gantt(sched)
        rows = [l for l in text.splitlines() if l.startswith("P")]
        assert len(rows) == sched.processors_used()

    def test_empty_schedule(self, kwok9):
        from repro import Schedule

        assert "empty" in gantt(Schedule(kwok9, 2))

    def test_messages_listed(self, kwok9):
        from repro import NetworkMachine, Topology

        m = NetworkMachine(Topology.ring(4))
        sched = get_scheduler("MH").schedule(kwok9, m)
        text = gantt(sched, show_messages=True)
        if sched.messages:
            assert "messages:" in text

    def test_header_mentions_length(self, kwok9):
        sched = get_scheduler("MCP").schedule(kwok9, Machine(3))
        assert f"length={sched.length:g}" in gantt(sched)

"""Tests for the table artifacts (structure, not exact values)."""

import pytest

from repro.bench.runner import BNP_ALGORITHMS, UNC_ALGORITHMS
from repro.bench.tables import Table, render, table1


class TestRender:
    def test_basic_rendering(self):
        t = Table("T", "demo", ["a", "bb"], [["1", "2"], ["33", "4"]],
                  notes=["a note"])
        text = render(t)
        assert "T: demo" in text
        assert "a note" in text
        lines = text.splitlines()
        assert len(lines) == 1 + 1 + 1 + 2 + 1  # title, head, sep, rows, note

    def test_alignment(self):
        t = Table("T", "demo", ["col"], [["123456"]])
        text = render(t)
        assert "123456" in text


class TestTable1:
    @pytest.fixture(scope="class")
    def t1(self):
        return table1()

    def test_columns(self, t1):
        assert t1.columns[:2] == ["graph", "v"]
        for a in list(UNC_ALGORITHMS) + list(BNP_ALGORITHMS):
            assert a in t1.columns

    def test_row_per_psg(self, t1):
        from repro.bench.suites import psg_suite

        assert len(t1.rows) == len(psg_suite())

    def test_lengths_positive(self, t1):
        for row in t1.rows:
            for cell in row[2:]:
                assert float(cell) > 0

    def test_lengths_vary_across_algorithms(self, t1):
        """The paper's Table 1 finding: schedule lengths vary
        considerably despite small graph sizes."""
        varying_rows = sum(
            1 for row in t1.rows if len({c for c in row[2:]}) > 1
        )
        assert varying_rows >= len(t1.rows) // 2

    def test_apn_excluded(self, t1):
        assert "BSA" not in t1.columns
        assert "MH" not in t1.columns


class TestDegradationTables:
    """Structure checks on a tiny custom RGBOS grid (full tables are
    exercised by the benchmarks)."""

    @pytest.fixture(scope="class")
    def tiny(self):
        from repro.bench import tables as T
        from repro.generators.random_graphs import rgbos_graph

        graphs = [
            rgbos_graph(v, ccr, seed=v)
            for ccr in (0.1, 1.0, 10.0)
            for v in (8, 10)
        ]
        optima = T.rgbos_optima(graphs, budget=20_000)
        return T._degradation_table(
            "T", "tiny", ("MCP", "DCP"), graphs, optima, (0.1, 1.0, 10.0)
        )

    def test_columns(self, tiny):
        assert tiny.columns[0] == "v"
        assert "MCP@0.1" in tiny.columns
        assert "DCP@10" in tiny.columns

    def test_summary_rows(self, tiny):
        labels = [row[0] for row in tiny.rows]
        assert "#opt" in labels
        assert "avg deg" in labels

    def test_degradations_nonnegative_when_proved(self, tiny):
        for row in tiny.rows:
            if row[0] in ("#opt", "avg deg"):
                continue
            for cell in row[1:]:
                if cell.endswith("*") or cell == "-":
                    continue
                assert float(cell) >= 0.0

    def test_notes_mention_proof_rate(self, tiny):
        assert any("proved" in n for n in tiny.notes)

"""Unit tests for Schedule: placement, slot search, validation."""

import pytest

from repro import Machine, Schedule, ScheduleError, TaskGraph, validate
from repro.core.schedule import Message


@pytest.fixture
def g3():
    return TaskGraph([2.0, 3.0, 4.0], {(0, 1): 5.0, (0, 2): 1.0}, name="g3")


class TestPlacement:
    def test_place_and_query(self, g3):
        s = Schedule(g3, 2)
        pl = s.place(0, 0, 0.0)
        assert pl.finish == 2.0
        assert s.is_scheduled(0)
        assert s.proc_of(0) == 0
        assert s.start_of(0) == 0.0
        assert s.finish_of(0) == 2.0

    def test_double_placement_rejected(self, g3):
        s = Schedule(g3, 2)
        s.place(0, 0, 0.0)
        with pytest.raises(ScheduleError):
            s.place(0, 1, 5.0)

    def test_bad_proc_rejected(self, g3):
        s = Schedule(g3, 2)
        with pytest.raises(ScheduleError):
            s.place(0, 2, 0.0)

    def test_negative_start_rejected(self, g3):
        s = Schedule(g3, 2)
        with pytest.raises(ScheduleError):
            s.place(0, 0, -1.0)

    def test_overlap_rejected(self, g3):
        s = Schedule(g3, 1)
        s.place(0, 0, 0.0)
        with pytest.raises(ScheduleError):
            s.place(1, 0, 1.0)  # overlaps [0, 2)

    def test_overlap_before_rejected(self, g3):
        s = Schedule(g3, 1)
        s.place(1, 0, 2.0)  # [2, 5)
        with pytest.raises(ScheduleError):
            s.place(2, 0, 1.0)  # [1, 5) overlaps

    def test_abutting_tasks_allowed(self, g3):
        s = Schedule(g3, 1)
        s.place(0, 0, 0.0)
        s.place(1, 0, 2.0)
        assert s.length == 5.0

    def test_unplace(self, g3):
        s = Schedule(g3, 1)
        s.place(0, 0, 0.0)
        s.place(1, 0, 2.0)
        s.unplace(1)
        assert not s.is_scheduled(1)
        assert s.length == 2.0
        s.place(1, 0, 2.0)  # can re-place

    def test_unplace_missing(self, g3):
        s = Schedule(g3, 1)
        with pytest.raises(ScheduleError):
            s.unplace(0)

    def test_length_and_procs_used(self, g3):
        s = Schedule(g3, 3)
        assert s.length == 0.0
        s.place(0, 1, 0.0)
        s.place(1, 2, 7.0)
        assert s.length == 10.0
        assert s.processors_used() == 2
        assert s.used_proc_ids() == [1, 2]

    def test_tasks_on_sorted(self, g3):
        s = Schedule(g3, 1)
        s.place(1, 0, 6.0)
        s.place(0, 0, 0.0)
        assert [p.node for p in s.tasks_on(0)] == [0, 1]


class TestSlotSearch:
    def test_empty_proc(self, g3):
        s = Schedule(g3, 1)
        assert s.earliest_slot(0, 3.0, 2.0) == 3.0

    def test_non_insertion_appends(self, g3):
        s = Schedule(g3, 1)
        s.place(1, 0, 0.0)  # [0, 3)
        assert s.earliest_slot(0, 0.0, 2.0, insertion=False) == 3.0

    def test_insertion_before_first(self, g3):
        s = Schedule(g3, 1)
        s.place(1, 0, 5.0)  # [5, 8)
        assert s.earliest_slot(0, 0.0, 2.0, insertion=True) == 0.0

    def test_insertion_between(self, g3):
        s = Schedule(g3, 1)
        s.place(0, 0, 0.0)   # [0, 2)
        s.place(1, 0, 6.0)   # [6, 9)
        assert s.earliest_slot(0, 0.0, 4.0, insertion=True) == 2.0

    def test_insertion_gap_too_small(self, g3):
        s = Schedule(g3, 1)
        s.place(0, 0, 0.0)   # [0, 2)
        s.place(1, 0, 5.0)   # [5, 8)
        # Gap [2,5) is 3 wide; need 4 -> append at 8.
        assert s.earliest_slot(0, 0.0, 4.0, insertion=True) == 8.0

    def test_insertion_respects_est(self, g3):
        s = Schedule(g3, 1)
        s.place(0, 0, 0.0)   # [0, 2)
        s.place(1, 0, 10.0)  # [10, 13)
        assert s.earliest_slot(0, 4.0, 4.0, insertion=True) == 4.0

    def test_negative_duration_rejected(self, g3):
        s = Schedule(g3, 1)
        with pytest.raises(ScheduleError):
            s.earliest_slot(0, 0.0, -1.0)


class TestDataReadyTime:
    def test_same_proc_no_comm(self, g3):
        s = Schedule(g3, 2)
        s.place(0, 0, 0.0)
        assert s.data_ready_time(1, 0) == 2.0
        assert s.data_ready_time(1, 1) == 7.0  # + comm 5

    def test_unscheduled_parent_raises(self, g3):
        s = Schedule(g3, 2)
        with pytest.raises(ScheduleError):
            s.data_ready_time(1, 0)


class TestValidation:
    def _full(self, g3, same_proc=True):
        s = Schedule(g3, 2)
        s.place(0, 0, 0.0)
        if same_proc:
            s.place(1, 0, 2.0)
        else:
            s.place(1, 1, 7.0)
        s.place(2, 0, 5.0 if same_proc else 3.0)
        return s

    def test_valid_passes(self, g3):
        validate(self._full(g3))
        validate(self._full(g3, same_proc=False))

    def test_incomplete_fails(self, g3):
        s = Schedule(g3, 2)
        s.place(0, 0, 0.0)
        with pytest.raises(ScheduleError, match="incomplete"):
            validate(s)

    def test_comm_violation_fails(self, g3):
        s = Schedule(g3, 2)
        s.place(0, 0, 0.0)
        s.place(1, 1, 3.0)  # needs 2 + 5 = 7 on another proc
        s.place(2, 0, 2.0)
        with pytest.raises(ScheduleError, match="before its input"):
            validate(s)

    def test_precedence_violation_same_proc_fails(self, g3):
        s = Schedule(g3, 2)
        s.place(1, 0, 0.0)   # child first
        s.place(0, 0, 3.0)
        s.place(2, 1, 6.0)
        with pytest.raises(ScheduleError, match="before its input"):
            validate(s)

    def test_network_requires_messages(self, g3):
        from repro import Topology

        topo = Topology.ring(2)
        s = Schedule(g3, 2)
        s.place(0, 0, 0.0)
        s.place(1, 1, 7.0)
        s.place(2, 0, 2.0)
        with pytest.raises(ScheduleError, match="no message"):
            validate(s, network=topo)

    def test_network_message_accepted(self, g3):
        from repro import Topology

        topo = Topology.ring(2)
        s = Schedule(g3, 2)
        s.place(0, 0, 0.0)
        s.record_message(
            Message(0, 1, (0, 1), [((0, 1), 2.0, 7.0)], 7.0)
        )
        s.place(1, 1, 7.0)
        s.place(2, 0, 2.0)
        validate(s, network=topo)

    def test_network_overlapping_channel_fails(self, g3):
        from repro import Topology

        g = TaskGraph([1.0, 1.0, 1.0, 1.0],
                      {(0, 2): 5.0, (1, 3): 5.0}, name="x")
        topo = Topology.ring(2)
        s = Schedule(g, 2)
        s.place(0, 0, 0.0)
        s.place(1, 0, 1.0)
        s.record_message(Message(0, 2, (0, 1), [((0, 1), 1.0, 6.0)], 6.0))
        s.record_message(Message(1, 3, (0, 1), [((0, 1), 2.0, 7.0)], 7.0))
        s.place(2, 1, 6.0)
        s.place(3, 1, 7.0)
        with pytest.raises(ScheduleError, match="overlap on channel"):
            validate(s, network=topo)

    def test_message_wrong_route_fails(self, g3):
        from repro import Topology

        topo = Topology.ring(2)
        s = Schedule(g3, 2)
        s.place(0, 0, 0.0)
        s.record_message(Message(0, 1, (1, 0), [((1, 0), 2.0, 7.0)], 7.0))
        s.place(1, 1, 7.0)
        s.place(2, 0, 2.0)
        with pytest.raises(ScheduleError, match="route endpoints"):
            validate(s, network=topo)

    def test_message_hop_duration_fails(self, g3):
        from repro import Topology

        topo = Topology.ring(2)
        s = Schedule(g3, 2)
        s.place(0, 0, 0.0)
        s.record_message(Message(0, 1, (0, 1), [((0, 1), 2.0, 4.0)], 4.0))
        s.place(1, 1, 7.0)
        s.place(2, 0, 2.0)
        with pytest.raises(ScheduleError, match="edge cost"):
            validate(s, network=topo)

    def test_to_dict(self, g3):
        s = self._full(g3)
        d = s.to_dict()
        assert d[0] == (0, 0.0, 2.0)
        assert len(d) == 3

"""Tests for the declarative scenario engine (repro.scenarios).

Covers the spec schema (round-trip, actionable error messages), the
registry (every scenario compiles to a non-empty deterministic grid —
property-tested), compilation to the grid engine (variants, sweeps,
machine building) and the new machine axes the engine exposes
(heterogeneous speeds, link bandwidth).
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench.runner import BenchConfig, run_grid, run_one
from repro.core.exceptions import MachineError, ScheduleError
from repro.core.machine import Machine, NetworkMachine
from repro.core.schedule import Schedule, validate
from repro.generators.random_graphs import rgnos_graph
from repro.network.contention import LinkSchedule
from repro.network.topology import Topology
from repro.scenarios import (
    SCENARIOS,
    ScenarioSpec,
    SpecError,
    compile_scenario,
    get_scenario,
    load_spec,
    run_scenario,
    scenario_names,
    scenario_tables,
    validate_spec,
)

MINIMAL = {
    "name": "t",
    "graphs": {"generator": "rgbos", "sizes": [10], "ccrs": [1.0]},
    "algorithms": ["MCP"],
}


def spec_of(**overrides) -> dict:
    doc = json.loads(json.dumps(MINIMAL))
    doc.update(overrides)
    return doc


# ----------------------------------------------------------------------
# schema: round-trip and canonicalisation
# ----------------------------------------------------------------------
class TestSpecRoundTrip:
    def test_dict_spec_dict(self):
        spec = validate_spec(spec_of())
        doc = spec.to_dict()
        again = validate_spec(doc)
        assert again.to_dict() == doc
        assert again == spec

    def test_round_trip_preserves_all_fields(self):
        doc = {
            "name": "full-doc",
            "description": "everything set",
            "graphs": {"generator": "rgnos", "sizes": [20, 30],
                       "ccrs": [0.5], "parallelisms": [2], "seed": 3},
            "algorithms": ["MCP", {"class": "UNC"}],
            "machine": {"bnp_procs": 4,
                        "apn": {"kind": "ring", "procs": 4,
                                "bandwidth": 2.0}},
            "metrics": ["length", "nsl"],
            "sweep": {"machine.bnp_procs": [2, 4]},
        }
        spec = validate_spec(doc)
        out = spec.to_dict()
        assert out["description"] == "everything set"
        assert out["graphs"] == doc["graphs"]
        assert out["machine"]["apn"]["bandwidth"] == 2.0
        assert out["sweep"] == {"machine.bnp_procs": [2, 4]}
        assert validate_spec(out).to_dict() == out

    def test_registry_documents_round_trip(self):
        for name in scenario_names():
            spec = get_scenario(name)
            assert validate_spec(spec.to_dict()) == spec

    def test_algorithm_selectors_expand(self):
        spec = validate_spec(spec_of(algorithms=["DCP", {"class": "BNP"}]))
        names = spec.algorithm_names
        assert names[0] == "DCP"
        assert set(names[1:]) == {"HLFET", "ISH", "MCP", "ETF", "DLS",
                                  "LAST"}
        assert len(names) == len(set(names))


# ----------------------------------------------------------------------
# schema: violations carry actionable, dotted-path messages
# ----------------------------------------------------------------------
class TestSpecErrors:
    @pytest.mark.parametrize("mutate,needle", [
        (lambda d: d.pop("name"), "name"),
        (lambda d: d.update(name="bad name!"), "name"),
        (lambda d: d.pop("graphs"), "graphs"),
        (lambda d: d.pop("algorithms"), "algorithms"),
        (lambda d: d.update(algorithms=[]), "algorithms"),
        (lambda d: d.update(algorithms=["NOPE"]), "algorithms[0]"),
        (lambda d: d.update(algorithms=[{"class": "XXX"}]),
         "algorithms[0].class"),
        (lambda d: d.update(metrics=["nope"]), "metrics[0]"),
        (lambda d: d.update(graphs={"suite": "nope"}), "graphs.suite"),
        (lambda d: d.update(graphs={"suite": "psg", "generator": "rgnos"}),
         "graphs"),
        (lambda d: d.update(graphs={"generator": "rgbos",
                                    "ccrs": [1.0]}), "graphs.sizes"),
        (lambda d: d.update(graphs={"generator": "rgbos", "sizes": [10],
                                    "ccrs": [-1.0]}), "graphs.ccrs[0]"),
        (lambda d: d.update(graphs={"generator": "rgbos", "sizes": [10],
                                    "ccrs": [1.0], "bogus": 1}), "bogus"),
        (lambda d: d.update(machine={"bnp_procs": 0}),
         "machine.bnp_procs"),
        (lambda d: d.update(machine={"bnp_speeds": [1.0, -2.0]}),
         "machine.bnp_speeds[1]"),
        (lambda d: d.update(machine={"bnp_procs": 3,
                                     "bnp_speeds": [1, 1]}),
         "machine.bnp_speeds"),
        (lambda d: d.update(machine={"apn": {"kind": "warp"}}),
         "machine.apn.kind"),
        (lambda d: d.update(machine={"apn": {"kind": "ring"}}),
         "machine.apn.procs"),
        (lambda d: d.update(machine={"apn": {"kind": "hypercube",
                                             "dim": 3,
                                             "bandwidth": 0}}),
         "machine.apn.bandwidth"),
        (lambda d: d.update(sweep={"nope.path": [1]}), "sweep"),
        (lambda d: d.update(sweep={"machine.bnp_procs": []}), "sweep"),
        (lambda d: d.update(unknown_key=1), "unknown_key"),
    ])
    def test_violation_names_the_field(self, mutate, needle):
        doc = spec_of()
        mutate(doc)
        with pytest.raises(SpecError) as err:
            validate_spec(doc)
        assert needle in str(err.value)

    def test_bad_sweep_variant_reported_with_point(self):
        doc = spec_of(sweep={"machine.bnp_procs": [2, -1]})
        with pytest.raises(SpecError, match="variant.*bnp_procs"):
            validate_spec(doc)

    def test_unbounded_procs_with_speeds_rejected(self):
        """Speeds imply a bounded machine; asking for 'unbounded' too
        must be an error, not a silent bounded run."""
        doc = spec_of(machine={"bnp_procs": "unbounded",
                               "bnp_speeds": [2, 1]})
        with pytest.raises(SpecError, match="contradicts"):
            validate_spec(doc)

    def test_speeds_require_bnp_algorithms(self):
        doc = spec_of(algorithms=["MCP", "DCP"],
                      machine={"bnp_speeds": [2, 1]})
        with pytest.raises(SpecError, match="DCP"):
            validate_spec(doc)

    def test_load_spec_unknown_name(self):
        with pytest.raises(SpecError, match="neither a spec file"):
            load_spec("does-not-exist")

    def test_load_spec_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(SpecError, match="invalid JSON"):
            load_spec(str(path))

    def test_load_spec_toml(self, tmp_path):
        path = tmp_path / "ok.toml"
        path.write_text(
            'name = "t"\nalgorithms = ["MCP"]\n'
            '[graphs]\ngenerator = "rgbos"\nsizes = [10]\nccrs = [1.0]\n'
        )
        spec = load_spec(str(path))
        assert spec.name == "t"


# ----------------------------------------------------------------------
# registry: property test — every scenario compiles deterministically
# ----------------------------------------------------------------------
class TestRegistry:
    @settings(deadline=None, max_examples=len(SCENARIOS),
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.sampled_from(sorted(SCENARIOS)))
    def test_compiles_to_nonempty_deterministic_grid(self, name):
        # Scalability graphs are large; shrink every size axis so the
        # property (non-empty + deterministic) stays fast to check.
        doc = get_scenario(name).to_dict()
        graphs = doc["graphs"]
        for axis in ("sizes", "dims"):
            if axis in graphs:
                graphs[axis] = [min(graphs[axis])]
        graphs["limit"] = 3
        spec = validate_spec(doc)

        a = compile_scenario(spec)
        b = compile_scenario(spec)
        assert a.num_cells > 0
        assert [v.label for v in a.variants] == [v.label for v in b.variants]
        for va, vb in zip(a.variants, b.variants):
            assert va.num_cells > 0
            assert [g.name for g in va.graphs] == [g.name for g in vb.graphs]
            assert va.config.fingerprint() == vb.config.fingerprint()
            assert va.algorithms == vb.algorithms
            for ga, gb in zip(va.graphs, vb.graphs):
                assert ga.num_nodes == gb.num_nodes
                assert sorted(ga.edges()) == sorted(gb.edges())

    def test_names_sorted_and_validated(self):
        assert scenario_names() == sorted(SCENARIOS)
        for name in scenario_names():
            assert isinstance(get_scenario(name), ScenarioSpec)

    def test_variant_fingerprints_distinct_within_sweeps(self):
        """Machine sweeps must produce distinct cache keys per variant."""
        for name in ("hetero-speeds", "bandwidth-sweep",
                     "processor-ladder", "topology-zoo"):
            compiled = compile_scenario(get_scenario(name))
            fps = [v.config.fingerprint() for v in compiled.variants]
            assert len(set(fps)) == len(fps), name


# ----------------------------------------------------------------------
# compile + run end-to-end
# ----------------------------------------------------------------------
class TestCompileRun:
    def test_sweep_order_is_cartesian_in_axis_order(self):
        doc = spec_of(sweep={"machine.bnp_procs": [2, 4],
                             "graphs.sizes": [[10], [12]]})
        compiled = compile_scenario(validate_spec(doc))
        assert [v.label for v in compiled.variants] == [
            "bnp_procs=2,sizes=[10]",
            "bnp_procs=2,sizes=[12]",
            "bnp_procs=4,sizes=[10]",
            "bnp_procs=4,sizes=[12]",
        ]

    def test_rgpos_generator_supplies_constructed_optima(self):
        doc = spec_of(
            graphs={"generator": "rgpos", "sizes": [50], "ccrs": [1.0],
                    "procs": 8},
            algorithms=["MCP"],
            machine={"bnp_procs": 8},
            metrics=["length", "degradation"],
        )
        compiled = compile_scenario(validate_spec(doc))
        variant = compiled.variants[0]
        assert variant.optima and len(variant.optima) == 1
        result = run_scenario(compiled)
        rows = result.rows[0][1]
        assert all(r.degradation is not None for r in rows)

    def test_limit_truncates(self):
        doc = spec_of(graphs={"generator": "rgbos",
                              "sizes": [10, 12, 14], "ccrs": [1.0],
                              "limit": 2})
        compiled = compile_scenario(validate_spec(doc))
        assert len(compiled.variants[0].graphs) == 2

    def test_run_persists_and_resumes(self, tmp_path, monkeypatch):
        from repro.bench import runner as runner_mod
        from repro.bench.store import ResultStore

        doc = spec_of(sweep={"machine.bnp_procs": [2, 4]})
        compiled = compile_scenario(validate_spec(doc))
        store = ResultStore(str(tmp_path))
        first = run_scenario(compiled, store=store)
        assert len(store) == compiled.num_cells

        def boom(*args, **kwargs):
            raise AssertionError("re-scheduled despite resume")

        monkeypatch.setattr(runner_mod, "run_one", boom)
        again = run_scenario(compiled, store=store, resume=True)
        assert [rows for _v, rows in again.rows] == [
            rows for _v, rows in first.rows]

    def test_tables_cover_all_variants(self):
        compiled = compile_scenario(get_scenario("graph-shapes"))
        result = run_scenario(compiled, jobs=2)
        detail, summary = scenario_tables(result)
        labels = {row[0] for row in detail.rows}
        assert labels == {v.label for v in compiled.variants}
        assert detail.columns[:4] == ["variant", "graph", "v", "algorithm"]
        assert len(summary.rows) == sum(
            len(v.algorithms) for v in compiled.variants)


# ----------------------------------------------------------------------
# heterogeneous speeds: machine model semantics
# ----------------------------------------------------------------------
class TestHeterogeneousSpeeds:
    def test_machine_exec_time(self):
        m = Machine(2, speeds=[2.0, 0.5])
        assert m.exec_time(10.0, 0) == 5.0
        assert m.exec_time(10.0, 1) == 20.0
        assert Machine(2).exec_time(10.0, 1) == 10.0

    def test_uniform_speeds_normalised(self):
        assert Machine(3, speeds=[1, 1, 1]).speeds is None
        assert not Machine(3, speeds=[1, 1, 1]).is_heterogeneous

    def test_bad_speeds_rejected(self):
        with pytest.raises(MachineError):
            Machine(2, speeds=[1.0])
        with pytest.raises(MachineError):
            Machine(2, speeds=[1.0, 0.0])

    def test_schedule_durations_scale(self):
        g = rgnos_graph(10, 1.0, 2, seed=1)
        s = Schedule(g, 2, speeds=[2.0, 1.0])
        assert s.duration_of(0, 0) == g.weight(0) / 2.0
        assert s.duration_of(0, 1) == g.weight(0)
        pl = s.place(0, 0, 0.0)
        assert pl.finish == pytest.approx(g.weight(0) / 2.0)

    def test_validate_checks_speed_durations(self):
        """Placements whose durations ignore the speed model are caught:
        a full-weight serial schedule re-validated as if processor 0 ran
        at double speed must fail the duration check."""
        g = rgnos_graph(6, 1.0, 2, seed=2)
        schedule = Schedule(g, 1)
        t = 0.0
        for n in range(g.num_nodes):
            schedule.place(n, 0, t)
            t = schedule.finish_of(n)
        validate(schedule)  # consistent under uniform speeds
        schedule.speeds = (2.0,)
        with pytest.raises(ScheduleError, match="speed"):
            validate(schedule)

    @pytest.mark.parametrize("name", ["HLFET", "ISH", "MCP", "ETF",
                                      "DLS", "LAST"])
    def test_bnp_algorithms_valid_on_hetero_machine(self, name):
        g = rgnos_graph(30, 1.0, 3, seed=3)
        row = run_one(name, g,
                      config=BenchConfig(bnp_speeds=(4.0, 2.0, 1.0, 1.0)))
        assert row.length > 0  # run_one validates the schedule

    @pytest.mark.parametrize("name", ["HLFET", "ISH", "MCP", "LAST"])
    def test_speed_profile_permutation_invariant(self, name):
        """Processor choice must track speeds, not processor ids: the
        same multiset of speed factors gives the same makespan no
        matter where the fast processor sits (min-EFT generalisation)."""
        g = rgnos_graph(40, 1.0, 3, seed=4)
        lengths = {
            run_one(name, g,
                    config=BenchConfig(bnp_speeds=speeds)).length
            for speeds in ((8, 1, 1, 1), (1, 8, 1, 1), (1, 1, 1, 8))
        }
        assert len(lengths) == 1

    def test_single_fast_processor_halves_serial_makespan(self):
        """On one processor there is no communication, so the makespan
        scales exactly with the processor's speed."""
        g = rgnos_graph(20, 1.0, 2, seed=4)
        base = run_one("MCP", g, machine=Machine(1))
        fast = run_one("MCP", g, machine=Machine(1, speeds=[2.0]))
        assert fast.length == pytest.approx(base.length / 2.0)

    def test_fingerprint_distinguishes_speeds(self):
        a = BenchConfig(bnp_procs=4)
        b = BenchConfig(bnp_speeds=(2.0, 1.0, 1.0, 1.0))
        assert a.fingerprint() != b.fingerprint()

    def test_uniform_speeds_share_bounded_fingerprint(self):
        a = BenchConfig(bnp_procs=4)
        b = BenchConfig(bnp_speeds=(1.0, 1.0, 1.0, 1.0))
        assert a.fingerprint() == b.fingerprint()

    def test_hetero_grid_through_engine_parallel(self):
        g = [rgnos_graph(20, 1.0, 2, seed=s) for s in (5, 6)]
        config = BenchConfig(bnp_speeds=(2.0, 1.0, 1.0))
        serial = run_grid(["MCP", "HLFET"], g, config=config)
        fanned = run_grid(["MCP", "HLFET"], g, config=config, jobs=2)
        assert [(r.algorithm, r.graph, r.length) for r in serial] == [
            (r.algorithm, r.graph, r.length) for r in fanned]


# ----------------------------------------------------------------------
# link bandwidth: network model semantics
# ----------------------------------------------------------------------
class TestLinkBandwidth:
    def test_transfer_time(self):
        topo = Topology.ring(4)
        assert topo.transfer_time(10.0) == 10.0
        half = topo.with_bandwidth(0.5)
        assert half.transfer_time(10.0) == 20.0
        assert half.links == topo.links
        with pytest.raises(MachineError):
            Topology.ring(4).with_bandwidth(0.0)

    def test_network_machine_delay_scales(self):
        chain = Topology.chain(3)
        m1 = NetworkMachine(chain)
        m2 = NetworkMachine(chain.with_bandwidth(2.0))
        assert m1.comm_delay(0, 2, 10.0) == 20.0
        assert m2.comm_delay(0, 2, 10.0) == 10.0

    def test_link_schedule_hop_durations(self):
        topo = Topology.chain(3).with_bandwidth(4.0)
        links = LinkSchedule(topo)
        msg = links.commit(0, 1, 0, 2, ready=0.0, cost=8.0)
        assert [(s, f) for (_ch, s, f) in msg.hops] == [(0.0, 2.0),
                                                        (2.0, 4.0)]
        assert msg.arrival == 4.0

    def test_apn_schedules_validate_under_bandwidth(self):
        g = rgnos_graph(20, 2.0, 3, seed=7)
        for bw in (0.5, 2.0):
            topo = Topology.hypercube(2).with_bandwidth(bw)
            row = run_one("MH", g, config=BenchConfig(apn_topology=topo))
            assert row.length > 0  # validated under the bandwidth model

    def test_fingerprint_distinguishes_bandwidth(self):
        base = Topology.hypercube(3)
        fps = {BenchConfig(apn_topology=base).fingerprint(),
               BenchConfig(
                   apn_topology=base.with_bandwidth(2.0)).fingerprint()}
        assert len(fps) == 2

    def test_starved_links_visibly_hurt_mh(self):
        g = rgnos_graph(30, 10.0, 3, seed=8)
        lengths = []
        for bw in (0.25, 4.0):
            topo = Topology.hypercube(3).with_bandwidth(bw)
            lengths.append(
                run_one("MH", g,
                        config=BenchConfig(apn_topology=topo)).length)
        assert lengths[0] > lengths[1]


# ----------------------------------------------------------------------
# the online information-mode axis
# ----------------------------------------------------------------------
class TestOnlineBlock:
    def test_round_trips_and_canonicalises(self):
        doc = spec_of(online={"imodes": ["Mean", "exact", "mean"],
                              "seed": 4})
        spec = validate_spec(doc)
        assert spec.online == {"imodes": ["mean", "exact"], "seed": 4}
        assert validate_spec(spec.to_dict()).online == spec.online

    @pytest.mark.parametrize("block, needle", [
        ({"imodes": ["psychic"]}, "information mode"),
        ({"imodes": []}, "non-empty"),
        ({"seed": -1}, "non-negative"),
        ({"modes": ["exact"]}, "unknown keys"),
    ])
    def test_bad_blocks_named(self, block, needle):
        with pytest.raises(SpecError, match=needle):
            validate_spec(spec_of(online=block))

    def test_requires_component_expressible_algorithms(self):
        doc = spec_of(algorithms=["MCP", "DSC"],
                      online={"imodes": ["exact"]})
        with pytest.raises(SpecError, match="DSC"):
            validate_spec(doc)

    def test_online_is_sweepable(self):
        doc = spec_of(online={"imodes": ["exact"]},
                      sweep={"online.imodes": [["exact"], ["blind"]]})
        spec = validate_spec(doc)
        assert spec.num_variants() == 2

    def test_compile_appends_online_counterparts(self):
        from repro.scenarios import online_counterpart

        doc = spec_of(algorithms=["MCP", "HLFET"],
                      online={"imodes": ["exact", "blind"]})
        compiled = compile_scenario(validate_spec(doc))
        algos = compiled.variants[0].algorithms
        assert algos[:2] == ("MCP", "HLFET")
        for imode in ("exact", "blind"):
            for alg in ("MCP", "HLFET"):
                assert online_counterpart(alg, imode) in algos
        assert len(algos) == 6

    def test_online_gap_registered(self):
        assert "online-gap" in scenario_names()
        spec = get_scenario("online-gap")
        assert spec.online["imodes"] == ["exact", "blind", "mean", "user"]

    def test_run_and_table_exact_anchor(self):
        from repro.scenarios import online_tables

        doc = spec_of(
            graphs={"generator": "rgnos", "sizes": [14], "ccrs": [1.0],
                    "parallelisms": [3], "seed": 5},
            algorithms=["MCP", "HLFET"],
            machine={"bnp_procs": 4},
            online={"imodes": ["exact", "mean"]})
        result = run_scenario(compile_scenario(validate_spec(doc)))
        table = online_tables(result)
        rows = {(r[1], r[2]): r for r in table.rows}
        # Zero noise + exact mode reproduces the static schedule, so
        # gap% and rank shift are exactly zero for every algorithm.
        for alg in ("MCP", "HLFET"):
            assert rows[(alg, "exact")][5] == "+0.00"
            assert rows[(alg, "exact")][8] == "+0.00"
        assert {r[2] for r in table.rows} == {"exact", "mean"}

"""Unit tests for bench figure/table internals on synthetic results."""

import math

import pytest

from repro.bench.figures import _nsl_panel
from repro.bench.tables import _ccr_of_name
from repro.metrics.measures import RunResult


def _row(alg, graph, v, nsl):
    return RunResult(alg, "BNP", graph, v, nsl * 100, nsl, 2, 0.0)


class TestNslPanel:
    def test_averages_per_size(self):
        rows = [
            _row("MCP", "g1", 50, 1.0), _row("MCP", "g2", 50, 2.0),
            _row("MCP", "g3", 100, 3.0),
        ]
        fig = _nsl_panel("F", "t", ["MCP"], rows, [50, 100])
        assert fig.series["MCP"] == [pytest.approx(1.5), pytest.approx(3.0)]

    def test_missing_size_is_nan(self):
        rows = [_row("MCP", "g1", 50, 1.0)]
        fig = _nsl_panel("F", "t", ["MCP"], rows, [50, 100])
        assert math.isnan(fig.series["MCP"][1])

    def test_other_algorithms_ignored(self):
        rows = [_row("MCP", "g1", 50, 1.0), _row("ETF", "g1", 50, 9.0)]
        fig = _nsl_panel("F", "t", ["MCP"], rows, [50])
        assert fig.series["MCP"] == [pytest.approx(1.0)]
        assert "ETF" not in fig.series


class TestCcrOfName:
    def test_extracts(self):
        assert _ccr_of_name("rgbos-v20-ccr0.1-s5") == pytest.approx(0.1)
        assert _ccr_of_name("rgpos-v50-ccr10-p8-s1") == pytest.approx(10.0)

    def test_missing_tag_raises(self):
        with pytest.raises(ValueError):
            _ccr_of_name("plain-graph-name")


class TestKwok9Optimal:
    def test_bnb_confirms_best_known(self, kwok9):
        """Lock the optimal schedule length of the canonical 9-node
        example: the B&B proves 15 — strictly below every heuristic in
        Table 1 (LAST's greedy 16 is the closest)."""
        from repro.optimal import solve_optimal

        res = solve_optimal(kwok9, budget=200_000)
        assert res.proved
        assert res.length == pytest.approx(15.0)

"""Tests for the adversarial instance-search subsystem.

Covers the objective scores, the Pareto frontier algebra, the search
driver's store/resume contract (the PISA acceptance bar: a 50-node BNP
pair must reach a makespan ratio >= 1.15, reproducibly, and replay
from the store without recomputation), and the scenario-layer wiring.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.adversarial import (
    FrontierPoint,
    Objective,
    ParetoFrontier,
    SearchConfig,
    SearchRow,
    adv_store,
    run_search,
)
from repro.generators.random_graphs import rgnos_graph


@pytest.fixture(scope="module")
def seed50():
    return rgnos_graph(50, 1.0, 3, seed=131)


@pytest.fixture(scope="module")
def seed20():
    return rgnos_graph(20, 1.0, 3, seed=19)


# ----------------------------------------------------------------------
# objectives
# ----------------------------------------------------------------------
class TestObjective:
    def test_ratio_matches_direct_schedules(self, seed20):
        from repro import Machine, get_scheduler

        obj = Objective(alg_a="LAST", alg_b="MCP")
        val = obj.evaluate(seed20)
        a = get_scheduler("LAST").schedule(
            seed20, Machine.unbounded(seed20)).length
        b = get_scheduler("MCP").schedule(
            seed20, Machine.unbounded(seed20)).length
        assert val.length_a == a and val.length_b == b
        assert val.score == pytest.approx(a / b)

    def test_slack_gap_is_difference_of_normalized_slacks(self, seed20):
        from repro import Machine, get_scheduler
        from repro.sim import schedule_slack

        obj = Objective(alg_a="LAST", alg_b="MCP", kind="slack")
        val = obj.evaluate(seed20)
        sa = schedule_slack(get_scheduler("LAST").schedule(
            seed20, Machine.unbounded(seed20)))
        sb = schedule_slack(get_scheduler("MCP").schedule(
            seed20, Machine.unbounded(seed20)))
        assert val.score == pytest.approx(sb - sa)

    def test_sim_degradation_reproducible_and_above_one(self, seed20):
        obj = Objective(alg_a="MCP", alg_b="HLFET", kind="sim",
                        trials=10, noise=0.3, seed=3)
        first = obj.evaluate(seed20)
        again = obj.evaluate(seed20)
        assert first == again  # noise stream derived, not ambient
        assert first.score > 0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown objective"):
            Objective(alg_a="MCP", alg_b="HLFET", kind="nope")

    def test_fingerprint_separates_kinds_and_pairs(self):
        fps = {
            Objective(alg_a="MCP", alg_b="HLFET").fingerprint(),
            Objective(alg_a="HLFET", alg_b="MCP").fingerprint(),
            Objective(alg_a="MCP", alg_b="HLFET",
                      kind="slack").fingerprint(),
            Objective(alg_a="MCP", alg_b="HLFET", kind="sim").fingerprint(),
        }
        assert len(fps) == 4


# ----------------------------------------------------------------------
# frontier
# ----------------------------------------------------------------------
def _point(pair="A/B", v=10, score=1.0, instance="g"):
    return FrontierPoint(pair=pair, num_nodes=v, score=score,
                         instance=instance, chain="chain-00",
                         objective="ratio", stg="")


class TestParetoFrontier:
    def test_dominated_points_are_rejected_and_evicted(self):
        f = ParetoFrontier()
        assert f.add(_point(v=20, score=1.2, instance="big"))
        # Smaller and worse: joins the front (trade-off point).
        assert f.add(_point(v=10, score=1.1, instance="small"))
        # Dominated by "big": larger and no better.
        assert not f.add(_point(v=30, score=1.2, instance="dom"))
        # Dominates both: evicts them.
        assert f.add(_point(v=10, score=1.5, instance="best"))
        assert [p.instance for p in f.front("A/B")] == ["best"]

    def test_domination_never_crosses_objectives(self):
        f = ParetoFrontier()
        assert f.add(_point(v=20, score=1.4, instance="ratio-pt"))
        # A slack-gap score of 0.05 is incomparable with a ratio of
        # 1.4 — it must join the front, not be evicted by it.
        slack = FrontierPoint(pair="A/B", num_nodes=30, score=0.05,
                              instance="slack-pt", chain="chain-01",
                              objective="slack", stg="")
        assert f.add(slack)
        assert {p.instance for p in f.front("A/B")} == \
               {"ratio-pt", "slack-pt"}

    def test_update_is_idempotent(self):
        f = ParetoFrontier()
        row = SearchRow(algorithm="A/B", graph="chain-00",
                        objective="ratio", score=1.3, start_score=1.0,
                        length_a=13.0, length_b=10.0, num_nodes=9,
                        num_edges=12, steps=5, accepted=3, best_step=4,
                        seed=0, instance="inst", lineage=["add-edge"],
                        stg="")
        assert f.update([row]) == 1
        assert f.update([row]) == 0
        assert len(f) == 1

    def test_round_trips_through_json(self, tmp_path):
        path = str(tmp_path / "frontier.json")
        f = ParetoFrontier(path)
        f.add(_point(v=10, score=1.4, instance="x"))
        f.add(_point(pair="C/D", v=8, score=1.1, instance="y"))
        f.save()
        g = ParetoFrontier(path)
        assert g.pairs() == ["A/B", "C/D"]
        assert g.front("A/B")[0].score == 1.4

    def test_corrupt_file_raises_value_error(self, tmp_path):
        path = tmp_path / "frontier.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            ParetoFrontier(str(path))


# ----------------------------------------------------------------------
# the search driver
# ----------------------------------------------------------------------
class TestSearch:
    def test_acceptance_bar_50_node_bnp_pair(self, seed50, tmp_path):
        """The PR's acceptance criterion, end to end.

        A 50-node BNP pair reaches makespan ratio >= 1.15, the run is
        reproducible under its fixed seed, and ``resume`` replays the
        store without recomputing any chain.
        """
        cfg = SearchConfig(pair=("LAST", "MCP"), steps=150, chains=4,
                           temperature=0.02, cooling=0.97, seed=5)
        store = adv_store(str(tmp_path))
        rows = run_search(cfg, [seed50], jobs=4, store=store)
        assert max(r.score for r in rows) >= 1.15
        # Reproducible: a fresh run (no store) replays bit-identically.
        again = run_search(cfg, [seed50])
        assert [(r.score, r.lineage, r.stg) for r in rows] == \
               [(r.score, r.lineage, r.stg) for r in again]
        # Resume: cached chains only — recomputation would blow up.
        import repro.adversarial.search as search_mod

        def boom(args):  # pragma: no cover - would mean a cache miss
            raise AssertionError("resume recomputed a cached chain")

        original = search_mod._run_chain
        search_mod._run_chain = boom
        try:
            replayed = run_search(cfg, [seed50],
                                  store=adv_store(str(tmp_path)),
                                  resume=True)
        finally:
            search_mod._run_chain = original
        assert [(r.score, r.lineage) for r in replayed] == \
               [(r.score, r.lineage) for r in rows]

    def test_rows_persist_and_reload_with_lineage(self, seed20, tmp_path):
        cfg = SearchConfig(pair=("LAST", "MCP"), steps=20, chains=2,
                           temperature=0.0, seed=9)
        store = adv_store(str(tmp_path))
        rows = run_search(cfg, [seed20], store=store)
        reloaded = adv_store(str(tmp_path)).rows()
        assert [(r.graph, r.score, r.lineage) for r in reloaded] == \
               [(r.graph, r.score, r.lineage) for r in rows]
        assert all(isinstance(r.lineage, list) for r in reloaded)
        doc = json.load(open(os.path.join(str(tmp_path), "adv.json")))
        assert doc["rows"][0]["algorithm"] == "LAST/MCP"

    def test_best_instance_reloads_and_reproduces_score(self, seed20):
        from repro.io.stg import loads_stg
        from repro import Machine, get_scheduler

        cfg = SearchConfig(pair=("LAST", "MCP"), steps=25, chains=1,
                           temperature=0.0, seed=9)
        row = run_search(cfg, [seed20])[0]
        graph = loads_stg(row.stg, name=row.instance)
        assert graph.num_nodes == row.num_nodes
        a = get_scheduler("LAST").schedule(
            graph, Machine.unbounded(graph)).length
        b = get_scheduler("MCP").schedule(
            graph, Machine.unbounded(graph)).length
        assert a / b == pytest.approx(row.score)

    def test_sim_objective_score_reproduces_from_exported_instance(
            self, seed20):
        """The sim noise stream is keyed by graph name, so the
        persisted score must be the one evaluated under the instance's
        final name — re-scoring the exported graph reproduces it."""
        from repro.bench.runner import BenchConfig
        from repro.io.stg import loads_stg

        cfg = SearchConfig(pair=("MCP", "HLFET"), objective="sim",
                           steps=10, chains=1, temperature=0.0,
                           seed=4, trials=10, noise=0.3)
        row = run_search(cfg, [seed20])[0]
        graph = loads_stg(row.stg, name=row.instance)
        rescored = cfg.objective_for(BenchConfig()).evaluate(graph)
        assert rescored.score == pytest.approx(row.score)

    def test_resume_never_crosses_seed_populations(self, seed20, tmp_path):
        """Different starting graphs must not replay each other's chains.

        The chain keys (pair, chain-NN) are identical across seed
        populations, so the seeds' identity has to live in the search
        fingerprint — e.g. two sweep points of a ``graphs`` axis
        sharing one store.
        """
        other = rgnos_graph(30, 1.0, 3, seed=77)
        cfg = SearchConfig(pair=("LAST", "MCP"), steps=10, chains=1,
                           temperature=0.0, seed=2)
        store = adv_store(str(tmp_path))
        first = run_search(cfg, [seed20], store=store, resume=True)
        second = run_search(cfg, [other], store=store, resume=True)
        assert first[0].stg != second[0].stg  # computed, not replayed
        # Both populations stay resumable side by side in one store.
        assert len(adv_store(str(tmp_path))) == 2

    def test_chains_cycle_over_multiple_seed_graphs(self, seed20):
        other = rgnos_graph(16, 1.0, 2, seed=23)
        cfg = SearchConfig(pair=("LAST", "MCP"), steps=5, chains=3,
                           temperature=0.0, seed=1)
        rows = run_search(cfg, [seed20, other])
        # chain-02 wraps back to the first seed graph.
        assert rows[0].graph == "chain-00" and rows[2].graph == "chain-02"

    def test_needs_at_least_one_seed(self):
        cfg = SearchConfig(pair=("LAST", "MCP"))
        with pytest.raises(ValueError, match="seed graph"):
            run_search(cfg, [])

    def test_bad_knobs_rejected(self):
        with pytest.raises(ValueError, match="steps"):
            SearchConfig(pair=("LAST", "MCP"), steps=0)
        with pytest.raises(ValueError, match="temperature"):
            SearchConfig(pair=("LAST", "MCP"), temperature=-1.0)
        with pytest.raises(ValueError, match="cooling"):
            SearchConfig(pair=("LAST", "MCP"), cooling=0.0)


# ----------------------------------------------------------------------
# scenario integration
# ----------------------------------------------------------------------
class TestScenarioIntegration:
    def test_spec_block_validates_and_round_trips(self):
        from repro.scenarios import validate_spec

        spec = validate_spec({
            "name": "adv-test",
            "graphs": {"generator": "rgnos", "sizes": [16], "ccrs": [1.0],
                       "parallelisms": [2], "seed": 3},
            "algorithms": ["LAST", "MCP"],
            "adversarial": {"pair": ["last", "mcp"], "steps": 5,
                            "chains": 1, "temperature": 0},
        })
        assert spec.adversarial["pair"] == ["LAST", "MCP"]
        assert validate_spec(spec.to_dict()) == spec

    @pytest.mark.parametrize("block,message", [
        ({"pair": ["LAST"]}, "exactly two"),
        ({"pair": ["LAST", "NOPE"]}, "unknown algorithm"),
        ({"pair": ["LAST", "DSC"]}, "one class"),
        ({"pair": ["LAST", "MCP"], "objective": "x"}, "unknown objective"),
        ({"pair": ["LAST", "MCP"], "temperature": -1}, "temperature"),
        ({"pair": ["LAST", "MCP"], "ops": ["zap"]}, "unknown mutation"),
        ({"pair": ["LAST", "MCP"], "bogus": 1}, "unknown keys"),
    ])
    def test_bad_blocks_rejected(self, block, message):
        from repro.scenarios import SpecError, validate_spec

        with pytest.raises(SpecError, match=message):
            validate_spec({
                "name": "bad",
                "graphs": {"generator": "rgnos", "sizes": [16],
                           "ccrs": [1.0], "parallelisms": [2]},
                "algorithms": ["LAST", "MCP"],
                "adversarial": block,
            })

    def test_registry_scenarios_compile_to_search_configs(self):
        from repro.scenarios import compile_scenario, get_scenario

        for name in ("adversarial-bnp", "adversarial-apn"):
            compiled = compile_scenario(get_scenario(name))
            assert compiled.variants[0].adv is not None
            assert compiled.variants[0].adv.chains >= 1

    def test_run_adv_scenario_produces_tables(self, tmp_path):
        from repro.scenarios import (
            adv_tables,
            compile_scenario,
            run_adv_scenario,
            validate_spec,
        )

        spec = validate_spec({
            "name": "adv-mini",
            "graphs": {"generator": "rgnos", "sizes": [16], "ccrs": [1.0],
                       "parallelisms": [2], "seed": 3},
            "algorithms": ["LAST", "MCP"],
            "adversarial": {"pair": ["LAST", "MCP"], "steps": 8,
                            "chains": 2, "temperature": 0, "seed": 1},
        })
        result = run_adv_scenario(compile_scenario(spec),
                                  store=adv_store(str(tmp_path)))
        detail, front = adv_tables(result)
        assert len(detail.rows) == 2
        assert len(front.rows) >= 1
        assert detail.rows[0][1] == "LAST/MCP"

    def test_scenario_without_block_fails_cleanly(self):
        from repro.scenarios import (
            SpecError,
            compile_scenario,
            get_scenario,
            run_adv_scenario,
        )

        compiled = compile_scenario(get_scenario("graph-shapes"))
        with pytest.raises(SpecError, match="no adversarial block"):
            run_adv_scenario(compiled)

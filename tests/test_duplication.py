"""Tests for the TDB extension: DuplicationSchedule and DSH."""

import pytest

from repro import Machine, ScheduleError, TaskGraph
from repro.duplication import (
    DSH,
    DuplicationSchedule,
    dsh_schedule,
    validate_duplication,
)
from repro.generators.random_graphs import rgbos_graph


@pytest.fixture
def fork():
    """One root, two children, expensive messages: the duplication
    poster child."""
    return TaskGraph(
        [2.0, 3.0, 3.0],
        {(0, 1): 50.0, (0, 2): 50.0},
        name="fork-heavy",
    )


class TestDuplicationSchedule:
    def test_place_and_query(self, fork):
        s = DuplicationSchedule(fork, 2)
        cp = s.place_copy(0, 0, 0.0)
        assert cp.copy == 0
        assert s.has_copy(0)
        assert s.copy_on(0, 0) is cp
        assert s.copy_on(0, 1) is None

    def test_second_copy_other_proc(self, fork):
        s = DuplicationSchedule(fork, 2)
        s.place_copy(0, 0, 0.0)
        cp2 = s.place_copy(0, 1, 0.0)
        assert cp2.copy == 1
        assert len(s.copies_of(0)) == 2

    def test_duplicate_on_same_proc_rejected(self, fork):
        s = DuplicationSchedule(fork, 2)
        s.place_copy(0, 0, 0.0)
        with pytest.raises(ScheduleError):
            s.place_copy(0, 0, 5.0)

    def test_overlap_rejected(self, fork):
        s = DuplicationSchedule(fork, 1)
        s.place_copy(0, 0, 0.0)
        with pytest.raises(ScheduleError):
            s.place_copy(1, 0, 1.0)

    def test_drt_uses_best_copy(self, fork):
        s = DuplicationSchedule(fork, 2)
        s.place_copy(0, 0, 0.0)
        s.place_copy(0, 1, 4.0)  # later copy, but local to P1
        # On P1 the local copy (finish 6) beats remote 2 + 50.
        assert s.data_ready_time(1, 1) == pytest.approx(6.0)
        assert s.data_ready_time(1, 0) == pytest.approx(2.0)

    def test_length_counts_all_copies(self, fork):
        s = DuplicationSchedule(fork, 2)
        s.place_copy(0, 0, 0.0)
        s.place_copy(0, 1, 10.0)
        assert s.length == 12.0


class TestValidation:
    def test_valid_duplication_accepted(self, fork):
        s = DuplicationSchedule(fork, 2)
        s.place_copy(0, 0, 0.0)
        s.place_copy(1, 0, 2.0)
        s.place_copy(0, 1, 0.0)  # duplicate root on P1
        s.place_copy(2, 1, 2.0)  # child fed by the local copy
        validate_duplication(s)

    def test_missing_copy_fails(self, fork):
        s = DuplicationSchedule(fork, 2)
        s.place_copy(0, 0, 0.0)
        with pytest.raises(ScheduleError, match="no scheduled copy"):
            validate_duplication(s)

    def test_early_start_fails(self, fork):
        s = DuplicationSchedule(fork, 2)
        s.place_copy(0, 0, 0.0)
        s.place_copy(1, 0, 2.0)
        s.place_copy(2, 1, 2.0)  # no local copy: needs 2 + 50
        with pytest.raises(ScheduleError, match="before any copy"):
            validate_duplication(s)


class TestDSH:
    def test_duplicates_root_for_heavy_fork(self, fork):
        sched = dsh_schedule(fork, 2)
        validate_duplication(sched)
        # Without duplication: 2 + 3 + 3 serial = 8 (messages too dear).
        # With a root copy on each processor: both children at 2 -> 5.
        assert sched.length == pytest.approx(5.0)
        assert len(sched.copies_of(0)) == 2

    def test_no_duplication_when_comm_free(self):
        g = TaskGraph([2.0, 3.0, 3.0], {(0, 1): 0.0, (0, 2): 0.0})
        sched = dsh_schedule(g, 2)
        validate_duplication(sched)
        assert len(sched.copies_of(0)) == 1
        assert sched.length == pytest.approx(5.0)

    def test_beats_or_matches_hlfet_on_high_ccr(self):
        """Duplication's raison d'etre: at CCR 10 DSH should beat the
        identical algorithm without duplication on most instances."""
        from repro import get_scheduler

        wins = 0
        total = 6
        for seed in range(total):
            g = rgbos_graph(18, 10.0, seed=seed)
            dsh = dsh_schedule(g, 4).length
            hlfet = get_scheduler("HLFET").schedule(g, Machine(4)).length
            if dsh <= hlfet + 1e-9:
                wins += 1
        assert wins >= total - 1

    def test_valid_on_random_graphs(self):
        for seed in range(4):
            g = rgbos_graph(20, 2.0, seed=seed)
            sched = dsh_schedule(g, 3)
            validate_duplication(sched)

    def test_chain_no_duplicates(self):
        g = TaskGraph([1.0, 1.0, 1.0],
                      {(0, 1): 5.0, (1, 2): 5.0}, name="chain")
        sched = dsh_schedule(g, 3)
        validate_duplication(sched)
        # A chain gains nothing from duplication.
        assert all(len(sched.copies_of(n)) == 1 for n in g.nodes())
        assert sched.length == pytest.approx(3.0)

    def test_metadata(self):
        assert DSH.klass == "TDB"

"""Monte-Carlo robustness layer and the persisted sim grid."""

import dataclasses

import pytest

from repro import Machine, Schedule, TaskGraph, get_scheduler
from repro.bench.runner import BenchConfig
from repro.generators.random_graphs import rgnos_graph
from repro.sim import (
    PerturbationModel,
    SimConfig,
    monte_carlo,
    robustness_ranking,
    run_sim_grid,
    schedule_slack,
    sim_store,
)
from repro.sim.bench import combined_fingerprint


def _schedule(alg="MCP", graph=None):
    graph = graph if graph is not None else rgnos_graph(30, 1.0, 3, seed=3)
    return get_scheduler(alg).schedule(graph, Machine.unbounded(graph))


class TestMonteCarlo:
    def test_zero_noise_distribution_is_a_point(self):
        sched = _schedule()
        row, samples = monte_carlo(sched, trials=10, algorithm="MCP",
                                   klass="BNP")
        assert row.trials == 10 and len(samples) == 10
        assert row.mean == pytest.approx(sched.length)
        assert row.std == pytest.approx(0.0)
        assert row.p95 == pytest.approx(sched.length)
        assert row.mean_degradation_pct == pytest.approx(0.0)

    def test_noise_spreads_the_distribution(self):
        row, samples = monte_carlo(
            _schedule(), PerturbationModel.lognormal(0.3), trials=30,
            algorithm="MCP")
        assert row.std > 0
        assert row.worst >= row.p95 >= row.p50
        assert row.mean_degradation_pct > 0  # noise can only hurt on avg

    def test_cell_is_order_independent(self):
        # The noise stream is keyed by (seed, algorithm, graph), so the
        # same cell yields identical rows no matter what ran before it.
        noise = PerturbationModel.uniform(0.2)
        first, _ = monte_carlo(_schedule(), noise, trials=5, seed=3,
                               algorithm="MCP")
        monte_carlo(_schedule("HLFET"), noise, trials=5, seed=3,
                    algorithm="HLFET")
        again, _ = monte_carlo(_schedule(), noise, trials=5, seed=3,
                               algorithm="MCP")
        assert first == again

    def test_trials_must_be_positive(self):
        with pytest.raises(ValueError):
            monte_carlo(_schedule(), trials=0)


class TestScheduleSlack:
    def test_chain_has_no_slack(self):
        g = TaskGraph([2.0, 3.0, 1.0], {(0, 1): 0.0, (1, 2): 0.0},
                      name="chain3")
        sched = Schedule(g, 1)
        for node, start in ((0, 0.0), (1, 2.0), (2, 5.0)):
            sched.place(node, 0, start)
        assert schedule_slack(sched) == pytest.approx(0.0)

    def test_short_branch_has_slack(self):
        # 0 -> {1 (long), 2 (short)}: node 2 can slip until the makespan.
        g = TaskGraph([1.0, 10.0, 1.0], {(0, 1): 0.0, (0, 2): 0.0},
                      name="fork")
        sched = Schedule(g, 2)
        sched.place(0, 0, 0.0)
        sched.place(1, 0, 1.0)
        sched.place(2, 1, 1.0)
        # Node 2's latest start is 10; slack = 9 of makespan 11.
        assert schedule_slack(sched) == pytest.approx(9.0 / 3 / 11.0)

    def test_empty_schedule(self):
        g = TaskGraph([1.0], {})
        assert schedule_slack(Schedule(g, 1)) == 0.0


class TestRanking:
    def test_ranking_reuses_average_ranks(self):
        graphs = [rgnos_graph(30, 1.0, 3, seed=s) for s in (1, 2)]
        rows = []
        for graph in graphs:
            for alg in ("MCP", "HLFET", "ISH"):
                sched = get_scheduler(alg).schedule(
                    graph, Machine.unbounded(graph))
                row, _ = monte_carlo(
                    sched, PerturbationModel.lognormal(0.3), trials=10,
                    algorithm=alg)
                rows.append(row)
        ranking = robustness_ranking(rows)
        assert {alg for alg, *_ in ranking} == {"MCP", "HLFET", "ISH"}
        sim_ranks = [sim for _, _, sim, _ in ranking]
        assert sim_ranks == sorted(sim_ranks)
        for _, pred, sim, shift in ranking:
            assert shift == pytest.approx(sim - pred)


class TestSimGrid:
    GRAPHS = [rgnos_graph(20, 1.0, 2, seed=s) for s in (1, 2)]
    SIM = SimConfig(perturb=PerturbationModel.uniform(0.2), trials=5,
                    seed=11)

    def test_serial_row_order(self):
        rows = run_sim_grid(["MCP", "HLFET"], self.GRAPHS, sim=self.SIM)
        assert [(r.graph, r.algorithm) for r in rows] == [
            (g.name, a) for g in self.GRAPHS for a in ("MCP", "HLFET")]

    def test_parallel_matches_serial(self):
        serial = run_sim_grid(["MCP", "HLFET"], self.GRAPHS, sim=self.SIM)
        fanned = run_sim_grid(["MCP", "HLFET"], self.GRAPHS, sim=self.SIM,
                              jobs=2)

        def strip(r):
            return dataclasses.replace(r, runtime_s=0.0)

        assert [strip(r) for r in serial] == [strip(r) for r in fanned]

    def test_jobs_zero_means_auto(self):
        rows = run_sim_grid(["MCP"], self.GRAPHS[:1], sim=self.SIM, jobs=0)
        assert len(rows) == 1

    def test_default_sim_config_is_deterministic_replay(self):
        rows = run_sim_grid(["MCP"], self.GRAPHS[:1])
        assert rows[0].std == pytest.approx(0.0)
        assert rows[0].mean == pytest.approx(rows[0].predicted)

    def test_contention_network_through_grid(self):
        # Bounded 4-processor BNP machine matches the hypercube-4
        # topology, so the contention backend re-executes messages.
        from repro.network.topology import Topology

        bench = BenchConfig(bnp_procs=4,
                            apn_topology=Topology.hypercube(2))
        sim = SimConfig(network="contention", trials=3)
        rows = run_sim_grid(["MCP"], self.GRAPHS[:1], config=bench,
                            sim=sim)
        assert rows[0].mean >= 0

    def test_store_resume_replays_rows(self, tmp_path):
        store = sim_store(str(tmp_path))
        first = run_sim_grid(["MCP"], self.GRAPHS, sim=self.SIM,
                             store=store, resume=True)
        assert len(store) == 2
        # A fresh store object reloads from disk; resumed rows replay
        # verbatim, runtime included (no re-execution).
        again = run_sim_grid(["MCP"], self.GRAPHS, sim=self.SIM,
                             store=sim_store(str(tmp_path)), resume=True)
        assert first == again
        assert (tmp_path / "sim.json").exists()
        assert (tmp_path / "sim.csv").exists()

    def test_fingerprint_separates_configs(self):
        bench = BenchConfig()
        fast = SimConfig(trials=5)
        slow = SimConfig(trials=50)
        noisy = SimConfig(trials=5,
                          perturb=PerturbationModel.lognormal(0.3))
        fps = {combined_fingerprint(bench, s) for s in (fast, slow, noisy)}
        assert len(fps) == 3

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SimConfig(network="teleport")
        with pytest.raises(ValueError):
            SimConfig(trials=0)

    def test_contention_rejects_oversized_machines(self):
        graph = self.GRAPHS[0]
        sched = get_scheduler("MCP").schedule(graph,
                                              Machine.unbounded(graph))
        cfg = SimConfig(network="contention")
        with pytest.raises(ValueError, match="contention topology"):
            cfg.network_for(sched, BenchConfig())


class TestDegrContract:
    def test_corrupt_prediction_raises_in_monte_carlo(self, monkeypatch):
        # monte_carlo's degradation helper mirrors
        # SimResult.degradation_pct: a non-positive predicted makespan
        # for a non-empty graph must raise, never report 0.0.
        from repro.core.exceptions import ScheduleError

        graph = rgnos_graph(12, 1.0, 2, seed=3)
        sched = get_scheduler("MCP").schedule(graph,
                                              Machine.unbounded(graph))
        monkeypatch.setattr(Schedule, "length",
                            property(lambda self: 0.0))
        with pytest.raises(ScheduleError, match="not positive"):
            monte_carlo(sched, trials=1, algorithm="MCP")

"""Unit tests for node attributes (t-level, b-level, ALAP, CP)."""

import pytest

from repro import TaskGraph
from repro.core.attributes import (
    alap,
    blevel,
    cp_computation_cost,
    cp_length,
    critical_path,
    priority_blevel_plus_tlevel,
    static_blevel,
    static_tlevel,
    tlevel,
)


class TestChain:
    """Hand-computed values on the chain 0 ->5 1 ->1 2 ->2 3 (w 2,3,1,4)."""

    def test_tlevel(self, chain4):
        assert tlevel(chain4) == [0.0, 7.0, 11.0, 14.0]

    def test_blevel(self, chain4):
        assert blevel(chain4) == [18.0, 11.0, 7.0, 4.0]

    def test_static_blevel(self, chain4):
        assert static_blevel(chain4) == [10.0, 8.0, 5.0, 4.0]

    def test_static_tlevel(self, chain4):
        assert static_tlevel(chain4) == [0.0, 2.0, 5.0, 6.0]

    def test_cp_length(self, chain4):
        assert cp_length(chain4) == 18.0

    def test_alap(self, chain4):
        assert alap(chain4) == [0.0, 7.0, 11.0, 14.0]

    def test_critical_path_is_whole_chain(self, chain4):
        assert critical_path(chain4) == [0, 1, 2, 3]

    def test_cp_computation_cost(self, chain4):
        assert cp_computation_cost(chain4) == 10.0


class TestDiamond:
    """0 -> {1, 2} -> 3 with w = (1,2,4,1), c = (3,1,2,5)."""

    def test_tlevel(self, diamond4):
        # via 1: 0+1+3 = 4; via 2: 0+1+1 = 2.
        assert tlevel(diamond4) == [0.0, 4.0, 2.0, 11.0]

    def test_blevel(self, diamond4):
        assert blevel(diamond4)[3] == 1.0
        assert blevel(diamond4)[1] == 2 + 2 + 1  # w1 + c13 + b3
        assert blevel(diamond4)[2] == 4 + 5 + 1
        assert blevel(diamond4)[0] == 1 + 1 + 10  # via node 2

    def test_critical_path(self, diamond4):
        assert critical_path(diamond4) == [0, 2, 3]

    def test_cp_computation(self, diamond4):
        assert cp_computation_cost(diamond4) == 1 + 4 + 1


class TestZeroedEdges:
    def test_tlevel_zeroing_shrinks(self, chain4):
        z = {(0, 1)}
        t = tlevel(chain4, zeroed=z)
        assert t[1] == 2.0  # 0 + w0, comm zeroed
        assert t[3] == 9.0

    def test_blevel_zeroing_shrinks(self, chain4):
        z = {(2, 3)}
        b = blevel(chain4, zeroed=z)
        assert b[2] == 5.0
        assert b[0] == 16.0

    def test_zeroing_never_increases(self, kwok9):
        base_t = tlevel(kwok9)
        base_b = blevel(kwok9)
        z = {(0, 5), (5, 8)}
        zt = tlevel(kwok9, zeroed=z)
        zb = blevel(kwok9, zeroed=z)
        assert all(a <= b + 1e-12 for a, b in zip(zt, base_t))
        assert all(a <= b + 1e-12 for a, b in zip(zb, base_b))


class TestInvariants:
    def test_entry_tlevel_zero(self, kwok9):
        t = tlevel(kwok9)
        for n in kwok9.entry_nodes:
            assert t[n] == 0.0

    def test_exit_blevel_is_weight(self, kwok9):
        b = blevel(kwok9)
        for n in kwok9.exit_nodes:
            assert b[n] == kwok9.weight(n)

    def test_tlevel_plus_blevel_bounded_by_cp(self, kwok9):
        t, b = tlevel(kwok9), blevel(kwok9)
        cp = cp_length(kwok9)
        assert all(ti + bi <= cp + 1e-9 for ti, bi in zip(t, b))
        # At least one node (a CP node) attains the bound.
        assert any(abs(ti + bi - cp) < 1e-9 for ti, bi in zip(t, b))

    def test_alap_nonnegative(self, kwok9):
        assert all(a >= -1e-12 for a in alap(kwok9))

    def test_static_blevel_le_blevel(self, kwok9):
        sb, b = static_blevel(kwok9), blevel(kwok9)
        assert all(s <= full + 1e-12 for s, full in zip(sb, b))

    def test_priority_sum(self, kwok9):
        p = priority_blevel_plus_tlevel(kwok9)
        t, b = tlevel(kwok9), blevel(kwok9)
        assert p == [ti + bi for ti, bi in zip(t, b)]

    def test_critical_path_valid_and_critical(self, kwok9):
        path = critical_path(kwok9)
        assert path[0] in kwok9.entry_nodes
        assert path[-1] in kwok9.exit_nodes
        for u, v in zip(path, path[1:]):
            assert kwok9.has_edge(u, v)
        length = sum(kwok9.weight(n) for n in path) + sum(
            kwok9.comm_cost(u, v) for u, v in zip(path, path[1:])
        )
        assert length == pytest.approx(cp_length(kwok9))

    def test_cp_computation_cost_kwok9(self, kwok9):
        # Longest computation-only chain: 0-5-8 = 2+4+1 = 7? vs 0-1-6-8 =
        # 2+3+4+1 = 10 vs 0-4-7-8 = 2+5+4+1 = 12.
        assert cp_computation_cost(kwok9) == 12.0

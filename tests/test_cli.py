"""Tests for the repro-bench CLI."""

import csv
import json
import os

import pytest

from repro.bench.cli import main
from repro.bench.store import ResultStore


class TestCLI:
    def test_table1_to_stdout(self, capsys):
        assert main(["--artifact", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "MCP" in out

    def test_output_files(self, tmp_path, capsys):
        out_dir = tmp_path / "results"
        assert main(["--artifact", "table1", "--out", str(out_dir)]) == 0
        assert (out_dir / "table1.txt").exists()

    def test_figure_csv_written(self, tmp_path, capsys):
        out_dir = tmp_path / "results"
        assert main(["--artifact", "fig4", "--out", str(out_dir)]) == 0
        assert (out_dir / "fig4_unc.csv").exists()
        assert (out_dir / "fig4_bnp.txt").exists()
        csv = (out_dir / "fig4_apn.csv").read_text()
        assert csv.splitlines()[0].startswith("N,")

    def test_bad_artifact_rejected(self):
        with pytest.raises(SystemExit):
            main(["--artifact", "nope"])


class TestEngineFlags:
    def test_jobs_matches_serial_output(self, capsys):
        assert main(["--artifact", "table1"]) == 0
        serial = capsys.readouterr().out
        assert main(["--artifact", "table1", "--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_format_json(self, tmp_path, capsys):
        out_dir = tmp_path / "results"
        assert main(["--artifact", "table1", "--format", "json",
                     "--out", str(out_dir)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["id"] == "Table 1"
        assert doc["columns"][0] == "graph"
        assert json.loads((out_dir / "table1.json").read_text()) == doc

    def test_format_csv(self, tmp_path, capsys):
        out_dir = tmp_path / "results"
        assert main(["--artifact", "table1", "--format", "csv",
                     "--out", str(out_dir)]) == 0
        text = (out_dir / "table1.csv").read_text()
        rows = list(csv.reader(
            [ln for ln in text.splitlines() if not ln.startswith("#")]
        ))
        assert rows[0][0] == "graph"
        assert len(rows) > 1

    def test_figure_format_csv_writes_csv_artifact(self, tmp_path, capsys):
        out_dir = tmp_path / "results"
        assert main(["--artifact", "fig4", "--format", "csv",
                     "--out", str(out_dir)]) == 0
        assert (out_dir / "fig4_unc.csv").exists()
        assert not (out_dir / "fig4_unc.txt").exists()

    def test_results_store_written_and_resumed(self, tmp_path, capsys,
                                               monkeypatch):
        res_dir = tmp_path / "store"
        assert main(["--artifact", "table1", "--results", str(res_dir)]) == 0
        first = capsys.readouterr().out
        assert (res_dir / "results.json").exists()
        assert (res_dir / "results.csv").exists()
        assert len(ResultStore(str(res_dir))) > 0

        # A resumed run must not schedule anything: every cell is cached.
        from repro.bench import runner as runner_mod

        def boom(*args, **kwargs):
            raise AssertionError("cell re-scheduled despite --resume")

        monkeypatch.setattr(runner_mod, "run_one", boom)
        assert main(["--artifact", "table1", "--results", str(res_dir),
                     "--resume"]) == 0
        assert capsys.readouterr().out == first

    def test_resume_requires_results(self):
        with pytest.raises(SystemExit):
            main(["--artifact", "table1", "--resume"])

    def test_unwritable_results_path_exits_2_with_diagnostic(self, capsys):
        """No traceback: a clean one-line error and exit code 2."""
        assert main(["--artifact", "table1",
                     "--results", "/dev/null/nope"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro-bench: error:")
        assert "/dev/null/nope" in err
        assert len(err.strip().splitlines()) == 1

    def test_results_path_over_file_exits_2(self, tmp_path, capsys):
        target = tmp_path / "plain-file"
        target.write_text("not a directory")
        assert main(["--artifact", "table1",
                     "--results", str(target)]) == 2
        assert "repro-bench: error:" in capsys.readouterr().err

    def test_corrupt_store_exits_2(self, tmp_path, capsys):
        (tmp_path / "results.json").write_text("{broken")
        assert main(["--artifact", "table1",
                     "--results", str(tmp_path)]) == 2
        assert "not valid JSON" in capsys.readouterr().err


SCENARIO_SPEC = os.path.join(
    os.path.dirname(__file__), "..", "examples", "scenario_hetero.json")


class TestScenarioCLI:
    def test_list(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        assert "hetero-speeds" in out
        assert "nightly-grid" in out

    def test_validate_registry_name(self, capsys):
        assert main(["scenario", "validate", "hetero-speeds"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("OK:")
        assert "4 variant(s)" in out

    def test_validate_example_files(self, capsys):
        assert main(["scenario", "validate", SCENARIO_SPEC]) == 0
        toml_spec = SCENARIO_SPEC.replace("scenario_hetero.json",
                                          "scenario_bandwidth.toml")
        assert main(["scenario", "validate", toml_spec]) == 0

    def test_validate_bad_spec_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"name": "x", "algorithms": ["MCP"],
                                    "graphs": {"suite": "nope"}}))
        assert main(["scenario", "validate", str(path)]) == 2
        assert "graphs.suite" in capsys.readouterr().err

    def test_unknown_scenario_exits_2(self, capsys):
        assert main(["scenario", "run", "no-such-scenario"]) == 2
        assert "registered" in capsys.readouterr().err

    def test_run_persists_and_resume_replays_identically(
            self, tmp_path, capsys, monkeypatch):
        res_dir = tmp_path / "store"
        argv = ["scenario", "run", SCENARIO_SPEC, "--jobs", "2",
                "--results", str(res_dir)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "scenario:example-hetero" in first
        assert len(ResultStore(str(res_dir))) == 24

        from repro.bench import runner as runner_mod

        def boom(*args, **kwargs):
            raise AssertionError("cell re-scheduled despite --resume")

        monkeypatch.setattr(runner_mod, "run_one", boom)
        assert main(argv + ["--resume"]) == 0
        assert capsys.readouterr().out == first

    def test_run_default_store_location(self, tmp_path, capsys,
                                        monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["scenario", "run", SCENARIO_SPEC]) == 0
        store_dir = tmp_path / "results" / "scenarios" / "example-hetero"
        assert (store_dir / "results.json").exists()

    def test_run_out_and_format(self, tmp_path, capsys):
        out_dir = tmp_path / "out"
        assert main(["scenario", "run", SCENARIO_SPEC, "--no-store",
                     "--format", "json", "--out", str(out_dir)]) == 0
        doc = json.loads(
            (out_dir / "scenario_example-hetero.json").read_text())
        assert doc["id"] == "scenario:example-hetero"
        assert (out_dir / "scenario_example-hetero_summary.json").exists()

    def test_run_unwritable_results_exits_2(self, capsys):
        assert main(["scenario", "run", SCENARIO_SPEC,
                     "--results", "/dev/null/x"]) == 2
        assert "repro-bench: error:" in capsys.readouterr().err


class TestAdvCLI:
    ARGS = ["adv", "search", "adversarial-bnp", "--steps", "8",
            "--chains", "2", "--temperature", "0"]

    def test_search_persists_frontier_and_resume_replays(
            self, tmp_path, capsys, monkeypatch):
        res_dir = tmp_path / "store"
        argv = self.ARGS + ["--results", str(res_dir)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "adv:adversarial-bnp" in first
        assert "LAST/MCP" in first
        assert (res_dir / "adv.json").exists()
        assert (res_dir / "frontier.json").exists()

        import repro.adversarial.search as search_mod

        def boom(args):
            raise AssertionError("chain re-run despite --resume")

        monkeypatch.setattr(search_mod, "_run_chain", boom)
        assert main(argv + ["--resume"]) == 0
        assert capsys.readouterr().out == first

    def test_search_ad_hoc_pair_override(self, tmp_path, capsys):
        assert main(["adv", "search", "graph-shapes", "--pair", "LAST",
                     "MCP", "--steps", "5", "--chains", "1",
                     "--temperature", "0", "--no-store"]) == 0
        assert "LAST/MCP" in capsys.readouterr().out

    def test_show_and_export_work_after_ad_hoc_search(self, tmp_path,
                                                      capsys):
        """A spec without an adversarial block still shows/exports the
        store an ad-hoc --pair search persisted into it."""
        res_dir = tmp_path / "store"
        assert main(["adv", "search", "graph-shapes", "--pair", "LAST",
                     "MCP", "--steps", "5", "--chains", "1",
                     "--temperature", "0",
                     "--results", str(res_dir)]) == 0
        capsys.readouterr()
        assert main(["adv", "show", "graph-shapes",
                     "--results", str(res_dir)]) == 0
        assert "LAST/MCP" in capsys.readouterr().out
        out_dir = tmp_path / "inst"
        assert main(["adv", "export", "graph-shapes",
                     "--results", str(res_dir),
                     "--out", str(out_dir)]) == 0
        assert list(out_dir.glob("*.stg"))

    def test_search_without_block_exits_2(self, capsys):
        assert main(["adv", "search", "graph-shapes",
                     "--no-store"]) == 2
        assert "no adversarial block" in capsys.readouterr().err

    def test_show_and_export_round_trip(self, tmp_path, capsys):
        res_dir = tmp_path / "store"
        assert main(self.ARGS + ["--results", str(res_dir)]) == 0
        capsys.readouterr()
        assert main(["adv", "show", "adversarial-bnp",
                     "--results", str(res_dir)]) == 0
        assert "LAST/MCP" in capsys.readouterr().out

        out_dir = tmp_path / "instances"
        assert main(["adv", "export", "adversarial-bnp",
                     "--results", str(res_dir),
                     "--out", str(out_dir)]) == 0
        files = sorted(out_dir.glob("*.stg"))
        assert files
        from repro.generators import load_graph

        graph = load_graph(str(files[0]))
        assert graph.num_nodes > 1

    def test_export_disambiguates_same_name_different_graphs(
            self, tmp_path, capsys):
        """Reruns with other knobs share instance names but not graphs;
        export must write both, never silently drop one."""
        res_dir = tmp_path / "store"
        base = ["adv", "search", "adversarial-bnp", "--chains", "1",
                "--temperature", "0", "--results", str(res_dir)]
        assert main(base + ["--steps", "5"]) == 0
        assert main(base + ["--steps", "9"]) == 0
        capsys.readouterr()
        out_dir = tmp_path / "inst"
        assert main(["adv", "export", "adversarial-bnp", "--all",
                     "--results", str(res_dir),
                     "--out", str(out_dir)]) == 0
        files = list(out_dir.glob("*.stg"))
        assert len(files) == 2
        assert len({f.read_text() for f in files}) == 2

    def test_show_empty_store_exits_2(self, tmp_path, capsys):
        assert main(["adv", "show", "adversarial-bnp",
                     "--results", str(tmp_path)]) == 2
        assert "no chains stored" in capsys.readouterr().err

    def test_unknown_spec_exits_2(self, capsys):
        assert main(["adv", "search", "no-such-scenario"]) == 2
        assert "registered" in capsys.readouterr().err


class TestResultsValidationUnified:
    """Every verb family funnels --results through one validated path.

    Regression tests for the PR-2 exit-2 diagnostics, which were wired
    (but never exercised) for the sim verbs and now also guard adv:
    an unwritable path or a corrupt store is a one-line `repro-bench:
    error:` on stderr and exit code 2 — never a traceback — on
    scenario, sim and adv alike.
    """

    def _assert_one_line_error(self, capsys, needle):
        err = capsys.readouterr().err
        assert err.startswith("repro-bench: error:")
        assert needle in err
        assert len(err.strip().splitlines()) == 1

    def test_sim_unwritable_results_exits_2(self, capsys):
        assert main(["sim", "run", "noise-ladder", "--trials", "2",
                     "--results", "/dev/null/nope"]) == 2
        self._assert_one_line_error(capsys, "/dev/null/nope")

    def test_sim_corrupt_store_exits_2(self, tmp_path, capsys):
        (tmp_path / "sim.json").write_text("{broken")
        assert main(["sim", "run", "noise-ladder", "--trials", "2",
                     "--results", str(tmp_path)]) == 2
        self._assert_one_line_error(capsys, "not valid JSON")

    def test_adv_unwritable_results_exits_2(self, capsys):
        assert main(["adv", "search", "adversarial-bnp",
                     "--results", "/dev/null/nope"]) == 2
        self._assert_one_line_error(capsys, "/dev/null/nope")

    def test_adv_corrupt_store_exits_2(self, tmp_path, capsys):
        (tmp_path / "adv.json").write_text("{broken")
        assert main(["adv", "search", "adversarial-bnp",
                     "--results", str(tmp_path)]) == 2
        self._assert_one_line_error(capsys, "not valid JSON")

    def test_scenario_results_over_file_exits_2(self, tmp_path, capsys):
        target = tmp_path / "plain-file"
        target.write_text("not a directory")
        assert main(["scenario", "run", SCENARIO_SPEC,
                     "--results", str(target)]) == 2
        self._assert_one_line_error(capsys, "not a writable directory")


class TestAlgoVerbs:
    """``repro-bench algo list/describe`` — the unified name listing."""

    def test_algo_list_renders_registry_and_grammar(self, capsys):
        assert main(["algo", "list"]) == 0
        out = capsys.readouterr().out
        # All three classes present, plus the component-spec grammar.
        for name in ("MCP", "DSC", "BSA"):
            assert name in out
        assert "param:prio=<prio>" in out
        assert "alaplist" in out and "dnode" in out
        assert "param:hlfet" in out

    def test_algo_list_class_filter(self, capsys):
        assert main(["algo", "list", "--class", "UNC"]) == 0
        out = capsys.readouterr().out
        assert "DSC" in out and "DCP" in out
        assert "MCP" not in out and "BSA" not in out

    def test_algo_describe_monolith_shows_component_spec(self, capsys):
        assert main(["algo", "describe", "mcp"]) == 0
        out = capsys.readouterr().out
        assert "MCP" in out and "[BNP]" in out
        assert "param:prio=alaplist,ready=prio,proc=est,insert=on" in out

    def test_algo_describe_param_resolves_components(self, capsys):
        assert main(["algo", "describe", "param:prio=alap,insert=on"]) == 0
        out = capsys.readouterr().out
        assert "components:" in out
        for line in ("prio=alap", "ready=prio", "proc=est", "insert=on"):
            assert line in out
        assert "equivalent monolith" not in out  # not a named design

    def test_algo_describe_named_shorthand_cites_monolith(self, capsys):
        assert main(["algo", "describe", "param:last"]) == 0
        out = capsys.readouterr().out
        assert "equivalent monolith: LAST" in out

    def test_algo_describe_unknown_exits_2_one_line(self, capsys):
        assert main(["algo", "describe", "NOPE"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro-bench: error:")
        assert len(err.strip().splitlines()) == 1

    def test_algo_describe_bad_spec_exits_2_one_line(self, capsys):
        assert main(["algo", "describe", "param:prio=bogus"]) == 2
        err = capsys.readouterr().err
        assert "bogus" in err
        assert len(err.strip().splitlines()) == 1


class TestOnlineCLI:
    """The online information-mode axis through the CLI surfaces."""

    def _spec(self, tmp_path, **extra):
        doc = {"name": "cli-online",
               "graphs": {"generator": "rgnos", "sizes": [12],
                          "ccrs": [1.0], "parallelisms": [3], "seed": 5},
               "algorithms": ["MCP"],
               "machine": {"bnp_procs": 2},
               "metrics": ["length"]}
        doc.update(extra)
        path = tmp_path / "online.json"
        path.write_text(json.dumps(doc))
        return str(path)

    def test_scenario_run_emits_online_table(self, tmp_path, capsys):
        path = self._spec(tmp_path, online={"imodes": ["exact"]})
        assert main(["scenario", "run", path, "--no-store"]) == 0
        out = capsys.readouterr().out
        assert "online:cli-online" in out
        assert "rank(online)" in out

    def test_sim_imode_flag_adds_online_counterparts(self, tmp_path,
                                                     capsys):
        path = self._spec(tmp_path)
        assert main(["sim", "run", path, "--imode", "blind",
                     "--trials", "2", "--no-store"]) == 0
        out = capsys.readouterr().out
        assert "imode=blind" in out

    def test_sim_imode_conflicts_with_online_sweep(self, tmp_path,
                                                   capsys):
        path = self._spec(
            tmp_path, online={"imodes": ["exact"]},
            sweep={"online.imodes": [["exact"], ["blind"]]})
        assert main(["sim", "run", path, "--imode", "blind",
                     "--no-store"]) == 2
        assert "online.imodes" in capsys.readouterr().err

    def test_sim_bad_imode_named(self, tmp_path, capsys):
        path = self._spec(tmp_path)
        assert main(["sim", "run", path, "--imode", "psychic",
                     "--no-store"]) == 2
        assert "information mode" in capsys.readouterr().err

    def test_algo_list_mentions_online_grammar(self, capsys):
        assert main(["algo", "list"]) == 0
        out = capsys.readouterr().out
        assert "online:" in out
        assert "imode" in out

    def test_algo_describe_online_spec(self, capsys):
        assert main(["algo", "describe", "online:mcp,imode=mean"]) == 0
        out = capsys.readouterr().out
        assert "information mode: mean" in out
        assert "equivalent monolith: MCP" in out

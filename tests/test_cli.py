"""Tests for the repro-bench CLI."""

import csv
import json
import os

import pytest

from repro.bench.cli import main
from repro.bench.store import ResultStore


class TestCLI:
    def test_table1_to_stdout(self, capsys):
        assert main(["--artifact", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "MCP" in out

    def test_output_files(self, tmp_path, capsys):
        out_dir = tmp_path / "results"
        assert main(["--artifact", "table1", "--out", str(out_dir)]) == 0
        assert (out_dir / "table1.txt").exists()

    def test_figure_csv_written(self, tmp_path, capsys):
        out_dir = tmp_path / "results"
        assert main(["--artifact", "fig4", "--out", str(out_dir)]) == 0
        assert (out_dir / "fig4_unc.csv").exists()
        assert (out_dir / "fig4_bnp.txt").exists()
        csv = (out_dir / "fig4_apn.csv").read_text()
        assert csv.splitlines()[0].startswith("N,")

    def test_bad_artifact_rejected(self):
        with pytest.raises(SystemExit):
            main(["--artifact", "nope"])


class TestEngineFlags:
    def test_jobs_matches_serial_output(self, capsys):
        assert main(["--artifact", "table1"]) == 0
        serial = capsys.readouterr().out
        assert main(["--artifact", "table1", "--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_format_json(self, tmp_path, capsys):
        out_dir = tmp_path / "results"
        assert main(["--artifact", "table1", "--format", "json",
                     "--out", str(out_dir)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["id"] == "Table 1"
        assert doc["columns"][0] == "graph"
        assert json.loads((out_dir / "table1.json").read_text()) == doc

    def test_format_csv(self, tmp_path, capsys):
        out_dir = tmp_path / "results"
        assert main(["--artifact", "table1", "--format", "csv",
                     "--out", str(out_dir)]) == 0
        text = (out_dir / "table1.csv").read_text()
        rows = list(csv.reader(
            [ln for ln in text.splitlines() if not ln.startswith("#")]
        ))
        assert rows[0][0] == "graph"
        assert len(rows) > 1

    def test_figure_format_csv_writes_csv_artifact(self, tmp_path, capsys):
        out_dir = tmp_path / "results"
        assert main(["--artifact", "fig4", "--format", "csv",
                     "--out", str(out_dir)]) == 0
        assert (out_dir / "fig4_unc.csv").exists()
        assert not (out_dir / "fig4_unc.txt").exists()

    def test_results_store_written_and_resumed(self, tmp_path, capsys,
                                               monkeypatch):
        res_dir = tmp_path / "store"
        assert main(["--artifact", "table1", "--results", str(res_dir)]) == 0
        first = capsys.readouterr().out
        assert (res_dir / "results.json").exists()
        assert (res_dir / "results.csv").exists()
        assert len(ResultStore(str(res_dir))) > 0

        # A resumed run must not schedule anything: every cell is cached.
        from repro.bench import runner as runner_mod

        def boom(*args, **kwargs):
            raise AssertionError("cell re-scheduled despite --resume")

        monkeypatch.setattr(runner_mod, "run_one", boom)
        assert main(["--artifact", "table1", "--results", str(res_dir),
                     "--resume"]) == 0
        assert capsys.readouterr().out == first

    def test_resume_requires_results(self):
        with pytest.raises(SystemExit):
            main(["--artifact", "table1", "--resume"])

"""Tests for the repro-bench CLI."""

import os

import pytest

from repro.bench.cli import main


class TestCLI:
    def test_table1_to_stdout(self, capsys):
        assert main(["--artifact", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "MCP" in out

    def test_output_files(self, tmp_path, capsys):
        out_dir = tmp_path / "results"
        assert main(["--artifact", "table1", "--out", str(out_dir)]) == 0
        assert (out_dir / "table1.txt").exists()

    def test_figure_csv_written(self, tmp_path, capsys):
        out_dir = tmp_path / "results"
        assert main(["--artifact", "fig4", "--out", str(out_dir)]) == 0
        assert (out_dir / "fig4_unc.csv").exists()
        assert (out_dir / "fig4_bnp.txt").exists()
        csv = (out_dir / "fig4_apn.csv").read_text()
        assert csv.splitlines()[0].startswith("N,")

    def test_bad_artifact_rejected(self):
        with pytest.raises(SystemExit):
            main(["--artifact", "nope"])

"""Tests for the `repro check` static analyzer and runtime sanitizer.

The fixture tree under ``tests/fixtures/check_tree`` holds one known
violation set per RPR rule; the tests assert the checker reports
exactly those (reintroducing any fixture violation into the real tree
would therefore fail the meta-test below and exit 1 in CI).
"""

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro import Machine, Schedule, ScheduleError, TaskGraph
from repro.bench import cli as bench_cli
from repro.check import SanitizeError, run_check, sanitize_enabled
from repro.check import cli as check_cli
from repro.check import sanitize
from repro.check.engine import Finding, select_rules
from repro.check.report import render
from repro.check.suppress import SUPPRESS_ALL, is_suppressed, suppressions
from repro.core.kernel import arrival_profile
from repro.core.schedule import Violation, render_violations, validate
from repro.network.topology import Topology
from repro.sim.engine import simulate

FIXTURES = str(Path(__file__).parent / "fixtures" / "check_tree")


@pytest.fixture
def sanitized(monkeypatch):
    monkeypatch.setenv(sanitize.ENV_VAR, "1")


@pytest.fixture(scope="module")
def fixture_findings():
    return run_check(src_root=FIXTURES, repo_root=FIXTURES)


# ----------------------------------------------------------------------
# per-rule fixture behaviour
# ----------------------------------------------------------------------
class TestRulesOnFixtures:
    def test_rpr001_flags_every_mutation_shape(self, fixture_findings):
        hits = [f for f in fixture_findings
                if f.code == "RPR001" and "bad_purity" in f.path]
        # index write, attribute write, mutator call, delete, augmented.
        assert len(hits) == 5
        assert {f.line for f in hits} == {5, 6, 7, 8, 9}

    def test_rpr001_ignores_locals_and_rebindings(self, fixture_findings):
        hits = [f for f in fixture_findings if f.code == "RPR001"]
        assert all(f.line <= 9 for f in hits)  # lines 11-14 stay clean

    def test_rpr002_flags_every_rng_escape(self, fixture_findings):
        hits = [f for f in fixture_findings
                if f.code == "RPR002" and "bad_rng" in f.path]
        # import random, numpy.random import, bare default_rng,
        # np.random.*, hard-coded as_generator seed.
        assert len(hits) == 5
        assert {f.line for f in hits} == {3, 4, 11, 12, 18}

    def test_rpr002_allows_generator_type_uses(self, fixture_findings):
        hits = [f for f in fixture_findings
                if f.code == "RPR002" and "bad_rng" in f.path]
        assert all(f.line not in (5, 21, 22) for f in hits)

    def test_rpr003_flags_only_the_leaky_field(self, fixture_findings):
        hits = [f for f in fixture_findings if f.code == "RPR003"]
        assert len(hits) == 1
        assert "forgotten_axis" in hits[0].message
        assert hits[0].line == 11  # the field's definition line

    def test_rpr004_reports_all_three_directions(self, fixture_findings):
        hits = [f for f in fixture_findings if f.code == "RPR004"]
        messages = " | ".join(f.message for f in hits)
        assert "fixture-stale" in messages          # stale reference
        assert "something-else" in messages         # key/name mismatch
        assert "fixture-orphan" in messages         # unreferenced entry
        # the healthy entry is never *named* by a finding (it may appear
        # in a stale-reference message's list of registered names)
        assert "'fixture-used'" not in messages

    def test_rpr004_stale_reference_points_into_readme(self, fixture_findings):
        stale = [f for f in fixture_findings
                 if f.code == "RPR004" and "fixture-stale" in f.message]
        assert len(stale) == 1
        assert stale[0].path.endswith("README.md")

    def test_rpr004_skips_component_spec_tokens(self, fixture_findings):
        # The fixture README invokes ``adv search param:prio=...``; the
        # ``param:`` token is a scheduler spec, not a scenario name, and
        # must not be reported as a stale reference.
        hits = [f for f in fixture_findings if f.code == "RPR004"]
        assert all("'param'" not in f.message for f in hits)

    def test_rpr005_flags_time_and_literal_compares(self, fixture_findings):
        hits = [f for f in fixture_findings
                if f.code == "RPR005" and "bad_float" in f.path]
        assert {f.line for f in hits} == {5, 7}

    def test_rpr005_ignores_int_and_ordering_compares(self, fixture_findings):
        hits = [f for f in fixture_findings if f.code == "RPR005"]
        assert all(f.line not in (9, 11) for f in hits)

    def test_rpr006_flags_prints_and_logging(self, fixture_findings):
        hits = [f for f in fixture_findings
                if f.code == "RPR006" and "bad_print" in f.path]
        assert {f.line for f in hits} == {3, 4, 10}

    def test_rpr006_allows_the_cli_layer(self, fixture_findings):
        # repro/bench/ is the CLI layer; its prints are the contract.
        hits = [f for f in fixture_findings if f.code == "RPR006"]
        assert all("ok_print" not in f.path for f in hits)

    def test_rule_subset_selection(self):
        findings = run_check(src_root=FIXTURES, repo_root=FIXTURES,
                             rules=["RPR005"])
        assert findings and all(f.code == "RPR005" for f in findings)
        by_name = run_check(src_root=FIXTURES, repo_root=FIXTURES,
                            rules=["float-equality"])
        assert by_name == findings

    def test_unknown_rule_raises(self):
        with pytest.raises(KeyError):
            select_rules(["RPR999"])

    def test_findings_sorted_and_deduped(self, fixture_findings):
        assert fixture_findings == sorted(set(fixture_findings))


# ----------------------------------------------------------------------
# suppression comments
# ----------------------------------------------------------------------
class TestSuppression:
    def test_each_fixture_suppression_holds(self, fixture_findings):
        # Every fixture file carries one suppressed violation; none of
        # the suppressed lines may appear in the findings.
        suppressed_lines = {
            "bad_purity.py": 18,
            "bad_rng.py": 26,
            "bad_fingerprint.py": 12,
            "bad_float.py": 17,
            "bad_print.py": 16,
        }
        for fname, line in suppressed_lines.items():
            assert not any(fname in f.path and f.line == line
                           for f in fixture_findings), fname

    def test_parse_single_and_multiple_codes(self):
        table = suppressions(
            "x = 1  # repro: noqa-RPR001\n"
            "y = 2  # repro: noqa-RPR002,RPR005 reason text\n"
            "z = 3  # repro: noqa\n"
            "plain = 4\n")
        assert is_suppressed(table, 1, "RPR001")
        assert not is_suppressed(table, 1, "RPR002")
        assert is_suppressed(table, 2, "RPR002")
        assert is_suppressed(table, 2, "RPR005")
        assert not is_suppressed(table, 2, "RPR001")
        assert table[3] == frozenset((SUPPRESS_ALL,))
        assert is_suppressed(table, 3, "RPR004")
        assert not is_suppressed(table, 4, "RPR001")

    def test_ruff_style_noqa_does_not_suppress(self):
        table = suppressions("x = 1  # noqa: E501\n")
        assert not is_suppressed(table, 1, "RPR001")


# ----------------------------------------------------------------------
# the shipped tree is clean (meta-test)
# ----------------------------------------------------------------------
class TestShippedTree:
    def test_repro_check_clean_on_shipped_tree(self):
        repo_root = Path(__file__).parent.parent
        findings = run_check(src_root=str(repo_root / "src"),
                             repo_root=str(repo_root))
        assert findings == [], "\n".join(
            f"{f.path}:{f.line}: {f.code} {f.message}" for f in findings)

    def test_every_shipped_suppression_has_a_reason(self):
        src = Path(__file__).parent.parent / "src"
        for path in sorted(src.rglob("*.py")):
            for line in path.read_text().splitlines():
                if "repro: noqa" not in line:
                    continue
                tail = line.split("repro: noqa", 1)[1]
                # after "-RPR00x[,RPR00y]" there must be free text
                reason = tail.lstrip("-RPR0123456789, ")
                assert reason.strip(), f"bare suppression in {path}: {line!r}"


# ----------------------------------------------------------------------
# CLI: formats and exit codes
# ----------------------------------------------------------------------
class TestCheckCli:
    def test_exit_1_and_text_format_on_fixture_tree(self, capsys):
        rc = check_cli.main(["--src-root", FIXTURES,
                             "--repo-root", FIXTURES])
        out = capsys.readouterr().out
        assert rc == 1
        assert "RPR001" in out and "RPR005" in out
        assert "findings (" in out

    def test_json_format(self, capsys):
        rc = check_cli.main(["--src-root", FIXTURES, "--repo-root",
                             FIXTURES, "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert payload["clean"] is False
        assert payload["count"] == len(payload["findings"])
        assert set(payload["by_rule"]) == {
            "RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006"}
        paths = {f["path"] for f in payload["findings"]}
        assert all(not p.startswith("/") for p in paths)  # relativized

    def test_github_format(self, capsys):
        rc = check_cli.main(["--src-root", FIXTURES, "--repo-root",
                             FIXTURES, "--format", "github"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "::error file=" in out and "title=RPR002" in out

    def test_list_rules(self, capsys):
        rc = check_cli.main(["--list-rules"])
        out = capsys.readouterr().out
        assert rc == 0
        for code in ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005",
                     "RPR006"):
            assert code in out

    def test_exit_2_on_unknown_rule(self, capsys):
        rc = check_cli.main(["--rules", "RPR999"])
        assert rc == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_exit_2_on_bad_src_root(self, capsys):
        rc = check_cli.main(["--src-root", FIXTURES + "/repro/core"])
        assert rc == 2

    def test_bench_cli_dispatches_check_verb(self, capsys):
        rc = bench_cli.main(["check", "--src-root", FIXTURES,
                             "--repo-root", FIXTURES])
        assert rc == 1
        assert "RPR001" in capsys.readouterr().out

    def test_bench_cli_sanitize_flag_arms_env(self, capsys, monkeypatch):
        monkeypatch.delenv(sanitize.ENV_VAR, raising=False)
        rc = bench_cli.main(["--sanitize", "check", "--list-rules"])
        assert rc == 0
        assert os.environ[sanitize.ENV_VAR] == "1"
        assert sanitize_enabled()

    def test_render_rejects_unknown_format(self):
        with pytest.raises(ValueError):
            render([], "yaml")

    def test_clean_render_for_empty_findings(self):
        assert "clean" in render([], "text")
        assert json.loads(render([], "json"))["clean"] is True
        assert "clean" in render([], "github")

    def test_finding_render_shapes(self):
        f = Finding(path="a/b.py", line=3, col=7, code="RPR001",
                    message="bad: stuff, here")
        text = render([f], "text")
        assert "a/b.py:3:7: RPR001" in text
        gh = render([f], "github")
        assert "::error file=a/b.py,line=3,col=7,title=RPR001::" in gh


# ----------------------------------------------------------------------
# runtime sanitizer
# ----------------------------------------------------------------------
def tiny_graph():
    return TaskGraph([2.0, 3.0, 4.0], {(0, 1): 5.0, (0, 2): 1.0},
                     name="san")


class TestSanitizer:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(sanitize.ENV_VAR, raising=False)
        assert not sanitize_enabled()
        monkeypatch.setenv(sanitize.ENV_VAR, "0")
        assert not sanitize_enabled()

    def test_enabled_by_env(self, sanitized):
        assert sanitize_enabled()

    def test_require_raises_sanitize_error(self):
        sanitize.require(True, "fine")
        with pytest.raises(SanitizeError, match="sanitizer: broken"):
            sanitize.require(False, "broken")
        assert issubclass(SanitizeError, RuntimeError)

    def test_freeze_arrays_marks_readonly(self):
        arr = np.zeros(4)
        sanitize.freeze_arrays(arr, "not-an-array", None)
        with pytest.raises(ValueError):
            arr[0] = 1.0

    def test_csr_round_trip_clean(self, sanitized):
        g = tiny_graph()
        indptr, indices, costs = g.succ_csr()
        assert list(indices[indptr[0]:indptr[1]]) == [1, 2]
        g.pred_csr()

    def test_csr_round_trip_detects_corruption(self, sanitized):
        g = tiny_graph()
        g.succ_csr()       # build (and pass) the clean CSR first
        g._succ[0][0] = 99  # a scheduler corrupts shared adjacency memory
        with pytest.raises(SanitizeError, match="round-trip"):
            g.succ_csr()

    def test_plan_arrays_frozen(self):
        from repro.core.kernel import tlevel_sweep

        g = tiny_graph()
        tlevel_sweep(g)
        src, dst, cost, bounds = g._cache["_fwd_plan"]
        for arr in (src, dst, cost, bounds):
            assert not arr.flags.writeable

    def test_placement_mirror_check_clean(self, sanitized):
        g = tiny_graph()
        s = Schedule(g, 2)
        s.place(0, 0, 0.0)
        s.place(1, 1, 7.0)
        s.place(2, 0, 3.0)
        assert s.length == 7.0 + 3.0

    def test_placement_detects_corrupted_mirror(self, sanitized):
        g = tiny_graph()
        s = Schedule(g, 2)
        s.place(0, 0, 0.0)
        original = Schedule._sanitize_placement

        def corrupt_then_check(self, node, proc, i):
            self._node_finish[node] += 1.0
            return original(self, node, proc, i)

        s._sanitize_placement = corrupt_then_check.__get__(s)
        with pytest.raises(SanitizeError, match="mirrors"):
            s.place(1, 0, 2.0)

    def test_arrival_profile_oracle_clean(self, sanitized):
        g = tiny_graph()
        s = Schedule(g, 2)
        s.place(0, 0, 0.0)
        profile = arrival_profile(s, 1)
        assert profile.drt(0) == s.data_ready_time(1, 0)
        assert profile.drt(1) == s.data_ready_time(1, 1)

    def test_arrival_profile_detects_broken_trick(self, sanitized,
                                                  monkeypatch):
        # The profile and the oracle read the same mirrors, so the hook
        # specifically guards the best/second-best bookkeeping: break
        # the builder and the oracle cross-check must catch it.
        from repro.core import kernel

        real_build = kernel._build_profile

        def corrupt_build(parents, costs, group_of, finish_of):
            profile = real_build(parents, costs, group_of, finish_of)
            profile.r1 += 1.0
            return profile

        monkeypatch.setattr(kernel, "_build_profile", corrupt_build)
        g = tiny_graph()
        s = Schedule(g, 2)
        s.place(0, 0, 0.0)
        with pytest.raises(SanitizeError, match="arrival profile"):
            arrival_profile(s, 1)

    def test_simulator_runs_under_sanitizer(self, sanitized):
        from repro.algorithms import get_scheduler

        g = tiny_graph()
        schedule = get_scheduler("HLFET").schedule(g, Machine(2))
        result = simulate(schedule, rng=0)
        assert result.makespan == pytest.approx(schedule.length)

    def test_hooks_cost_nothing_when_disarmed(self, monkeypatch):
        monkeypatch.delenv(sanitize.ENV_VAR, raising=False)
        g = tiny_graph()
        g.succ_csr()
        g._succ[0][0] = 99  # corruption goes unnoticed when disarmed
        g.succ_csr()


# ----------------------------------------------------------------------
# regression tests for the violations the rules surfaced
# ----------------------------------------------------------------------
class TestSurfacedFixes:
    def test_random_connected_stream_unchanged(self):
        # RPR002 fix: as_generator(seed) must reproduce the exact
        # topology np.random.default_rng(seed) used to produce.
        t = Topology.random_connected(10, extra_links=5, seed=3)
        rng = np.random.default_rng(3)
        order = rng.permutation(10)
        expected_tree = set()
        for i in range(1, 10):
            j = int(rng.integers(0, i))
            a, b = int(order[i]), int(order[j])
            expected_tree.add((min(a, b), max(a, b)))
        assert expected_tree <= {tuple(l) for l in t.links}

    def test_random_connected_accepts_generator_seed(self):
        a = Topology.random_connected(8, 3, seed=np.random.default_rng(7))
        b = Topology.random_connected(8, 3, seed=np.random.default_rng(7))
        assert a.links == b.links

    def test_critical_path_entry_selection_unchanged(self):
        # RPR005 fix in attributes: epsilon compare must still pick the
        # same CP entry node as the exact t==0.0 compare did.
        from repro.core.attributes import blevel, critical_path

        g = TaskGraph([1.0, 5.0, 1.0, 1.0],
                      {(0, 2): 1.0, (1, 2): 1.0, (2, 3): 2.0}, name="cp")
        path = critical_path(g)
        assert path[0] == 1  # the max-blevel entry
        assert max(blevel(g)) == pytest.approx(5.0 + 1.0 + 1.0 + 2.0 + 1.0)


# ----------------------------------------------------------------------
# validate(collect=True) and the violation table
# ----------------------------------------------------------------------
class TestValidateCollect:
    def test_collect_returns_all_violations(self):
        g = tiny_graph()
        s = Schedule(g, 2)
        s.place(0, 0, 0.0)
        s.place(1, 1, 0.0, duration=1.0)
        s.place(2, 1, 10.0)
        violations = validate(s, collect=True)
        codes = [v.code for v in violations]
        assert "duration" in codes and "precedence" in codes
        assert len(violations) >= 2
        prec = next(v for v in violations if v.code == "precedence")
        assert prec.node == 1 and prec.proc == 1

    def test_collect_empty_on_valid_schedule(self):
        g = tiny_graph()
        s = Schedule(g, 1)
        s.place(0, 0, 0.0)
        s.place(1, 0, 2.0)
        s.place(2, 0, 5.0)
        assert validate(s, collect=True) == []
        assert validate(s) is None

    def test_raising_mode_reports_first_collected(self):
        g = tiny_graph()
        s = Schedule(g, 2)
        s.place(0, 0, 0.0)
        s.place(1, 1, 0.0, duration=1.0)
        s.place(2, 1, 10.0)
        collected = validate(s, collect=True)
        with pytest.raises(ScheduleError) as err:
            validate(s)
        assert str(err.value) == collected[0].message

    def test_incomplete_short_circuits(self):
        g = tiny_graph()
        s = Schedule(g, 2)
        s.place(0, 0, 0.0)
        violations = validate(s, collect=True)
        assert [v.code for v in violations] == ["incomplete"]

    def test_render_violations_table(self):
        violations = [
            Violation("overlap", "nodes 1 and 2 overlap on P0",
                      node=2, proc=0),
            Violation("incomplete", "schedule incomplete"),
        ]
        table = render_violations(violations)
        lines = table.splitlines()
        assert lines[0].split() == ["CODE", "NODE", "PROC", "DETAIL"]
        assert any("overlap" in ln and "P0" in ln for ln in lines)
        assert "2 violations" in lines[-1]
        assert render_violations([]) == "schedule valid: 0 violations"

    def test_runner_embeds_violation_table(self, monkeypatch):
        from repro.bench import runner as bench_runner

        class BrokenScheduler:
            name = "BROKEN"
            klass = "BNP"

            def schedule(self, graph, machine):
                s = Schedule(graph, 2)
                s.place(0, 0, 0.0)
                s.place(1, 1, 0.0, duration=1.0)
                s.place(2, 1, 10.0)
                return s

        monkeypatch.setattr(bench_runner, "get_scheduler",
                            lambda name: BrokenScheduler())
        with pytest.raises(ScheduleError) as err:
            bench_runner.run_one("BROKEN", tiny_graph(),
                                 machine=Machine(2))
        message = str(err.value)
        assert "invalid schedule" in message
        assert "CODE" in message and "precedence" in message

"""Property tests for the flat-array kernel (Hypothesis).

Three families of invariants guard the kernel rewrite:

* the CSR adjacency round-trips ``successors``/``predecessors``/
  ``comm_cost`` for arbitrary DAGs;
* the level-batched attribute sweeps agree with straightforward scalar
  reference implementations (the pre-kernel code, inlined here as the
  oracle);
* ``earliest_slot`` placements never overlap and respect data-ready
  times, the arrival profile answers exactly ``data_ready_time`` for
  every processor, and the ready tracker/heap machinery selects exactly
  what a linear ``max`` would.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attributes import (
    blevel,
    static_blevel,
    static_tlevel,
    tlevel,
)
from repro.core.kernel import LazyPriorityQueue
from repro.core.listsched import ReadyTracker
from repro.core.schedule import Schedule, validate
from strategies import task_graphs


# ----------------------------------------------------------------------
# CSR round-trips
# ----------------------------------------------------------------------
@given(task_graphs())
@settings(max_examples=60, deadline=None)
def test_csr_roundtrips_adjacency(graph):
    s_indptr, s_indices, s_costs = graph.succ_csr()
    p_indptr, p_indices, p_costs = graph.pred_csr()
    assert int(s_indptr[-1]) == graph.num_edges == int(p_indptr[-1])
    for u in graph.nodes():
        succs = list(s_indices[s_indptr[u]:s_indptr[u + 1]])
        assert succs == graph.successors(u)
        for k in range(int(s_indptr[u]), int(s_indptr[u + 1])):
            assert s_costs[k] == graph.comm_cost(u, int(s_indices[k]))
        preds = list(p_indices[p_indptr[u]:p_indptr[u + 1]])
        assert preds == graph.predecessors(u)
        for k in range(int(p_indptr[u]), int(p_indptr[u + 1])):
            assert p_costs[k] == graph.comm_cost(int(p_indices[k]), u)


@given(task_graphs())
@settings(max_examples=60, deadline=None)
def test_pair_lists_match_adjacency(graph):
    for u in graph.nodes():
        succs, costs = graph.succ_pairs(u)
        assert list(succs) == graph.successors(u)
        assert costs == [graph.comm_cost(u, v) for v in succs]
        preds, pcosts = graph.pred_pairs(u)
        assert list(preds) == graph.predecessors(u)
        assert pcosts == [graph.comm_cost(p, u) for p in preds]


# ----------------------------------------------------------------------
# attribute sweeps vs. scalar oracles
# ----------------------------------------------------------------------
def _tlevel_oracle(graph, zeroed=None):
    t = [0.0] * graph.num_nodes
    for u in graph.topological_order:
        best = 0.0
        for p in graph.predecessors(u):
            c = graph.comm_cost(p, u)
            if zeroed and (p, u) in zeroed:
                c = 0.0
            cand = t[p] + graph.weight(p) + c
            if cand > best:
                best = cand
        t[u] = best
    return t


def _blevel_oracle(graph, zeroed=None):
    b = [0.0] * graph.num_nodes
    for u in reversed(graph.topological_order):
        best = 0.0
        for s in graph.successors(u):
            c = graph.comm_cost(u, s)
            if zeroed and (u, s) in zeroed:
                c = 0.0
            cand = b[s] + c
            if cand > best:
                best = cand
        b[u] = best + graph.weight(u)
    return b


@given(task_graphs())
@settings(max_examples=60, deadline=None)
def test_level_sweeps_match_scalar_oracles(graph):
    assert tlevel(graph) == _tlevel_oracle(graph)
    assert blevel(graph) == _blevel_oracle(graph)
    # Static variants: the oracle with every edge cost at zero.
    zero_all = set(graph._edge_cost)
    assert tlevel(graph, None) == _tlevel_oracle(graph)
    assert static_tlevel(graph) == _tlevel_oracle(graph, zero_all)
    assert static_blevel(graph) == _blevel_oracle(graph, zero_all)


@given(task_graphs(), st.randoms(use_true_random=False))
@settings(max_examples=40, deadline=None)
def test_zeroed_sweeps_match_scalar_oracles(graph, rnd):
    edges = sorted(graph._edge_cost)
    zeroed = {e for e in edges if rnd.random() < 0.4}
    assert tlevel(graph, zeroed) == _tlevel_oracle(graph, zeroed)
    assert blevel(graph, zeroed) == _blevel_oracle(graph, zeroed)


# ----------------------------------------------------------------------
# schedule interval lists + arrival profiles
# ----------------------------------------------------------------------
@given(task_graphs(), st.randoms(use_true_random=False),
       st.integers(1, 4), st.booleans())
@settings(max_examples=60, deadline=None)
def test_earliest_slot_never_overlaps(graph, rnd, num_procs, insertion):
    """Random list scheduling through earliest_slot stays feasible."""
    schedule = Schedule(graph, num_procs)
    tracker = ReadyTracker(graph)
    while not tracker.all_scheduled():
        node = rnd.choice(sorted(tracker.iter_ready()))
        proc = rnd.randrange(num_procs)
        profile = schedule.arrival_profile(node)
        # The profile must answer exactly what the reference scan does.
        for p in range(num_procs):
            assert profile.drt(p) == schedule.data_ready_time(node, p)
        drt = profile.drt(proc)
        start = schedule.earliest_slot(proc, drt,
                                       schedule.duration_of(node, proc),
                                       insertion=insertion)
        assert start >= drt
        # place() rejects overlaps; reaching a complete schedule proves
        # every slot the search returned was genuinely free.
        schedule.place(node, proc, start)
        tracker.mark_scheduled(node)
    validate(schedule)
    # Sorted interval lists per processor: pairwise disjoint.
    for proc in range(num_procs):
        tasks = schedule.tasks_on(proc)
        for a, b in zip(tasks, tasks[1:]):
            assert a.finish <= b.start + 1e-9


@given(task_graphs())
@settings(max_examples=40, deadline=None)
def test_insertion_never_later_than_append(graph):
    """With insertion, earliest_slot can only improve the start time."""
    schedule = Schedule(graph, 2)
    tracker = ReadyTracker(graph)
    rnd = random.Random(1234)
    while not tracker.all_scheduled():
        node = rnd.choice(sorted(tracker.iter_ready()))
        proc = rnd.randrange(2)
        drt = schedule.data_ready_time(node, proc)
        dur = schedule.duration_of(node, proc)
        with_ins = schedule.earliest_slot(proc, drt, dur, insertion=True)
        without = schedule.earliest_slot(proc, drt, dur, insertion=False)
        assert with_ins <= without
        schedule.place(node, proc, without)
        tracker.mark_scheduled(node)


# ----------------------------------------------------------------------
# ready tracker + heap selection
# ----------------------------------------------------------------------
@given(task_graphs(), st.randoms(use_true_random=False))
@settings(max_examples=60, deadline=None)
def test_ready_tracker_invariants(graph, rnd):
    tracker = ReadyTracker(graph)
    scheduled = set()
    ever_ready = set(tracker.iter_ready())
    assert ever_ready == set(graph.entry_nodes)
    while not tracker.all_scheduled():
        ready = list(tracker.iter_ready())
        assert len(ready) == len(set(ready)), "no duplicate ready entries"
        for n in ready:
            assert n not in scheduled
            assert all(p in scheduled for p in graph.predecessors(n))
        node = rnd.choice(sorted(ready))
        released = tracker.mark_scheduled(node)
        scheduled.add(node)
        for child in released:
            assert child not in ever_ready, "nodes become ready exactly once"
            ever_ready.add(child)
    assert scheduled == set(graph.nodes())
    assert ever_ready == set(graph.nodes())


@given(task_graphs())
@settings(max_examples=40, deadline=None)
def test_priority_queue_matches_linear_max(graph):
    """Heap selection equals max() over the live ready set."""
    sl = static_blevel(graph)
    tracker = ReadyTracker(graph)
    queue = tracker.priority_queue(lambda n: (-sl[n], n))
    order = []
    while not tracker.all_scheduled():
        expected = max(tracker.iter_ready(), key=lambda n: (sl[n], -n))
        node = queue.pop_best()
        assert node == expected
        order.append(node)
        for child in tracker.mark_scheduled(node):
            queue.push(child)
    assert sorted(order) == list(graph.nodes())


def test_lazy_queue_raises_when_exhausted():
    import pytest

    q = LazyPriorityQueue(lambda n: n, lambda n: False, initial=[1, 2])
    with pytest.raises(IndexError):
        q.pop_best()

"""Golden regression tests: fixed-seed schedule lengths for all 15
algorithms.

These lock the exact behaviour of every scheduler on three seeded
graphs.  A failing golden test does not necessarily mean a bug — an
intentional algorithm change shifts lengths — but it must never fail
*silently*: regenerate the constants (the command is in each table's
comment) and review the diff consciously.
"""

import pytest

from repro import Machine, NetworkMachine, Topology, get_scheduler
from repro.generators.psg import kwok_ahmad_9
from repro.generators.random_graphs import rgbos_graph, rgnos_graph

ALL15 = [
    "HLFET", "ISH", "MCP", "ETF", "DLS", "LAST",
    "EZ", "LC", "DSC", "MD", "DCP",
    "MH", "DLS-APN", "BU", "BSA",
]


def _run(name, graph):
    s = get_scheduler(name)
    if s.klass == "APN":
        machine = NetworkMachine(Topology.hypercube(2))
    else:
        machine = Machine.unbounded(graph)
    return s.schedule(graph, machine).length


# Regenerate any table with:
#   python -c "import tests.test_golden as t; t.regen()"
GOLDEN_KWOK9 = {
    "HLFET": 19.0, "ISH": 19.0, "MCP": 19.0, "ETF": 19.0, "DLS": 19.0,
    "LAST": 16.0,
    "EZ": 20.0, "LC": 22.0, "DSC": 19.0, "MD": 20.0, "DCP": 19.0,
    "MH": 19.0, "DLS-APN": 23.0, "BU": 24.0, "BSA": 23.0,
}

GOLDEN_RGBOS20 = {
    "HLFET": 192.0, "ISH": 192.0, "MCP": 258.0, "ETF": 239.0,
    "DLS": 192.0, "LAST": 258.0,
    "EZ": 254.0, "LC": 192.0, "DSC": 258.0, "MD": 293.0, "DCP": 192.0,
    "MH": 231.0, "DLS-APN": 246.0, "BU": 372.0, "BSA": 268.0,
}

GOLDEN_RGNOS50 = {
    "HLFET": 359.0, "ISH": 359.0, "MCP": 354.0, "ETF": 356.0,
    "DLS": 361.0, "LAST": 356.0,
    "EZ": 355.0, "LC": 353.0, "DSC": 359.0, "MD": 490.0, "DCP": 353.0,
    "MH": 1315.0, "DLS-APN": 1122.0, "BU": 1458.0, "BSA": 1147.0,
}


@pytest.fixture(scope="module")
def rgbos20():
    return rgbos_graph(20, 1.0, seed=2024)


@pytest.fixture(scope="module")
def rgnos50():
    return rgnos_graph(50, 1.0, 2, seed=2024)


@pytest.mark.parametrize("name", ALL15)
def test_kwok9_lengths(name):
    assert _run(name, kwok_ahmad_9()) == pytest.approx(GOLDEN_KWOK9[name])


@pytest.mark.parametrize("name", ALL15)
def test_rgbos20_lengths(name, rgbos20):
    assert _run(name, rgbos20) == pytest.approx(GOLDEN_RGBOS20[name])


@pytest.mark.parametrize("name", ALL15)
def test_rgnos50_lengths(name, rgnos50):
    assert _run(name, rgnos50) == pytest.approx(GOLDEN_RGNOS50[name])


def regen():  # pragma: no cover - developer tool
    """Print fresh golden tables after an intentional algorithm change."""
    for label, graph in (
        ("GOLDEN_KWOK9", kwok_ahmad_9()),
        ("GOLDEN_RGBOS20", rgbos_graph(20, 1.0, seed=2024)),
        ("GOLDEN_RGNOS50", rgnos_graph(50, 1.0, 2, seed=2024)),
    ):
        print(f"{label} = {{")
        for name in ALL15:
            print(f"    {name!r}: {_run(name, graph)!r},")
        print("}")

"""Behavioural tests for the five UNC algorithms."""

import pytest

from repro import Machine, TaskGraph, get_scheduler, validate
from repro.bench.runner import UNC_ALGORITHMS

ALL_UNC = list(UNC_ALGORITHMS)


def unbounded(graph):
    return Machine.unbounded(graph)


@pytest.mark.parametrize("name", ALL_UNC)
class TestCommonUNC:
    def test_valid_on_kwok9(self, name, kwok9):
        sched = get_scheduler(name).schedule(kwok9, unbounded(kwok9))
        validate(sched)

    def test_deterministic(self, name, kwok9):
        s1 = get_scheduler(name).schedule(kwok9, unbounded(kwok9))
        s2 = get_scheduler(name).schedule(kwok9, unbounded(kwok9))
        assert s1.to_dict() == s2.to_dict()

    def test_single_node(self, name):
        g = TaskGraph([3.0], {})
        sched = get_scheduler(name).schedule(g, unbounded(g))
        assert sched.length == 3.0

    def test_chain_collapses_to_one_proc(self, name):
        """A chain with heavy communication must be clustered serially:
        every UNC algorithm zeroes those edges."""
        g = TaskGraph(
            [2.0, 3.0, 4.0],
            {(0, 1): 50.0, (1, 2): 50.0},
            name="heavy-chain",
        )
        sched = get_scheduler(name).schedule(g, unbounded(g))
        validate(sched)
        assert sched.length == pytest.approx(9.0)
        assert sched.processors_used() == 1

    def test_independent_tasks(self, name):
        g = TaskGraph([5.0, 5.0, 5.0], {})
        sched = get_scheduler(name).schedule(g, unbounded(g))
        validate(sched)
        assert sched.length == pytest.approx(5.0)

    def test_random_graph_validity(self, name):
        from repro.generators.random_graphs import rgnos_graph

        for seed in (0, 1):
            g = rgnos_graph(40, 1.0, 2, seed=seed)
            sched = get_scheduler(name).schedule(g, unbounded(g))
            validate(sched)

    def test_metadata(self, name):
        assert get_scheduler(name).klass == "UNC"


class TestEZ:
    def test_never_worse_than_no_clustering(self, kwok9):
        """EZ only accepts merges that do not increase the estimated
        makespan, so its result is <= the fully distributed baseline."""
        from repro.algorithms.mapping import mapping_makespan

        base = mapping_makespan(kwok9, list(kwok9.nodes()))
        sched = get_scheduler("EZ").schedule(kwok9, unbounded(kwok9))
        assert sched.length <= base + 1e-9

    def test_zeroes_heaviest_edge_when_beneficial(self):
        g = TaskGraph([1.0, 1.0], {(0, 1): 100.0})
        sched = get_scheduler("EZ").schedule(g, unbounded(g))
        assert sched.proc_of(0) == sched.proc_of(1)


class TestLC:
    def test_linear_clusters(self, kwok9):
        """Every LC cluster is linear: its tasks form a chain under
        precedence (no two independent tasks share a cluster)."""
        sched = get_scheduler("LC").schedule(kwok9, unbounded(kwok9))
        # Reconstruct reachability.
        import itertools

        reach = {n: set() for n in kwok9.nodes()}
        for u in reversed(kwok9.topological_order):
            for s in kwok9.successors(u):
                reach[u].add(s)
                reach[u] |= reach[s]
        for p in range(sched.num_procs):
            nodes = [pl.node for pl in sched.tasks_on(p)]
            for a, b in itertools.combinations(nodes, 2):
                assert b in reach[a] or a in reach[b], (
                    f"cluster {p} holds independent nodes {a}, {b}"
                )

    def test_cp_in_one_cluster(self, kwok9):
        from repro.core.attributes import critical_path

        sched = get_scheduler("LC").schedule(kwok9, unbounded(kwok9))
        cp = critical_path(kwok9)
        procs = {sched.proc_of(n) for n in cp}
        assert len(procs) == 1


class TestDSC:
    def test_merge_only_when_tlevel_reduces(self):
        # Node 1 (heavy edge, higher priority) merges with 0 first and
        # occupies the cluster until t=6.  Node 2's cheap edge then makes
        # waiting for the busy cluster (start 6) worse than paying the
        # 0.5 communication (start 5.5), so DSC keeps it separate.
        g = TaskGraph(
            [5.0, 1.0, 1.0],
            {(0, 1): 10.0, (0, 2): 0.5},
            name="dsc-cheap",
        )
        sched = get_scheduler("DSC").schedule(g, Machine.unbounded(g))
        assert sched.proc_of(1) == sched.proc_of(0)
        assert sched.start_of(2) == pytest.approx(5.5)
        assert sched.proc_of(2) != sched.proc_of(0)

    def test_merge_when_reduces(self):
        g = TaskGraph([5.0, 1.0], {(0, 1): 10.0})
        sched = get_scheduler("DSC").schedule(g, Machine.unbounded(g))
        assert sched.proc_of(0) == sched.proc_of(1)
        assert sched.length == pytest.approx(6.0)

    def test_fork_spreads(self):
        g = TaskGraph(
            [1.0, 4.0, 4.0],
            {(0, 1): 1.0, (0, 2): 1.0},
            name="fork",
        )
        sched = get_scheduler("DSC").schedule(g, Machine.unbounded(g))
        validate(sched)
        # One child co-located (zero comm), the other on its own proc.
        assert sched.length <= 1 + 1 + 4 + 1e-9


class TestMD:
    def test_uses_few_processors_on_chains(self):
        g = TaskGraph(
            [2.0] * 6,
            {(i, i + 1): 1.0 for i in range(5)},
            name="chain6",
        )
        sched = get_scheduler("MD").schedule(g, Machine.unbounded(g))
        assert sched.processors_used() == 1

    def test_mobility_prefers_cp(self, kwok9):
        """MD's first-placed processor must carry the whole current
        critical path prefix — start with node 0 at time 0."""
        sched = get_scheduler("MD").schedule(kwok9, unbounded(kwok9))
        assert sched.start_of(0) == 0.0


class TestDCP:
    def test_beats_or_matches_dsc_on_paper_example(self, kwok9):
        """The paper's headline UNC result: DCP consistently generates
        the best solutions (Table 1 discussion)."""
        dcp = get_scheduler("DCP").schedule(kwok9, unbounded(kwok9)).length
        for other in ("EZ", "LC", "DSC", "MD"):
            assert dcp <= get_scheduler(other).schedule(
                kwok9, unbounded(kwok9)
            ).length + 1e-9

    def test_processor_economy(self):
        """DCP only considers processors of parents/children + one fresh:
        a wide independent fan still gets spread, but chains stay put."""
        g = TaskGraph(
            [2.0] * 5,
            {(i, i + 1): 3.0 for i in range(4)},
            name="chain5",
        )
        sched = get_scheduler("DCP").schedule(g, Machine.unbounded(g))
        assert sched.processors_used() == 1

    def test_lookahead_keeps_critical_child_near(self):
        # Parent with one heavy child: DCP's composite score places the
        # child on the parent's processor.
        g = TaskGraph(
            [1.0, 8.0, 1.0],
            {(0, 1): 20.0, (0, 2): 0.5},
            name="cc",
        )
        sched = get_scheduler("DCP").schedule(g, Machine.unbounded(g))
        assert sched.proc_of(1) == sched.proc_of(0)


class TestUNCvsBNPConventions:
    def test_unbounded_machine_never_limits(self, kwok9):
        """With v processors available no UNC algorithm can run out."""
        for name in ALL_UNC:
            sched = get_scheduler(name).schedule(kwok9, unbounded(kwok9))
            assert sched.processors_used() <= kwok9.num_nodes

"""End-to-end workflows a downstream adopter would run.

Each test walks a realistic usage path across the public API surface —
file I/O, scheduling, validation, metrics, rendering — the way the
README and examples advertise it.
"""

import os

import pytest

from repro import (
    Machine,
    NetworkMachine,
    Topology,
    get_scheduler,
    list_schedulers,
    validate,
)
from repro.generators import cholesky_graph, rgnos_graph
from repro.io import dumps_stg, gantt, load_stg, loads_stg, to_dot
from repro.metrics import RunResult, average_ranks, nsl


class TestFileBasedWorkflow:
    def test_stg_to_schedule_to_dot(self, tmp_path):
        # 1. A user saves a generated workload to disk...
        graph = rgnos_graph(30, 1.0, 2, seed=11)
        path = tmp_path / "workload.stg"
        path.write_text(dumps_stg(graph))
        # 2. ...reloads it later...
        with open(path) as fh:
            loaded = load_stg(fh, name="workload")
        assert loaded.num_nodes == graph.num_nodes
        # 3. ...schedules it and inspects the result.
        sched = get_scheduler("DCP").schedule(loaded, Machine.unbounded(loaded))
        validate(sched)
        dot = to_dot(loaded, sched)
        (tmp_path / "schedule.dot").write_text(dot)
        assert "digraph" in dot
        chart = gantt(sched)
        assert "length=" in chart


class TestAlgorithmSelectionWorkflow:
    def test_pick_best_algorithm_for_workload(self):
        """The study's raison d'etre: given a workload class, rank the
        candidate algorithms and pick a winner."""
        graphs = [cholesky_graph(n, ccr=2.0) for n in (6, 8, 10)]
        rows = []
        for g in graphs:
            for name in list_schedulers("BNP"):
                sched = get_scheduler(name).schedule(g, Machine(8))
                validate(sched)
                rows.append(RunResult(name, "BNP", g.name, g.num_nodes,
                                      sched.length, nsl(sched),
                                      sched.processors_used(), 0.0))
        ranks = average_ranks(rows)
        assert len(ranks) == 6
        best, _ = ranks[0]
        worst, _ = ranks[-1]
        assert best != worst
        # On communication-heavy Cholesky, LAST must not win the suite.
        assert best != "LAST"


class TestHeterogeneousMachineWorkflow:
    def test_same_workload_three_machine_models(self):
        g = rgnos_graph(24, 1.0, 2, seed=4)
        # Bounded clique.
        bounded = get_scheduler("MCP").schedule(g, Machine(4))
        validate(bounded)
        # Unbounded clique.
        unbounded = get_scheduler("DSC").schedule(g, Machine.unbounded(g))
        validate(unbounded)
        # Contended network.
        topo = Topology.mesh2d(2, 2)
        networked = get_scheduler("BSA").schedule(g, NetworkMachine(topo))
        validate(networked, network=topo)
        # The network can only be slower than the contention-free clique
        # with the same processor count running the same heuristic
        # family... not a theorem across algorithms, but the floor is:
        from repro.core.attributes import cp_computation_cost

        floor = cp_computation_cost(g)
        for sched in (bounded, unbounded, networked):
            assert sched.length >= floor - 1e-6


class TestDuplicationWorkflow:
    def test_tdb_pipeline(self):
        from repro.duplication import dsh_schedule, validate_duplication

        g = rgnos_graph(20, 5.0, 2, seed=9)
        dup = dsh_schedule(g, 4)
        validate_duplication(dup)
        base = get_scheduler("HLFET").schedule(g, Machine(4))
        # Duplication never loses to its own non-duplicating baseline on
        # this seeded high-CCR workload.
        assert dup.length <= base.length + 1e-9

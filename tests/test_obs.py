"""The observability subsystem (:mod:`repro.obs`).

Covers the arming contract (disarmed hooks are no-ops, armed spans nest
correctly), the metric registry's deterministic/local split, the
cross-process collect/absorb merge, engine integration (sim + online
timelines and counters), Perfetto export structure, the sanitizer-armed
nesting validation, the counter-determinism contract across ``--jobs``,
the gantt timeline adapter, the CLI trace verbs, and the counter gate
in ``benchmarks/check_regression.py``.
"""

import importlib.util
import json
from pathlib import Path

import pytest

from repro import Machine, get_scheduler
from repro.check.sanitize import SanitizeError
from repro.obs import export, metrics, report, trace
from repro.sim import PerturbationModel, simulate
from repro.sim.online.engine import simulate_online


# ----------------------------------------------------------------------
# arming fixtures
# ----------------------------------------------------------------------
@pytest.fixture(autouse=True)
def obs_reset(monkeypatch):
    """Every test starts and ends with a disarmed, empty tracer."""
    monkeypatch.delenv(trace.ENV_VAR, raising=False)
    monkeypatch.delenv(trace.ENV_PATH_VAR, raising=False)
    trace.reset()
    yield
    trace.reset()


@pytest.fixture
def armed(obs_reset, monkeypatch):
    monkeypatch.setenv(trace.ENV_VAR, "1")


def _schedule(graph, procs=2, alg="MCP"):
    return get_scheduler(alg).schedule(graph, Machine(procs))


# ----------------------------------------------------------------------
# disarmed: everything is a no-op
# ----------------------------------------------------------------------
class TestDisarmed:
    def test_span_yields_none_and_records_nothing(self):
        with trace.span("sched.schedule", algorithm="MCP") as sp:
            assert sp is None
        assert trace.current() is None

    def test_metrics_record_nothing(self):
        metrics.incr("sim.events", 5)
        metrics.gauge("g", 1.0)
        metrics.observe("h", 2.0)
        assert metrics.counters() == {}
        assert metrics.gauges() == {}
        assert metrics.histograms() == {}

    def test_add_timeline_declines(self):
        assert not trace.add_timeline(("sim", "x", "g"), "x", [])

    def test_flush_writes_nothing(self, tmp_path):
        assert report.flush(str(tmp_path / "trace.json")) is None
        assert list(tmp_path.iterdir()) == []

    def test_simulation_leaves_tracer_empty(self, kwok9):
        simulate(_schedule(kwok9), label="MCP")
        assert trace.current() is None
        assert metrics.counters() == {}


# ----------------------------------------------------------------------
# armed spans: nesting, tracks, validation
# ----------------------------------------------------------------------
class TestSpans:
    def test_nesting_links_parents(self, armed):
        with trace.span("outer", k="v") as outer:
            with trace.span("inner") as inner:
                pass
        assert outer.parent == -1
        assert inner.parent == outer.sid
        assert inner.track == outer.track == "main"
        assert outer.args == {"k": "v"}
        assert outer.dur_ns >= inner.dur_ns >= 0
        trace.validate_nesting(trace.current().spans)

    def test_validate_rejects_unclosed(self):
        sp = trace.Span(sid=0, parent=-1, name="open", track="main",
                        start_ns=0)
        with pytest.raises(SanitizeError, match="never closed"):
            trace.validate_nesting([sp])

    def test_validate_rejects_child_escaping_parent(self):
        parent = trace.Span(sid=0, parent=-1, name="p", track="main",
                            start_ns=0, dur_ns=100)
        child = trace.Span(sid=1, parent=0, name="c", track="main",
                           start_ns=50, dur_ns=100)
        with pytest.raises(SanitizeError, match="escapes its parent"):
            trace.validate_nesting([parent, child])

    def test_validate_rejects_overlapping_siblings(self):
        a = trace.Span(sid=0, parent=-1, name="a", track="main",
                       start_ns=0, dur_ns=100)
        b = trace.Span(sid=1, parent=-1, name="b", track="main",
                       start_ns=50, dur_ns=100)
        with pytest.raises(SanitizeError, match="overlap"):
            trace.validate_nesting([a, b])

    def test_siblings_on_distinct_tracks_may_overlap(self):
        a = trace.Span(sid=0, parent=-1, name="a", track="cell A",
                       start_ns=0, dur_ns=100)
        b = trace.Span(sid=1, parent=-1, name="b", track="cell B",
                       start_ns=50, dur_ns=100)
        trace.validate_nesting([a, b])  # must not raise

    def test_export_validates_only_under_sanitizer(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        tracer = trace.Tracer()
        tracer.spans = [
            trace.Span(sid=0, parent=-1, name="a", track="main",
                       start_ns=0, dur_ns=100),
            trace.Span(sid=1, parent=-1, name="b", track="main",
                       start_ns=50, dur_ns=100),
        ]
        doc = export.trace_document(tracer)  # sanitizer off: renders
        assert sum(ev["ph"] == "X" for ev in doc["traceEvents"]) == 2
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        with pytest.raises(SanitizeError, match="overlap"):
            export.trace_document(tracer)


# ----------------------------------------------------------------------
# metric registry
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counters_split_local_from_deterministic(self, armed):
        metrics.incr("sim.events", 3)
        metrics.incr("sim.events")
        metrics.incr("kernel.sweeps", 7)   # LOCAL_COUNTERS member
        assert metrics.counters() == {"sim.events": 4}
        assert metrics.local_counters() == {"kernel.sweeps": 7}

    def test_gauge_keeps_latest_histogram_folds(self, armed):
        metrics.gauge("g", 1.0)
        metrics.gauge("g", 2.5)
        for v in (1.0, 3.0, 2.0):
            metrics.observe("h", v)
        assert metrics.gauges() == {"g": 2.5}
        assert metrics.histograms() == {
            "h": {"count": 3, "total": 6.0, "min": 1.0, "max": 3.0}}

    def test_absorb_merges_every_section(self, armed):
        metrics.incr("sim.events", 2)
        metrics.observe("h", 5.0)
        metrics.absorb({"counters": {"sim.events": 3, "new": 1},
                        "local": {"kernel.sweeps": 2},
                        "gauges": {"g": 9.0},
                        "hists": {"h": {"count": 1, "total": 1.0,
                                        "min": 1.0, "max": 1.0}}})
        assert metrics.counters() == {"new": 1, "sim.events": 5}
        assert metrics.local_counters() == {"kernel.sweeps": 2}
        assert metrics.gauges() == {"g": 9.0}
        assert metrics.histograms()["h"] == {
            "count": 2, "total": 6.0, "min": 1.0, "max": 5.0}


# ----------------------------------------------------------------------
# collect/absorb: the cross-process merge primitive
# ----------------------------------------------------------------------
class TestCollectAbsorb:
    def test_collect_isolates_and_absorb_retags(self, armed):
        with trace.span("parent"):
            pass
        metrics.incr("sim.events")
        with trace.collect() as payload:
            with trace.span("bench.cell"):
                with trace.span("sched.schedule"):
                    pass
            metrics.incr("sim.events", 10)
        # The scope's data went to the payload, not the process tracer.
        assert [sp.name for sp in trace.current().spans] == ["parent"]
        assert metrics.counters() == {"sim.events": 1}
        assert [sp.name for sp in payload["spans"]] == [
            "bench.cell", "sched.schedule"]

        trace.absorb(payload, track="MCP on g1")
        spans = trace.current().spans
        assert [sp.name for sp in spans] == [
            "parent", "bench.cell", "sched.schedule"]
        cell, sched = spans[1], spans[2]
        assert cell.track == sched.track == "MCP on g1"
        assert sched.parent == cell.sid          # links survived rebasing
        assert len({sp.sid for sp in spans}) == 3
        assert metrics.counters() == {"sim.events": 11}

    def test_disarmed_collect_runs_block_untouched(self):
        with trace.collect() as payload:
            with trace.span("x") as sp:
                assert sp is None
        assert payload == {}


# ----------------------------------------------------------------------
# engine integration: counters and simulated-time timelines
# ----------------------------------------------------------------------
class TestEngineIntegration:
    def test_sim_counter_matches_result(self, armed, kwok9):
        schedule = _schedule(kwok9, alg="HLFET")
        res = simulate(schedule, label="HLFET")
        counters = metrics.counters()
        assert counters["sim.events"] == res.num_events
        assert counters["sched.heap_pops"] == kwok9.num_nodes
        assert counters["kernel.profiles"] > 0

    def test_timeline_recorded_once_per_key(self, armed, kwok9):
        schedule = _schedule(kwok9)
        for _ in range(3):   # a Monte-Carlo cell re-executes one schedule
            simulate(schedule, label="MCP")
        tracer = trace.current()
        assert len(tracer.timelines) == 1
        tl = tracer.timelines[0]
        assert tl["key"] == ("sim", "MCP", kwok9.name)
        assert len(tl["rows"]) == kwok9.num_nodes
        # Distinct label => distinct timeline.
        simulate(schedule, label="HLFET")
        assert len(tracer.timelines) == 2

    def test_online_replans_are_attributed(self, armed, kwok9):
        res = simulate_online(kwok9, Machine(2), "online:mcp,imode=blind",
                              perturb=PerturbationModel.uniform(0.5),
                              rng=7, label="online:mcp")
        counters = metrics.counters()
        assert counters["online.events"] == res.num_events
        assert counters["online.replans"] == res.num_replans
        assert len(res.replan_log) == res.num_replans
        causes = {cause for _, cause, _ in res.replan_log}
        assert causes <= {"task_started", "task_finished",
                          "message_arrived", "worker_idle"}
        moved = sum(m for _, _, m in res.replan_log)
        assert counters["online.migrations"] == moved
        (tl,) = [t for t in trace.current().timelines
                 if t["key"][0] == "online"]
        assert tl["key"] == ("online", "online:mcp", kwok9.name)
        # Every replan renders as an instant on the policy lane.
        assert len(tl["events"]) == res.num_replans
        assert all(ev[0] == -1 and ev[2] == "replan" for ev in tl["events"])


# ----------------------------------------------------------------------
# Perfetto export + manifest
# ----------------------------------------------------------------------
class TestExportAndManifest:
    def test_document_structure(self, armed, kwok9, diamond4):
        simulate(_schedule(kwok9), label="MCP")
        simulate(_schedule(diamond4), label="MCP")
        manifest = report.build_manifest()
        doc = export.trace_document(trace.current(), manifest=manifest)
        events = doc["traceEvents"]
        assert doc["reproManifest"] is manifest
        # One wall-clock process plus one per timeline.
        assert sorted({ev["pid"] for ev in events}) == [1, 2, 3]
        slices = [ev for ev in events if ev["ph"] == "X"]
        tasks = [ev for ev in slices if ev["cat"] == "task"]
        assert len(tasks) == kwok9.num_nodes + diamond4.num_nodes
        names = {ev["name"] for ev in events if ev["ph"] == "M"}
        assert "process_name" in names and "thread_name" in names

    def test_manifest_sections_and_self_time(self, armed, kwok9):
        simulate(_schedule(kwok9), label="MCP")
        manifest = report.build_manifest()
        assert manifest["schema"] == report.MANIFEST_SCHEMA
        assert set(manifest["counters"]) >= {"sim.events",
                                             "kernel.profiles"}
        assert all(name in metrics.LOCAL_COUNTERS
                   for name in manifest["local"])
        run = manifest["spans"]["sim.run"]
        assert run["count"] == 1
        assert 0 <= run["self_ms"] <= run["total_ms"]
        assert ["sim", "MCP", kwok9.name] in manifest["timelines"]

    def test_flush_round_trips_through_files(self, armed, kwok9,
                                             monkeypatch, tmp_path):
        monkeypatch.setenv(trace.ENV_PATH_VAR,
                           str(tmp_path / "out" / "trace.json"))
        simulate(_schedule(kwok9), label="MCP")
        trace_path, manifest_path = report.flush()
        assert manifest_path == str(tmp_path / "out" / "trace.manifest.json")
        doc = json.loads(Path(trace_path).read_text())
        manifest = json.loads(Path(manifest_path).read_text())
        assert doc["reproManifest"]["counters"] == manifest["counters"]
        assert manifest["counters"]["sim.events"] > 0


# ----------------------------------------------------------------------
# determinism across --jobs (the tentpole contract)
# ----------------------------------------------------------------------
class TestJobsDeterminism:
    def _manifest_for(self, jobs, graphs):
        from repro.bench.runner import run_grid

        run_grid(["MCP", "HLFET"], graphs, jobs=jobs)
        manifest = report.build_manifest()
        span_counts = {name: agg["count"]
                       for name, agg in manifest["spans"].items()}
        return manifest, span_counts

    def test_counters_and_spans_match_serial(self, armed, chain4,
                                             diamond4, fork3):
        graphs = [chain4, diamond4, fork3]
        serial, serial_spans = self._manifest_for(1, graphs)
        trace.reset()
        merged, merged_spans = self._manifest_for(4, graphs)
        assert merged["counters"] == serial["counters"]
        assert merged["timelines"] == serial["timelines"]
        assert merged_spans == serial_spans
        # Worker spans were retagged onto per-cell lanes canonically.
        tracks = {sp.track for sp in trace.current().spans
                  if sp.name == "bench.cell"}
        assert tracks == {f"{alg} on {g.name}"
                          for alg in ("MCP", "HLFET") for g in graphs}

    def test_store_cache_hits_is_local_only(self, armed, chain4,
                                            diamond4, tmp_path):
        from repro.bench.runner import run_grid
        from repro.bench.store import ResultStore

        graphs = [chain4, diamond4]
        store = ResultStore(str(tmp_path / "store"))
        run_grid(["MCP"], graphs, store=store, resume=True)
        first = dict(metrics.counters())
        assert metrics.local_counters().get("store.cache_hits", 0) == 0
        run_grid(["MCP"], graphs, store=store, resume=True)
        # Cached rows recompute nothing: deterministic counters frozen.
        assert metrics.counters() == first
        assert metrics.local_counters()["store.cache_hits"] == len(graphs)


# ----------------------------------------------------------------------
# gantt adapter (results render like schedules)
# ----------------------------------------------------------------------
class TestGanttAdapter:
    def test_rows_from_schedule_and_results(self, kwok9):
        from repro.io.gantt import gantt, timeline_rows

        schedule = _schedule(kwok9)
        rows = timeline_rows(schedule)
        assert len(rows) == kwok9.num_nodes
        assert {r[0] for r in rows} <= set(range(schedule.num_procs))
        sim_res = simulate(schedule)
        assert timeline_rows(sim_res) == rows  # zero-noise exact replay
        online_res = simulate_online(kwok9, Machine(2), "online:mcp")
        assert len(timeline_rows(online_res)) == kwok9.num_nodes
        for obj in (schedule, sim_res, online_res):
            assert "P0" in gantt(obj)

    def test_rejects_rowless_objects(self):
        from repro.io.gantt import timeline_rows

        with pytest.raises(TypeError, match="expected a Schedule"):
            timeline_rows({"not": "a schedule"})


# ----------------------------------------------------------------------
# CLI: --trace flag and the trace/profile verbs
# ----------------------------------------------------------------------
class TestCliVerbs:
    def _traced_run(self, tmp_path, capsys):
        from repro.bench.cli import main

        spec = {"name": "obs-cli",
                "graphs": {"generator": "rgnos", "sizes": [12],
                           "ccrs": [1.0], "parallelisms": [2], "seed": 5},
                "algorithms": ["MCP"],
                "machine": {"bnp_procs": 2},
                "metrics": ["length"],
                "simulate": {"trials": 2}}
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec))
        trace_path = tmp_path / "trace.json"
        assert main([f"--trace={trace_path}", "sim", "run",
                     str(spec_path), "--no-store"]) == 0
        out = capsys.readouterr().out
        assert f"[trace written to {trace_path}" in out
        return trace_path

    def test_trace_flag_writes_and_verbs_read_back(self, tmp_path,
                                                   capsys):
        from repro.bench.cli import main

        trace_path = self._traced_run(tmp_path, capsys)
        manifest_path = tmp_path / "trace.manifest.json"
        assert trace_path.exists() and manifest_path.exists()
        # The flush reset the in-process tracer for the next main()
        # (the environment stays armed, so a fresh tracer is empty).
        fresh = trace.current()
        assert fresh is None or not fresh.spans

        assert main(["trace", "show", str(trace_path)]) == 0
        shown = capsys.readouterr().out
        assert "sim.events" in shown and "counters:" in shown

        assert main(["profile", str(manifest_path), "--top", "3"]) == 0
        table = capsys.readouterr().out
        assert "self ms" in table and "bench.cell" in table

        out_path = tmp_path / "export.json"
        assert main(["trace", "export", str(trace_path),
                     "--out", str(out_path)]) == 0
        exported = json.loads(out_path.read_text())
        assert "reproManifest" not in exported
        assert any(ev["ph"] == "X" for ev in exported["traceEvents"])

    def test_trace_show_rejects_non_trace_json(self, tmp_path, capsys):
        from repro.bench.cli import main

        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"benchmarks": {}}')
        assert main(["trace", "show", str(bogus)]) == 2
        assert "trace" in capsys.readouterr().err


# ----------------------------------------------------------------------
# the counter gate in benchmarks/check_regression.py
# ----------------------------------------------------------------------
def _load_gate():
    path = (Path(__file__).resolve().parent.parent
            / "benchmarks" / "check_regression.py")
    spec = importlib.util.spec_from_file_location("check_regression", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestRegressionCounterGate:
    @pytest.fixture(scope="class")
    def gate(self):
        return _load_gate()

    def test_new_counter_reported_not_failing(self, gate, capsys):
        failures = gate.check_counters({"a": 1, "b": 2}, {"a": 1})
        assert failures == []
        assert "NEW  counter b" in capsys.readouterr().out

    def test_drift_and_loss_fail_by_name(self, gate, capsys):
        failures = gate.check_counters({"a": 2}, {"a": 1, "b": 5})
        assert [name for name, _ in failures] == ["a", "b"]
        out = capsys.readouterr().out
        assert "FAIL counter a: 2 vs baseline 1" in out
        assert "GONE counter b" in out

    def test_load_counters_unwraps_embedded_manifest(self, gate,
                                                     tmp_path):
        doc = tmp_path / "trace.json"
        doc.write_text(json.dumps({
            "traceEvents": [],
            "reproManifest": {"counters": {"sim.events": 3}}}))
        assert gate.load_counters(str(doc)) == {"sim.events": 3}

    def test_main_gates_on_manifest(self, gate, tmp_path, capsys):
        current = tmp_path / "current.json"
        current.write_text(json.dumps({"benchmarks": {"case": 1.0}}))
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "benchmarks": {"case": 1.0},
            "counters": {"sim.events": 10}}))
        manifest = tmp_path / "trace.manifest.json"
        manifest.write_text(json.dumps({"schema": 1,
                                        "counters": {"sim.events": 10},
                                        "local": {"kernel.sweeps": 99}}))
        assert gate.main([str(current), "--baseline", str(baseline),
                          "--manifest", str(manifest)]) == 0
        assert "all 1 counters exact" in capsys.readouterr().out

        manifest.write_text(json.dumps({"schema": 1,
                                        "counters": {"sim.events": 11}}))
        assert gate.main([str(current), "--baseline", str(baseline),
                          "--manifest", str(manifest)]) == 1
        err = capsys.readouterr().err
        assert "drifted from the baseline: sim.events" in err

    def test_update_records_counter_block(self, gate, tmp_path, capsys):
        current = tmp_path / "current.json"
        current.write_text(json.dumps({"benchmarks": {"case": 1.0}}))
        manifest = tmp_path / "trace.manifest.json"
        manifest.write_text(json.dumps({"schema": 1,
                                        "counters": {"sim.events": 4}}))
        baseline = tmp_path / "baseline.json"
        assert gate.main([str(current), "--baseline", str(baseline),
                          "--update", "--manifest", str(manifest)]) == 0
        capsys.readouterr()
        written = json.loads(baseline.read_text())
        assert written["counters"] == {"sim.events": 4}

"""Tests for the bench runner and suite construction."""

import pytest

from repro import Machine, NetworkMachine
from repro.bench.runner import (
    APN_ALGORITHMS,
    BNP_ALGORITHMS,
    UNC_ALGORITHMS,
    BenchConfig,
    run_grid,
    run_one,
)
from repro.bench.suites import (
    default_apn_topology,
    is_full_scale,
    psg_suite,
    rgbos_suite,
    rgnos_sizes,
    rgnos_suite,
    rgpos_suite,
    traced_suite,
)
from repro.generators.psg import kwok_ahmad_9


class TestBenchConfig:
    def test_unc_always_unbounded(self):
        cfg = BenchConfig(bnp_procs=4)
        g = kwok_ahmad_9()
        m = cfg.machine_for("DCP", g)
        assert m.num_procs == g.num_nodes

    def test_bnp_bounded_when_asked(self):
        cfg = BenchConfig(bnp_procs=4)
        m = cfg.machine_for("MCP", kwok_ahmad_9())
        assert m.num_procs == 4

    def test_bnp_virtually_unlimited_default(self):
        cfg = BenchConfig()
        g = kwok_ahmad_9()
        assert cfg.machine_for("MCP", g).num_procs == g.num_nodes

    def test_apn_gets_network(self):
        cfg = BenchConfig()
        m = cfg.machine_for("BSA", kwok_ahmad_9())
        assert isinstance(m, NetworkMachine)
        assert m.num_procs == 8


class TestRunOne:
    def test_result_fields(self):
        g = kwok_ahmad_9()
        r = run_one("MCP", g)
        assert r.algorithm == "MCP"
        assert r.klass == "BNP"
        assert r.graph == g.name
        assert r.num_nodes == 9
        assert r.length > 0
        assert r.nsl >= 1.0
        assert r.procs_used >= 1
        assert r.runtime_s >= 0.0

    def test_optimal_threading(self):
        g = kwok_ahmad_9()
        r = run_one("MCP", g, optimal=10.0)
        assert r.degradation is not None

    def test_explicit_machine(self):
        g = kwok_ahmad_9()
        r = run_one("MCP", g, machine=Machine(2))
        assert r.procs_used <= 2


class TestRunGrid:
    def test_full_cartesian(self):
        graphs = [kwok_ahmad_9()]
        rows = run_grid(["MCP", "DCP"], graphs)
        assert len(rows) == 2
        assert {r.algorithm for r in rows} == {"MCP", "DCP"}

    def test_optima_lookup(self):
        g = kwok_ahmad_9()
        rows = run_grid(["MCP"], [g], optima={g.name: 16.0})
        assert rows[0].optimal == 16.0


class TestSuites:
    def test_scale_flag(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert not is_full_scale(None)
        assert is_full_scale(True)
        monkeypatch.setenv("REPRO_FULL", "1")
        assert is_full_scale(None)
        assert not is_full_scale(False)

    def test_psg(self):
        assert len(psg_suite()) >= 10

    def test_rgbos_reduced(self):
        graphs = rgbos_suite(full=False)
        sizes = sorted({g.num_nodes for g in graphs})
        assert sizes == list(range(10, 25, 2))
        assert len(graphs) == 3 * len(sizes)

    def test_rgbos_full(self):
        graphs = rgbos_suite(full=True)
        assert max(g.num_nodes for g in graphs) == 32

    def test_rgpos_reduced(self):
        insts = rgpos_suite(full=False)
        assert len(insts) == 3 * 3
        assert all(i.num_procs == 8 for i in insts)

    def test_rgpos_suite_certified(self):
        from repro.core.attributes import cp_computation_cost

        insts = rgpos_suite(full=False)
        certified = sum(
            1 for i in insts
            if cp_computation_cost(i.graph) >= i.optimal_length - 1e-6
        )
        # Dense construction: the computation CP certifies (nearly) all.
        assert certified >= len(insts) - 2

    def test_rgnos_counts(self):
        assert len(rgnos_suite(full=False)) == 27
        assert rgnos_sizes(full=True) == list(range(50, 501, 50))

    def test_rgnos_full_paper_count(self):
        # The paper's 250-graph suite: only check the arithmetic, not
        # the construction (that would be slow).
        assert 10 * 5 * 5 == 250

    def test_traced(self):
        graphs = traced_suite(full=False)
        assert all(g.name.startswith("cholesky") for g in graphs)

    def test_apn_topology_default(self):
        t = default_apn_topology()
        assert t.num_procs == 8
        t4 = default_apn_topology(4)
        assert t4.num_procs == 4
        t6 = default_apn_topology(6)
        assert t6.num_procs == 6

    def test_suites_deterministic(self):
        a = [g.name for g in rgnos_suite(full=False)]
        b = [g.name for g in rgnos_suite(full=False)]
        assert a == b

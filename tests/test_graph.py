"""Unit tests for repro.core.graph.TaskGraph."""

import numpy as np
import pytest

from repro import CycleError, GraphError, TaskGraph


class TestConstruction:
    def test_minimal(self):
        g = TaskGraph([1.0], {})
        assert g.num_nodes == 1
        assert g.num_edges == 0
        assert g.entry_nodes == (0,)
        assert g.exit_nodes == (0,)

    def test_edges_mapping_and_triples_equivalent(self):
        m = TaskGraph([1, 1, 1], {(0, 1): 2.0, (1, 2): 3.0})
        t = TaskGraph([1, 1, 1], [(0, 1, 2.0), (1, 2, 3.0)])
        assert m.edges() == t.edges()

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            TaskGraph([], {})

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(GraphError):
            TaskGraph([1.0, 0.0], {})
        with pytest.raises(GraphError):
            TaskGraph([1.0, -2.0], {})

    def test_negative_comm_rejected(self):
        with pytest.raises(GraphError):
            TaskGraph([1, 1], {(0, 1): -1.0})

    def test_zero_comm_allowed(self):
        g = TaskGraph([1, 1], {(0, 1): 0.0})
        assert g.comm_cost(0, 1) == 0.0

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            TaskGraph([1, 1], {(0, 0): 1.0})

    def test_unknown_node_rejected(self):
        with pytest.raises(GraphError):
            TaskGraph([1, 1], {(0, 5): 1.0})

    def test_duplicate_edge_rejected(self):
        with pytest.raises(GraphError):
            TaskGraph([1, 1], [(0, 1, 1.0), (0, 1, 2.0)])

    def test_cycle_rejected(self):
        with pytest.raises(CycleError):
            TaskGraph([1, 1, 1], {(0, 1): 1, (1, 2): 1, (2, 0): 1})

    def test_two_cycle_rejected(self):
        with pytest.raises(CycleError):
            TaskGraph([1, 1], {(0, 1): 1, (1, 0): 1})

    def test_weights_read_only(self):
        g = TaskGraph([1.0, 2.0], {(0, 1): 1.0})
        with pytest.raises(ValueError):
            g.weights[0] = 9.0


class TestAccessors:
    def test_structure(self, diamond4):
        assert diamond4.successors(0) == [1, 2]
        assert diamond4.predecessors(3) == [1, 2]
        assert diamond4.in_degree(0) == 0
        assert diamond4.out_degree(0) == 2
        assert diamond4.has_edge(0, 1)
        assert not diamond4.has_edge(1, 0)
        assert diamond4.comm_cost(2, 3) == 5.0

    def test_comm_cost_missing_edge(self, diamond4):
        with pytest.raises(KeyError):
            diamond4.comm_cost(0, 3)

    def test_edges_sorted(self, diamond4):
        assert diamond4.edges() == [
            (0, 1, 3.0), (0, 2, 1.0), (1, 3, 2.0), (2, 3, 5.0)
        ]

    def test_len(self, diamond4):
        assert len(diamond4) == 4


class TestTopology:
    def test_topological_order_valid(self, kwok9):
        pos = {n: i for i, n in enumerate(kwok9.topological_order)}
        for u, v, _ in kwok9.edges():
            assert pos[u] < pos[v]

    def test_entry_exit(self, kwok9):
        assert kwok9.entry_nodes == (0,)
        assert kwok9.exit_nodes == (8,)

    def test_multi_entry(self):
        g = TaskGraph([1, 1, 1], {(0, 2): 1, (1, 2): 1})
        assert g.entry_nodes == (0, 1)

    def test_depth_and_width(self):
        g = TaskGraph([1, 1, 1, 1], {(0, 1): 1, (0, 2): 1, (1, 3): 1,
                                     (2, 3): 1})
        assert g.depth() == 3
        assert g.width() == 2

    def test_width_independent_nodes(self):
        g = TaskGraph([1, 1, 1], {})
        assert g.width() == 3
        assert g.depth() == 1


class TestAggregates:
    def test_totals(self, diamond4):
        assert diamond4.total_computation == 8.0
        assert diamond4.total_communication == 11.0

    def test_ccr(self, diamond4):
        # avg comm = 11/4, avg comp = 8/4.
        assert diamond4.ccr == pytest.approx(11.0 / 8.0)

    def test_ccr_no_edges(self):
        assert TaskGraph([1, 2], {}).ccr == 0.0


class TestInterop:
    def test_networkx_round_trip(self, kwok9):
        nx_graph = kwok9.to_networkx()
        back = TaskGraph.from_networkx(nx_graph)
        assert back.num_nodes == kwok9.num_nodes
        assert sorted(back.weights.tolist()) == sorted(
            kwok9.weights.tolist()
        )
        assert len(back.edges()) == len(kwok9.edges())

    def test_from_networkx_defaults(self):
        import networkx as nx

        g = nx.DiGraph()
        g.add_edge("a", "b")
        tg = TaskGraph.from_networkx(g)
        assert tg.num_nodes == 2
        assert tg.weight(0) == 1.0  # default weight
        assert tg.comm_cost(0, 1) == 0.0  # default comm

    def test_relabeled(self, diamond4):
        g = diamond4.relabeled("other")
        assert g.name == "other"
        assert g.edges() == diamond4.edges()

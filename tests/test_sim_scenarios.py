"""The ``simulate:`` scenario axis and the ``sim run/compare`` CLI."""

import json

import pytest

from repro.bench.cli import main
from repro.scenarios import (
    SpecError,
    compile_scenario,
    get_scenario,
    run_sim_scenario,
    sim_tables,
    validate_spec,
)
from repro.sim import sim_store


def _spec_doc(**simulate):
    doc = {
        "name": "sim-test",
        "graphs": {"generator": "rgnos", "sizes": [20], "ccrs": [1.0],
                   "parallelisms": [2], "seed": 5},
        "algorithms": ["MCP", "HLFET"],
    }
    if simulate:
        doc["simulate"] = simulate
    return doc


class TestSimulateBlock:
    def test_valid_block_round_trips(self):
        spec = validate_spec(_spec_doc(
            trials=20, seed=3, network="fixed", scale=2.0, latency=1.5,
            perturb={"duration": {"dist": "lognormal", "param": 0.3}}))
        assert spec.simulate["trials"] == 20
        assert validate_spec(spec.to_dict()) == spec

    def test_bad_network_rejected_with_path(self):
        with pytest.raises(SpecError, match="simulate.network"):
            validate_spec(_spec_doc(network="teleport"))

    def test_bad_distribution_rejected_with_path(self):
        with pytest.raises(SpecError, match="simulate.perturb"):
            validate_spec(_spec_doc(
                perturb={"duration": {"dist": "pareto", "param": 1.0}}))

    def test_unknown_keys_rejected(self):
        with pytest.raises(SpecError, match="simulate"):
            validate_spec(_spec_doc(walltime=3))

    def test_trials_must_be_positive(self):
        with pytest.raises(SpecError, match="simulate.trials"):
            validate_spec(_spec_doc(trials=0))

    def test_seed_must_be_non_negative(self):
        with pytest.raises(SpecError, match="simulate.seed"):
            validate_spec(_spec_doc(seed=-1))

    def test_scale_latency_require_fixed_network(self):
        # Only the fixed-delay backend consumes them; anything else
        # would silently simulate a different model than configured.
        with pytest.raises(SpecError, match="simulate.latency"):
            validate_spec(_spec_doc(network="auto", latency=5.0))
        with pytest.raises(SpecError, match="simulate.scale"):
            validate_spec(_spec_doc(scale=2.0))

    def test_simulate_is_sweepable(self):
        doc = _spec_doc(trials=5)
        doc["sweep"] = {"simulate.perturb": [
            {}, {"duration": {"dist": "uniform", "param": 0.2}}]}
        spec = validate_spec(doc)
        assert spec.num_variants() == 2

    def test_bad_sweep_point_reported(self):
        doc = _spec_doc(trials=5)
        doc["sweep"] = {"simulate.network": ["auto", "warp"]}
        with pytest.raises(SpecError, match="variant"):
            validate_spec(doc)


class TestCompileAndRun:
    def test_compiles_sim_config(self):
        spec = validate_spec(_spec_doc(
            trials=7, seed=2,
            perturb={"duration": {"dist": "normal", "param": 0.1}}))
        compiled = compile_scenario(spec)
        sim = compiled.variants[0].sim
        assert sim.trials == 7 and sim.seed == 2
        assert sim.perturb.duration.kind == "normal"

    def test_no_block_means_no_sim_config(self):
        compiled = compile_scenario(validate_spec(_spec_doc()))
        assert compiled.variants[0].sim is None

    def test_run_and_tables(self):
        spec = validate_spec(_spec_doc(
            trials=5, perturb={"duration": {"dist": "uniform",
                                            "param": 0.2}}))
        result = run_sim_scenario(compile_scenario(spec))
        assert len(result.all_rows()) == 2  # 1 graph x 2 algorithms
        detail, ranking = sim_tables(result)
        assert len(detail.rows) == 2
        assert {r[1] for r in ranking.rows} == {"MCP", "HLFET"}
        assert any("Monte-Carlo" in n for n in detail.notes)

    def test_registry_robustness_scenarios_compile(self):
        for name in ("robustness-bnp", "noise-ladder"):
            compiled = compile_scenario(get_scenario(name))
            assert all(v.sim is not None for v in compiled.variants)


class TestSimCLI:
    def test_run_prints_tables_and_persists(self, tmp_path, capsys):
        results = tmp_path / "store"
        assert main(["sim", "run", "noise-ladder", "--trials", "3",
                     "--results", str(results)]) == 0
        out = capsys.readouterr().out
        assert "sim:noise-ladder" in out
        assert "rank(simulated)" in out
        assert (results / "sim.json").exists()
        assert len(sim_store(str(results))) == 24  # 4 variants x 6 algos

    def test_compare_prints_only_ranking(self, capsys):
        assert main(["sim", "compare", "robustness-bnp", "--trials", "2",
                     "--no-store"]) == 0
        out = capsys.readouterr().out
        assert "rank(predicted)" in out
        assert "sim:robustness-bnp:ranking" in out
        assert "| predicted |" not in out  # detail table suppressed

    def test_resume_replays_identically(self, tmp_path, capsys):
        results = tmp_path / "store"
        args = ["sim", "run", "noise-ladder", "--trials", "2",
                "--results", str(results), "--resume"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first

    def test_flag_overrides_reach_the_grid(self, tmp_path, capsys):
        spec = _spec_doc()
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec))
        assert main(["sim", "run", str(path), "--trials", "4",
                     "--noise", "lognormal:0.3", "--seed", "9",
                     "--no-store"]) == 0
        out = capsys.readouterr().out
        assert "4 Monte-Carlo trial(s)" in out

    def test_noise_flag_conflicting_with_sweep_exits_2(self, capsys):
        # noise-ladder sweeps simulate.perturb: a --noise override can
        # never win (each variant replaces the block), so it must be an
        # explicit error rather than a silent no-op.
        assert main(["sim", "compare", "noise-ladder", "--noise",
                     "lognormal:0.9", "--no-store"]) == 2
        err = capsys.readouterr().err
        assert "--noise" in err and "sweep axis" in err
        # Non-conflicting overrides on the same spec still work.
        assert main(["sim", "compare", "noise-ladder", "--trials", "2",
                     "--no-store"]) == 0

    def test_bad_noise_flag_exits_2(self, capsys):
        assert main(["sim", "run", "noise-ladder", "--noise",
                     "lognormal", "--no-store"]) == 2
        assert "DIST:PARAM" in capsys.readouterr().err

    def test_unknown_noise_kind_exits_2(self, capsys):
        assert main(["sim", "run", "noise-ladder", "--noise",
                     "pareto:0.3", "--no-store"]) == 2
        assert "simulate.perturb" in capsys.readouterr().err

    def test_unknown_spec_exits_2(self, capsys):
        assert main(["sim", "run", "no-such-scenario",
                     "--no-store"]) == 2
        assert "neither" in capsys.readouterr().err

    def test_contention_topology_mismatch_exits_2(self, capsys):
        # noise-ladder schedules on an unbounded machine (60 procs);
        # forcing the 8-processor contention backend is a config error
        # and must surface as the one-line exit-2 diagnostic.
        assert main(["sim", "run", "noise-ladder", "--trials", "2",
                     "--network", "contention", "--no-store"]) == 2
        assert "contention topology" in capsys.readouterr().err

    def test_out_writes_artifacts(self, tmp_path, capsys):
        out_dir = tmp_path / "arts"
        assert main(["sim", "compare", "noise-ladder", "--trials", "2",
                     "--no-store", "--format", "csv",
                     "--out", str(out_dir)]) == 0
        assert (out_dir / "sim_noise-ladder_ranking.csv").exists()

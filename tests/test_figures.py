"""Tests for the figure artifacts."""

import math

import pytest

from repro.bench.figures import FigureSeries, fig4, render_figure
from repro.bench.runner import APN_ALGORITHMS, BNP_ALGORITHMS, UNC_ALGORITHMS


class TestFigureSeries:
    def test_csv(self):
        f = FigureSeries("F", "t", "x", "y", [1.0, 2.0],
                         {"A": [0.5, 0.7], "B": [0.6, 0.8]})
        csv = f.as_csv()
        lines = csv.splitlines()
        assert lines[0] == "x,A,B"
        assert lines[1].startswith("1,")
        assert len(lines) == 3

    def test_render(self):
        f = FigureSeries("F", "t", "x", "y", [1.0],
                         {"A": [2.0], "B": [1.0]})
        text = render_figure(f)
        assert "F: t" in text
        assert "#" in text  # bar chart section


class TestFig4:
    """fig4 on the reduced traced suite is cheap enough to run in tests;
    fig2/fig3 are covered by the benchmarks."""

    @pytest.fixture(scope="class")
    def panels(self):
        return fig4(full=False)

    def test_three_panels(self, panels):
        assert set(panels) == {"UNC", "BNP", "APN"}

    def test_series_complete(self, panels):
        assert set(panels["UNC"].series) == set(UNC_ALGORITHMS)
        assert set(panels["BNP"].series) == set(BNP_ALGORITHMS)
        assert set(panels["APN"].series) == set(APN_ALGORITHMS)

    def test_x_axis_is_matrix_dims(self, panels):
        from repro.bench.suites import traced_dimensions

        assert panels["BNP"].x == [float(d) for d in traced_dimensions(False)]

    def test_nsl_at_least_one(self, panels):
        for panel in panels.values():
            for series in panel.series.values():
                for y in series:
                    assert y >= 1.0 - 1e-9 and not math.isnan(y)

    def test_paper_shape_bnp_clustered_except_last(self, panels):
        """Figure 4(b): BNP algorithms perform similarly with LAST the
        outlier — check LAST is never the unique best and is worst
        somewhere."""
        bnp = panels["BNP"]
        worst_counts = 0
        for i in range(len(bnp.x)):
            col = {a: bnp.series[a][i] for a in bnp.series}
            if max(col, key=col.get) == "LAST":
                worst_counts += 1
        assert worst_counts >= 1

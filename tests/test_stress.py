"""Stress and extreme-shape tests: degenerate graphs every scheduler
must survive.

The paper stresses that algorithm performance "tends to bias towards the
problem graph structure"; these tests feed the structures most likely to
break bookkeeping — long chains, wide fans, dense layers, zero and huge
communication — through every algorithm class.
"""

import pytest

from repro import (
    Machine,
    NetworkMachine,
    TaskGraph,
    Topology,
    get_scheduler,
    validate,
)
from repro.bench.runner import APN_ALGORITHMS, BNP_ALGORITHMS, UNC_ALGORITHMS

CLIQUE = list(BNP_ALGORITHMS) + list(UNC_ALGORITHMS)


def chain(n, comm=1.0):
    return TaskGraph([1.0] * n, {(i, i + 1): comm for i in range(n - 1)},
                     name=f"chain{n}")


def fan(n, comm=1.0):
    return TaskGraph([1.0] * (n + 1), {(0, i): comm for i in range(1, n + 1)},
                     name=f"fan{n}")


def antichain(n):
    return TaskGraph([1.0] * n, {}, name=f"anti{n}")


def bipartite(a, b, comm=1.0):
    edges = {(i, a + j): comm for i in range(a) for j in range(b)}
    return TaskGraph([1.0] * (a + b), edges, name=f"bip{a}x{b}")


EXTREMES = [
    chain(60),
    chain(30, comm=0.0),
    chain(30, comm=1000.0),
    fan(40),
    fan(25, comm=0.0),
    antichain(50),
    bipartite(8, 8),
    bipartite(12, 3, comm=100.0),
]


@pytest.mark.parametrize("name", CLIQUE)
@pytest.mark.parametrize("graph", EXTREMES, ids=[g.name for g in EXTREMES])
def test_clique_algorithms_on_extremes(name, graph):
    machine = Machine.unbounded(graph)
    sched = get_scheduler(name).schedule(graph, machine)
    validate(sched)


@pytest.mark.parametrize("name", APN_ALGORITHMS)
@pytest.mark.parametrize("graph", EXTREMES[:6],
                         ids=[g.name for g in EXTREMES[:6]])
def test_apn_algorithms_on_extremes(name, graph):
    topo = Topology.mesh2d(2, 2)
    sched = get_scheduler(name).schedule(graph, NetworkMachine(topo))
    validate(sched, network=topo)


class TestKnownOptimaOnStructures:
    def test_chain_zero_comm_serial(self):
        g = chain(20, comm=0.0)
        for name in CLIQUE:
            sched = get_scheduler(name).schedule(g, Machine.unbounded(g))
            assert sched.length == pytest.approx(20.0), name

    def test_antichain_fully_parallel(self):
        g = antichain(30)
        for name in CLIQUE:
            sched = get_scheduler(name).schedule(g, Machine.unbounded(g))
            assert sched.length == pytest.approx(1.0), name

    def test_huge_comm_chain_collapses(self):
        g = chain(15, comm=1e6)
        for name in CLIQUE:
            sched = get_scheduler(name).schedule(g, Machine.unbounded(g))
            assert sched.length == pytest.approx(15.0), name

    def test_zero_comm_fan_spreads(self):
        g = fan(16, comm=0.0)
        for name in ("HLFET", "MCP", "ETF", "DLS", "DSC", "DCP"):
            sched = get_scheduler(name).schedule(g, Machine.unbounded(g))
            assert sched.length == pytest.approx(2.0), name


class TestSingleProcessorDegeneracy:
    @pytest.mark.parametrize("name", list(BNP_ALGORITHMS))
    def test_every_structure_serialises(self, name):
        for g in EXTREMES[:5]:
            sched = get_scheduler(name).schedule(g, Machine(1))
            validate(sched)
            assert sched.length == pytest.approx(g.total_computation)


class TestFloatRobustness:
    def test_fractional_weights(self):
        g = TaskGraph(
            [0.1, 0.2, 0.3, 0.7],
            {(0, 1): 0.05, (0, 2): 0.15, (1, 3): 0.25, (2, 3): 0.35},
            name="frac",
        )
        for name in CLIQUE:
            sched = get_scheduler(name).schedule(g, Machine.unbounded(g))
            validate(sched)

    def test_tiny_weights(self):
        g = TaskGraph([1e-6] * 8, {(i, i + 1): 1e-7 for i in range(7)})
        for name in ("MCP", "DSC", "DCP"):
            sched = get_scheduler(name).schedule(g, Machine.unbounded(g))
            validate(sched)

    def test_mixed_magnitudes(self):
        g = TaskGraph(
            [1e-3, 1e3, 1.0, 50.0],
            {(0, 1): 1e4, (0, 2): 1e-4, (1, 3): 1.0, (2, 3): 2.0},
            name="mixed",
        )
        for name in CLIQUE:
            sched = get_scheduler(name).schedule(g, Machine.unbounded(g))
            validate(sched)

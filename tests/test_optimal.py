"""Tests for bounds and the branch-and-bound optimal scheduler."""

import itertools

import pytest

from repro import Machine, TaskGraph, get_scheduler, validate
from repro.generators.random_graphs import rgbos_graph
from repro.optimal import (
    BranchAndBoundScheduler,
    lb_combined,
    lb_critical_path,
    lb_workload,
    solve_optimal,
)


def brute_force_optimal(graph: TaskGraph, num_procs: int) -> float:
    """Independent reference: enumerate all topological orders x all
    processor assignments with greedy EST timing.  Exponential — tiny
    graphs only."""
    n = graph.num_nodes
    best = float("inf")

    def orders(prefix, remaining, indeg):
        if not remaining:
            yield list(prefix)
            return
        for node in sorted(remaining):
            if indeg[node] == 0:
                indeg2 = dict(indeg)
                for s in graph.successors(node):
                    indeg2[s] -= 1
                yield from orders(prefix + [node],
                                  remaining - {node}, indeg2)

    indeg0 = {i: graph.in_degree(i) for i in range(n)}
    all_orders = list(orders([], set(range(n)), indeg0))
    for order in all_orders:
        for assign in itertools.product(range(num_procs), repeat=n):
            finish = {}
            proc_ready = [0.0] * num_procs
            for node in order:
                p = assign[node]
                est = proc_ready[p]
                for q in graph.predecessors(node):
                    arr = finish[q]
                    if assign[q] != p:
                        arr += graph.comm_cost(q, node)
                    est = max(est, arr)
                finish[node] = est + graph.weight(node)
                proc_ready[p] = finish[node]
            best = min(best, max(finish.values()))
    return best


class TestBounds:
    def test_cp_bound_chain(self, chain4):
        assert lb_critical_path(chain4) == 10.0

    def test_workload_bound(self, chain4):
        assert lb_workload(chain4, 2) == 5.0
        assert lb_workload(chain4, 1) == 10.0

    def test_combined_is_max(self, chain4):
        assert lb_combined(chain4, 1) == 10.0
        assert lb_combined(chain4, 2) == 10.0  # chain: CP dominates

    def test_bounds_admissible_on_suite(self):
        for seed in range(3):
            g = rgbos_graph(12, 1.0, seed=seed)
            res = solve_optimal(g, num_procs=4, budget=50_000)
            assert res.length >= lb_combined(g, 4) - 1e-9


class TestBranchAndBound:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_brute_force_p2(self, seed):
        g = rgbos_graph(6, 1.0, seed=seed)
        bf = brute_force_optimal(g, 2)
        res = BranchAndBoundScheduler(budget=100_000).solve(g, 2)
        assert res.proved
        assert res.length == pytest.approx(bf)

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_brute_force_p3_high_ccr(self, seed):
        g = rgbos_graph(5, 10.0, seed=seed)
        bf = brute_force_optimal(g, 3)
        res = BranchAndBoundScheduler(budget=100_000).solve(g, 3)
        assert res.proved
        assert res.length == pytest.approx(bf)

    def test_schedule_is_valid(self):
        g = rgbos_graph(12, 1.0, seed=4)
        res = solve_optimal(g, num_procs=4, budget=50_000)
        validate(res.schedule)
        assert res.schedule.length == pytest.approx(res.length)

    def test_never_worse_than_heuristics(self):
        for ccr in (0.1, 10.0):
            g = rgbos_graph(14, ccr, seed=7)
            res = solve_optimal(g, num_procs=4, budget=30_000)
            for name in ("MCP", "DLS", "ETF"):
                h = get_scheduler(name).schedule(g, Machine(4)).length
                assert res.length <= h + 1e-9

    def test_budget_exhaustion_flags_unproved(self):
        g = rgbos_graph(24, 1.0, seed=11)
        res = BranchAndBoundScheduler(budget=50).solve(g, 4)
        # With a 50-expansion budget a 24-node proof is impossible unless
        # the seed already hit the lower bound.
        assert res.proved in (False, True)
        if not res.proved:
            assert res.lower_bound <= res.length + 1e-9

    def test_chain_trivially_proved(self, chain4):
        res = BranchAndBoundScheduler(budget=1_000).solve(chain4, 2)
        assert res.proved
        assert res.length == 10.0

    def test_parallel_tasks_use_both_procs(self):
        g = TaskGraph([4.0, 4.0], {})
        res = BranchAndBoundScheduler(budget=1_000).solve(g, 2)
        assert res.proved
        assert res.length == 4.0

    def test_comm_vs_parallel_tradeoff(self):
        """Optimal must pick serial when comm dominates, parallel when
        it is free."""
        heavy = TaskGraph([2.0, 3.0, 3.0], {(0, 1): 50.0, (0, 2): 50.0})
        res = BranchAndBoundScheduler(budget=10_000).solve(heavy, 2)
        assert res.proved and res.length == pytest.approx(8.0)
        free = TaskGraph([2.0, 3.0, 3.0], {(0, 1): 0.0, (0, 2): 0.0})
        res = BranchAndBoundScheduler(budget=10_000).solve(free, 2)
        assert res.proved and res.length == pytest.approx(5.0)

    def test_solve_optimal_default_procs(self):
        g = rgbos_graph(10, 1.0, seed=0)
        res = solve_optimal(g, budget=20_000)
        assert res.schedule.num_procs == max(1, min(8, g.width()))

    def test_gap_property(self):
        g = rgbos_graph(10, 10.0, seed=1)
        res = solve_optimal(g, budget=20_000)
        assert 0.0 <= res.gap <= 1.0

    def test_expanded_counted(self):
        g = rgbos_graph(10, 10.0, seed=2)
        res = solve_optimal(g, budget=20_000)
        assert res.expanded >= 0
        assert res.elapsed_s >= 0.0

"""RPR005 fixture: exact equality on computed times."""


def pick(start, finish, makespan, count):
    if start == finish:            # time-like vs time-like -> RPR005
        return 0
    if makespan != 10.0:           # float literal -> RPR005
        return 1
    if count == 3:                 # int compare: fine
        return 2
    if start <= finish:            # ordering compare: fine
        return 3
    return 4


def suppressed(node_start, stored_start):
    return node_start == stored_start  # repro: noqa-RPR005 identity of the same stored value

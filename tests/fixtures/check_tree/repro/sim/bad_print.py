"""RPR006 fixture: ad-hoc output in library code."""

import logging                     # logging import -> RPR006
from logging import getLogger      # logging import -> RPR006

log = getLogger(__name__)


def chatty(schedule):
    print("scheduling", schedule)  # bare print -> RPR006
    log.info("done")               # attribute use: the import is flagged
    return schedule


def suppressed(table):
    print(table)  # repro: noqa-RPR006 fixture-only sanctioned emission
    return table

"""RPR001 fixture: scheduling code mutating its immutable inputs."""


def schedule(graph: "TaskGraph", machine: "Machine"):
    graph.weights[0] = 99.0           # attribute/index write -> RPR001
    machine.speeds = None             # attribute write -> RPR001
    graph._succ[0].append(1)          # mutator call -> RPR001
    del graph.weights[1]              # delete -> RPR001
    graph.weights[2] += 1.0           # augmented write -> RPR001
    local = list(graph.weights)
    local[0] = 0.0                    # plain local: fine
    graph = object()                  # rebinding: later writes are fine
    graph.anything = 1
    return local


def suppressed(graph: "TaskGraph"):
    graph.weights[0] = 1.0  # repro: noqa-RPR001 fixture-only sanctioned write
    return graph

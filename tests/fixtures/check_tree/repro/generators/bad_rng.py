"""RPR002 fixture: randomness outside repro.core.rng."""

import random                      # stdlib random -> RPR002
from numpy.random import default_rng  # numpy.random import -> RPR002
from numpy.random import Generator    # type-only import: fine

import numpy as np


def draw(n):
    rng = default_rng()            # bare default_rng -> RPR002
    a = np.random.rand(n)          # np.random.* -> RPR002
    b = random.random()            # attribute on stdlib module (import flagged)
    return a, b, rng


def pinned_stream():
    return as_generator(1234)      # hard-coded seed -> RPR002


def typed(gen: "np.random.Generator") -> bool:
    return isinstance(gen, np.random.Generator)  # type use: fine


def suppressed(n):
    return np.random.rand(n)  # repro: noqa-RPR002 fixture-only sanctioned draw

"""RPR003 fixture: a config field that never reaches the fingerprint."""

from dataclasses import dataclass
from typing import ClassVar


@dataclass
class LeakyConfig:
    trials: int = 10
    seed: int = 0
    forgotten_axis: float = 1.0    # never fingerprinted -> RPR003
    labelled: str = "x"  # repro: noqa-RPR003 keys rows via its own label
    SCHEMA: ClassVar[int] = 1      # ClassVar: not a field

    def fingerprint(self) -> str:
        return f"leaky:{self.trials}:{self._tail()}"

    def _tail(self) -> str:
        return f"s{self.seed}"


@dataclass
class NoFingerprint:
    anything: int = 0              # no fingerprint method: out of scope

"""RPR006 fixture: printing is the CLI layer's job — allowed here."""


def emit(table):
    print(table)  # repro/bench/ is the CLI layer: not flagged
    return table

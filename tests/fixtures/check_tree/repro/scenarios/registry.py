"""RPR004 fixture: a registry with a mismatched and an orphaned entry."""

from typing import Dict

SCENARIOS: Dict[str, dict] = {
    "fixture-used": {
        "name": "fixture-used",
        "description": "referenced from the fixture README",
    },
    "fixture-mismatch": {
        "name": "something-else",      # key != name -> RPR004
        "description": "fixture",
    },
    "fixture-orphan": {
        "name": "fixture-orphan",      # never referenced -> RPR004
        "description": "fixture",
    },
}

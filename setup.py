"""Package metadata for the repro distribution.

This environment has setuptools but not ``wheel``, so PEP 517 editable
installs fail with ``invalid command 'bdist_wheel'``.  Keeping all
metadata in ``setup.py`` lets both modern ``pip install -e .[test]``
and the offline fallback ``pip install -e . --no-build-isolation
--no-use-pep517`` work.
"""

from setuptools import find_packages, setup

setup(
    name="repro-kwok-ahmad-ipps98",
    version="0.3.0",
    description=(
        "Reproduction of Kwok & Ahmad, 'Benchmarking the Task Graph "
        "Scheduling Algorithms' (IPPS 1998): 15 schedulers, 5 suites, "
        "a parallel persisted benchmark engine, a declarative "
        "scenario engine, a discrete-event execution simulator and a "
        "PISA-style adversarial instance search"
    ),
    packages=find_packages("src"),
    package_dir={"": "src"},
    python_requires=">=3.10",
    install_requires=[
        "numpy",
        "networkx",
        # TOML scenario specs: stdlib tomllib from 3.11, backport below.
        'tomli; python_version < "3.11"',
    ],
    extras_require={
        "test": [
            "pytest",
            "hypothesis",
            "pytest-benchmark",
        ],
        "cov": [
            "pytest-cov",
        ],
        "lint": [
            "ruff",
            "mypy",
        ],
    },
    entry_points={
        "console_scripts": [
            "repro-bench = repro.bench.cli:main",
        ],
    },
)

"""Legacy-install shim.

This environment has setuptools but not ``wheel``, so PEP 517 editable
installs fail with ``invalid command 'bdist_wheel'``.  Keeping a
``setup.py`` lets ``pip install -e . --no-build-isolation --no-use-pep517``
(and plain ``python setup.py develop``) work offline; all metadata lives
in ``pyproject.toml``.
"""

from setuptools import setup

setup()

"""CI smoke benchmarks: small, fast, representative hot paths.

Run by the ``bench-smoke`` CI job (together with the kernel
micro-benchmarks in ``bench_kernel.py``; one shared baseline) via::

    pytest benchmarks/bench_smoke.py benchmarks/bench_kernel.py \
        --benchmark-json=current.json
    python benchmarks/check_regression.py current.json

and compared against the committed ``benchmarks/baseline_smoke.json``
(regenerate with ``--update`` after a deliberate performance change).
Each case covers one layer: the clique grid engine, a single large-ish
list scheduling run, the APN contention machinery, and scenario
compilation.
"""

from __future__ import annotations

from repro.bench.runner import run_grid
from repro.bench.suites import psg_suite
from repro.core.machine import Machine, NetworkMachine
from repro.generators.random_graphs import rgnos_graph
from repro.network.topology import Topology
from repro.algorithms import get_scheduler


def test_smoke_grid_psg(benchmark):
    """Clique grid engine: 3 algorithms x 4 peer set graphs."""
    graphs = psg_suite()[:4]
    rows = benchmark(run_grid, ["MCP", "DCP", "HLFET"], graphs)
    assert len(rows) == 12


def test_smoke_mcp_rgnos(benchmark):
    """One insertion-based BNP run on a 100-node random graph."""
    graph = rgnos_graph(100, 1.0, 3, seed=1)
    rows = benchmark(run_grid, ["MCP"], [graph])
    assert rows[0].length > 0


def test_smoke_apn_contention(benchmark):
    """Link-contention scheduling: MH on a 40-node graph, hypercube."""
    graph = rgnos_graph(40, 1.0, 3, seed=2)
    machine = NetworkMachine(Topology.hypercube(3))
    scheduler = get_scheduler("MH")
    schedule = benchmark(scheduler.schedule, graph, machine)
    assert schedule.is_complete()


def test_smoke_scenario_compile(benchmark):
    """Scenario engine: validate + compile a swept registry scenario."""
    from repro.scenarios import compile_scenario, get_scenario

    compiled = benchmark(
        lambda: compile_scenario(get_scenario("hetero-speeds")))
    assert compiled.num_cells > 0


def test_smoke_component_grid(benchmark):
    """Component sweep: 70 schedulers (64 synthesized) on one graph."""
    from repro.scenarios import compile_scenario, get_scenario, run_scenario

    compiled = compile_scenario(get_scenario("component-grid"))
    result = benchmark(run_scenario, compiled)
    total = sum(len(rows) for _, rows in result.rows)
    assert total == compiled.num_cells >= 70


def test_smoke_sim_monte_carlo(benchmark):
    """Discrete-event sim: 100-trial Monte-Carlo over the BNP suite.

    Every BNP algorithm's schedule for every peer-set-suite graph is
    executed 100 times under lognormal duration noise — the acceptance
    bar for the sim engine's hot path (heap event loop + noise draws).
    """
    from repro.bench.runner import BNP_ALGORITHMS
    from repro.bench.suites import psg_suite
    from repro.sim import PerturbationModel, SimConfig, run_sim_grid

    graphs = psg_suite()
    sim = SimConfig(perturb=PerturbationModel.lognormal(0.3),
                    trials=100, seed=7)
    rows = benchmark.pedantic(
        run_sim_grid, args=(list(BNP_ALGORITHMS), graphs),
        kwargs={"sim": sim}, rounds=1, iterations=1)
    assert len(rows) == len(graphs) * len(BNP_ALGORITHMS)
    assert all(r.trials == 100 and r.mean >= 0 for r in rows)


def test_smoke_online_gap(benchmark):
    """Online engine: the ``online-gap`` scenario, one round.

    Runs ``repro-bench scenario run online-gap`` end to end — six BNP
    algorithms plus their online counterparts under all four
    information modes on two 40-node graphs.  Exercises the full
    event-driven loop (plan, deviate, replan) and the per-imode rank
    table; one round only, like the ladder rung, since the case exists
    to catch online-engine slowdowns rather than to average noise.
    """
    from repro.scenarios import (compile_scenario, get_scenario,
                                 online_tables, run_scenario)

    compiled = compile_scenario(get_scenario("online-gap"))
    result = benchmark.pedantic(run_scenario, args=(compiled,),
                                rounds=1, iterations=1)
    total = sum(len(rows) for _, rows in result.rows)
    assert total == compiled.num_cells == 60
    table = online_tables(result)
    assert len(table.rows) == 24  # 6 BNP specs x 4 information modes


def test_smoke_ladder_1200(benchmark):
    """Top rung of the scalability ladder: the flat-array kernel gate.

    The ladder scenario's tractable algorithms on its 1200-node RGNOS
    graph (EZ is excluded: its O(e(v+e)) edge-zeroing loop is quadratic
    in edges and was never feasible at this size).  One round only —
    the case exists to catch kernel regressions, not to average noise.
    Before the kernel rewrite this rung took ~31.6s; see EXPERIMENTS.md
    for the per-algorithm before/after table.
    """
    graph = rgnos_graph(1200, 1.0, 3, seed=53)
    algos = ["HLFET", "ISH", "MCP", "DSC", "LC"]

    def run():
        lengths = {}
        for name in algos:
            machine = Machine.unbounded(graph)
            lengths[name] = get_scheduler(name).schedule(graph,
                                                         machine).length
        return lengths

    lengths = benchmark.pedantic(run, rounds=1, iterations=1)
    # Locks the exact ladder lengths too: a kernel change that shifts
    # any schedule must show up here as well as in the golden corpus.
    assert lengths == {"HLFET": 1461.0, "ISH": 1461.0, "MCP": 1449.0,
                       "DSC": 1466.0, "LC": 1456.0}


def test_smoke_service_storm(benchmark):
    """Schedule-as-a-service: a small seeded storm over real HTTP.

    Self-hosts the asyncio batching server and replays a Zipf-skewed
    60-request storm against it — digest memo, schedule cache, batch
    loop and worker pool all on the hot path.  One round (the case
    gates service-layer slowdowns, not noise).  Beyond timing, it
    asserts the service contract the loadtest tables rest on: every
    request answered, a warm majority, and a real cold/warm cache
    speedup (the CI floor of 5x is far under the ~20x a full-size
    storm shows; see EXPERIMENTS.md).
    """
    from repro.scenarios.storm import StormConfig
    from repro.service import run_loadtest

    config = StormConfig(requests=60, templates=4, sizes=(60, 90),
                         specs=("mcp", "dls"), rate=1000.0, seed=3)
    report = benchmark.pedantic(
        run_loadtest, args=(config,),
        kwargs={"jobs": 1, "concurrency": 8}, rounds=1, iterations=1)
    assert report.ok == report.requests == 60
    assert report.rejected == report.timeouts == report.errors == 0
    assert report.warm > report.cold
    assert report.speedup >= 5.0

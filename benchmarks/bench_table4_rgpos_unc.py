"""E4 — Table 4: % degradation from the constructed optimum on RGPOS,
UNC class.

Paper shape: DCP close to optimal at CCR 0.1 (avg degradation ~2%),
degradations increase with CCR, no UNC algorithm except DCP finds
optima at CCR 10.
"""

from conftest import emit

from repro.bench.tables import render, table4


def test_table4_artifact(benchmark):
    table = benchmark.pedantic(table4, rounds=1, iterations=1)
    emit("table4", render(table))
    avg_row = next(r for r in table.rows if r[0] == "avg deg")
    cols = {c: float(v) for c, v in zip(table.columns[1:], avg_row[1:])}
    # Degradations grow with CCR for every algorithm.
    for a in ("EZ", "LC", "DSC", "MD", "DCP"):
        assert cols[f"{a}@10"] >= cols[f"{a}@0.1"] - 5.0

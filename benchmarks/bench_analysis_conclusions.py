"""A6 — Section 7 conclusions, regenerated from raw data.

The paper closes with design-philosophy findings: CP-based beats
non-CP-based, insertion beats non-insertion, dynamic priority generally
beats static.  This bench recomputes those splits from the RGNOS grid
and emits the comparison as an artifact.
"""

from conftest import emit

from repro.bench.analysis import (
    design_decision_report,
    matched_pair_report,
    render_pairs,
    render_report,
)
from repro.bench.runner import BNP_ALGORITHMS, UNC_ALGORITHMS, run_grid
from repro.bench.suites import rgnos_suite


def _report():
    graphs = rgnos_suite(None)
    rows = run_grid(list(BNP_ALGORITHMS) + list(UNC_ALGORITHMS), graphs)
    return design_decision_report(rows), matched_pair_report(rows)


def test_design_decisions(benchmark):
    groups, pairs = benchmark.pedantic(_report, rounds=1, iterations=1)
    emit(
        "analysis_conclusions",
        render_pairs(pairs) + "\n\n" + render_report(groups),
    )
    by_fav = {p.favoured: p for p in pairs}
    # The paper's robust conclusions, tested the clean (matched) way.
    assert by_fav["ISH"].advantage > -0.02     # insertion helps
    assert by_fav["MCP"].advantage > -0.02     # CP priorities help
    assert by_fav["DCP"].advantage > -0.05     # dynamic CP helps

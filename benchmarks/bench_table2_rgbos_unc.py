"""E2 — Table 2: % degradation from B&B optimal on RGBOS, UNC class.

Paper shape: DCP generates the most optimal solutions and the smallest
average degradation; degradations grow with CCR.
"""

import pytest
from conftest import emit

from repro.bench.suites import rgbos_suite
from repro.bench.tables import render, rgbos_optima, table2

BUDGET = 30_000  # expansions; enough for the reduced suite's proof rate


@pytest.fixture(scope="module")
def optima():
    # Solve once; the table builder reuses the module-level cache.
    return rgbos_optima(rgbos_suite(None), budget=BUDGET)


def test_table2_artifact(benchmark, optima):
    table = benchmark.pedantic(
        lambda: table2(budget=BUDGET), rounds=1, iterations=1
    )
    emit("table2", render(table))
    # Shape check: DCP average degradation is the UNC minimum at CCR 0.1.
    avg_row = next(r for r in table.rows if r[0] == "avg deg")
    cols = {c: float(v) for c, v in zip(table.columns[1:], avg_row[1:])}
    dcp_low = cols["DCP@0.1"]
    assert all(dcp_low <= cols[f"{a}@0.1"] + 1e-9
               for a in ("EZ", "LC", "DSC", "MD"))

"""A3 — Ablation: APN sensitivity to network topology.

The paper (Section 6.4.1): "all algorithms perform better on the
networks with more communication links.  However, these results are
excluded due to space limitations."  This bench regenerates that
excluded experiment: mean NSL of each APN algorithm across topologies
of increasing connectivity at a fixed machine size.
"""

from collections import defaultdict

from conftest import emit

from repro import NetworkMachine, Topology
from repro.bench.runner import APN_ALGORITHMS, BenchConfig, run_grid
from repro.bench.suites import rgnos_suite

TOPOLOGIES = [
    ("chain", lambda: Topology.chain(8)),
    ("ring", lambda: Topology.ring(8)),
    ("mesh", lambda: Topology.mesh2d(2, 4)),
    ("hypercube", lambda: Topology.hypercube(3)),
    ("clique", lambda: Topology.clique(8)),
]


def _sweep():
    graphs = rgnos_suite(None, sizes=[50])
    table = defaultdict(dict)
    links = {}
    for name, factory in TOPOLOGIES:
        topo = factory()
        links[name] = topo.num_links
        rows = run_grid(list(APN_ALGORITHMS), graphs,
                        config=BenchConfig(apn_topology=topo))
        for alg in APN_ALGORITHMS:
            vals = [r.nsl for r in rows if r.algorithm == alg]
            table[alg][name] = sum(vals) / len(vals)
    return table, links


def test_topology_ablation(benchmark):
    table, links = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    names = [n for n, _ in TOPOLOGIES]
    lines = ["A3 ablation — APN mean NSL by topology (8 processors)",
             f"{'alg':>8} | " + " | ".join(f"{n}({links[n]}L)" for n in names)]
    for alg in APN_ALGORITHMS:
        lines.append(
            f"{alg:>8} | "
            + " | ".join(f"{table[alg][n]:8.3f}" for n in names)
        )
    emit("ablation_topology", "\n".join(lines))
    # More links must help on aggregate: clique beats chain per algorithm.
    for alg in APN_ALGORITHMS:
        assert table[alg]["clique"] <= table[alg]["chain"] + 0.25

"""E1 — Table 1: schedule lengths of UNC and BNP algorithms on the PSGs.

Paper shape to reproduce: schedule lengths vary considerably across
algorithms despite the small graph sizes; DCP consistently competitive;
no single BNP winner.
"""

from conftest import emit

from repro.bench.tables import render, table1


def test_table1_artifact(benchmark):
    table = benchmark(table1)
    emit("table1", render(table))
    # Sanity: one row per peer graph, lengths positive.
    assert len(table.rows) >= 10
    assert all(float(c) > 0 for row in table.rows for c in row[2:])

"""A4 — Ablation: BNP vs UNC+CS on a bounded machine.

The paper's conclusion proposes exactly this study: "It would be an
interesting study to compare the BNP approach with the UNC+CS approach"
— scheduling directly onto p processors versus clustering first and
then folding clusters onto p processors with Sarkar's (order-aware) or
RCP (load-balancing) assignment.
"""

from collections import defaultdict

from conftest import emit

from repro import Machine
from repro.algorithms.cs import cluster_schedule
from repro.bench.runner import run_one
from repro.bench.suites import rgnos_suite
from repro.metrics import nsl

P = 8


def _compare():
    graphs = rgnos_suite(None, sizes=[50, 100])
    acc = defaultdict(list)
    for g in graphs:
        acc["MCP (BNP)"].append(
            run_one("MCP", g, machine=Machine(P)).nsl
        )
        for unc in ("DSC", "DCP"):
            for method in ("sarkar", "rcp"):
                sched = cluster_schedule(g, P, unc=unc, method=method)
                acc[f"{unc}+{method}"].append(nsl(sched))
    return {k: sum(v) / len(v) for k, v in acc.items()}


def test_cluster_scheduling_ablation(benchmark):
    means = benchmark.pedantic(_compare, rounds=1, iterations=1)
    lines = [f"A4 ablation — BNP vs UNC+CS on {P} processors (mean NSL)"]
    for k in sorted(means, key=means.get):
        lines.append(f"  {k:>14}: {means[k]:.3f}")
    emit("ablation_cluster_scheduling", "\n".join(lines))
    # Order-aware assignment beats order-oblivious for each UNC base.
    assert means["DSC+sarkar"] <= means["DSC+rcp"] + 0.05
    assert means["DCP+sarkar"] <= means["DCP+rcp"] + 0.05

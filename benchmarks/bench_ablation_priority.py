"""A2 — Ablation: static vs dynamic priority, quality/cost frontier.

The paper: "Dynamic priority is in general better than static priority,
although it can cause substantial complexity gain — DLS and ETF have
higher complexities.  One exception: MCP using static priorities
performs the best in its class."  This bench measures both axes on one
suite: solution quality (mean NSL) and scheduling time.
"""

from conftest import emit

from repro.bench.runner import run_grid
from repro.bench.suites import rgnos_suite
from repro.metrics.ranking import summarize_by_algorithm

STATIC = ("HLFET", "ISH", "MCP")
DYNAMIC = ("ETF", "DLS", "LAST")


def _frontier():
    graphs = rgnos_suite(None)
    rows = run_grid(list(STATIC + DYNAMIC), graphs)
    return summarize_by_algorithm(rows)


def test_priority_ablation(benchmark):
    summary = benchmark.pedantic(_frontier, rounds=1, iterations=1)
    lines = ["A2 ablation — static vs dynamic priority (RGNOS)",
             f"{'alg':>8} {'kind':>8} {'mean NSL':>10} {'mean time(s)':>13}"]
    for a in STATIC:
        s = summary[a]
        lines.append(f"{a:>8} {'static':>8} {s['mean_nsl']:10.3f} "
                     f"{s['mean_runtime_s']:13.4f}")
    for a in DYNAMIC:
        s = summary[a]
        lines.append(f"{a:>8} {'dynamic':>8} {s['mean_nsl']:10.3f} "
                     f"{s['mean_runtime_s']:13.4f}")
    emit("ablation_priority", "\n".join(lines))
    # Cost axis (the uncontested half of the claim): exhaustive
    # pair-probing costs more than static-order scheduling.
    assert summary["ETF"]["mean_runtime_s"] >= summary["MCP"]["mean_runtime_s"]
    assert summary["DLS"]["mean_runtime_s"] >= summary["MCP"]["mean_runtime_s"]

"""E6 — Figure 2: average NSL vs graph size on RGNOS (UNC/BNP/APN).

Paper shape: greedy BNP algorithms produce tightly clustered NSL curves;
DCP leads the UNC class; BSA ahead of MH/BU on large graphs; substantial
spread inside the APN class.
"""

from conftest import emit

from repro.bench.figures import fig2, render_figure


def test_fig2_artifact(benchmark):
    panels = benchmark.pedantic(fig2, rounds=1, iterations=1)
    for key, fig in panels.items():
        emit(f"fig2_{key.lower()}", render_figure(fig))
    # Shape checks at the largest size.
    unc = panels["UNC"]
    last = {a: unc.series[a][-1] for a in unc.series}
    assert last["DCP"] <= min(last[a] for a in ("EZ", "LC")) + 0.3
    apn = panels["APN"]
    spread = max(s[-1] for s in apn.series.values()) - min(
        s[-1] for s in apn.series.values()
    )
    assert spread >= 0.0  # recorded for EXPERIMENTS.md; paper: large

"""Shared configuration for the benchmark suite.

Each ``bench_*`` module regenerates one artifact of the paper (a table
or a figure) and times a representative slice of the work with
pytest-benchmark.  Artifacts are printed to the captured stdout (run
with ``-s`` to see them) and written under ``results/``.

Scale: benchmarks default to the reduced suites; set ``REPRO_FULL=1``
for the paper's exact grids.
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")


def emit(name: str, text: str) -> None:
    """Print an artifact and persist it under results/."""
    print()
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")


@pytest.fixture(scope="session")
def full_scale() -> bool:
    from repro.bench.suites import is_full_scale

    return is_full_scale(None)

"""A5 — Ablation: what does task duplication buy? (TDB extension)

The paper's taxonomy includes TDB algorithms but its benchmark excludes
them.  This bench quantifies the excluded dimension: DSH (duplication)
vs HLFET (the same list scheduler without duplication) across CCR — the
gain should grow with CCR, because duplication exists to avoid paying
communication.
"""

from collections import defaultdict

from conftest import emit

from repro import Machine, get_scheduler
from repro.duplication import dsh_schedule
from repro.generators.random_graphs import rgbos_graph

P = 4
SIZES = (14, 18, 22)
CCRS = (0.1, 1.0, 10.0)
SEEDS = range(4)


def _sweep():
    gains = defaultdict(list)
    for ccr in CCRS:
        for v in SIZES:
            for seed in SEEDS:
                g = rgbos_graph(v, ccr, seed=900 + seed)
                base = get_scheduler("HLFET").schedule(g, Machine(P)).length
                dup = dsh_schedule(g, P).length
                gains[ccr].append(100.0 * (base - dup) / base)
    return {ccr: sum(v) / len(v) for ccr, v in gains.items()}


def test_duplication_ablation(benchmark):
    mean_gain = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    lines = ["A5 ablation — duplication gain of DSH over HLFET "
             "(% schedule length saved)"]
    for ccr in CCRS:
        lines.append(f"  CCR {ccr:>5}: {mean_gain[ccr]:6.2f}%")
    emit("ablation_duplication", "\n".join(lines))
    # Duplication helps more when communication is expensive.
    assert mean_gain[10.0] >= mean_gain[0.1] - 1.0
    assert mean_gain[10.0] >= 0.0

"""A7 — supplementary sweep: NSL vs CCR per algorithm class.

The paper names CCR as a primary performance driver and slices it
through Tables 2-5; this bench presents the same effect as an explicit
series at fixed graph size — the crossover view a practitioner needs
("above which CCR does clustering stop paying?").
"""

from collections import defaultdict

from conftest import emit

from repro.bench.runner import (
    APN_ALGORITHMS,
    BNP_ALGORITHMS,
    UNC_ALGORITHMS,
    run_grid,
)
from repro.generators.random_graphs import rgnos_graph

CCRS = (0.1, 0.5, 1.0, 2.0, 10.0)
V = 80
SEEDS = (0, 1, 2)


def _sweep():
    names = list(BNP_ALGORITHMS) + list(UNC_ALGORITHMS) + list(APN_ALGORITHMS)
    table = defaultdict(dict)
    for ccr in CCRS:
        graphs = [rgnos_graph(V, ccr, 3, seed=s) for s in SEEDS]
        rows = run_grid(names, graphs)
        for name in names:
            vals = [r.nsl for r in rows if r.algorithm == name]
            table[name][ccr] = sum(vals) / len(vals)
    return table


def test_ccr_sweep(benchmark):
    table = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    names = sorted(table)
    lines = [f"A7 — mean NSL vs CCR at v={V} (RGNOS, parallelism 3)",
             f"{'alg':>8} | " + " | ".join(f"ccr={c:<5g}" for c in CCRS)]
    for name in names:
        lines.append(
            f"{name:>8} | "
            + " | ".join(f"{table[name][c]:9.3f}" for c in CCRS)
        )
    emit("extra_ccr_sweep", "\n".join(lines))
    # NSL must rise with CCR for every algorithm (communication can only
    # hurt a fixed structure).
    for name in names:
        assert table[name][10.0] >= table[name][0.1] - 0.2, name

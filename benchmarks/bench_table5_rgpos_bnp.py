"""E5 — Table 5: % degradation from the constructed optimum on RGPOS,
BNP class.

Paper shape: BNP algorithms similar to each other; none finds optima at
CCR 10; degradations increase with CCR.
"""

from conftest import emit

from repro.bench.tables import render, table5


def test_table5_artifact(benchmark):
    table = benchmark.pedantic(table5, rounds=1, iterations=1)
    emit("table5", render(table))
    avg_row = next(r for r in table.rows if r[0] == "avg deg")
    cols = {c: float(v) for c, v in zip(table.columns[1:], avg_row[1:])}
    for a in ("HLFET", "ISH", "MCP", "ETF", "DLS", "LAST"):
        assert cols[f"{a}@10"] >= cols[f"{a}@0.1"] - 5.0

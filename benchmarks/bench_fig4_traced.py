"""E9 — Figure 4: average NSL on Cholesky factorization traced graphs.

Paper shape: BNP algorithms perform similarly with LAST much worse;
UNC algorithms diverse; APN relative order stable across dimensions.
"""

from conftest import emit

from repro.bench.figures import fig4, render_figure


def test_fig4_artifact(benchmark):
    panels = benchmark.pedantic(fig4, rounds=1, iterations=1)
    for key, fig in panels.items():
        emit(f"fig4_{key.lower()}", render_figure(fig))
    bnp = panels["BNP"]
    # LAST is the outlier: worst on at least one dimension.
    worst_somewhere = any(
        max(bnp.series, key=lambda a: bnp.series[a][i]) == "LAST"
        for i in range(len(bnp.x))
    )
    assert worst_somewhere
    # UNC curves are more diverse than the non-LAST BNP cluster.
    unc = panels["UNC"]
    unc_spread = max(s[-1] for s in unc.series.values()) - min(
        s[-1] for s in unc.series.values()
    )
    core_bnp = {a: bnp.series[a][-1] for a in bnp.series if a != "LAST"}
    bnp_spread = max(core_bnp.values()) - min(core_bnp.values())
    assert unc_spread >= bnp_spread - 0.5

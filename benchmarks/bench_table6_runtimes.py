"""E8 — Table 6: average algorithm running times on RGNOS.

Paper shape: MCP is the fastest BNP algorithm, DLS/ETF the slowest
(exhaustive pair probing); LC/DSC fast among UNC, MD slowest; BU the
fastest APN algorithm, DLS-APN the slowest.  Absolute values are Python
vs 1998 SPARC — only the ratios are comparable.
"""

from conftest import emit

from repro.bench.tables import render, table6


def test_table6_artifact(benchmark):
    table = benchmark.pedantic(table6, rounds=1, iterations=1)
    emit("table6", render(table))
    # Shape: at the largest size, ETF and DLS are slower than MCP.
    last = table.rows[-1]
    cols = dict(zip(table.columns, last))
    assert float(cols["ETF"]) >= float(cols["MCP"]) - 1e-6
    assert float(cols["DLS"]) >= float(cols["MCP"]) - 1e-6

"""Micro-benchmarks for the flat-array scheduling kernel.

Each case isolates one kernel primitive so a regression points at the
responsible layer instead of "scheduling got slower":

* attribute sweeps (level-batched numpy over CSR),
* arrival-profile construction + queries (the O(deg + procs) data-ready
  path),
* ready tracker + lazy heap drain,
* insertion slot search on a crowded timeline.

Run together with the smoke suite (one shared baseline)::

    pytest benchmarks/bench_smoke.py benchmarks/bench_kernel.py \
        --benchmark-json=current.json
    python benchmarks/check_regression.py current.json
"""

from __future__ import annotations

from repro.core.attributes import blevel, static_blevel, tlevel
from repro.core.listsched import ReadyTracker, best_proc_min_est
from repro.core.schedule import Schedule
from repro.generators.random_graphs import rgnos_graph

NODES = 1200


def _fresh_graph():
    return rgnos_graph(NODES, 1.0, 3, seed=53)


def test_kernel_attribute_sweeps(benchmark):
    """t-level + b-level + static level sweeps, cache cleared per round."""
    g = _fresh_graph()

    def run():
        g._cache.clear()  # cold sweeps without re-paying graph construction
        return tlevel(g), blevel(g), static_blevel(g)

    t, b, sl = benchmark(run)
    assert len(t) == len(b) == len(sl) == NODES


def test_kernel_attribute_cache_hit(benchmark):
    """Warm-cache attribute reads are O(v) copies.

    100 reads per round: a single read is ~10us, which would sit inside
    timer noise and flap the 2x CI gate across runner generations.
    """
    g = _fresh_graph()
    blevel(g)

    def run():
        for _ in range(100):
            result = blevel(g)
        return result

    assert len(benchmark(run)) == NODES


def test_kernel_arrival_profiles(benchmark):
    """Profile build + per-processor queries across a scheduled prefix."""
    g = _fresh_graph()
    schedule = Schedule(g, NODES)
    tracker = ReadyTracker(g)
    order = []
    while not tracker.all_scheduled():
        node = next(tracker.iter_ready())
        order.append(node)
        schedule.place(node, node % 16, schedule.earliest_slot(
            node % 16, schedule.data_ready_time(node, node % 16),
            g.weight(node), insertion=False))
        tracker.mark_scheduled(node)

    def run():
        acc = 0.0
        for node in order:
            profile = schedule.arrival_profile(node)
            for p in range(16):
                acc += profile.drt(p)
        return acc

    assert benchmark(run) > 0


def test_kernel_ready_heap_drain(benchmark):
    """ReadyTracker + lazy heap over the whole graph, no scheduling."""
    g = _fresh_graph()
    sl = static_blevel(g)

    def run():
        tracker = ReadyTracker(g)
        queue = tracker.priority_queue(lambda n: (-sl[n], n))
        order = []
        while not tracker.all_scheduled():
            node = queue.pop_best()
            order.append(node)
            for child in tracker.mark_scheduled(node):
                queue.push(child)
        return order

    assert len(benchmark(run)) == NODES


def test_kernel_insertion_slot_search(benchmark):
    """best_proc_min_est with insertion against busy interval lists."""
    g = _fresh_graph()
    schedule = Schedule(g, 8)
    tracker = ReadyTracker(g)
    while not tracker.all_scheduled():
        node = next(tracker.iter_ready())
        proc, start = best_proc_min_est(schedule, node, insertion=True)
        schedule.place(node, proc, start)
        tracker.mark_scheduled(node)
    # Re-query placed nodes (parents all placed): measures the gap
    # search against full 150-task-per-processor interval lists.
    sample = list(g.topological_order[-64:])

    def run():
        return [best_proc_min_est(schedule, n, insertion=True)
                for n in sample]

    assert len(benchmark(run)) == len(sample)

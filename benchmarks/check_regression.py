#!/usr/bin/env python
"""Compare a pytest-benchmark JSON run against the committed baseline.

Usage::

    pytest benchmarks/bench_smoke.py benchmarks/bench_kernel.py \
        --benchmark-json=current.json
    python benchmarks/check_regression.py current.json
    python benchmarks/check_regression.py current.json --update

Exits 1 when any benchmark's best (min) time exceeds ``--threshold``
(default 2.0) times its baseline entry — the CI gate for performance
regressions.  ``--update`` rewrites the baseline from the current run
instead (commit the result after a deliberate performance change).
Benchmarks missing from the baseline are reported but do not fail, so
adding a new case does not require touching two files in lockstep.
``--subset`` declares the run a deliberate slice (a CI job gating a
single case): baselined benchmarks absent from the run are then not
treated as lost coverage.
"""

from __future__ import annotations

import argparse
import json
import sys

DEFAULT_BASELINE = "benchmarks/baseline_smoke.json"


def load_mins(path: str) -> dict:
    with open(path) as fh:
        doc = json.load(fh)
    benches = doc.get("benchmarks", doc)  # baseline may be the flat map
    if isinstance(benches, dict):
        return {name: float(v) for name, v in benches.items()}
    return {b["name"]: float(b["stats"]["min"]) for b in benches}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current",
                        help="pytest-benchmark --benchmark-json output")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="fail when current_min > threshold * "
                             "baseline_min (default: 2.0)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the current run")
    parser.add_argument("--subset", action="store_true",
                        help="the run deliberately covers a slice of "
                             "the baseline; absent benchmarks do not "
                             "fail the gate")
    args = parser.parse_args(argv)

    current = load_mins(args.current)
    if args.update:
        doc = {
            "_comment": "min times (s) from benchmarks/bench_smoke.py + "
                        "bench_kernel.py; regenerate with "
                        "check_regression.py --update",
            "benchmarks": {name: current[name] for name in sorted(current)},
        }
        with open(args.baseline, "w") as fh:
            json.dump(doc, fh, indent=1)
            fh.write("\n")
        print(f"baseline updated: {args.baseline} "
              f"({len(current)} benchmarks)")
        return 0

    try:
        baseline = load_mins(args.baseline)
    except FileNotFoundError:
        print(f"no baseline at {args.baseline}; run with --update first",
              file=sys.stderr)
        return 1

    failures = []
    for name in sorted(current):
        cur = current[name]
        base = baseline.get(name)
        if base is None:
            print(f"  NEW  {name}: {cur:.6f}s (not in baseline; "
                  f"consider --update)")
            continue
        ratio = cur / base if base > 0 else float("inf")
        status = "FAIL" if ratio > args.threshold else "ok"
        print(f"  {status:4s} {name}: {cur:.6f}s vs baseline "
              f"{base:.6f}s ({ratio:.2f}x)")
        if ratio > args.threshold:
            failures.append((name, ratio))
    missing = [] if args.subset else sorted(set(baseline) - set(current))
    for name in missing:
        # A baselined benchmark that stops running has silently lost
        # its regression coverage — that must fail the gate, not pass
        # it; rename/remove deliberately via --update.
        print(f"  GONE {name}: in baseline but not in this run")

    if failures or missing:
        if failures:
            print(f"\n{len(failures)} benchmark(s) regressed beyond "
                  f"{args.threshold:.1f}x", file=sys.stderr)
        if missing:
            print(f"\n{len(missing)} baselined benchmark(s) did not "
                  "run; update the baseline if this was deliberate",
                  file=sys.stderr)
        return 1
    print(f"\nall {len(current)} benchmarks within "
          f"{args.threshold:.1f}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Compare a pytest-benchmark JSON run against the committed baseline.

Usage::

    pytest benchmarks/bench_smoke.py benchmarks/bench_kernel.py \
        --benchmark-json=current.json
    python benchmarks/check_regression.py current.json
    python benchmarks/check_regression.py current.json --update

Exits 1 when any benchmark's best (min) time exceeds ``--threshold``
(default 2.0) times its baseline entry — the CI gate for performance
regressions.  ``--update`` rewrites the baseline from the current run
instead (commit the result after a deliberate performance change).
Benchmarks missing from the baseline are reported but do not fail, so
adding a new case does not require touching two files in lockstep.
``--subset`` declares the run a deliberate slice (a CI job gating a
single case): baselined benchmarks absent from the run are then not
treated as lost coverage.

``--manifest PATH`` additionally gates behaviour, not just speed: the
``counters`` section of a ``trace.manifest.json`` recorded by a traced
run (``repro-bench --trace ...``; see :mod:`repro.obs`) is compared
*exactly* against the baseline's ``counters`` block — those counters
(event counts, replans, migrations, heap pops, ...) are deterministic
per spec and seed under any ``--jobs``, so any drift names the counter
that moved and fails the gate.  The ``local`` manifest section
(process-local cache effects) is deliberately not compared.
``--update`` with ``--manifest`` refreshes the counter block too.
"""

from __future__ import annotations

import argparse
import json
import sys

DEFAULT_BASELINE = "benchmarks/baseline_smoke.json"


def load_doc(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def load_mins(path: str) -> dict:
    doc = load_doc(path)
    benches = doc.get("benchmarks", doc)  # baseline may be the flat map
    if isinstance(benches, dict):
        return {name: float(v) for name, v in benches.items()}
    return {b["name"]: float(b["stats"]["min"]) for b in benches}


def load_counters(path: str) -> dict:
    """The deterministic ``counters`` section of a trace manifest.

    Accepts a ``trace.manifest.json`` or a flushed ``trace.json`` (whose
    manifest is embedded under ``reproManifest``).
    """
    doc = load_doc(path)
    if "reproManifest" in doc:
        doc = doc["reproManifest"]
    return {name: int(v) for name, v in (doc.get("counters") or {}).items()}


def check_counters(current: dict, baseline: dict) -> list:
    """Exact comparison; returns ``(name, detail)`` failures.

    Mirrors the benchmark semantics: a NEW counter is reported but does
    not fail (no two-file lockstep for new instrumentation); a changed
    or vanished counter fails by name.
    """
    failures = []
    for name in sorted(set(current) | set(baseline)):
        cur, base = current.get(name), baseline.get(name)
        if base is None:
            print(f"  NEW  counter {name}: {cur} (not in baseline; "
                  f"consider --update)")
        elif cur is None:
            print(f"  GONE counter {name}: in baseline ({base}) but not "
                  "in this run")
            failures.append((name, f"gone (baseline {base})"))
        elif cur != base:
            print(f"  FAIL counter {name}: {cur} vs baseline {base}")
            failures.append((name, f"{cur} != {base}"))
        else:
            print(f"  ok   counter {name}: {cur}")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current",
                        help="pytest-benchmark --benchmark-json output")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="fail when current_min > threshold * "
                             "baseline_min (default: 2.0)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the current run")
    parser.add_argument("--subset", action="store_true",
                        help="the run deliberately covers a slice of "
                             "the baseline; absent benchmarks do not "
                             "fail the gate")
    parser.add_argument("--manifest", default=None, metavar="PATH",
                        help="trace.manifest.json (or flushed "
                             "trace.json) from a traced run; its "
                             "deterministic 'counters' section must "
                             "match the baseline's exactly")
    args = parser.parse_args(argv)

    current = load_mins(args.current)
    manifest_counters = (load_counters(args.manifest)
                         if args.manifest else None)
    if args.update:
        try:
            prior = load_doc(args.baseline)
        except FileNotFoundError:
            prior = {}
        doc = {
            "_comment": "min times (s) from benchmarks/bench_smoke.py + "
                        "bench_kernel.py; regenerate with "
                        "check_regression.py --update",
            "benchmarks": {name: current[name] for name in sorted(current)},
        }
        # Counters refresh only when a manifest is supplied; a plain
        # timing update keeps the committed behaviour baseline.
        counters = (manifest_counters if manifest_counters is not None
                    else prior.get("counters"))
        if counters:
            doc["counters"] = {n: counters[n] for n in sorted(counters)}
        with open(args.baseline, "w") as fh:
            json.dump(doc, fh, indent=1)
            fh.write("\n")
        print(f"baseline updated: {args.baseline} "
              f"({len(current)} benchmarks"
              + (f", {len(counters)} counters" if counters else "") + ")")
        return 0

    try:
        baseline = load_mins(args.baseline)
    except FileNotFoundError:
        print(f"no baseline at {args.baseline}; run with --update first",
              file=sys.stderr)
        return 1

    failures = []
    for name in sorted(current):
        cur = current[name]
        base = baseline.get(name)
        if base is None:
            print(f"  NEW  {name}: {cur:.6f}s (not in baseline; "
                  f"consider --update)")
            continue
        ratio = cur / base if base > 0 else float("inf")
        status = "FAIL" if ratio > args.threshold else "ok"
        print(f"  {status:4s} {name}: {cur:.6f}s vs baseline "
              f"{base:.6f}s ({ratio:.2f}x)")
        if ratio > args.threshold:
            failures.append((name, ratio))
    missing = [] if args.subset else sorted(set(baseline) - set(current))
    for name in missing:
        # A baselined benchmark that stops running has silently lost
        # its regression coverage — that must fail the gate, not pass
        # it; rename/remove deliberately via --update.
        print(f"  GONE {name}: in baseline but not in this run")

    counter_failures = []
    if manifest_counters is not None:
        baseline_counters = {
            n: int(v)
            for n, v in (load_doc(args.baseline).get("counters")
                         or {}).items()}
        if baseline_counters:
            counter_failures = check_counters(manifest_counters,
                                              baseline_counters)
        else:
            print("  (no counter baseline yet; rerun with --manifest "
                  "--update to record one)")

    if failures or missing or counter_failures:
        if failures:
            print(f"\n{len(failures)} benchmark(s) regressed beyond "
                  f"{args.threshold:.1f}x", file=sys.stderr)
        if missing:
            print(f"\n{len(missing)} baselined benchmark(s) did not "
                  "run; update the baseline if this was deliberate",
                  file=sys.stderr)
        if counter_failures:
            names = ", ".join(name for name, _ in counter_failures)
            print(f"\n{len(counter_failures)} deterministic counter(s) "
                  f"drifted from the baseline: {names}", file=sys.stderr)
        return 1
    print(f"\nall {len(current)} benchmarks within "
          f"{args.threshold:.1f}x of baseline"
          + (f"; all {len(manifest_counters)} counters exact"
             if manifest_counters is not None else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""E3 — Table 3: % degradation from B&B optimal on RGBOS, BNP class.

Paper shape: MCP/ETF/ISH/DLS cluster together; LAST the worst;
degradations grow with CCR.
"""

import pytest
from conftest import emit

from repro.bench.suites import rgbos_suite
from repro.bench.tables import render, rgbos_optima, table3

BUDGET = 30_000


@pytest.fixture(scope="module")
def optima():
    return rgbos_optima(rgbos_suite(None), budget=BUDGET)


def test_table3_artifact(benchmark, optima):
    table = benchmark.pedantic(
        lambda: table3(budget=BUDGET), rounds=1, iterations=1
    )
    emit("table3", render(table))
    avg_row = next(r for r in table.rows if r[0] == "avg deg")
    cols = {c: float(v) for c, v in zip(table.columns[1:], avg_row[1:])}
    # LAST must not be the best BNP algorithm at any CCR (paper: worst).
    for ccr in ("0.1", "1", "10"):
        others = [cols[f"{a}@{ccr}"] for a in
                  ("HLFET", "ISH", "MCP", "ETF", "DLS")]
        assert cols[f"LAST@{ccr}"] >= min(others) - 1e-9

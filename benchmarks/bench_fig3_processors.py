"""E7 — Figure 3: average processors used on RGNOS (UNC and BNP).

Paper shape: DSC/LC/EZ use many processors (LC >100 at 500 nodes, full
scale), DCP and MD far fewer; DLS uses the fewest among BNP; MCP and ETF
close to each other.
"""

from conftest import emit

from repro.bench.figures import fig3, render_figure


def test_fig3_artifact(benchmark):
    panels = benchmark.pedantic(fig3, rounds=1, iterations=1)
    for key, fig in panels.items():
        emit(f"fig3_{key.lower()}", render_figure(fig))
    unc = panels["UNC"]
    last = {a: unc.series[a][-1] for a in unc.series}
    # Processor economy: DCP and MD below DSC and LC.
    assert last["DCP"] <= last["DSC"] + 1e-9
    assert last["DCP"] <= last["LC"] + 1e-9
    assert last["MD"] <= last["LC"] + 1e-9

"""A1 — Ablation: insertion vs non-insertion (ISH vs HLFET).

The paper's conclusion: "Insertion is better than non-insertion — a
simple algorithm such as ISH employing insertion can yield dramatic
performance."  ISH is exactly HLFET plus hole filling, so the pair
isolates the design decision.
"""

from collections import defaultdict

from conftest import emit

from repro.bench.runner import run_grid
from repro.bench.suites import rgnos_suite


def _compare():
    graphs = rgnos_suite(None)
    rows = run_grid(["HLFET", "ISH"], graphs)
    by_graph = defaultdict(dict)
    for r in rows:
        by_graph[r.graph][r.algorithm] = r.length
    wins = ties = losses = 0
    gains = []
    for cells in by_graph.values():
        d = cells["HLFET"] - cells["ISH"]
        gains.append(d / cells["HLFET"])
        if d > 1e-9:
            wins += 1
        elif d < -1e-9:
            losses += 1
        else:
            ties += 1
    return wins, ties, losses, 100 * sum(gains) / len(gains)


def test_insertion_ablation(benchmark):
    wins, ties, losses, mean_gain_pct = benchmark.pedantic(
        _compare, rounds=1, iterations=1
    )
    emit(
        "ablation_insertion",
        "A1 ablation — insertion (ISH) vs non-insertion (HLFET)\n"
        f"  ISH wins: {wins}, ties: {ties}, losses: {losses}\n"
        f"  mean schedule-length gain: {mean_gain_pct:.2f}%",
    )
    # Insertion must not lose on aggregate.
    assert wins >= losses

"""The adversarial instance search: seeded annealing over graph space.

One *chain* starts from a generated seed graph and walks graph space
with single mutations (:mod:`repro.adversarial.mutate`), maximising an
:class:`~repro.adversarial.objective.Objective` under a simulated-
annealing acceptance rule: improvements always move, regressions move
with probability ``exp(delta / T)`` while the temperature ``T`` cools
geometrically each step.  At ``temperature=0`` the walk degenerates to
a greedy hill climb — no acceptance randomness is drawn at all, so a
zero-temperature chain is a pure function of its seed.

Chains are the unit of parallelism and persistence: a search run is a
grid of ``(pair, chain)`` cells executed through the same
:func:`repro.bench.parallel.execute_cells` engine as every other
benchmark, so ``jobs`` fans chains over worker processes and a
:class:`~repro.bench.store.ResultStore` (basename ``adv``) caches each
finished chain as a :class:`SearchRow` keyed by the search
fingerprint.  ``resume=True`` therefore replays a completed search
from the store without recomputing anything.

A :class:`SearchRow` records the best instance's *lineage* — the
sequence of accepted mutation operators that produced it — plus the
instance itself in STG text form (``stg``), so found graphs can be
exported as files and reloaded by
:func:`repro.generators.load_graph`.
"""

from __future__ import annotations

import hashlib
import math
import re
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..bench.runner import BenchConfig
from ..bench.store import ResultStore
from ..core.graph import TaskGraph
from ..core.rng import derive_rng
from ..io.stg import dumps_stg
from .mutate import mutate, mutation_names
from .objective import Objective

__all__ = ["SearchConfig", "SearchRow", "adv_store", "run_search"]


@dataclass(frozen=True)
class SearchRow:
    """One finished chain — the adversarial store's row type.

    ``algorithm`` is the ordered pair label (``"LAST/MCP"``) and
    ``graph`` the chain label, matching the store's generic
    ``(algorithm, graph, fingerprint)`` key.  ``lineage`` lists the
    accepted mutation operators from the seed graph to the best
    instance, and ``stg`` is that instance serialised (reload with
    :func:`repro.generators.load_graph` after ``adv export``).
    """

    algorithm: str   # pair label, e.g. "LAST/MCP"
    graph: str       # chain label, e.g. "chain-00"
    objective: str
    score: float
    start_score: float
    length_a: float
    length_b: float
    num_nodes: int
    num_edges: int
    steps: int
    accepted: int
    best_step: int
    seed: int
    instance: str    # the best instance's graph name
    lineage: List[str] = field(default_factory=list)
    stg: str = ""
    runtime_s: float = 0.0


@dataclass
class SearchConfig:
    """Knobs of one adversarial search run.

    ``chains`` independent annealing walks per pair, each ``steps``
    mutations long; ``temperature`` is the initial acceptance
    temperature (0 = greedy) decaying by ``cooling`` per step.
    ``ops`` restricts the mutation operators; ``trials``/``noise``
    configure the ``sim`` objective only.
    """

    pair: Tuple[str, str]
    objective: str = "ratio"
    steps: int = 200
    chains: int = 4  # repro: noqa-RPR003 rows are keyed per chain label, not via the shared fingerprint
    temperature: float = 0.02
    cooling: float = 0.97
    seed: int = 0
    ops: Tuple[str, ...] = ()
    trials: int = 25
    noise: float = 0.3

    def __post_init__(self):
        self.pair = (str(self.pair[0]).upper(), str(self.pair[1]).upper())
        self.ops = tuple(self.ops) if self.ops else mutation_names()
        if self.steps < 1 or self.chains < 1:
            raise ValueError("steps and chains must be >= 1")
        if self.temperature < 0:
            raise ValueError("temperature must be >= 0")
        if not 0 < self.cooling <= 1:
            raise ValueError("cooling must be in (0, 1]")

    @property
    def pair_label(self) -> str:
        return f"{self.pair[0]}/{self.pair[1]}"

    def objective_for(self, bench: BenchConfig) -> Objective:
        return Objective(
            alg_a=self.pair[0], alg_b=self.pair[1], kind=self.objective,
            config=bench, trials=self.trials, noise=self.noise,
            seed=self.seed,
        )

    def fingerprint(self, bench: BenchConfig,
                    seeds: Sequence[TaskGraph] = ()) -> str:
        """The store cache key: search knobs + seeds + machine model.

        The seed graphs' names are part of the key — two searches with
        identical knobs but different starting populations (e.g. two
        sweep points of a ``graphs`` axis) must never replay each
        other's chains from the store.
        """
        seed_id = hashlib.sha256(
            "\x1f".join(g.name for g in seeds).encode()).hexdigest()[:12]
        return (
            f"adv:{self.objective_for(bench).fingerprint()}"
            f";steps={self.steps};temp={self.temperature:g}"
            f";cool={self.cooling:g};seed={self.seed}"
            f";ops={','.join(self.ops)};seeds={seed_id}"
            f"|{bench.fingerprint()}"
        )


def adv_store(directory: str) -> ResultStore:
    """The chain-row store under ``directory`` (``adv.json``/``adv.csv``)."""
    return ResultStore(directory, basename="adv", row_type=SearchRow)


def _slug(text: str) -> str:
    """Filesystem-safe form of a pair/instance label."""
    return re.sub(r"[^A-Za-z0-9._-]+", "-", text).strip("-").lower()


def _run_chain(args) -> SearchRow:
    """Pool worker: anneal one chain (module-level so it pickles under
    the spawn start method too)."""
    chain, seed_graph, config, bench = args
    label = f"chain-{chain:02d}"
    objective = config.objective_for(bench)
    rng = derive_rng(config.seed, "adv", config.pair_label,
                     config.objective, chain)
    t0 = time.perf_counter()

    current = seed_graph
    cur_val = objective.evaluate(current)
    start_score = cur_val.score
    best, best_val, best_step = current, cur_val, 0
    lineage: List[str] = []
    best_lineage: List[str] = []
    accepted = 0
    temp = config.temperature
    for step in range(1, config.steps + 1):
        out = mutate(current, rng, ops=config.ops,
                     name=f"{seed_graph.name}~{step}")
        if out is None:
            continue
        candidate, op = out
        val = objective.evaluate(candidate)
        delta = val.score - cur_val.score
        # Greedy when T == 0: no acceptance randomness is drawn, so a
        # zero-temperature chain replays identically from its seed.
        accept = delta > 0 or (
            temp > 0 and rng.random() < math.exp(delta / temp))
        if accept:
            current, cur_val = candidate, val
            lineage.append(op)
            accepted += 1
            if cur_val.score > best_val.score:
                best, best_val, best_step = current, cur_val, step
                best_lineage = list(lineage)
        temp *= config.cooling
    elapsed = time.perf_counter() - t0

    instance_name = _slug(
        f"adv-{config.pair_label}-{config.objective}-{label}")
    best = TaskGraph(best.weights, best.edges(), name=instance_name)
    # Score the winner once more under its *final* name: the sim
    # objective keys its noise stream on the graph name, so this is
    # the value a re-score of the exported instance reproduces (for
    # ratio/slack it is identical to the in-loop score).
    final_val = objective.evaluate(best)
    return SearchRow(
        algorithm=config.pair_label,
        graph=label,
        objective=config.objective,
        score=final_val.score,
        start_score=start_score,
        length_a=final_val.length_a,
        length_b=final_val.length_b,
        num_nodes=best.num_nodes,
        num_edges=best.num_edges,
        steps=config.steps,
        accepted=accepted,
        best_step=best_step,
        seed=config.seed,
        instance=instance_name,
        lineage=best_lineage,
        stg=dumps_stg(best),
        runtime_s=elapsed,
    )


def run_search(config: SearchConfig,
               seeds: Sequence[TaskGraph],
               bench: Optional[BenchConfig] = None,
               jobs: Optional[int] = None,
               store: Optional[ResultStore] = None,
               resume: bool = False) -> List[SearchRow]:
    """Run every chain of one search; rows in chain order.

    Chain ``i`` starts from ``seeds[i % len(seeds)]``, so a scenario's
    graph axis doubles as the search's starting population.  The call
    contract is the grid engine's: ``jobs`` fans chains over worker
    processes, ``store`` + ``resume`` replay cached chains verbatim.
    """
    from ..bench.parallel import execute_cells

    if not seeds:
        raise ValueError("adversarial search needs at least one seed graph")
    bench = bench or BenchConfig()
    cells = [(i, seeds[i % len(seeds)]) for i in range(config.chains)]
    keys = [(config.pair_label, f"chain-{i:02d}") for i, _ in cells]
    work = [(i, graph, config, bench) for i, graph in cells]
    return execute_cells(keys, work, _run_chain,
                         config.fingerprint(bench, seeds),
                         jobs=jobs, store=store, resume=resume)

"""Adversarial instance search: find graphs where schedulers lose.

The paper (and every average-case suite in this repository) ranks
schedulers by mean makespan over fixed random graphs; PISA-style
analysis (Coleman & Krishnamachari, arXiv:2403.07120) shows those
averages hide large per-instance gaps — for almost any pair of
heuristics there are graphs where one loses badly.  This package
*searches* graph space for such instances instead of sampling it:

* :mod:`repro.adversarial.mutate` — DAG- and connectivity-preserving
  graph mutations (edge add/remove, weight and CCR rescaling, node
  split/merge);
* :mod:`repro.adversarial.objective` — maximisable scores over an
  ordered scheduler pair: makespan ratio, normalized-slack gap, or
  simulated-vs-predicted degradation via :mod:`repro.sim`;
* :mod:`repro.adversarial.search` — seeded simulated-annealing chains
  run through the parallel, persisted grid engine, each finished chain
  cached as a :class:`~repro.adversarial.search.SearchRow` (score,
  mutation lineage, and the instance itself in STG form);
* :mod:`repro.adversarial.frontier` — per-pair Pareto fronts over
  instance size vs score, persisted as ``frontier.json``.

>>> from repro.adversarial import SearchConfig, run_search
>>> from repro.generators.random_graphs import rgnos_graph
>>> cfg = SearchConfig(pair=("LAST", "MCP"), steps=30, chains=2,
...                    temperature=0.0, seed=5)
>>> rows = run_search(cfg, [rgnos_graph(30, 1.0, 3, seed=131)])
>>> rows[0].score >= rows[0].start_score
True

CLI: ``python -m repro.bench adv search/show/export`` (see README);
scenario specs opt in with an ``adversarial:`` block.
"""

from .frontier import FrontierPoint, ParetoFrontier
from .mutate import MUTATIONS, mutate, mutation_names
from .objective import OBJECTIVES, Objective, ObjectiveValue
from .search import SearchConfig, SearchRow, adv_store, run_search

__all__ = [
    "MUTATIONS",
    "mutate",
    "mutation_names",
    "OBJECTIVES",
    "Objective",
    "ObjectiveValue",
    "SearchConfig",
    "SearchRow",
    "adv_store",
    "run_search",
    "FrontierPoint",
    "ParetoFrontier",
]

"""DAG-preserving mutations over task graphs.

The adversarial search (:mod:`repro.adversarial.search`) walks graph
space by applying one small mutation per step.  Every mutation here
maintains two invariants the rest of the system depends on:

* **DAG-ness** — edges are only ever added from a node to one strictly
  later in the current topological order, node splits hang the new node
  below its origin, and merges contract an edge only when no alternate
  directed path connects its endpoints (the one case where contraction
  would close a cycle).  ``TaskGraph`` re-validates acyclicity on
  construction, so a violation would raise, never propagate.
* **connectivity** — no mutation strands a node with zero edges: edge
  removal skips edges whose loss would isolate an endpoint, merges
  require the merged node to keep at least one external edge, and
  splits connect the new node to its origin.  (Graphs of one node, or
  inputs that already contain isolated nodes, are left no worse.)

Mutations are pure functions of ``(graph, rng)``: given the same graph
and the same generator state they produce the same result, which is
what makes a whole search chain replayable from one seed.  A mutation
that finds no applicable site returns ``None`` and the dispatcher
:func:`mutate` falls through to another operator.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core.graph import TaskGraph

__all__ = ["MUTATIONS", "mutation_names", "mutate"]

#: Weight/cost scale factors stay inside this band per application, so a
#: single step never teleports across graph space.
_SCALE_LOW, _SCALE_HIGH = 0.5, 2.0

#: Floor for computation costs after rescaling (must stay positive).
_MIN_WEIGHT = 1.0


def _degree(graph: TaskGraph, node: int) -> int:
    return graph.in_degree(node) + graph.out_degree(node)


def _mean_comm(graph: TaskGraph) -> float:
    """Mean communication cost, falling back to the mean weight."""
    if graph.num_edges:
        return graph.total_communication / graph.num_edges
    return graph.total_computation / graph.num_nodes


def _rebuild(graph: TaskGraph, weights, edges, name: str) -> TaskGraph:
    return TaskGraph(weights, edges, name=name)


def add_edge(graph: TaskGraph, rng: np.random.Generator,
             name: str) -> Optional[TaskGraph]:
    """Insert one precedence edge between topologically ordered nodes.

    The endpoints are drawn as two distinct positions in the graph's
    topological order (earlier position becomes the source), so the
    new edge can never close a cycle.
    """
    n = graph.num_nodes
    if n < 2:
        return None
    topo = graph.topological_order
    for _ in range(8):  # a dense graph may need a few draws
        i, j = sorted(rng.choice(n, size=2, replace=False))
        u, v = topo[int(i)], topo[int(j)]
        if not graph.has_edge(u, v):
            cost = max(1.0, _mean_comm(graph)
                       * rng.uniform(_SCALE_LOW, _SCALE_HIGH))
            edges = graph.edges() + [(u, v, cost)]
            return _rebuild(graph, graph.weights, edges, name)
    return None


def remove_edge(graph: TaskGraph, rng: np.random.Generator,
                name: str) -> Optional[TaskGraph]:
    """Drop one edge whose removal leaves both endpoints connected."""
    candidates = [
        (u, v) for u, v, _ in graph.edges()
        if _degree(graph, u) > 1 and _degree(graph, v) > 1
    ]
    if not candidates:
        return None
    u, v = candidates[int(rng.integers(len(candidates)))]
    edges = [(a, b, c) for a, b, c in graph.edges() if (a, b) != (u, v)]
    return _rebuild(graph, graph.weights, edges, name)


def rescale_weight(graph: TaskGraph, rng: np.random.Generator,
                   name: str) -> Optional[TaskGraph]:
    """Scale one node's computation cost by a factor in [0.5, 2]."""
    node = int(rng.integers(graph.num_nodes))
    factor = rng.uniform(_SCALE_LOW, _SCALE_HIGH)
    weights = np.array(graph.weights, dtype=float)
    weights[node] = max(_MIN_WEIGHT, weights[node] * factor)
    return _rebuild(graph, weights, graph.edges(), name)


def rescale_comm(graph: TaskGraph, rng: np.random.Generator,
                 name: str) -> Optional[TaskGraph]:
    """Scale one edge's communication cost by a factor in [0.5, 2]."""
    if not graph.num_edges:
        return None
    edges = graph.edges()
    idx = int(rng.integers(len(edges)))
    factor = rng.uniform(_SCALE_LOW, _SCALE_HIGH)
    u, v, c = edges[idx]
    edges[idx] = (u, v, max(1.0, c * factor))
    return _rebuild(graph, graph.weights, edges, name)


def ccr_shift(graph: TaskGraph, rng: np.random.Generator,
              name: str) -> Optional[TaskGraph]:
    """Scale *every* communication cost — shift the global CCR."""
    if not graph.num_edges:
        return None
    factor = rng.uniform(_SCALE_LOW, _SCALE_HIGH)
    edges = [(u, v, max(1.0, c * factor)) for u, v, c in graph.edges()]
    return _rebuild(graph, graph.weights, edges, name)


def split_node(graph: TaskGraph, rng: np.random.Generator,
               name: str) -> Optional[TaskGraph]:
    """Split one node into a chained pair sharing its cost.

    The origin keeps its predecessors; a random subset of its
    successors moves to the new node, which is tied back to the origin
    by a fresh edge — both halves therefore stay connected and the new
    node (appended as the highest id) can only deepen the DAG.
    """
    candidates = [u for u in graph.nodes() if graph.weight(u) >= 2.0]
    if not candidates:
        return None
    u = candidates[int(rng.integers(len(candidates)))]
    new = graph.num_nodes
    weights = list(graph.weights)
    half = weights[u] / 2.0
    weights[u] = half
    weights.append(half)
    succ = graph.successors(u)
    moved = {v for v in succ if rng.random() < 0.5}
    edges: List[Tuple[int, int, float]] = []
    for a, b, c in graph.edges():
        if a == u and b in moved:
            edges.append((new, b, c))
        else:
            edges.append((a, b, c))
    link = max(1.0, _mean_comm(graph)
               * rng.uniform(_SCALE_LOW, _SCALE_HIGH))
    edges.append((u, new, link))
    return _rebuild(graph, weights, edges, name)


def merge_nodes(graph: TaskGraph, rng: np.random.Generator,
                name: str) -> Optional[TaskGraph]:
    """Contract one precedence edge into a single combined node.

    Contracting ``(u, v)`` closes a cycle exactly when a second
    directed path ``u -> ... -> v`` exists, so such edges are skipped;
    the merged node keeps every other edge of both endpoints (parallel
    edges collapse to their maximum cost) and must keep at least one.
    """
    if graph.num_nodes < 3 or not graph.num_edges:
        return None
    edges = graph.edges()
    order = rng.permutation(len(edges))
    for idx in order[:12]:  # bounded probing keeps a step cheap
        u, v, _ = edges[int(idx)]
        if _degree(graph, u) + _degree(graph, v) <= 2:
            continue  # merged node would be isolated
        if _has_alternate_path(graph, u, v):
            continue
        return _contract(graph, u, v, name)
    return None


def _has_alternate_path(graph: TaskGraph, u: int, v: int) -> bool:
    """True when a directed path u -> v exists besides the edge itself."""
    stack = [s for s in graph.successors(u) if s != v]
    seen = set(stack)
    while stack:
        x = stack.pop()
        if x == v:
            return True
        for s in graph.successors(x):
            if s not in seen:
                seen.add(s)
                stack.append(s)
    return False


def _contract(graph: TaskGraph, u: int, v: int, name: str) -> TaskGraph:
    n = graph.num_nodes
    # v disappears; higher ids shift down to keep ids consecutive.
    remap = {}
    for node in range(n):
        if node == v:
            remap[node] = u if u < v else u - 1
        else:
            remap[node] = node if node < v else node - 1
    weights = [
        graph.weight(node) + (graph.weight(v) if node == u else 0.0)
        for node in range(n) if node != v
    ]
    merged: Dict[Tuple[int, int], float] = {}
    for a, b, c in graph.edges():
        if (a, b) == (u, v):
            continue
        ra, rb = remap[a], remap[b]
        if ra == rb:
            continue  # both endpoints folded into the merged node
        key = (ra, rb)
        merged[key] = max(merged.get(key, 0.0), c)
    return _rebuild(graph, weights, merged, name)


#: Operator registry, in a fixed order (part of search fingerprints).
MUTATIONS: Dict[str, Callable[..., Optional[TaskGraph]]] = {
    "add-edge": add_edge,
    "remove-edge": remove_edge,
    "rescale-weight": rescale_weight,
    "rescale-comm": rescale_comm,
    "ccr-shift": ccr_shift,
    "split-node": split_node,
    "merge-nodes": merge_nodes,
}


def mutation_names() -> Tuple[str, ...]:
    """All operator names, in registry order."""
    return tuple(MUTATIONS)


def mutate(graph: TaskGraph, rng: np.random.Generator,
           ops: Optional[Tuple[str, ...]] = None,
           name: Optional[str] = None
           ) -> Optional[Tuple[TaskGraph, str]]:
    """Apply one randomly chosen operator; returns ``(graph, op name)``.

    Starts from a random operator and falls through the rest in
    registry order until one applies; ``None`` only when no operator in
    ``ops`` has an applicable site (tiny or degenerate graphs).
    """
    names = list(ops) if ops else list(MUTATIONS)
    unknown = [op for op in names if op not in MUTATIONS]
    if unknown:
        raise ValueError(f"unknown mutation(s): {', '.join(unknown)}; "
                         f"known: {', '.join(MUTATIONS)}")
    start = int(rng.integers(len(names)))
    for offset in range(len(names)):
        op = names[(start + offset) % len(names)]
        out = MUTATIONS[op](graph, rng, name or f"{graph.name}~{op}")
        if out is not None:
            return out, op
    return None

"""Per-pair Pareto fronts over (instance size, objective score).

A single worst case answers "how badly can A lose to B", but the more
useful artifact is the trade-off curve: the smallest instance achieving
each level of badness.  :class:`ParetoFrontier` keeps, for every
ordered scheduler pair, the set of non-dominated ``(num_nodes, score)``
points — a point is dominated when another instance is at least as bad
*and* no larger.  Fronts persist as ``frontier.json`` next to the
chain store, merge monotonically (feeding the same rows twice is a
no-op), and carry each instance's STG text so ``adv export`` can
re-emit every frontier graph as a reusable file.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List

__all__ = ["FrontierPoint", "ParetoFrontier"]

SCHEMA_VERSION = 1


@dataclass(frozen=True)
class FrontierPoint:
    """One non-dominated instance of one pair's front."""

    pair: str
    num_nodes: int
    score: float
    instance: str   # graph name (also the export file stem)
    chain: str      # chain label that found it
    objective: str
    stg: str        # the instance itself, STG text


def _dominates(a: FrontierPoint, b: FrontierPoint) -> bool:
    """True when ``a`` makes ``b`` redundant (>= score, <= size).

    Scores of different objectives are incomparable, so domination
    never crosses objective kinds — a pair searched under several
    objectives keeps one front per objective.
    """
    return (a.objective == b.objective
            and a.score >= b.score and a.num_nodes <= b.num_nodes
            and (a.score > b.score or a.num_nodes < b.num_nodes))


class ParetoFrontier:
    """Non-dominated ``(size, score)`` points per scheduler pair.

    Parameters
    ----------
    path:
        Optional JSON file; when it exists the frontier loads eagerly,
        and :meth:`save` writes back atomically (the store pattern).
    """

    def __init__(self, path: str = ""):
        self.path = path
        self._fronts: Dict[str, List[FrontierPoint]] = {}
        if path and os.path.exists(path):
            self.load(path)

    def __len__(self) -> int:
        return sum(len(points) for points in self._fronts.values())

    def pairs(self) -> List[str]:
        """Pair labels with at least one frontier point, sorted."""
        return sorted(self._fronts)

    def front(self, pair: str) -> List[FrontierPoint]:
        """The pair's front: grouped by objective, smallest first."""
        return sorted(self._fronts.get(pair, ()),
                      key=lambda p: (p.objective, p.num_nodes, -p.score))

    def add(self, point: FrontierPoint) -> bool:
        """Offer one point; returns True when it joins the front."""
        front = self._fronts.setdefault(point.pair, [])
        for existing in front:
            if _dominates(existing, point) or (
                    existing.objective == point.objective
                    and existing.score == point.score
                    and existing.num_nodes == point.num_nodes):
                return False
        front[:] = [p for p in front if not _dominates(point, p)]
        front.append(point)
        return True

    def update(self, rows: Iterable) -> int:
        """Fold finished :class:`SearchRow` chains in; returns adds."""
        added = 0
        for row in rows:
            added += self.add(FrontierPoint(
                pair=row.algorithm,
                num_nodes=row.num_nodes,
                score=row.score,
                instance=row.instance,
                chain=row.graph,
                objective=row.objective,
                stg=row.stg,
            ))
        return added

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def load(self, path: str) -> int:
        with open(path) as fh:
            try:
                doc = json.load(fh)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}: not valid JSON ({exc})") from exc
        if doc.get("schema") != SCHEMA_VERSION:
            raise ValueError(f"{path}: unsupported frontier schema "
                             f"{doc.get('schema')!r}")
        count = 0
        for pair, points in doc.get("fronts", {}).items():
            for data in points:
                self.add(FrontierPoint(**{**data, "pair": pair}))
                count += 1
        return count

    def save(self, path: str = "") -> None:
        path = path or self.path
        if not path:
            raise ValueError("frontier has no path to save to")
        doc = {
            "schema": SCHEMA_VERSION,
            "fronts": {
                pair: [
                    {k: v for k, v in asdict(p).items() if k != "pair"}
                    for p in self.front(pair)
                ]
                for pair in self.pairs()
            },
        }
        directory = os.path.dirname(path) or "."
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, prefix=".frontier-",
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(doc, fh, indent=1)
                fh.write("\n")
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

"""Search objectives over scheduler pairs.

PISA-style adversarial analysis (Coleman & Krishnamachari, 2024) ranks
schedulers not by their average makespan but by how badly each can lose
to another on *some* instance.  An :class:`Objective` scores one graph
for one ordered pair ``(A, B)``; the search engine maximises it:

* ``ratio`` — executed makespan ratio ``L_A / L_B``: a score of 1.3
  means the search found a graph where A's schedule is 30% longer than
  B's.  The headline PISA number.
* ``slack`` — normalized-slack gap ``slack_B - slack_A`` (each from
  :func:`repro.sim.robustness.schedule_slack`, already a fraction of
  the makespan): graphs where A's schedule is far more brittle than
  B's, even if the predicted lengths agree.
* ``sim`` — simulated-vs-predicted degradation of A under lognormal
  duration noise via :mod:`repro.sim`: ``mean executed / predicted``
  makespan, so a score of 1.2 means A's prediction underestimates its
  own execution by 20%.  B's makespan is still reported for context.

Scoring a graph is a pure function of ``(objective, graph)`` — both
schedulers are deterministic and the sim noise stream is derived from
the objective's seed and the graph name — which is what lets whole
search chains persist in a :class:`~repro.bench.store.ResultStore`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bench.runner import BenchConfig
from ..core.graph import TaskGraph

__all__ = ["OBJECTIVES", "ObjectiveValue", "Objective"]

#: Objective kinds understood by the search layer and the spec schema.
OBJECTIVES = ("ratio", "slack", "sim")


@dataclass(frozen=True)
class ObjectiveValue:
    """One scored instance: the score plus the raw pair measurements."""

    score: float
    length_a: float
    length_b: float


@dataclass(frozen=True)
class Objective:
    """A maximisable score for ordered pair ``(alg_a, alg_b)``.

    ``config`` supplies the machine model exactly as in any benchmark
    run; ``trials``/``noise``/``seed`` only matter for ``kind="sim"``.
    """

    alg_a: str
    alg_b: str
    kind: str = "ratio"
    config: BenchConfig = field(default_factory=BenchConfig)  # repro: noqa-RPR003 SearchConfig.fingerprint appends config.fingerprint() itself
    trials: int = 25
    noise: float = 0.3
    seed: int = 0

    def __post_init__(self):
        if self.kind not in OBJECTIVES:
            raise ValueError(f"unknown objective {self.kind!r}; expected "
                             f"one of {', '.join(OBJECTIVES)}")

    @property
    def pair(self) -> str:
        """The store's row label for this ordered pair."""
        return f"{self.alg_a}/{self.alg_b}"

    def fingerprint(self) -> str:
        """Cache-key part identifying the scoring function."""
        fp = f"obj:{self.kind};pair={self.pair}"
        if self.kind == "sim":
            fp += f";trials={self.trials};noise={self.noise:g}" \
                  f";seed={self.seed}"
        return fp

    def _schedules(self, graph: TaskGraph):
        from ..algorithms import get_scheduler

        out = []
        for name in (self.alg_a, self.alg_b):
            scheduler = get_scheduler(name)
            machine = self.config.machine_for(name, graph)
            out.append(scheduler.schedule(graph, machine))
        return out

    def evaluate(self, graph: TaskGraph) -> ObjectiveValue:
        """Score one graph (larger = worse for A relative to B)."""
        sched_a, sched_b = self._schedules(graph)
        if self.kind == "ratio":
            score = (sched_a.length / sched_b.length
                     if sched_b.length > 0 else 0.0)
        elif self.kind == "slack":
            from ..sim.robustness import schedule_slack

            score = schedule_slack(sched_b) - schedule_slack(sched_a)
        else:  # sim
            from ..sim.perturb import PerturbationModel
            from ..sim.robustness import monte_carlo

            row, _ = monte_carlo(
                sched_a,
                perturb=PerturbationModel.lognormal(self.noise),
                trials=self.trials,
                seed=self.seed,
                algorithm=self.alg_a,
            )
            score = (row.mean / row.predicted
                     if row.predicted > 0 else 0.0)
        return ObjectiveValue(score=float(score),
                              length_a=sched_a.length,
                              length_b=sched_b.length)

"""Performance measures and ranking utilities (paper Section 6)."""

from .measures import RunResult, degradation_pct, efficiency, nsl, speedup
from .ranking import average_ranks, summarize_by_algorithm

__all__ = [
    "nsl",
    "degradation_pct",
    "speedup",
    "efficiency",
    "RunResult",
    "average_ranks",
    "summarize_by_algorithm",
]

"""Performance measures (paper Section 6).

The six measures the paper compares on:

* **schedule length** (makespan);
* **NSL** — normalized schedule length, ``L / sum(w(n) for n on CP)``
  (the denominator is the computation-only critical path, a lower bound
  on any clique-model schedule, so NSL >= 1);
* **percentage degradation from optimal** — ``100 (L - L_opt) / L_opt``;
* **number of processors used**;
* **algorithm running time** (captured by the bench runner);
* **speedup / efficiency** (derived, for the scalability discussion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.attributes import cp_computation_cost
from ..core.graph import TaskGraph
from ..core.schedule import Schedule

__all__ = [
    "nsl",
    "degradation_pct",
    "speedup",
    "efficiency",
    "RunResult",
]


def nsl(schedule: Schedule, graph: Optional[TaskGraph] = None) -> float:
    """Normalized schedule length of a complete schedule."""
    g = graph if graph is not None else schedule.graph
    denom = cp_computation_cost(g)
    if denom <= 0:
        raise ValueError("graph has no computation on its critical path")
    return schedule.length / denom


def degradation_pct(length: float, optimal: float) -> float:
    """Percentage above the optimal length (0 == optimal found)."""
    if optimal <= 0:
        raise ValueError("optimal length must be positive")
    return 100.0 * (length - optimal) / optimal


def speedup(schedule: Schedule) -> float:
    """Serial time over schedule length."""
    return schedule.graph.total_computation / schedule.length


def efficiency(schedule: Schedule) -> float:
    """Speedup per processor actually used."""
    procs = schedule.processors_used()
    return speedup(schedule) / procs if procs else 0.0


@dataclass(frozen=True)
class RunResult:
    """One (algorithm, graph) benchmark cell."""

    algorithm: str
    klass: str
    graph: str
    num_nodes: int
    length: float
    nsl: float
    procs_used: int
    runtime_s: float
    optimal: Optional[float] = None

    @property
    def degradation(self) -> Optional[float]:
        if self.optimal is None:
            return None
        return degradation_pct(self.length, self.optimal)

    @property
    def is_optimal(self) -> bool:
        return (
            self.optimal is not None
            and self.length <= self.optimal + 1e-9
        )

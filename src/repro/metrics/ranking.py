"""Ranking algorithms within their class (paper Section 6 commentary).

The paper ranks algorithms per class both by schedule quality and by
running time ("the BNP algorithms can be ranked in the order: MCP, ISH,
HLFET, LAST, and (DLS, ETF)").  These helpers compute the same style of
average-rank summaries from a collection of :class:`RunResult` rows.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Tuple

from .measures import RunResult

__all__ = ["average_ranks", "summarize_by_algorithm"]


def average_ranks(results: Iterable[RunResult],
                  key: str = "length") -> List[Tuple[str, float]]:
    """Average per-graph rank of each algorithm (1 = best), sorted.

    Algorithms tied on a graph share the averaged rank (competition
    ranking would exaggerate differences the paper treats as ties).
    """
    by_graph: Dict[str, List[RunResult]] = defaultdict(list)
    for r in results:
        by_graph[r.graph].append(r)
    totals: Dict[str, float] = defaultdict(float)
    counts: Dict[str, int] = defaultdict(int)
    for rows in by_graph.values():
        rows = sorted(rows, key=lambda r: getattr(r, key))
        i = 0
        while i < len(rows):
            j = i
            while (j + 1 < len(rows)
                   and abs(getattr(rows[j + 1], key)
                           - getattr(rows[i], key)) < 1e-9):
                j += 1
            shared = (i + j) / 2 + 1  # average of ranks i+1 .. j+1
            for k in range(i, j + 1):
                totals[rows[k].algorithm] += shared
                counts[rows[k].algorithm] += 1
            i = j + 1
    return sorted(
        ((alg, totals[alg] / counts[alg]) for alg in totals),
        key=lambda t: t[1],
    )


def summarize_by_algorithm(results: Iterable[RunResult]) -> Dict[str, Dict[str, float]]:
    """Mean NSL / length / processors / runtime per algorithm."""
    acc: Dict[str, Dict[str, float]] = defaultdict(
        lambda: {"n": 0, "nsl": 0.0, "length": 0.0, "procs": 0.0,
                 "runtime_s": 0.0}
    )
    for r in results:
        a = acc[r.algorithm]
        a["n"] += 1
        a["nsl"] += r.nsl
        a["length"] += r.length
        a["procs"] += r.procs_used
        a["runtime_s"] += r.runtime_s
    out: Dict[str, Dict[str, float]] = {}
    for alg, a in acc.items():
        n = a["n"]
        out[alg] = {
            "count": n,
            "mean_nsl": a["nsl"] / n,
            "mean_length": a["length"] / n,
            "mean_procs": a["procs"] / n,
            "mean_runtime_s": a["runtime_s"] / n,
        }
    return out

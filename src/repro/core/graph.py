"""Weighted directed acyclic task graphs (macro-dataflow graphs).

The model follows Section 2 of Kwok & Ahmad (IPPS 1998): a node represents
a task with a *computation cost* ``w(n)``; a directed edge ``(u, v)``
represents a precedence constraint with a *communication cost* ``c(u, v)``
that is incurred only when ``u`` and ``v`` execute on different processors.

Nodes are integers ``0 .. num_nodes-1``.  The graph is immutable after
construction; derived quantities (topological order, predecessor lists,
critical path) are computed lazily and cached.
"""

from __future__ import annotations

from collections import deque
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Sequence,
    Tuple,
)

import numpy as np

from ..check import sanitize as _sanitize
from .exceptions import CycleError, GraphError

__all__ = ["TaskGraph"]

Edge = Tuple[int, int]


class TaskGraph:
    """An immutable weighted DAG of tasks.

    Parameters
    ----------
    weights:
        Sequence of computation costs; ``weights[i]`` is the cost of node
        ``i``.  Must be positive.
    edges:
        Mapping ``(u, v) -> communication cost`` or iterable of
        ``(u, v, cost)`` triples.  Costs must be non-negative (a zero cost
        edge still carries a precedence constraint).
    name:
        Optional human-readable identifier used in benchmark reports.

    Examples
    --------
    >>> g = TaskGraph([2.0, 3.0, 1.0], {(0, 1): 4.0, (0, 2): 1.0})
    >>> g.num_nodes, g.num_edges
    (3, 2)
    >>> list(g.successors(0))
    [1, 2]
    """

    __slots__ = (
        "_weights",
        "_succ",
        "_pred",
        "_succ_costs",
        "_pred_costs",
        "_edge_cost",
        "name",
        "_topo",
        "_entries",
        "_exits",
        "_cache",
    )

    def __init__(
        self,
        weights: Sequence[float],
        edges: Mapping[Edge, float] | Iterable[Tuple[int, int, float]],
        name: str = "taskgraph",
    ):
        w = np.asarray(list(weights), dtype=np.float64)
        if w.ndim != 1 or w.size == 0:
            raise GraphError("a task graph needs at least one node")
        if np.any(w <= 0):
            raise GraphError("computation costs must be positive")
        n = int(w.size)

        if isinstance(edges, Mapping):
            items = [(u, v, c) for (u, v), c in edges.items()]
        else:
            items = [(u, v, c) for (u, v, c) in edges]

        succ: List[List[int]] = [[] for _ in range(n)]
        pred: List[List[int]] = [[] for _ in range(n)]
        cost: Dict[Edge, float] = {}
        for u, v, c in items:
            u, v, c = int(u), int(v), float(c)
            if not (0 <= u < n and 0 <= v < n):
                raise GraphError(f"edge ({u}, {v}) references unknown node")
            if u == v:
                raise GraphError(f"self loop on node {u}")
            if c < 0:
                raise GraphError(f"negative communication cost on ({u}, {v})")
            if (u, v) in cost:
                raise GraphError(f"duplicate edge ({u}, {v})")
            cost[(u, v)] = c
            succ[u].append(v)
            pred[v].append(u)
        for lst in succ:
            lst.sort()
        for lst in pred:
            lst.sort()

        self._weights = w
        self._weights.setflags(write=False)
        self._succ = succ
        self._pred = pred
        # Communication costs aligned index-for-index with the adjacency
        # lists: the kernel inner loops walk (neighbour, cost) pairs
        # without touching the edge dict.
        self._succ_costs = [[cost[(u, v)] for v in succ[u]] for u in range(n)]
        self._pred_costs = [[cost[(p, v)] for p in pred[v]] for v in range(n)]
        self._edge_cost = cost
        self._cache: Dict[str, Any] = {}
        self.name = name
        self._topo: Tuple[int, ...] | None = None
        self._entries: Tuple[int, ...] | None = None
        self._exits: Tuple[int, ...] | None = None
        # Validate acyclicity eagerly: a cyclic "task graph" is never usable.
        self._compute_topo()

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of tasks ``v``."""
        return int(self._weights.size)

    @property
    def num_edges(self) -> int:
        """Number of precedence edges ``e``."""
        return len(self._edge_cost)

    @property
    def weights(self) -> np.ndarray:
        """Read-only array of computation costs indexed by node."""
        return self._weights

    def weight(self, node: int) -> float:
        """Computation cost ``w(node)``."""
        return float(self._weights[node])

    def comm_cost(self, u: int, v: int) -> float:
        """Communication cost ``c(u, v)``; raises ``KeyError`` if no edge."""
        return self._edge_cost[(u, v)]

    def has_edge(self, u: int, v: int) -> bool:
        """True when the precedence edge ``(u, v)`` exists."""
        return (u, v) in self._edge_cost

    def successors(self, node: int) -> List[int]:
        """Children of ``node`` in ascending node order."""
        return list(self._succ[node])

    def predecessors(self, node: int) -> List[int]:
        """Parents of ``node`` in ascending node order."""
        return list(self._pred[node])

    def out_degree(self, node: int) -> int:
        return len(self._succ[node])

    def in_degree(self, node: int) -> int:
        return len(self._pred[node])

    def edges(self) -> List[Tuple[int, int, float]]:
        """All edges as ``(u, v, cost)`` triples in deterministic order."""
        return sorted((u, v, c) for (u, v), c in self._edge_cost.items())

    def nodes(self) -> range:
        """Node ids ``0 .. num_nodes-1``."""
        return range(self.num_nodes)

    def fingerprint(self) -> str:
        """Stable content identity of the graph structure.

        A short SHA-256 digest over the node count, every computation
        cost and every ``(u, v, cost)`` edge — the *name* is
        deliberately excluded, so two differently-named copies of the
        same DAG share one identity.  Schedulers are pure functions of
        ``(graph, machine, spec)``, which makes this digest the graph
        part of every schedule-cache key (see :mod:`repro.service`):
        equal fingerprints guarantee bit-identical schedules from any
        deterministic scheduler.  Computed once per graph (the graph is
        immutable) and memoised.
        """
        import hashlib

        def compute(g: "TaskGraph") -> str:
            h = hashlib.sha256()
            h.update(str(g.num_nodes).encode())
            h.update(g._weights.tobytes())
            for u, v, c in g.edges():
                h.update(f"|{u},{v},{c:.17g}".encode())
            return h.hexdigest()[:16]

        return str(self.cached("_fingerprint", compute))

    # ------------------------------------------------------------------
    # flat-array kernel views
    # ------------------------------------------------------------------
    def cached(self, key: str, compute: "Callable[[TaskGraph], Any]") -> Any:
        """Memoise ``compute(self)`` under ``key``.

        The graph is immutable, so any pure derived quantity (attribute
        sweeps, CSR plans, the critical path) is computed at most once
        per graph.  Callers must treat the returned object as read-only.
        """
        try:
            return self._cache[key]
        except KeyError:
            value = compute(self)
            self._cache[key] = value
            return value

    def succ_csr(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Successor adjacency in CSR form.

        Returns read-only ``(indptr, indices, costs)``: the successors
        of ``u`` are ``indices[indptr[u]:indptr[u+1]]`` (ascending) and
        ``costs`` is aligned index-for-index with ``indices``.
        """
        csr = self.cached("_succ_csr", lambda g: _build_csr(g._succ,
                                                            g._succ_costs))
        if _sanitize.enabled():
            self._sanitize_csr("_succ_csr", csr, self._succ, self._succ_costs)
        return csr

    def pred_csr(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Predecessor adjacency in CSR form (mirror of :meth:`succ_csr`)."""
        csr = self.cached("_pred_csr", lambda g: _build_csr(g._pred,
                                                            g._pred_costs))
        if _sanitize.enabled():
            self._sanitize_csr("_pred_csr", csr, self._pred, self._pred_costs)
        return csr

    def _sanitize_csr(self, key: str,
                      csr: Tuple[np.ndarray, np.ndarray, np.ndarray],
                      adj: List[List[int]],
                      costs: List[List[float]]) -> None:
        """Sanitizer hook: CSR must round-trip against the list adjacency.

        Runs on every armed call — the cached CSR was built from the
        lists at first use, so a later mismatch means a kernel or
        scheduler corrupted shared adjacency memory.
        """
        indptr, indices, cost = csr
        _sanitize.require(
            int(indptr[0]) == 0 and int(indptr[-1]) == len(indices)
            and len(indices) == len(cost),
            f"{self.name}: CSR shape broken for {key}")
        for u in range(self.num_nodes):
            lo, hi = int(indptr[u]), int(indptr[u + 1])
            _sanitize.require(
                list(indices[lo:hi]) == adj[u]
                and list(cost[lo:hi]) == costs[u],
                f"{self.name}: CSR row {u} does not round-trip the "
                f"adjacency lists ({key})")

    def succ_pairs(self, node: int) -> Tuple[List[int], List[float]]:
        """Internal ``(successors, costs)`` lists for ``node``.

        Shared, **read-only** views — the kernel hot loops use these to
        walk (child, cost) pairs without per-edge dict lookups.
        """
        return self._succ[node], self._succ_costs[node]

    def pred_pairs(self, node: int) -> Tuple[List[int], List[float]]:
        """Internal ``(predecessors, costs)`` lists for ``node``."""
        return self._pred[node], self._pred_costs[node]

    @property
    def node_levels(self) -> np.ndarray:
        """Precedence level per node (longest hop-count from an entry).

        Level-batching is what lets the attribute sweeps in
        :mod:`repro.core.kernel` vectorise: nodes within one level are
        mutually independent.
        """
        return self.cached("_levels", _compute_levels)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def _compute_topo(self) -> Tuple[int, ...]:
        if self._topo is not None:
            return self._topo
        n = self.num_nodes
        indeg = [len(self._pred[i]) for i in range(n)]
        # Kahn's algorithm with a FIFO over ascending ids: deterministic.
        queue = deque(i for i in range(n) if indeg[i] == 0)
        order: List[int] = []
        while queue:
            u = queue.popleft()
            order.append(u)
            for v in self._succ[u]:
                indeg[v] -= 1
                if indeg[v] == 0:
                    queue.append(v)
        if len(order) != n:
            raise CycleError("task graph contains a directed cycle")
        self._topo = tuple(order)
        return self._topo

    @property
    def topological_order(self) -> Tuple[int, ...]:
        """A deterministic topological ordering of the nodes."""
        return self._compute_topo()

    @property
    def entry_nodes(self) -> Tuple[int, ...]:
        """Nodes without parents."""
        if self._entries is None:
            self._entries = tuple(
                i for i in range(self.num_nodes) if not self._pred[i]
            )
        return self._entries

    @property
    def exit_nodes(self) -> Tuple[int, ...]:
        """Nodes without children."""
        if self._exits is None:
            self._exits = tuple(
                i for i in range(self.num_nodes) if not self._succ[i]
            )
        return self._exits

    # ------------------------------------------------------------------
    # aggregate properties
    # ------------------------------------------------------------------
    @property
    def total_computation(self) -> float:
        """Sum of all computation costs (serial execution time)."""
        return float(self._weights.sum())

    @property
    def total_communication(self) -> float:
        """Sum of all communication costs."""
        return float(sum(self._edge_cost.values()))

    @property
    def ccr(self) -> float:
        """Communication-to-computation ratio.

        Defined (Section 2 of the paper) as average communication cost
        divided by average computation cost; 0 for edge-less graphs.
        """
        if not self._edge_cost:
            return 0.0
        avg_c = self.total_communication / self.num_edges
        avg_w = self.total_computation / self.num_nodes
        return avg_c / avg_w

    def width(self) -> int:
        """Largest antichain size approximated by maximum level population.

        The paper defines *width* as the largest number of mutually
        non-precedence-related nodes.  Computing the true maximum antichain
        is a matching problem; the standard proxy used when *generating*
        the RGNOS suite is the largest number of nodes sharing the same
        precedence level, which we report here.
        """
        return int(np.bincount(self.node_levels).max())

    def depth(self) -> int:
        """Number of precedence levels (longest chain, in hops + 1)."""
        return int(self.node_levels.max()) + 1 if self.num_nodes else 0

    # ------------------------------------------------------------------
    # interop / dunder
    # ------------------------------------------------------------------
    @classmethod
    def from_networkx(cls, g: Any, weight_attr: str = "weight",
                      comm_attr: str = "weight", name: str | None = None
                      ) -> "TaskGraph":
        """Build a :class:`TaskGraph` from a ``networkx.DiGraph``.

        Node labels may be arbitrary hashables; they are relabelled to
        ``0..n-1`` in sorted-by-string order (deterministic).
        """
        nodes = sorted(g.nodes, key=str)
        index = {u: i for i, u in enumerate(nodes)}
        weights = [float(g.nodes[u].get(weight_attr, 1.0)) for u in nodes]
        edges = {
            (index[u], index[v]): float(data.get(comm_attr, 0.0))
            for u, v, data in g.edges(data=True)
        }
        return cls(weights, edges, name=name or getattr(g, "name", "") or "from_networkx")

    def to_networkx(self) -> Any:
        """Export to a ``networkx.DiGraph`` with weight attributes."""
        import networkx as nx

        g = nx.DiGraph(name=self.name)
        for i in self.nodes():
            g.add_node(i, weight=self.weight(i))
        for u, v, c in self.edges():
            g.add_edge(u, v, weight=c)
        return g

    def relabeled(self, name: str) -> "TaskGraph":
        """Shallow copy with a different ``name``."""
        return TaskGraph(self._weights, self._edge_cost, name=name)

    def __len__(self) -> int:
        return self.num_nodes

    def __getstate__(self) -> Dict[str, Any]:
        # The cache holds derived numpy arrays/plans that are cheap to
        # rebuild and may not pickle stably; ship only the definition.
        return {
            "weights": self._weights,
            "edges": self._edge_cost,
            "name": self.name,
        }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__init__(state["weights"], state["edges"], name=state["name"])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TaskGraph(name={self.name!r}, v={self.num_nodes}, "
            f"e={self.num_edges}, ccr={self.ccr:.3g})"
        )


def _build_csr(adj: List[List[int]], costs: List[List[float]]
               ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Compress per-node adjacency/cost lists into read-only CSR arrays."""
    n = len(adj)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum([len(a) for a in adj], out=indptr[1:])
    indices = np.fromiter(
        (v for a in adj for v in a), dtype=np.int64, count=int(indptr[-1]))
    cost = np.fromiter(
        (c for cl in costs for c in cl), dtype=np.float64,
        count=int(indptr[-1]))
    for arr in (indptr, indices, cost):
        arr.setflags(write=False)
    return indptr, indices, cost


def _compute_levels(graph: "TaskGraph") -> np.ndarray:
    level = np.zeros(graph.num_nodes, dtype=np.int64)
    for u in graph.topological_order:
        lu = level[u] + 1
        for v in graph._succ[u]:
            if lu > level[v]:
                level[v] = lu
    level.setflags(write=False)
    return level

"""Schedules: task placements on processor timelines, plus validation.

A :class:`Schedule` maps every scheduled task to a processor and a start
time and maintains, per processor, a time-sorted list of busy intervals.
It supports the two processor-selection disciplines the paper contrasts:

* **non-insertion** — a task may only be appended after the last task
  already on the processor (HLFET, ETF);
* **insertion** — a task may also be placed into an idle slot between two
  already-scheduled tasks if it fits (ISH, MCP, DLS, DCP, ...).

For APN schedules, inter-processor messages are recorded as
:class:`Message` objects carrying their route and per-hop link
reservations; :func:`validate` then checks the full contention model.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    overload,
)

from ..check import sanitize as _sanitize
from .exceptions import ScheduleError
from .graph import TaskGraph
from .kernel import ArrivalProfile, arrival_profile as _arrival_profile

__all__ = ["Placement", "Message", "Schedule", "Violation", "validate",
           "render_violations"]

_EPS = 1e-9


@dataclass(frozen=True)
class Placement:
    """A task's assignment: processor, start and finish times."""

    node: int
    proc: int
    start: float
    finish: float


@dataclass
class Message:
    """A scheduled inter-processor message for edge ``(src, dst)``.

    ``hops`` lists ``(link, start, finish)`` reservations along the route,
    in order; ``arrival`` is when the data is available at the receiving
    processor.  For clique machines messages are implicit and never
    recorded.
    """

    src: int
    dst: int
    route: Tuple[int, ...]
    hops: List[Tuple[Tuple[int, int], float, float]] = field(default_factory=list)
    arrival: float = 0.0


class Schedule:
    """A (possibly partial) schedule of a task graph.

    Parameters
    ----------
    graph:
        The task graph being scheduled.
    num_procs:
        Number of processor timelines to maintain.
    speeds:
        Optional per-processor speed factors (the heterogeneous machine
        model): a task of weight ``w`` runs for ``w / speeds[p]`` on
        processor ``p``.  ``None`` (or all ones) is the paper's
        homogeneous model, where durations equal weights.
    """

    def __init__(self, graph: TaskGraph, num_procs: int,
                 speeds: Optional[Sequence[float]] = None):
        if num_procs < 1:
            raise ScheduleError("schedule needs at least one processor")
        from .machine import normalized_speeds

        self.graph = graph
        self.num_procs = int(num_procs)
        self.speeds = normalized_speeds(speeds, self.num_procs,
                                        error=ScheduleError)
        self._placements: Dict[int, Placement] = {}
        # Per processor: parallel sorted lists of start times, finish
        # times, and node ids.  bisect keeps slot search O(log k).
        self._starts: List[List[float]] = [[] for _ in range(num_procs)]
        self._finishes: List[List[float]] = [[] for _ in range(num_procs)]
        self._nodes: List[List[int]] = [[] for _ in range(num_procs)]
        # Flat per-node mirrors of the placements (processor -1 when the
        # node is unscheduled) — the kernel's data-ready loops index
        # these instead of chasing Placement objects.
        n = graph.num_nodes
        self._node_proc: List[int] = [-1] * n
        self._node_start: List[float] = [0.0] * n
        self._node_finish: List[float] = [0.0] * n
        # Sorted ids of non-empty processors, maintained incrementally
        # so the used-processor shortlist never rescans all timelines.
        self._used: List[int] = []
        self.messages: Dict[Tuple[int, int], Message] = {}

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def is_scheduled(self, node: int) -> bool:
        return node in self._placements

    def placement(self, node: int) -> Placement:
        try:
            return self._placements[node]
        except KeyError:
            raise ScheduleError(f"node {node} is not scheduled") from None

    def proc_of(self, node: int) -> int:
        return self.placement(node).proc

    def start_of(self, node: int) -> float:
        return self.placement(node).start

    def finish_of(self, node: int) -> float:
        return self.placement(node).finish

    def tasks_on(self, proc: int) -> List[Placement]:
        """Placements on ``proc`` in start-time order."""
        return [self._placements[n] for n in self._nodes[proc]]

    def proc_ready_time(self, proc: int) -> float:
        """Finish time of the last task on ``proc`` (0 when idle)."""
        fins = self._finishes[proc]
        return fins[-1] if fins else 0.0

    def duration_of(self, node: int, proc: int) -> float:
        """Execution time of ``node`` on ``proc`` under the speed model."""
        w = self.graph.weight(node)
        if self.speeds is None:
            return w
        return w / self.speeds[proc]

    @property
    def num_scheduled(self) -> int:
        return len(self._placements)

    def is_complete(self) -> bool:
        return len(self._placements) == self.graph.num_nodes

    @property
    def length(self) -> float:
        """Schedule length (makespan) over all processors."""
        return max(
            (f[-1] for f in self._finishes if f),
            default=0.0,
        )

    def processors_used(self) -> int:
        """Number of processors with at least one task."""
        return len(self._used)

    def used_proc_ids(self) -> List[int]:
        """Ascending ids of non-empty processors (a fresh list)."""
        return list(self._used)

    # ------------------------------------------------------------------
    # slot search
    # ------------------------------------------------------------------
    def earliest_slot(self, proc: int, est: float, duration: float,
                      insertion: bool = True) -> float:
        """Earliest start ``>= est`` for a task of ``duration`` on ``proc``.

        With ``insertion=False`` the answer is simply
        ``max(est, proc_ready_time)``.  With insertion the idle gaps
        between consecutive tasks are also searched, matching the
        insertion-based algorithms in the paper.
        """
        if duration < 0:
            raise ScheduleError("negative task duration")
        starts, fins = self._starts[proc], self._finishes[proc]
        if not insertion or not starts:
            return max(est, fins[-1] if fins else 0.0)
        # Gap before the first task.
        if est + duration <= starts[0] + _EPS:
            return est
        # Gaps between consecutive tasks.  Only gaps ending after est can
        # host the task, so start scanning at the first task whose finish
        # exceeds est.
        i = bisect.bisect_right(fins, est)
        if i > 0:
            i -= 1
        for k in range(i, len(starts) - 1):
            gap_start = max(est, fins[k])
            if gap_start + duration <= starts[k + 1] + _EPS:
                return gap_start
        return max(est, fins[-1])

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def place(self, node: int, proc: int, start: float,
              duration: Optional[float] = None) -> Placement:
        """Place ``node`` on ``proc`` at ``start``; rejects overlaps.

        ``duration`` overrides the model duration (weight / speed) — the
        replay contract used by the discrete-event simulator
        (:mod:`repro.sim`), whose *executed* durations carry stochastic
        noise.  Schedulers never pass it; :func:`validate` flags any
        mismatch between placed durations and the machine model unless
        told the schedule is a simulated timeline.
        """
        if node in self._placements:
            raise ScheduleError(f"node {node} already scheduled")
        if not (0 <= proc < self.num_procs):
            raise ScheduleError(f"processor {proc} out of range")
        if start < -_EPS:
            raise ScheduleError(f"negative start time {start} for node {node}")
        if duration is not None and duration < 0:
            raise ScheduleError(f"negative duration for node {node}")
        dur = self.duration_of(node, proc) if duration is None else duration
        finish = start + dur
        starts, fins, nodes = (
            self._starts[proc],
            self._finishes[proc],
            self._nodes[proc],
        )
        i = bisect.bisect_left(starts, start)
        if i > 0 and fins[i - 1] > start + _EPS:
            raise ScheduleError(
                f"node {node} overlaps node {nodes[i - 1]} on P{proc}"
            )
        if i < len(starts) and starts[i] < finish - _EPS:
            raise ScheduleError(
                f"node {node} overlaps node {nodes[i]} on P{proc}"
            )
        if not starts:
            bisect.insort(self._used, proc)
        starts.insert(i, start)
        fins.insert(i, finish)
        nodes.insert(i, node)
        pl = Placement(node, proc, start, finish)
        self._placements[node] = pl
        self._node_proc[node] = proc
        self._node_start[node] = start
        self._node_finish[node] = finish
        if _sanitize.enabled():
            self._sanitize_placement(node, proc, i)
        return pl

    def _sanitize_placement(self, node: int, proc: int, i: int) -> None:
        """Sanitizer hook: the timeline stays sorted, mirrors stay true.

        A violation here means placement memory was corrupted *between*
        calls (the insertion itself is overlap-checked above) — e.g. a
        scheduler mutated ``_starts``/``_node_finish`` directly.
        """
        starts, fins = self._starts[proc], self._finishes[proc]
        for k in (i - 1, i):
            if 0 <= k < len(starts) - 1:
                _sanitize.require(
                    starts[k] <= starts[k + 1] + _EPS
                    and fins[k] <= starts[k + 1] + _EPS,
                    f"P{proc} timeline out of order near node {node}")
        pl = self._placements[node]
        _sanitize.require(
            self._node_proc[node] == pl.proc
            and self._node_start[node] == pl.start  # repro: noqa-RPR005 mirror identity: the same stored float, not a computed time
            and self._node_finish[node] == pl.finish,  # repro: noqa-RPR005 mirror identity: the same stored float, not a computed time
            f"flat mirrors disagree with placement of node {node}")
        _sanitize.require(proc in self._used,
                          f"P{proc} missing from the used-processor list")

    def unplace(self, node: int) -> Placement:
        """Remove ``node`` from the schedule (used by migrating schedulers)."""
        pl = self.placement(node)
        idx = self._nodes[pl.proc].index(node)
        del self._starts[pl.proc][idx]
        del self._finishes[pl.proc][idx]
        del self._nodes[pl.proc][idx]
        del self._placements[node]
        if not self._starts[pl.proc]:
            self._used.remove(pl.proc)
        self._node_proc[node] = -1
        self._node_start[node] = 0.0
        self._node_finish[node] = 0.0
        return pl

    def record_message(self, msg: Message) -> None:
        self.messages[(msg.src, msg.dst)] = msg

    # ------------------------------------------------------------------
    # data-ready helpers (clique model)
    # ------------------------------------------------------------------
    def data_ready_time(self, node: int, proc: int) -> float:
        """Earliest time all of ``node``'s inputs are available on ``proc``.

        Uses the clique communication model: a parent on another
        processor contributes ``finish(parent) + c(parent, node)``, a
        co-located parent just ``finish(parent)``.  All parents must be
        scheduled.
        """
        t = 0.0
        parents, costs = self.graph.pred_pairs(node)
        procs, fins = self._node_proc, self._node_finish
        for p, c in zip(parents, costs):
            if procs[p] < 0:
                raise ScheduleError(f"node {p} is not scheduled")
            arr = fins[p]
            if procs[p] != proc:
                arr += c
            if arr > t:
                t = arr
        return t

    def arrival_profile(self, node: int) -> "ArrivalProfile":
        """O(1)-per-processor view of ``node``'s data-ready times.

        See :class:`repro.core.kernel.ArrivalProfile`; building it costs
        one pass over the parents, after which ``profile.drt(p)`` equals
        :meth:`data_ready_time` for every ``p``.
        """
        return _arrival_profile(self, node)

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[int, Tuple[int, float, float]]:
        """``{node: (proc, start, finish)}`` snapshot (for tests/reports)."""
        return {
            n: (pl.proc, pl.start, pl.finish)
            for n, pl in self._placements.items()
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Schedule(graph={self.graph.name!r}, scheduled="
            f"{self.num_scheduled}/{self.graph.num_nodes}, "
            f"length={self.length:.4g}, procs={self.processors_used()})"
        )


@dataclass(frozen=True)
class Violation:
    """One schedule-invariant violation, with its node/proc context.

    ``code`` is a stable short identifier (``overlap``, ``precedence``,
    ``duration``, ...); ``node``/``proc`` are filled when the violation
    is attributable to a specific task or timeline.
    """

    code: str
    message: str
    node: Optional[int] = None
    proc: Optional[int] = None


def render_violations(violations: Sequence[Violation]) -> str:
    """Render violations as an aligned text table (CODE/NODE/PROC/DETAIL)."""
    if not violations:
        return "schedule valid: 0 violations"
    rows = [("CODE", "NODE", "PROC", "DETAIL")]
    for v in violations:
        rows.append((
            v.code,
            "-" if v.node is None else str(v.node),
            "-" if v.proc is None else f"P{v.proc}",
            v.message,
        ))
    widths = [max(len(row[i]) for row in rows) for i in range(3)]
    lines = [
        f"{row[0]:<{widths[0]}}  {row[1]:>{widths[1]}}  "
        f"{row[2]:>{widths[2]}}  {row[3]}"
        for row in rows
    ]
    lines.append(f"{len(violations)} violation"
                 f"{'s' if len(violations) != 1 else ''}")
    return "\n".join(lines)


@overload
def validate(schedule: Schedule, *, network: Any = ...,
             check_durations: bool = ...) -> None: ...


@overload
def validate(schedule: Schedule, *, network: Any = ...,
             check_durations: bool = ...,
             collect: bool) -> Optional[List[Violation]]: ...


def validate(schedule: Schedule, *, network: Any = None,
             check_durations: bool = True,
             collect: bool = False) -> Optional[List[Violation]]:
    """Check a complete schedule against the model's invariants.

    By default raises :class:`ScheduleError` on the first violation;
    with ``collect=True`` it instead returns *all* violations as
    :class:`Violation` objects (empty list when valid), each carrying
    the offending node/processor — :func:`render_violations` formats
    them as a table.  Checks:

    1. every task is scheduled exactly once, within processor range;
    2. no two tasks overlap on a processor;
    3. every precedence edge is honoured: a child starts no earlier than
       the parent's finish plus the communication delay —
       * clique model: ``c(u, v)`` when processors differ;
       * network model (``network`` given): the recorded message's
         arrival, which itself must traverse a valid route with
         contention-free-per-channel, duration-correct hop reservations.

    ``check_durations=False`` relaxes check 2's duration half for
    simulated timelines (:mod:`repro.sim`), whose executed durations are
    perturbed away from the weights; overlap-freedom and precedence are
    still enforced.
    """
    violations = _iter_violations(schedule, network=network,
                                  check_durations=check_durations)
    if collect:
        return list(violations)
    for violation in violations:
        raise ScheduleError(violation.message)
    return None


def _iter_violations(schedule: Schedule, *, network: Any,
                     check_durations: bool) -> Iterator[Violation]:
    """Yield every invariant violation, in deterministic check order.

    The first yielded violation is exactly the one the raising mode of
    :func:`validate` has always reported.  An incomplete schedule
    short-circuits: the remaining checks assume full placements.
    """
    g = schedule.graph
    if not schedule.is_complete():
        missing = [n for n in g.nodes() if not schedule.is_scheduled(n)]
        yield Violation(
            "incomplete",
            f"schedule incomplete; missing nodes {missing[:8]}")
        return

    # Overlap and duration checks per processor.
    for proc in range(schedule.num_procs):
        prev_finish = 0.0
        prev_node: Optional[int] = None
        for pl in schedule.tasks_on(proc):
            if pl.start < -_EPS:
                yield Violation(
                    "negative-start",
                    f"node {pl.node} starts before time 0",
                    node=pl.node, proc=proc)
            if check_durations and abs(
                    (pl.finish - pl.start)
                    - schedule.duration_of(pl.node, proc)) > 1e-6:
                yield Violation(
                    "duration",
                    f"node {pl.node} duration does not match its weight "
                    "under the processor's speed",
                    node=pl.node, proc=proc)
            if pl.start < prev_finish - _EPS:
                yield Violation(
                    "overlap",
                    f"nodes {prev_node} and {pl.node} overlap on P{proc}",
                    node=pl.node, proc=proc)
            prev_finish, prev_node = pl.finish, pl.node

    # Precedence + communication checks.
    for u, v, c in g.edges():
        pu, pv = schedule.placement(u), schedule.placement(v)
        if pu.proc == pv.proc:
            ready = pu.finish
        elif network is None or c <= 0:
            # Zero-cost messages are instantaneous and occupy no channel
            # even under the contention model.
            ready = pu.finish + c
        else:
            msg = schedule.messages.get((u, v))
            if msg is None:
                yield Violation(
                    "missing-message",
                    f"edge ({u}, {v}) crosses processors but has no message",
                    node=v, proc=pv.proc)
                continue
            yield from _iter_message_violations(msg, pu, pv, c, network)
            ready = msg.arrival
        if pv.start < ready - 1e-6:
            yield Violation(
                "precedence",
                f"node {v} starts at {pv.start} before its input from {u} "
                f"is ready at {ready}",
                node=v, proc=pv.proc)

    if network is not None:
        yield from _iter_channel_violations(schedule)


def _iter_message_violations(msg: Message, pu: Placement, pv: Placement,
                             cost: float, network: Any
                             ) -> Iterator[Violation]:
    """Yield violations of one message's route and hop reservations."""
    hop_time = network.transfer_time(cost)
    route = msg.route
    if route[0] != pu.proc or route[-1] != pv.proc:
        yield Violation(
            "route-endpoints",
            f"message ({msg.src}, {msg.dst}) route endpoints do not match "
            "the task placements",
            node=msg.dst, proc=pv.proc)
    for a, b in zip(route, route[1:]):
        if not network.has_link(a, b):
            yield Violation(
                "missing-link",
                f"message ({msg.src}, {msg.dst}) uses missing link "
                f"({a}, {b})",
                node=msg.dst)
    if len(msg.hops) != len(route) - 1:
        yield Violation(
            "hop-count",
            f"message ({msg.src}, {msg.dst}) has {len(msg.hops)} hop "
            f"reservations for a {len(route) - 1}-hop route",
            node=msg.dst)
        return  # hop-by-hop checks assume one reservation per hop
    prev_free = pu.finish
    for (link, start, finish) in msg.hops:
        if start < prev_free - 1e-6:
            yield Violation(
                "hop-start",
                f"message ({msg.src}, {msg.dst}) hop on {link} starts "
                "before the data reaches the sending node",
                node=msg.dst)
        if abs((finish - start) - hop_time) > 1e-6:
            yield Violation(
                "hop-duration",
                f"message ({msg.src}, {msg.dst}) hop on {link} does not "
                "occupy the link for the edge cost over the link bandwidth",
                node=msg.dst)
        prev_free = finish
    if abs(msg.arrival - prev_free) > 1e-6:
        yield Violation(
            "arrival",
            f"message ({msg.src}, {msg.dst}) arrival differs from its "
            "last hop finish",
            node=msg.dst)


def _iter_channel_violations(schedule: Schedule) -> Iterator[Violation]:
    """Yield overlaps of messages sharing a directed channel."""
    by_channel: Dict[Tuple[int, int],
                     List[Tuple[float, float, Tuple[int, int]]]] = {}
    for key, msg in schedule.messages.items():
        for (link, start, finish) in msg.hops:
            by_channel.setdefault(link, []).append((start, finish, key))
    for link, ivs in sorted(by_channel.items()):
        ivs.sort()
        for (s1, f1, k1), (s2, f2, k2) in zip(ivs, ivs[1:]):
            if s2 < f1 - 1e-6:
                yield Violation(
                    "channel-overlap",
                    f"messages {k1} and {k2} overlap on channel {link}")

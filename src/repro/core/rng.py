"""Seeded random-number plumbing shared by generators and the simulator.

Two reproducibility contracts live here:

* :func:`as_generator` — every API that draws random numbers accepts
  ``int | numpy.random.Generator | None`` and canonicalises it through
  this helper, so callers can either pass a seed (independent stream)
  or thread one shared generator through several calls (jointly
  reproducible sequences).  No module in the package keeps global RNG
  state.
* :func:`derive_rng` — a *stable* per-key stream: hashing the string
  keys (graph name, algorithm, trial index, ...) into a
  ``numpy.random.SeedSequence`` spawn.  Deriving is order-independent,
  so a Monte-Carlo grid draws identical noise for a cell whether the
  cell runs first, last, serially or in a worker process — the property
  that makes simulated rows cacheable like any other grid cell.
"""

from __future__ import annotations

import hashlib
from typing import Union

import numpy as np

__all__ = ["SeedLike", "as_generator", "seed_label", "derive_rng"]

SeedLike = Union[int, np.random.Generator, None]


def as_generator(seed: SeedLike) -> np.random.Generator:
    """Canonicalise ``int | Generator | None`` to a ``Generator``.

    An existing generator is returned as-is (shared stream); an int (or
    ``None``) seeds a fresh ``numpy.random.default_rng``.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def seed_label(seed: SeedLike) -> str:
    """Short form of a seed for graph names.

    Ints label as themselves.  A live generator labels as
    ``rng-<digest>`` of its current bit-generator state: successive
    draws from one shared stream get *distinct* labels (the state
    advances), while replaying the same stream reproduces the same
    labels — so generated graphs never collide in name-keyed layers
    (result stores, rankings, noise streams) yet stay reproducible.
    """
    if isinstance(seed, np.random.Generator):
        digest = hashlib.sha256(
            repr(seed.bit_generator.state).encode()).hexdigest()[:8]
        return f"rng-{digest}"
    return str(0 if seed is None else int(seed))


def derive_rng(seed: int, *keys: object) -> np.random.Generator:
    """A generator keyed by ``(seed, *keys)``, stable across runs.

    The keys are hashed (sha256, platform-independent — unlike
    ``hash()``) into entropy words mixed with ``seed``, so every
    distinct key tuple gets an independent, reproducible stream.
    """
    digest = hashlib.sha256(
        "\x1f".join(str(k) for k in keys).encode()
    ).digest()
    words = [int.from_bytes(digest[i:i + 4], "big") for i in (0, 4, 8, 12)]
    return np.random.default_rng(np.random.SeedSequence([int(seed)] + words))

"""Node attributes used to assign scheduling priorities.

Section 3 of the paper defines the attributes most DAG scheduling
heuristics are built from:

* **t-level** (top level) of ``n``: length of the longest path from an
  entry node to ``n``, *excluding* ``w(n)``; path length sums node and
  edge weights.  Correlates with the earliest possible start time.
* **b-level** (bottom level) of ``n``: length of the longest path from
  ``n`` to an exit node, *including* ``w(n)``.
* **static level** (SL): b-level computed without edge weights
  (computation costs only).  Used by HLFET, DLS and MH.
* **ALAP** (as-late-as-possible start time): ``CP - blevel(n)`` where
  ``CP`` is the critical-path length.  Used by MCP and MD.
* **critical path** (CP): a path from an entry to an exit node whose
  length (nodes + edges) is maximal.

All functions return plain lists indexed by node and run in
``O(v + e)`` over a cached topological order.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from .graph import TaskGraph

__all__ = [
    "tlevel",
    "blevel",
    "static_blevel",
    "static_tlevel",
    "alap",
    "critical_path",
    "cp_length",
    "cp_computation_cost",
    "priority_blevel_plus_tlevel",
]


def tlevel(graph: TaskGraph, zeroed: Optional[Set[Tuple[int, int]]] = None
           ) -> List[float]:
    """Top levels of all nodes.

    ``zeroed`` optionally names edges whose communication cost should be
    treated as zero (the two endpoints are clustered on one processor);
    this is what makes the t-level a *dynamic* attribute during
    clustering.
    """
    t = [0.0] * graph.num_nodes
    for u in graph.topological_order:
        best = 0.0
        for p in graph.predecessors(u):
            c = graph.comm_cost(p, u)
            if zeroed and (p, u) in zeroed:
                c = 0.0
            cand = t[p] + graph.weight(p) + c
            if cand > best:
                best = cand
        t[u] = best
    return t


def blevel(graph: TaskGraph, zeroed: Optional[Set[Tuple[int, int]]] = None
           ) -> List[float]:
    """Bottom levels of all nodes (edge weights included)."""
    b = [0.0] * graph.num_nodes
    for u in reversed(graph.topological_order):
        best = 0.0
        for s in graph.successors(u):
            c = graph.comm_cost(u, s)
            if zeroed and (u, s) in zeroed:
                c = 0.0
            cand = b[s] + c
            if cand > best:
                best = cand
        b[u] = best + graph.weight(u)
    return b


def static_blevel(graph: TaskGraph) -> List[float]:
    """Static levels: longest computation-only path from node to an exit.

    This is the classic *SL* attribute of HLFET and DLS — edge weights are
    ignored entirely, so the value never changes during scheduling.
    """
    b = [0.0] * graph.num_nodes
    for u in reversed(graph.topological_order):
        best = 0.0
        for s in graph.successors(u):
            if b[s] > best:
                best = b[s]
        b[u] = best + graph.weight(u)
    return b


def static_tlevel(graph: TaskGraph) -> List[float]:
    """Computation-only top levels (no edge weights)."""
    t = [0.0] * graph.num_nodes
    for u in graph.topological_order:
        best = 0.0
        for p in graph.predecessors(u):
            cand = t[p] + graph.weight(p)
            if cand > best:
                best = cand
        t[u] = best
    return t


def cp_length(graph: TaskGraph) -> float:
    """Critical-path length including node and edge weights."""
    return max(blevel(graph))


def alap(graph: TaskGraph) -> List[float]:
    """As-late-as-possible start times: ``CP - blevel``.

    Smaller ALAP means less scheduling slack; MCP schedules in ascending
    ALAP order.
    """
    b = blevel(graph)
    cp = max(b)
    return [cp - bi for bi in b]


def critical_path(graph: TaskGraph) -> List[int]:
    """One critical path as an entry→exit node list.

    Ties are broken toward the smallest node id so the result is
    deterministic.
    """
    b = blevel(graph)
    t = tlevel(graph)
    cp = max(b)
    # Entry node on the CP: tlevel == 0 and blevel == CP.
    start = min(
        (n for n in graph.nodes() if t[n] == 0.0 and abs(b[n] - cp) < 1e-9),
        default=None,
    )
    if start is None:  # numerical fallback: take the max-blevel entry node
        start = max(graph.entry_nodes, key=lambda n: (b[n], -n))
    path = [start]
    cur = start
    while graph.successors(cur):
        nxt = None
        for s in graph.successors(cur):
            need = b[cur] - graph.weight(cur) - graph.comm_cost(cur, s)
            if abs(b[s] - need) < 1e-9:
                nxt = s
                break
        if nxt is None:
            # Round-off: fall back to the successor maximising b + c.
            nxt = max(
                graph.successors(cur),
                key=lambda s: (b[s] + graph.comm_cost(cur, s), -s),
            )
        path.append(nxt)
        cur = nxt
    return path


def cp_computation_cost(graph: TaskGraph) -> float:
    """Sum of computation costs along a maximum-computation path.

    This is the denominator of the paper's *normalized schedule length*
    (Section 6): the NSL of a schedule of length ``L`` is
    ``L / sum(w(n) for n on CP)``.  Following the lower-bound reading of
    the definition, we take the path that maximises the *computation*
    sum — on a clean system the schedule can never finish faster than
    executing those nodes back to back.
    """
    best = [0.0] * graph.num_nodes
    for u in reversed(graph.topological_order):
        child = max((best[s] for s in graph.successors(u)), default=0.0)
        best[u] = child + graph.weight(u)
    return max(best)


def priority_blevel_plus_tlevel(graph: TaskGraph) -> List[float]:
    """DSC's dominant-sequence priority: ``blevel + tlevel`` per node."""
    b = blevel(graph)
    t = tlevel(graph)
    return [bi + ti for bi, ti in zip(b, t)]

"""Node attributes used to assign scheduling priorities.

Section 3 of the paper defines the attributes most DAG scheduling
heuristics are built from:

* **t-level** (top level) of ``n``: length of the longest path from an
  entry node to ``n``, *excluding* ``w(n)``; path length sums node and
  edge weights.  Correlates with the earliest possible start time.
* **b-level** (bottom level) of ``n``: length of the longest path from
  ``n`` to an exit node, *including* ``w(n)``.
* **static level** (SL): b-level computed without edge weights
  (computation costs only).  Used by HLFET, DLS and MH.
* **ALAP** (as-late-as-possible start time): ``CP - blevel(n)`` where
  ``CP`` is the critical-path length.  Used by MCP and MD.
* **critical path** (CP): a path from an entry to an exit node whose
  length (nodes + edges) is maximal.

All functions return plain lists indexed by node.  The graph is
immutable, so the static variants (no ``zeroed`` set) are computed once
per graph by the level-batched sweeps in :mod:`repro.core.kernel` and
cached on the graph; repeated calls return a fresh list copy of the
cached values in O(v).  The ``zeroed`` variants — dynamic attributes
during clustering — bypass the cache.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from . import kernel
from .graph import TaskGraph

__all__ = [
    "tlevel",
    "blevel",
    "static_blevel",
    "static_tlevel",
    "alap",
    "critical_path",
    "cp_length",
    "cp_computation_cost",
    "priority_blevel_plus_tlevel",
]


def tlevel(graph: TaskGraph, zeroed: Optional[Set[Tuple[int, int]]] = None
           ) -> List[float]:
    """Top levels of all nodes.

    ``zeroed`` optionally names edges whose communication cost should be
    treated as zero (the two endpoints are clustered on one processor);
    this is what makes the t-level a *dynamic* attribute during
    clustering.
    """
    if zeroed:
        return kernel.tlevel_zeroed(graph, zeroed)
    return graph.cached("tlevel", kernel.tlevel_sweep).tolist()


def blevel(graph: TaskGraph, zeroed: Optional[Set[Tuple[int, int]]] = None
           ) -> List[float]:
    """Bottom levels of all nodes (edge weights included)."""
    if zeroed:
        return kernel.blevel_zeroed(graph, zeroed)
    return graph.cached("blevel", kernel.blevel_sweep).tolist()


def static_blevel(graph: TaskGraph) -> List[float]:
    """Static levels: longest computation-only path from node to an exit.

    This is the classic *SL* attribute of HLFET and DLS — edge weights are
    ignored entirely, so the value never changes during scheduling.
    """
    return graph.cached("static_blevel", kernel.static_blevel_sweep).tolist()


def static_tlevel(graph: TaskGraph) -> List[float]:
    """Computation-only top levels (no edge weights)."""
    return graph.cached("static_tlevel", kernel.static_tlevel_sweep).tolist()


def cp_length(graph: TaskGraph) -> float:
    """Critical-path length including node and edge weights."""
    return float(graph.cached("blevel", kernel.blevel_sweep).max())


def alap(graph: TaskGraph) -> List[float]:
    """As-late-as-possible start times: ``CP - blevel``.

    Smaller ALAP means less scheduling slack; MCP schedules in ascending
    ALAP order.
    """
    b = graph.cached("blevel", kernel.blevel_sweep)
    cp = b.max()
    return [float(cp - bi) for bi in b]


def critical_path(graph: TaskGraph) -> List[int]:
    """One critical path as an entry→exit node list.

    Ties are broken toward the smallest node id so the result is
    deterministic.
    """
    return list(graph.cached("critical_path", _critical_path))


def _critical_path(graph: TaskGraph) -> Tuple[int, ...]:
    b = blevel(graph)
    t = tlevel(graph)
    cp = max(b)
    # Entry node on the CP: tlevel == 0 and blevel == CP.  t-levels are
    # non-negative and exactly 0.0 only for entry nodes, but compare via
    # epsilon so the intent survives any future kernel reordering.
    start = min(
        (n for n in graph.nodes() if t[n] < 1e-9 and abs(b[n] - cp) < 1e-9),
        default=None,
    )
    if start is None:  # numerical fallback: take the max-blevel entry node
        start = max(graph.entry_nodes, key=lambda n: (b[n], -n))
    path = [start]
    cur = start
    while graph.successors(cur):
        nxt = None
        for s in graph.successors(cur):
            need = b[cur] - graph.weight(cur) - graph.comm_cost(cur, s)
            if abs(b[s] - need) < 1e-9:
                nxt = s
                break
        if nxt is None:
            # Round-off: fall back to the successor maximising b + c.
            nxt = max(
                graph.successors(cur),
                key=lambda s: (b[s] + graph.comm_cost(cur, s), -s),
            )
        path.append(nxt)
        cur = nxt
    return tuple(path)


def cp_computation_cost(graph: TaskGraph) -> float:
    """Sum of computation costs along a maximum-computation path.

    This is the denominator of the paper's *normalized schedule length*
    (Section 6): the NSL of a schedule of length ``L`` is
    ``L / sum(w(n) for n on CP)``.  Following the lower-bound reading of
    the definition, we take the path that maximises the *computation*
    sum — on a clean system the schedule can never finish faster than
    executing those nodes back to back.  Equals the maximum static
    b-level (same recurrence), so it shares that cache entry.
    """
    return float(
        graph.cached("static_blevel", kernel.static_blevel_sweep).max())


def priority_blevel_plus_tlevel(graph: TaskGraph) -> List[float]:
    """DSC's dominant-sequence priority: ``blevel + tlevel`` per node."""
    b = graph.cached("blevel", kernel.blevel_sweep)
    t = graph.cached("tlevel", kernel.tlevel_sweep)
    return [float(bi + ti) for bi, ti in zip(b, t)]

"""Error types raised by the :mod:`repro` library.

A small, flat hierarchy: every library error derives from
:class:`ReproError` so callers can catch one type at an API boundary while
tests can assert on the precise subclass.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = [
    "ReproError",
    "GraphError",
    "CycleError",
    "ScheduleError",
    "MachineError",
    "RoutingError",
    "GeneratorError",
    "SolverBudgetExceeded",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class GraphError(ReproError):
    """Malformed task graph (bad node ids, negative weights, ...)."""


class CycleError(GraphError):
    """The supplied edge set contains a directed cycle."""


class ScheduleError(ReproError):
    """A schedule operation or validation failed."""


class MachineError(ReproError):
    """Invalid machine description (e.g. zero processors)."""


class RoutingError(ReproError):
    """No route exists between two processors of a topology."""


class GeneratorError(ReproError):
    """A benchmark-graph generator was given inconsistent parameters."""


class SolverBudgetExceeded(ReproError):
    """The optimal solver exhausted its node budget before proving optimality.

    The exception carries the best schedule found so far (``best``) and the
    strongest lower bound proven (``lower_bound``) so callers can still use
    the partial result.
    """

    def __init__(self, message: str, best: Optional[Any] = None,
                 lower_bound: float = 0.0):
        super().__init__(message)
        self.best = best
        self.lower_bound = lower_bound

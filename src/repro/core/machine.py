"""Target machine models.

The paper evaluates three algorithm classes against two machine
abstractions:

* **BNP / UNC** — a clique of identical processors with contention-free
  links: communication between two processors always takes exactly the
  edge cost, regardless of traffic (:class:`Machine`).  BNP algorithms
  receive a *bounded* processor count; UNC algorithms conceptually have
  an unbounded supply (one processor per task is always sufficient).
* **APN** — an arbitrary processor network whose links are *not*
  contention-free; messages must be scheduled onto links hop by hop
  (:class:`NetworkMachine`, built on :mod:`repro.network`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .exceptions import MachineError

if TYPE_CHECKING:  # pragma: no cover
    from ..network.topology import Topology

__all__ = ["Machine", "NetworkMachine"]


class Machine:
    """A fully connected set of identical processors.

    Parameters
    ----------
    num_procs:
        Number of processors available to the scheduler (``p``).
    """

    contention_aware = False

    def __init__(self, num_procs: int):
        if num_procs < 1:
            raise MachineError("a machine needs at least one processor")
        self.num_procs = int(num_procs)

    @classmethod
    def unbounded(cls, graph_or_size) -> "Machine":
        """Machine for UNC algorithms: one processor per task.

        ``v`` processors are always enough — no schedule can keep more
        than ``v`` processors busy.
        """
        size = getattr(graph_or_size, "num_nodes", graph_or_size)
        return cls(int(size))

    def comm_delay(self, src: int, dst: int, cost: float) -> float:
        """Message delay between processors in the clique model."""
        return 0.0 if src == dst else cost

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Machine(num_procs={self.num_procs})"


class NetworkMachine(Machine):
    """A machine whose processors are joined by an explicit topology.

    APN schedulers additionally schedule each inter-processor message on
    the links of ``topology`` (see :mod:`repro.network.contention`); this
    class carries the topology plus its routing tables.
    """

    contention_aware = True

    def __init__(self, topology: "Topology"):
        super().__init__(topology.num_procs)
        self.topology = topology

    def comm_delay(self, src: int, dst: int, cost: float) -> float:
        """Contention-free lower bound: per-hop store-and-forward delay."""
        if src == dst:
            return 0.0
        return cost * self.topology.hop_count(src, dst)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NetworkMachine({self.topology!r})"

"""Target machine models.

The paper evaluates three algorithm classes against two machine
abstractions:

* **BNP / UNC** — a clique of identical processors with contention-free
  links: communication between two processors always takes exactly the
  edge cost, regardless of traffic (:class:`Machine`).  BNP algorithms
  receive a *bounded* processor count; UNC algorithms conceptually have
  an unbounded supply (one processor per task is always sufficient).
* **APN** — an arbitrary processor network whose links are *not*
  contention-free; messages must be scheduled onto links hop by hop
  (:class:`NetworkMachine`, built on :mod:`repro.network`).

Beyond the paper's homogeneous machines, :class:`Machine` optionally
carries per-processor *speed factors* (the uniform/related-machines
model): a task of weight ``w`` executes for ``w / speed[p]`` on
processor ``p``.  The paper grid never sets speeds; the scenario engine
(:mod:`repro.scenarios`) uses them for heterogeneous sweeps.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional, Sequence, Tuple

from .exceptions import MachineError

if TYPE_CHECKING:  # pragma: no cover
    from ..network.topology import Topology

__all__ = ["Machine", "NetworkMachine", "normalized_speeds"]


def normalized_speeds(speeds: Optional[Sequence[float]], num_procs: int,
                      error: type = MachineError
                      ) -> Optional[Tuple[float, ...]]:
    """Canonical per-processor speed factors, or ``None`` when uniform.

    Shared by :class:`Machine` and :class:`~repro.core.schedule.Schedule`
    so the two can never disagree on what counts as heterogeneous:
    length must match ``num_procs``, every factor must be positive, and
    an all-ones profile normalises to ``None`` (the homogeneous model).
    ``error`` is the exception class to raise on violations.
    """
    if speeds is None:
        return None
    speeds = tuple(float(s) for s in speeds)
    if len(speeds) != num_procs:
        raise error(
            f"{len(speeds)} speed factors for {num_procs} processors")
    if any(s <= 0 for s in speeds):
        raise error("processor speeds must be positive")
    if all(s == 1.0 for s in speeds):  # repro: noqa-RPR005 exact-uniform config check, speeds are user input not computed times
        return None
    return speeds


class Machine:
    """A fully connected set of identical processors.

    Parameters
    ----------
    num_procs:
        Number of processors available to the scheduler (``p``).
    speeds:
        Optional per-processor speed factors (length ``num_procs``, all
        positive).  ``None`` — and an all-ones sequence, which is
        normalised to ``None`` — means the paper's homogeneous machine.
    """

    contention_aware = False

    def __init__(self, num_procs: int,
                 speeds: Optional[Sequence[float]] = None):
        if num_procs < 1:
            raise MachineError("a machine needs at least one processor")
        self.num_procs = int(num_procs)
        self.speeds = normalized_speeds(speeds, self.num_procs)

    @classmethod
    def unbounded(cls, graph_or_size: Any) -> "Machine":
        """Machine for UNC algorithms: one processor per task.

        ``v`` processors are always enough — no schedule can keep more
        than ``v`` processors busy.
        """
        size = getattr(graph_or_size, "num_nodes", graph_or_size)
        return cls(int(size))

    @property
    def is_heterogeneous(self) -> bool:
        return self.speeds is not None

    def exec_time(self, weight: float, proc: int) -> float:
        """Execution time of a task of ``weight`` on processor ``proc``."""
        if self.speeds is None:
            return weight
        return weight / self.speeds[proc]

    def comm_delay(self, src: int, dst: int, cost: float) -> float:
        """Message delay between processors in the clique model."""
        return 0.0 if src == dst else cost

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.speeds is not None:
            return (f"Machine(num_procs={self.num_procs}, "
                    f"speeds={list(self.speeds)})")
        return f"Machine(num_procs={self.num_procs})"


class NetworkMachine(Machine):
    """A machine whose processors are joined by an explicit topology.

    APN schedulers additionally schedule each inter-processor message on
    the links of ``topology`` (see :mod:`repro.network.contention`); this
    class carries the topology plus its routing tables.
    """

    contention_aware = True

    def __init__(self, topology: "Topology"):
        super().__init__(topology.num_procs)
        self.topology = topology

    def comm_delay(self, src: int, dst: int, cost: float) -> float:
        """Contention-free lower bound: per-hop store-and-forward delay.

        Each hop transfers the message in ``cost / bandwidth`` time (the
        topology's links all share one bandwidth factor; 1.0 reproduces
        the paper's model).
        """
        if src == dst:
            return 0.0
        return (self.topology.transfer_time(cost)
                * self.topology.hop_count(src, dst))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NetworkMachine({self.topology!r})"

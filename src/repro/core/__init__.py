"""Core model: task graphs, node attributes, machines and schedules."""

from .attributes import (
    alap,
    blevel,
    cp_computation_cost,
    cp_length,
    critical_path,
    priority_blevel_plus_tlevel,
    static_blevel,
    static_tlevel,
    tlevel,
)
from .exceptions import (
    CycleError,
    GeneratorError,
    GraphError,
    MachineError,
    ReproError,
    RoutingError,
    ScheduleError,
    SolverBudgetExceeded,
)
from .graph import TaskGraph
from .machine import Machine, NetworkMachine
from .schedule import Message, Placement, Schedule, validate

__all__ = [
    "TaskGraph",
    "Machine",
    "NetworkMachine",
    "Schedule",
    "Placement",
    "Message",
    "validate",
    "tlevel",
    "blevel",
    "static_blevel",
    "static_tlevel",
    "alap",
    "critical_path",
    "cp_length",
    "cp_computation_cost",
    "priority_blevel_plus_tlevel",
    "ReproError",
    "GraphError",
    "CycleError",
    "ScheduleError",
    "MachineError",
    "RoutingError",
    "GeneratorError",
    "SolverBudgetExceeded",
]

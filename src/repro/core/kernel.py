"""Flat-array scheduling kernel: the shared inner loops, de-objectified.

Profiling the 1200-node scalability ladder shows every scheduler's cost
concentrated in three places:

1. **graph attribute sweeps** (t-level/b-level family) — longest-path
   recurrences over the DAG, previously dict-lookup-per-edge;
2. **data-ready times** — recomputed from scratch for *every* candidate
   processor, turning an O(deg) quantity into O(deg * procs) per
   decision (15M+ edge visits for one 1200-node HLFET run);
3. **best-ready selection** — a linear ``max`` over the ready set per
   step.

This module provides the flat-array replacements: level-batched numpy
sweeps over the graph's CSR adjacency, an O(deg)-build/O(1)-query
:class:`ArrivalProfile` for per-processor data-ready times, and a
lazy-deletion binary heap for ready-node selection.  Everything here is
*exactly* semantics-preserving — the same floats out for the same floats
in — which ``tests/test_differential.py`` enforces schedule-for-schedule
against the golden corpus.
"""

from __future__ import annotations

import heapq
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from ..check import sanitize as _sanitize
from ..obs import metrics as _metrics
from .exceptions import ScheduleError
from .graph import TaskGraph

if TYPE_CHECKING:  # pragma: no cover
    from .schedule import Schedule

_Plan = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]

__all__ = [
    "tlevel_sweep",
    "blevel_sweep",
    "static_blevel_sweep",
    "static_tlevel_sweep",
    "tlevel_zeroed",
    "blevel_zeroed",
    "ArrivalProfile",
    "arrival_profile",
    "grouped_arrival_profile",
    "LazyPriorityQueue",
]


# ----------------------------------------------------------------------
# level-batched attribute sweeps
# ----------------------------------------------------------------------
# The t-level/b-level family are longest-path recurrences: inherently
# sequential along the precedence order, but *within* one precedence
# level every node is independent.  Grouping edges by the level of their
# sequential endpoint lets each level be one vectorised
# ``np.maximum.at`` scatter instead of a Python loop over edges.
#
# Exactness: every candidate value is ``t[src] + w[src] + cost``
# evaluated left-to-right in float64, identical to the scalar loop, and
# ``max`` over the same set of floats is order-independent — so these
# sweeps are bit-for-bit equal to the reference implementation.


def _forward_plan(graph: TaskGraph) -> _Plan:
    """Succ-side edges sorted by the source's precedence level."""
    lv = graph.node_levels
    indptr, indices, costs = graph.succ_csr()
    n = graph.num_nodes
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    order = np.argsort(lv[src], kind="stable")
    src, dst, cost = src[order], indices[order], costs[order]
    bounds = np.searchsorted(lv[src], np.arange(int(lv.max()) + 2 if n else 1))
    _sanitize.freeze_arrays(src, dst, cost, bounds)
    return src, dst, cost, bounds


def _backward_plan(graph: TaskGraph) -> _Plan:
    """Pred-side edges sorted by the destination's precedence level."""
    lv = graph.node_levels
    indptr, indices, costs = graph.pred_csr()
    n = graph.num_nodes
    dst = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    order = np.argsort(lv[dst], kind="stable")
    dst, src, cost = dst[order], indices[order], costs[order]
    bounds = np.searchsorted(lv[dst], np.arange(int(lv.max()) + 2 if n else 1))
    _sanitize.freeze_arrays(src, dst, cost, bounds)
    return src, dst, cost, bounds


def tlevel_sweep(graph: TaskGraph) -> np.ndarray:
    """Top levels (paths sum node + edge weights, excluding ``w(n)``)."""
    _metrics.incr("kernel.sweeps")
    src, dst, cost, bounds = graph.cached("_fwd_plan", _forward_plan)
    lv = graph.node_levels
    w = graph.weights
    t = np.zeros(graph.num_nodes)
    for level in range(int(lv.max()) + 1 if graph.num_nodes else 0):
        lo, hi = bounds[level], bounds[level + 1]
        if lo == hi:
            continue
        s, d = src[lo:hi], dst[lo:hi]
        np.maximum.at(t, d, t[s] + w[s] + cost[lo:hi])
    return t


def blevel_sweep(graph: TaskGraph) -> np.ndarray:
    """Bottom levels (edge weights included)."""
    _metrics.incr("kernel.sweeps")
    src, dst, cost, bounds = graph.cached("_bwd_plan", _backward_plan)
    lv = graph.node_levels
    b = graph.weights.copy()
    for level in range(int(lv.max()) if graph.num_nodes else 0, -1, -1):
        lo, hi = bounds[level], bounds[level + 1]
        if lo == hi:
            continue
        s, d = src[lo:hi], dst[lo:hi]
        # b[d] is final: every successor sits at a strictly higher level.
        np.maximum.at(b, s, b[d] + cost[lo:hi] + graph.weights[s])
    return b


def static_blevel_sweep(graph: TaskGraph) -> np.ndarray:
    """Computation-only bottom levels (the classic *SL* attribute)."""
    _metrics.incr("kernel.sweeps")
    src, dst, _cost, bounds = graph.cached("_bwd_plan", _backward_plan)
    lv = graph.node_levels
    b = graph.weights.copy()
    for level in range(int(lv.max()) if graph.num_nodes else 0, -1, -1):
        lo, hi = bounds[level], bounds[level + 1]
        if lo == hi:
            continue
        s, d = src[lo:hi], dst[lo:hi]
        np.maximum.at(b, s, b[d] + graph.weights[s])
    return b


def static_tlevel_sweep(graph: TaskGraph) -> np.ndarray:
    """Computation-only top levels."""
    _metrics.incr("kernel.sweeps")
    src, dst, _cost, bounds = graph.cached("_fwd_plan", _forward_plan)
    lv = graph.node_levels
    w = graph.weights
    t = np.zeros(graph.num_nodes)
    for level in range(int(lv.max()) + 1 if graph.num_nodes else 0):
        lo, hi = bounds[level], bounds[level + 1]
        if lo == hi:
            continue
        s, d = src[lo:hi], dst[lo:hi]
        np.maximum.at(t, d, t[s] + w[s])
    return t


# ----------------------------------------------------------------------
# zeroed-edge scalar sweeps (dynamic attributes during clustering)
# ----------------------------------------------------------------------
def tlevel_zeroed(graph: TaskGraph, zeroed: Set[Tuple[int, int]]) -> List[float]:
    """Scalar t-level sweep honouring a set of zero-cost edges."""
    t = [0.0] * graph.num_nodes
    w = graph.weights
    for u in graph.topological_order:
        best = 0.0
        preds, costs = graph.pred_pairs(u)
        for p, c in zip(preds, costs):
            if (p, u) in zeroed:
                c = 0.0
            cand = t[p] + w[p] + c
            if cand > best:
                best = cand
        t[u] = best
    return t


def blevel_zeroed(graph: TaskGraph, zeroed: Set[Tuple[int, int]]) -> List[float]:
    """Scalar b-level sweep honouring a set of zero-cost edges."""
    b = [0.0] * graph.num_nodes
    w = graph.weights
    for u in reversed(graph.topological_order):
        best = 0.0
        succs, costs = graph.succ_pairs(u)
        for s, c in zip(succs, costs):
            if (u, s) in zeroed:
                c = 0.0
            cand = b[s] + c
            if cand > best:
                best = cand
        b[u] = best + w[u]
    return b


# ----------------------------------------------------------------------
# per-processor data-ready times in O(1)
# ----------------------------------------------------------------------
class ArrivalProfile:
    """Answers ``max over parents of (local if grouped-with else remote)``.

    For a node with parents ``p`` each carrying a *group* (its processor
    or cluster), a local availability ``f(p)`` and a remote availability
    ``f(p) + c(p, n)``, the data-ready time on group ``g`` is::

        max( max_{group(p) == g} f(p),  max_{group(p) != g} f(p)+c )

    Tracking the best and second-best remote values *from distinct
    groups* plus a per-group local maximum makes the query O(1): the
    second-best steps in exactly when the best remote parent shares the
    queried group.  This is the classic trick that turns the
    O(deg * procs) EST scans of list scheduling into O(deg + procs).
    """

    __slots__ = ("r1", "g1", "r2", "local")

    def __init__(self, r1: float, g1: int, r2: float,
                 local: Dict[int, float]):
        self.r1 = r1
        self.g1 = g1
        self.r2 = r2
        self.local = local

    def drt(self, group: int) -> float:
        """Data-ready time of the node on ``group``."""
        remote = self.r1 if group != self.g1 else self.r2
        loc = self.local.get(group)
        if loc is not None and loc > remote:
            return loc
        return remote


def _build_profile(parents: Sequence[int], costs: Sequence[float],
                   group_of: Sequence[int],
                   finish_of: Sequence[float]) -> ArrivalProfile:
    r1 = r2 = 0.0
    g1 = -1
    local: Dict[int, float] = {}
    for p, c in zip(parents, costs):
        g = group_of[p]
        if g < 0:
            # Only Schedule mirrors use -1 (unscheduled); clustering
            # groups are always non-negative, so this is precisely the
            # data_ready_time contract violation.
            raise ScheduleError(f"node {p} is not scheduled")
        f = finish_of[p]
        prev = local.get(g)
        if prev is None or f > prev:
            local[g] = f
        rv = f + c
        if rv > r1:
            if g == g1:
                r1 = rv
            else:
                r2 = r1
                r1 = rv
                g1 = g
        elif rv > r2 and g != g1:
            r2 = rv
    return ArrivalProfile(r1, g1, r2, local)


def arrival_profile(schedule: "Schedule", node: int) -> ArrivalProfile:
    """Profile of ``node``'s data-ready times over processors.

    Requires every parent to be scheduled (same contract as
    ``Schedule.data_ready_time``).  The kernel is the one sanctioned
    consumer of the schedule's private flat mirrors.
    """
    parents, costs = schedule.graph.pred_pairs(node)
    _metrics.incr("kernel.profiles")
    profile = _build_profile(parents, costs, schedule._node_proc,
                             schedule._node_finish)
    if _sanitize.enabled():
        # Cross-check the O(1) profile against the scalar oracle on
        # every processor a parent occupies (plus one empty one): any
        # disagreement means the profile trick or the flat mirrors
        # drifted from the data-ready definition.
        groups = {schedule._node_proc[p] for p in parents}
        groups.add(-1 if not groups else max(groups) + 1)
        for g in groups:
            got = profile.drt(g)
            want = schedule.data_ready_time(node, g)
            _sanitize.require(
                abs(got - want) <= 1e-9,
                f"arrival profile for node {node} answers {got!r} on "
                f"group {g} but the data-ready oracle says {want!r}")
    return profile


def grouped_arrival_profile(graph: TaskGraph, node: int, group_of: Sequence[int],
                            finish_of: Sequence[float]) -> ArrivalProfile:
    """Profile under an arbitrary grouping (clustering algorithms)."""
    parents, costs = graph.pred_pairs(node)
    _metrics.incr("kernel.profiles")
    return _build_profile(parents, costs, group_of, finish_of)


# ----------------------------------------------------------------------
# heap-based best-ready selection
# ----------------------------------------------------------------------
class LazyPriorityQueue:
    """Binary min-heap with lazy invalidation for ready-node selection.

    ``key`` maps a node to its current sort key (smallest pops first —
    negate for "highest priority first").  Entries are never removed in
    place; :meth:`pop_best` discards entries that are no longer valid: a
    node that stopped satisfying ``alive`` (it was scheduled) or whose
    stored key no longer matches its current key (its priority moved —
    push it again whenever that happens, as LAST does when its D_NODE
    fractions grow).

    Provided every key change is accompanied by a fresh :meth:`push`,
    :meth:`pop_best` returns exactly ``min(ready, key=key)`` — the heap
    top is either current or strictly staler than some other entry for
    the same node.
    """

    __slots__ = ("_key", "_alive", "_heap")

    def __init__(self, key: Callable[[int], Tuple],
                 alive: Callable[[int], bool],
                 initial: Optional[Sequence[int]] = None):
        self._key = key
        self._alive = alive
        self._heap: List[Tuple[Tuple, int]] = (
            [(key(n), n) for n in initial] if initial else []
        )
        heapq.heapify(self._heap)

    def push(self, node: int) -> None:
        heapq.heappush(self._heap, (self._key(node), node))

    def pop_best(self) -> int:
        heap = self._heap
        while heap:
            key, node = heapq.heappop(heap)
            if self._alive(node) and key == self._key(node):
                _metrics.incr("sched.heap_pops")
                return node
        raise IndexError("pop from an empty ready queue")

"""Shared list-scheduling machinery.

All six BNP algorithms (and much of the APN class) are variations on one
loop: keep a ready list, pick the highest-priority ready node, pick a
processor, place, release children.  This module holds the pieces the
variants share so each algorithm module only encodes its distinguishing
decision (Section 3 of the paper: priority attribute, static vs dynamic
list, insertion vs non-insertion, greedy vs non-greedy processor choice).
"""

from __future__ import annotations

from typing import List, Tuple

from .graph import TaskGraph
from .schedule import Schedule

__all__ = [
    "ReadyTracker",
    "candidate_procs",
    "est_on_proc",
    "best_proc_min_est",
    "best_proc_min_eft",
]


class ReadyTracker:
    """Tracks which unscheduled nodes have all parents scheduled.

    The ready set starts with the entry nodes; :meth:`mark_scheduled`
    releases children whose last parent was just placed.  Iteration order
    is unspecified — ordering is the calling algorithm's job.
    """

    def __init__(self, graph: TaskGraph):
        self.graph = graph
        self._unscheduled_parents = [graph.in_degree(n) for n in graph.nodes()]
        self._ready = {n for n in graph.entry_nodes}
        self._scheduled = [False] * graph.num_nodes

    @property
    def ready(self) -> set:
        return self._ready

    def is_ready(self, node: int) -> bool:
        return node in self._ready

    def mark_scheduled(self, node: int) -> List[int]:
        """Remove ``node`` from the ready set; return newly-ready children."""
        self._ready.discard(node)
        self._scheduled[node] = True
        released: List[int] = []
        for child in self.graph.successors(node):
            self._unscheduled_parents[child] -= 1
            if self._unscheduled_parents[child] == 0:
                self._ready.add(child)
                released.append(child)
        return released

    def all_scheduled(self) -> bool:
        return all(self._scheduled)


def candidate_procs(schedule: Schedule) -> List[int]:
    """Processors worth examining in the clique model.

    Identical empty processors are interchangeable — a node's EST is the
    same on every one of them — so it suffices to examine the used
    processors plus the first empty one.  This keeps the paper's
    "virtually unlimited number of processors" BNP runs (Section 6.4.2)
    at ``O(used)`` instead of ``O(p)`` per decision without changing any
    scheduling outcome.

    Under the heterogeneous speed model empty processors are *not*
    interchangeable, so the shortlist instead adds the first idle
    processor of each distinct speed.
    """
    procs = schedule.used_proc_ids()
    if len(procs) < schedule.num_procs:
        used = set(procs)
        if schedule.speeds is None:
            for p in range(schedule.num_procs):
                if p not in used:
                    procs.append(p)
                    break
        else:
            seen_speeds = set()
            for p in range(schedule.num_procs):
                if p in used:
                    continue
                speed = schedule.speeds[p]
                if speed not in seen_speeds:
                    seen_speeds.add(speed)
                    procs.append(p)
        procs.sort()  # preserve exact lowest-id tie-breaking
    return procs


def est_on_proc(schedule: Schedule, node: int, proc: int,
                insertion: bool) -> float:
    """Earliest start of ``node`` on ``proc`` in the clique model."""
    drt = schedule.data_ready_time(node, proc)
    return schedule.earliest_slot(proc, drt,
                                  schedule.duration_of(node, proc),
                                  insertion=insertion)


def best_proc_min_est(schedule: Schedule, node: int,
                      insertion: bool) -> Tuple[int, float]:
    """Greedy processor choice: minimise the start time of ``node``.

    Ties break toward the lowest processor id (deterministic, and keeps
    the processors-used count honest for Figure 3).

    On a heterogeneous schedule the start alone is a bad criterion — a
    slow processor can offer the earliest start but the latest finish —
    so the choice generalises to minimum *finish* time (the standard
    related-machines generalisation of list scheduling, cf. HEFT).  On
    the paper's homogeneous machines the duration is the same on every
    processor, so both disciplines pick the same processor and this is
    exactly min-EST.
    """
    if schedule.speeds is not None:
        p, _finish = best_proc_min_eft(schedule, node, insertion)
        return p, est_on_proc(schedule, node, p, insertion)
    best_p, best_t = 0, float("inf")
    for p in candidate_procs(schedule):
        t = est_on_proc(schedule, node, p, insertion)
        if t < best_t - 1e-12:
            best_p, best_t = p, t
    return best_p, best_t


def best_proc_min_eft(schedule: Schedule, node: int,
                      insertion: bool) -> Tuple[int, float]:
    """Processor minimising the *finish* time.

    Equivalent to :func:`best_proc_min_est` on uniform processors; under
    heterogeneous speeds a slower processor may offer the earlier start
    but the later finish, so the finish is minimised explicitly.
    """
    best_p, best_f = 0, float("inf")
    for p in candidate_procs(schedule):
        t = est_on_proc(schedule, node, p, insertion)
        f = t + schedule.duration_of(node, p)
        if f < best_f - 1e-12:
            best_p, best_f = p, f
    return best_p, best_f

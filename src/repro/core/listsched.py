"""Shared list-scheduling machinery.

All six BNP algorithms (and much of the APN class) are variations on one
loop: keep a ready list, pick the highest-priority ready node, pick a
processor, place, release children.  This module holds the pieces the
variants share so each algorithm module only encodes its distinguishing
decision (Section 3 of the paper: priority attribute, static vs dynamic
list, insertion vs non-insertion, greedy vs non-greedy processor choice).

The hot paths are built on the flat-array kernel
(:mod:`repro.core.kernel`): ready membership is an array of flags plus
an append-only order list, best-ready selection is a lazy-deletion heap,
and processor choice queries one :class:`~repro.core.kernel.ArrivalProfile`
per node instead of rescanning the parents for every candidate
processor.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Tuple

from .graph import TaskGraph
from .kernel import LazyPriorityQueue
from .schedule import Schedule

__all__ = [
    "ReadyTracker",
    "candidate_procs",
    "est_on_proc",
    "best_proc_min_est",
    "best_proc_min_eft",
]


class ReadyTracker:
    """Tracks which unscheduled nodes have all parents scheduled.

    The ready set starts with the entry nodes; :meth:`mark_scheduled`
    releases children whose last parent was just placed.  Iteration order
    is unspecified — ordering is the calling algorithm's job.

    Membership is an array of flags (``bytearray``) plus an append-only
    order list: a node becomes ready exactly once, so the list never
    holds more than ``v`` entries and :meth:`iter_ready` just skips the
    flags that have been cleared since.
    """

    __slots__ = ("graph", "_unscheduled_parents", "_in_ready",
                 "_ready_order", "_scheduled", "_num_left")

    def __init__(self, graph: TaskGraph):
        self.graph = graph
        n = graph.num_nodes
        self._unscheduled_parents = [graph.in_degree(v) for v in
                                     graph.nodes()]
        self._in_ready = bytearray(n)
        self._ready_order: List[int] = list(graph.entry_nodes)
        for node in self._ready_order:
            self._in_ready[node] = 1
        self._scheduled = bytearray(n)
        self._num_left = n

    @property
    def ready(self) -> frozenset:
        """Frozen view of the current ready set.

        A *view*: callers may iterate and compare but cannot mutate the
        tracker through it — historical bugs where an algorithm
        "helpfully" discarded nodes from the live set are now type
        errors.
        """
        return frozenset(self.iter_ready())

    def iter_ready(self) -> Iterator[int]:
        """Iterate the ready nodes (in becoming-ready order)."""
        flags = self._in_ready
        return (node for node in self._ready_order if flags[node])

    def is_ready(self, node: int) -> bool:
        return bool(self._in_ready[node])

    def mark_scheduled(self, node: int) -> List[int]:
        """Remove ``node`` from the ready set; return newly-ready children."""
        if self._in_ready[node]:
            self._in_ready[node] = 0
        if not self._scheduled[node]:
            self._scheduled[node] = 1
            self._num_left -= 1
        released: List[int] = []
        remaining = self._unscheduled_parents
        for child in self.graph.successors(node):
            remaining[child] -= 1
            if remaining[child] == 0:
                self._in_ready[child] = 1
                self._ready_order.append(child)
                released.append(child)
        return released

    def all_scheduled(self) -> bool:
        return self._num_left == 0

    def priority_queue(self, key: Callable[[int], Tuple]
                       ) -> LazyPriorityQueue:
        """A lazy heap over this tracker's ready set.

        ``key`` orders ascending (smallest pops first).  The queue seeds
        itself from the current ready set; push newly-released children
        (and any node whose key changed) as scheduling progresses.
        """
        return LazyPriorityQueue(key, self.is_ready,
                                 initial=list(self.iter_ready()))


def candidate_procs(schedule: Schedule) -> List[int]:
    """Processors worth examining in the clique model.

    Identical empty processors are interchangeable — a node's EST is the
    same on every one of them — so it suffices to examine the used
    processors plus the first empty one.  This keeps the paper's
    "virtually unlimited number of processors" BNP runs (Section 6.4.2)
    at ``O(used)`` instead of ``O(p)`` per decision without changing any
    scheduling outcome.

    Under the heterogeneous speed model empty processors are *not*
    interchangeable, so the shortlist instead adds the first idle
    processor of each distinct speed.
    """
    procs = schedule.used_proc_ids()
    if len(procs) < schedule.num_procs:
        if schedule.speeds is None:
            # ``procs`` is ascending, so the first empty processor is
            # the first index where the used ids pull ahead.
            first_empty = len(procs)
            for i, p in enumerate(procs):
                if p != i:
                    first_empty = i
                    break
            procs.append(first_empty)
        else:
            used = set(procs)
            seen_speeds = set()
            for p in range(schedule.num_procs):
                if p in used:
                    continue
                speed = schedule.speeds[p]
                if speed not in seen_speeds:
                    seen_speeds.add(speed)
                    procs.append(p)
        procs.sort()  # preserve exact lowest-id tie-breaking
    return procs


def est_on_proc(schedule: Schedule, node: int, proc: int,
                insertion: bool) -> float:
    """Earliest start of ``node`` on ``proc`` in the clique model."""
    drt = schedule.data_ready_time(node, proc)
    return schedule.earliest_slot(proc, drt,
                                  schedule.duration_of(node, proc),
                                  insertion=insertion)


def best_proc_min_est(schedule: Schedule, node: int,
                      insertion: bool) -> Tuple[int, float]:
    """Greedy processor choice: minimise the start time of ``node``.

    Ties break toward the lowest processor id (deterministic, and keeps
    the processors-used count honest for Figure 3).

    On a heterogeneous schedule the start alone is a bad criterion — a
    slow processor can offer the earliest start but the latest finish —
    so the choice generalises to minimum *finish* time (the standard
    related-machines generalisation of list scheduling, cf. HEFT).  On
    the paper's homogeneous machines the duration is the same on every
    processor, so both disciplines pick the same processor and this is
    exactly min-EST.
    """
    if schedule.speeds is not None:
        p, _finish = best_proc_min_eft(schedule, node, insertion)
        return p, est_on_proc(schedule, node, p, insertion)
    profile = schedule.arrival_profile(node)
    duration = schedule.duration_of(node, 0)  # homogeneous: proc-independent
    best_p, best_t = 0, float("inf")
    for p in candidate_procs(schedule):
        t = schedule.earliest_slot(p, profile.drt(p), duration,
                                   insertion=insertion)
        if t < best_t - 1e-12:
            best_p, best_t = p, t
    return best_p, best_t


def best_proc_min_eft(schedule: Schedule, node: int,
                      insertion: bool) -> Tuple[int, float]:
    """Processor minimising the *finish* time.

    Equivalent to :func:`best_proc_min_est` on uniform processors; under
    heterogeneous speeds a slower processor may offer the earlier start
    but the later finish, so the finish is minimised explicitly.
    """
    profile = schedule.arrival_profile(node)
    best_p, best_f = 0, float("inf")
    for p in candidate_procs(schedule):
        duration = schedule.duration_of(node, p)
        t = schedule.earliest_slot(p, profile.drt(p), duration,
                                   insertion=insertion)
        f = t + duration
        if f < best_f - 1e-12:
            best_p, best_f = p, f
    return best_p, best_f

"""Discrete-event execution simulator for static schedules.

The paper compares schedulers by the makespan their schedules
*predict*; this package executes those schedules — same mapping, same
per-processor orders, recomputed start times — under stochastic
runtime models, and measures how the predictions (and the paper's
rankings) hold up:

* :mod:`repro.sim.engine` — the heap-based event loop replaying one
  schedule (task-finish / message-arrival events);
* :mod:`repro.sim.perturb` — pluggable noise: duration noise
  (uniform/normal/lognormal), per-processor speed jitter,
  message-latency noise, all from a seeded ``numpy.Generator``;
* :mod:`repro.sim.netmodel` — pluggable transport: instant,
  fixed-delay (the clique model), link contention over a topology, or
  the schedule's own recorded message plan;
* :mod:`repro.sim.robustness` — Monte-Carlo makespan distributions,
  degradation vs prediction, schedule slack, robustness rankings;
* :mod:`repro.sim.bench` — ``SimConfig`` + the parallel, persisted,
  resumable sim grid (cells cached by combined bench|sim fingerprint);
* :mod:`repro.sim.online` — the event-driven *online* engine: mutable
  queues, placement directives, information modes (``exact`` / ``mean``
  / ``blind`` / ``user``) and the predictive-reactive
  ``online:<spec>`` schedulers that replan when reality deviates.

>>> from repro import Machine, get_scheduler
>>> from repro.generators.random_graphs import rgnos_graph
>>> from repro.sim import PerturbationModel, monte_carlo
>>> g = rgnos_graph(30, 1.0, 2, seed=7)
>>> s = get_scheduler("MCP").schedule(g, Machine.unbounded(g))
>>> row, samples = monte_carlo(s, PerturbationModel.lognormal(0.3),
...                            trials=20, algorithm="MCP")
>>> row.mean >= 0 and len(samples) == 20
True

CLI: ``python -m repro.bench sim run/compare`` (see README).
"""

from .bench import SimConfig, run_sim_grid, sim_store
from .engine import SimResult, simulate
from .online import (
    IMODES,
    OnlinePolicy,
    OnlineResult,
    OnlineScheduler,
    OnlineSchedulerSpec,
    PlanRescheduler,
    observe,
    parse_online_spec,
    simulate_online,
)
from .netmodel import (
    NETWORK_KINDS,
    ContentionNetwork,
    FixedDelayNetwork,
    InstantNetwork,
    NetworkModel,
    RecordedDelays,
    execute_fixed_order,
    network_from_spec,
    replay_network,
)
from .perturb import (
    DETERMINISTIC,
    Dist,
    PerturbationModel,
    perturbation_from_dict,
)
from .robustness import (
    RobustnessRow,
    monte_carlo,
    robustness_ranking,
    schedule_slack,
)

__all__ = [
    "simulate",
    "SimResult",
    "IMODES",
    "OnlinePolicy",
    "OnlineResult",
    "OnlineScheduler",
    "OnlineSchedulerSpec",
    "PlanRescheduler",
    "observe",
    "parse_online_spec",
    "simulate_online",
    "NETWORK_KINDS",
    "NetworkModel",
    "InstantNetwork",
    "FixedDelayNetwork",
    "ContentionNetwork",
    "RecordedDelays",
    "replay_network",
    "network_from_spec",
    "execute_fixed_order",
    "Dist",
    "PerturbationModel",
    "DETERMINISTIC",
    "perturbation_from_dict",
    "RobustnessRow",
    "monte_carlo",
    "schedule_slack",
    "robustness_ranking",
    "SimConfig",
    "run_sim_grid",
    "sim_store",
]

"""Information modes: what the online scheduler observes.

The simulator always *charges* the true (possibly noise-perturbed)
durations and message latencies; the scheduler *plans* from an observed
view of the graph filtered by the information mode (the estee taxonomy
of Beránek et al.):

``exact``
    Perfect information — the observed graph *is* the input graph
    (the same object, bit-identical weights), so a zero-noise run
    plans exactly what it executes.
``blind``
    No information: every task duration and every comm cost observes
    as the uniform placeholder ``1.0`` — priorities degenerate to the
    graph's structure alone.
``mean``
    Aggregate information: every task observes the mean computation
    cost, every edge the mean communication cost — sizes are known
    "on average" but not per task.
``user``
    User-supplied estimates: true costs perturbed by a mean-1
    lognormal factor per task and per edge, drawn from a seeded
    stream — plausible, individually wrong guesses.
"""

from __future__ import annotations

from ...core.graph import TaskGraph
from ...core.rng import SeedLike, as_generator
from ..perturb import Dist

__all__ = ["IMODES", "observe"]

#: Recognised information modes, in documentation order.
IMODES = ("exact", "blind", "mean", "user")

#: Spread of the synthetic ``user`` estimate error (mean-1 lognormal).
USER_SIGMA = 0.3


def observe(graph: TaskGraph, imode: str, rng: SeedLike = None) -> TaskGraph:
    """The graph as an online scheduler sees it under ``imode``.

    ``exact`` returns ``graph`` itself; every other mode builds a fresh
    :class:`~repro.core.graph.TaskGraph` (same nodes and edges, filtered
    weights) named ``<name>@<imode>``.  ``rng`` seeds the ``user``
    estimate stream and is ignored by the deterministic modes; the draw
    order is fixed (all task factors, then all edge factors in
    :meth:`~repro.core.graph.TaskGraph.edges` order), so an observed
    graph is a pure function of ``(graph, imode, seed)``.
    """
    if imode == "exact":
        return graph
    n = graph.num_nodes
    edges = graph.edges()
    if imode == "blind":
        weights = [1.0] * n
        obs_edges = {(u, v): 1.0 for u, v, _ in edges}
    elif imode == "mean":
        mean_w = graph.total_computation / n if n else 1.0
        mean_c = graph.total_communication / len(edges) if edges else 0.0
        weights = [mean_w] * n
        obs_edges = {(u, v): mean_c for u, v, _ in edges}
    elif imode == "user":
        gen = as_generator(rng)
        dist = Dist("lognormal", USER_SIGMA)
        wf = dist.sample(gen, n)
        cf = dist.sample(gen, len(edges))
        weights = [graph.weight(v) * float(wf[v]) for v in range(n)]
        obs_edges = {(u, v): c * float(cf[i])
                     for i, (u, v, c) in enumerate(edges)}
    else:
        raise ValueError(f"unknown information mode {imode!r}; "
                         f"known: {', '.join(IMODES)}")
    return TaskGraph(weights, obs_edges, name=f"{graph.name}@{imode}")

"""The predictive-reactive policy: plan, watch, replan on deviation.

This is how the paper's six BNP designs (and the whole ``param:``
component space behind them) go online.  At ``t = 0`` the policy runs
the ordinary four-axis component loop
(:func:`~repro.algorithms.components.scheduler.run_component_loop`)
over the *observed* graph and commits the resulting sequences as its
plan.  Every finish and arrival event is then compared against the
plan: while actual times track planned times (within ``_TOL``) the
plan stands; the first deviation triggers a *replan* — the component
loop reruns with every started task pinned at its actual processor and
start (finished tasks at their actual durations, the running ones at
their observed estimates), re-deciding only the unstarted remainder.

Two properties follow directly:

* **static equivalence** — under zero noise and the ``exact`` mode,
  replayed starts and fixed-delay arrivals reproduce the plan's times
  bit-for-bit (the same float operations on the same operands), so no
  replan ever fires and the executed timeline equals the static
  schedule placement for placement;
* **determinism** — every replan input (actual starts, finishes,
  arrivals, pin order) is a pure function of ``(spec, imode, seed,
  noise draw)``, so the placement trace is reproducible across
  processes.

:class:`OnlineScheduler` adapts a spec to the ordinary
:class:`~repro.algorithms.base.Scheduler` interface — its "schedule"
is the zero-noise online execution — so ``online:`` names flow through
benchmarks, scenarios and stores like any other algorithm.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ...algorithms.base import Scheduler
from ...algorithms.components.scheduler import run_component_loop
from ...core.graph import TaskGraph
from ...core.machine import Machine
from ...core.rng import derive_rng
from ...core.schedule import Schedule
from ...obs import trace as _trace
from .engine import Directives, OnlinePolicy, simulate_online
from .imodes import observe
from .spec import OnlineSchedulerSpec

__all__ = ["OnlineScheduler", "PlanRescheduler"]

#: Deviation tolerance: actual event times within this of the plan are
#: "as planned".  Matches the engine-family epsilon so float round-trip
#: noise can never masquerade as a deviation.
_TOL = 1e-9


class PlanRescheduler(OnlinePolicy):
    """Full plan over the observed graph; replan when reality diverges."""

    def __init__(self, spec: OnlineSchedulerSpec, graph: TaskGraph,
                 machine: Machine):
        self.spec = spec
        self.machine = machine
        # The estimate stream is keyed by graph name so one seed gives
        # independent user-mode estimates per graph, mirroring how
        # monte_carlo keys its noise streams.
        self.obs = observe(graph, spec.imode,
                           rng=derive_rng(spec.seed, "imode", graph.name))
        self._parts = spec.components()
        with _trace.span("online.plan", spec=spec.canonical(),
                         graph=graph.name, cause="initial"):
            self.plan: Schedule = run_component_loop(self._parts, self.obs,
                                                     machine)
        self.predicted = self.plan.length
        self.num_replans = 0
        self._started: Dict[int, Tuple[int, float]] = {}
        self._finished: Dict[int, float] = {}

    # ------------------------------------------------------------------
    # protocol
    # ------------------------------------------------------------------
    def begin(self, machine: Machine) -> Directives:
        return self._pending_sequences()

    def task_started(self, node: int, proc: int,
                     now: float) -> Optional[Directives]:
        # Starts deviate only downstream of a deviated finish or
        # arrival, both of which already trigger the replan before any
        # dependent start — record the actual and stand pat.
        self._started[node] = (proc, now)
        return None

    def task_finished(self, node: int, proc: int,
                      now: float) -> Optional[Directives]:
        self._finished[node] = now
        if abs(now - self.plan.finish_of(node)) <= _TOL:
            return None
        return self._replan("task_finished")

    def message_arrived(self, src: int, dst: int, proc: int,
                        now: float) -> Optional[Directives]:
        # The plan's expectation for this edge: the producer's planned
        # finish plus the *observed* cost under the fixed-delay model.
        # Pinned history keeps plan.finish_of(src) at the actual finish,
        # so only the transport itself is being checked here.
        expected = self.plan.finish_of(src) + self.obs.comm_cost(src, dst)
        if abs(now - expected) <= _TOL:
            return None
        return self._replan("message_arrived")

    # ------------------------------------------------------------------
    # replanning
    # ------------------------------------------------------------------
    def _replan(self, cause: str) -> Directives:
        self.num_replans += 1
        pinned = []
        for node, (proc, start) in sorted(self._started.items(),
                                          key=lambda kv: (kv[1][1], kv[0])):
            fin = self._finished.get(node)
            if fin is not None:
                duration = fin - start
            else:
                # Still running: all the policy may know is its own
                # estimate of the duration (the observed weight under
                # the machine's speed model).
                w = self.obs.weight(node)
                duration = (w if self.machine.speeds is None
                            else w / self.machine.speeds[proc])
            pinned.append((node, proc, start, duration))
        with _trace.span("online.plan", spec=self.spec.canonical(),
                         graph=self.obs.name, cause=cause,
                         pinned=len(pinned)):
            self.plan = run_component_loop(self._parts, self.obs,
                                           self.machine, pinned=pinned)
        return self._pending_sequences()

    def _pending_sequences(self) -> Directives:
        started = self._started
        return [[pl.node for pl in self.plan.tasks_on(p)
                 if pl.node not in started]
                for p in range(self.machine.num_procs)]


class OnlineScheduler(Scheduler):
    """Registry adapter: an ``online:`` spec as an ordinary scheduler.

    ``schedule()`` runs the online loop under zero noise and returns
    the executed timeline, which is a complete, valid
    :class:`~repro.core.schedule.Schedule` — so benchmarks, metrics,
    stores and validation treat online schedulers exactly like static
    ones.  Under the ``exact`` mode this equals the static
    ``param:`` run; the other modes measure what partial information
    costs.  Instances are stateless between runs and memoized by
    :func:`repro.get_scheduler` under the spec's canonical name.
    """

    klass = "BNP"

    def __init__(self, spec: OnlineSchedulerSpec):
        self.spec = spec
        parts = spec.components()
        self.name = spec.canonical()
        self.cp_based = parts["prio"].cp_based
        # Replanning re-ranks the remainder after every deviation, so
        # every online scheduler is dynamic regardless of its rule.
        self.dynamic_priority = True
        self.uses_insertion = (parts["insert"].slot
                               or parts["insert"].hole_fill)
        base = "O(p v^2)" if parts["proc"].coupled else "O(v^2)"
        self.complexity = f"{base} per (re)plan"

    def _run(self, graph: TaskGraph, machine: Machine) -> Schedule:
        return simulate_online(graph, machine, self.spec,
                               label=self.name).schedule

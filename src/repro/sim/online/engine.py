"""The event-driven online loop: the simulator asks, the policy places.

Where :func:`repro.sim.engine.simulate` replays a *fixed* mapping, this
loop keeps the per-processor work queues mutable and drives an
:class:`OnlinePolicy` with the same two heap events (task-finish,
message-arrival) plus worker-idle notifications.  The policy replies
with *placement directives*: complete per-processor queues of every
not-yet-started task, which the engine swaps in atomically.  Start
times are never dictated — as in static replay, a task starts the
moment its processor is free, it heads the processor's queue, and all
its inputs have arrived; the policy decides *where* and *in what
order*, the clock decides *when*.

The engine enforces the complete-plan contract: after every directive,
each unstarted task sits in exactly one queue.  This is what lets
communication be charged eagerly — data is pushed at the producer's
finish to wherever the consumer is assigned *at that moment*.  A later
replan may still move the consumer: remote sends stay exact under the
distance-invariant transport models this engine targets (instant /
fixed-delay clique); zero-cost *local* handoffs are re-charged at the
consumer's actual start when it ended up elsewhere (the data is sent
for real, from the producer's finish); and a consumer moving *back*
onto a producer's processor keeps the already-charged remote latency —
a conservative, never-invalid overcharge.

Information asymmetry lives one level up: the policy plans from an
*observed* graph (:mod:`repro.sim.online.imodes`) while this loop
charges the *true* graph's weights under the perturbation model — the
policy only ever learns true times through the events it receives.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Tuple

from ...check import sanitize as _sanitize
from ...core.exceptions import ScheduleError
from ...obs import metrics as _metrics
from ...obs import trace as _trace
from ...core.graph import TaskGraph
from ...core.machine import Machine
from ...core.rng import SeedLike, as_generator
from ...core.schedule import Schedule, render_violations
from ..engine import _ARRIVAL, _FINISH, _resolve_edge, _stall_violations
from ..netmodel import FixedDelayNetwork, NetworkModel
from ..perturb import DETERMINISTIC, PerturbationModel

__all__ = ["OnlinePolicy", "OnlineResult", "simulate_online"]

#: A directive: for every processor, its queue of not-yet-started tasks.
Directives = List[List[int]]


class OnlinePolicy:
    """What the online engine talks to.

    Event methods may return new placement :data:`Directives` (every
    unstarted task, exactly once, in its processor's intended order) or
    ``None`` to keep the current queues.  The engine invokes them with
    *observed* facts only — task identities, processors, and actual
    event times; policies wanting cost estimates must bring their own
    observed view (see :mod:`repro.sim.online.imodes`).
    """

    #: Makespan this policy expected before execution started; the
    #: engine copies it into :attr:`OnlineResult.predicted`.
    predicted: float = 0.0

    def begin(self, machine: Machine) -> Directives:
        """Initial queues before the clock starts; must be complete."""
        raise NotImplementedError

    def task_started(self, node: int, proc: int,
                     now: float) -> Optional[Directives]:
        """``node`` began executing on ``proc`` at ``now``."""
        return None

    def task_finished(self, node: int, proc: int,
                      now: float) -> Optional[Directives]:
        """``node`` completed on ``proc`` at ``now``."""
        return None

    def message_arrived(self, src: int, dst: int, proc: int,
                        now: float) -> Optional[Directives]:
        """The edge ``src -> dst``'s data reached ``proc`` at ``now``."""
        return None

    def worker_idle(self, proc: int, now: float) -> Optional[Directives]:
        """``proc`` has nothing startable at ``now``."""
        return None


@dataclass
class OnlineResult:
    """One online execution.

    ``schedule`` is the executed timeline — a real
    :class:`~repro.core.schedule.Schedule` with per-task duration
    overrides, so gantt rendering, metrics and validation
    (``check_durations=False``) apply unchanged.  ``trace`` records
    placements in start order: the determinism contract is that the
    same ``(spec, imode, seed)`` yields the same trace anywhere.
    """

    schedule: Schedule
    predicted: float
    makespan: float
    num_events: int
    num_replans: int
    trace: List[Tuple[int, int, float]] = field(default_factory=list)
    #: Every accepted replan as ``(time, cause, migrations)``: *cause*
    #: is the triggering event callback (``task_finished`` /
    #: ``message_arrived`` / ``worker_idle`` / ``task_started``) and
    #: *migrations* counts pending tasks the directive moved to a
    #: different processor.
    replan_log: List[Tuple[float, str, int]] = field(default_factory=list)

    @property
    def degradation_pct(self) -> float:
        """Executed makespan over the policy's prediction, as a pct.

        Same contract as :attr:`repro.sim.engine.SimResult
        .degradation_pct`: a non-positive prediction is only valid for
        an empty graph.
        """
        if self.predicted <= 0:
            if self.schedule.graph.num_nodes == 0:
                return 0.0
            raise ScheduleError(
                f"predicted makespan {self.predicted!r} is not positive "
                f"for a {self.schedule.graph.num_nodes}-node graph — "
                "corrupt prediction, degradation undefined")
        return 100.0 * (self.makespan - self.predicted) / self.predicted


def simulate_online(graph: TaskGraph,
                    machine: Machine,
                    policy,
                    perturb: PerturbationModel = DETERMINISTIC,
                    network: Optional[NetworkModel] = None,
                    rng: SeedLike = None,
                    label: Optional[str] = None) -> OnlineResult:
    """Execute ``graph`` on ``machine`` under an online policy.

    ``policy`` may be an :class:`OnlinePolicy` instance, an
    :class:`~repro.sim.online.spec.OnlineSchedulerSpec`, or an
    ``online:`` spec string (the latter two build the predictive-
    reactive :class:`~repro.sim.online.scheduler.PlanRescheduler`).
    ``perturb``/``rng`` drive the *charged* durations and latencies
    exactly as in :func:`repro.sim.engine.simulate`; ``network``
    defaults to the fixed-delay clique model (there is no static
    schedule to replay a message plan from).  ``label`` tags the
    observability layer: with tracing armed, the first execution per
    ``(label, graph)`` records its per-processor timeline plus the
    attributed replan events.
    """
    from .scheduler import PlanRescheduler
    from .spec import OnlineSchedulerSpec, parse_online_spec

    if isinstance(policy, str):
        policy = parse_online_spec(policy)
    if isinstance(policy, OnlineSchedulerSpec):
        policy = PlanRescheduler(policy, graph, machine)

    with _trace.span("online.run", graph=graph.name,
                     label=label or "") as sp:
        result = _execute_online(graph, machine, policy, perturb,
                                 network, rng)
    _metrics.incr("online.events", result.num_events)
    _metrics.incr("online.replans", result.num_replans)
    migrations = sum(moved for _, _, moved in result.replan_log)
    _metrics.incr("online.migrations", migrations)
    if sp is not None:
        sp.args.update(events=result.num_events,
                       replans=result.num_replans,
                       migrations=migrations)
    key = ("online", label or "", graph.name)
    if _trace.wants_timeline(key):  # first execution per key records
        from ...io.gantt import timeline_rows

        _trace.add_timeline(
            key,
            label=f"online: {label or 'policy'} on {graph.name}",
            rows=timeline_rows(result.schedule),
            events=[(-1, when, "replan", {"cause": cause, "moved": moved})
                    for when, cause, moved in result.replan_log])
    return result


def _execute_online(graph: TaskGraph, machine: Machine,
                    policy: OnlinePolicy, perturb: PerturbationModel,
                    network: Optional[NetworkModel],
                    rng: SeedLike) -> OnlineResult:
    """The event loop behind :func:`simulate_online` (policy resolved)."""
    n = graph.num_nodes
    num_procs = machine.num_procs
    noise = perturb.begin_trial(as_generator(rng), n, num_procs)
    net = network if network is not None else FixedDelayNetwork()
    net.reset()

    missing = [graph.in_degree(v) for v in range(n)]
    ready_time = [0.0] * n
    proc_free = [0.0] * num_procs
    running = [False] * num_procs
    assigned = [-1] * n              # pending node -> its queue's proc
    pending: List[Deque[int]] = [deque() for _ in range(num_procs)]
    # Edges delivered as zero-cost local handoffs (consumer co-located
    # with the producer at its finish).  A later replan may still move
    # the consumer, and then the transfer is real after all — try_start
    # re-charges it against the consumer's final processor.
    local_srcs: List[List[int]] = [[] for _ in range(n)]

    executed = Schedule(graph, num_procs, speeds=machine.speeds)
    trace: List[Tuple[int, int, float]] = []
    replan_log: List[Tuple[float, str, int]] = []
    heap: List[tuple] = []  # (time, insertion seq, kind, payload)
    seq_counter = 0
    num_events = 0
    num_replans = 0

    def apply(directives: Optional[Directives]) -> Optional[int]:
        """Swap in a policy's new queues; enforce the complete plan.

        Returns the number of pending tasks the directive *migrated*
        (moved to a different processor than their previous
        assignment), or ``None`` when the policy stood pat.
        """
        if directives is None:
            return None
        if len(directives) != num_procs:
            raise ScheduleError(
                f"online policy returned {len(directives)} queue(s) for "
                f"{num_procs} processor(s)")
        seen = set()
        moved = 0
        new_pending: List[Deque[int]] = []
        for p, nodes in enumerate(directives):
            q: Deque[int] = deque()
            for node in nodes:
                if executed.is_scheduled(node):
                    raise ScheduleError(
                        f"online policy re-queued task {node}, which "
                        "already started")
                if node in seen:
                    raise ScheduleError(
                        f"online policy queued task {node} twice")
                seen.add(node)
                if 0 <= assigned[node] != p:
                    moved += 1
                assigned[node] = p
                q.append(node)
            new_pending.append(q)
        unstarted = n - executed.num_scheduled
        if len(seen) != unstarted:
            left_out = sorted(v for v in range(n)
                              if not executed.is_scheduled(v)
                              and v not in seen)
            raise ScheduleError(
                f"online policy left task(s) {left_out} unqueued — the "
                "engine requires a complete plan after every directive")
        pending[:] = new_pending
        return moved

    def notify(directives: Optional[Directives], now: float,
               cause: str) -> None:
        """Apply an event reply; every accepted directive is a replan.

        A replan can hand startable work to *any* processor — e.g.
        move a blocked head off one queue onto an idle machine — so an
        accepted directive re-tries every processor, not just the one
        the triggering event touched.  ``cause`` names the policy
        callback that produced the directive; it is recorded with the
        migration count in :attr:`OnlineResult.replan_log`.
        """
        nonlocal num_replans
        moved = apply(directives)
        if moved is not None:
            num_replans += 1
            replan_log.append((now, cause, moved))
            for q in range(num_procs):
                try_start(q, now)

    def push(time: float, kind: int, payload) -> None:
        nonlocal seq_counter
        heapq.heappush(heap, (time, seq_counter, kind, payload))
        seq_counter += 1

    def try_start(p: int, now: float) -> None:
        if running[p] or not pending[p]:
            return
        node = pending[p][0]
        if missing[node]:
            return
        # Event-triggered starts always have now == the last blocker
        # clearing, so the clamp only bites on post-replan sweeps: a
        # task whose inputs landed while it was queued elsewhere cannot
        # start before the decision that moved it was made.
        start = max(proc_free[p], ready_time[node], now)
        for src in local_srcs[node]:
            if executed.proc_of(src) != p:
                # The handoff was local when the producer finished, but
                # a replan moved the consumer since — send the data for
                # real, from the producer's finish.
                arrival, msg = net.arrival(
                    src, node, executed.proc_of(src), p,
                    executed.finish_of(src), graph.comm_cost(src, node),
                    noise.comm_factor())
                if msg is not None:
                    executed.record_message(msg)
                if arrival > start:
                    start = arrival
        duration = noise.duration(node, p, executed.duration_of(node, p))
        executed.place(node, p, start, duration=duration)
        trace.append((node, p, start))
        pending[p].popleft()
        running[p] = True
        push(start + duration, _FINISH, node)
        notify(policy.task_started(node, p, start), start, "task_started")

    apply(policy.begin(machine))
    for p in range(num_procs):
        try_start(p, 0.0)
        if not running[p]:
            notify(policy.worker_idle(p, 0.0), 0.0, "worker_idle")

    sanitizing = _sanitize.enabled()
    last_now = 0.0
    while heap:
        now, _, kind, payload = heapq.heappop(heap)
        num_events += 1
        if sanitizing:
            _sanitize.require(
                now >= last_now - 1e-9,
                f"event heap popped time {now!r} after {last_now!r}")
            last_now = now
        if kind == _FINISH:  # repro: noqa-RPR005 integer event-kind tag, not a time
            node = payload
            p = executed.proc_of(node)
            running[p] = False
            proc_free[p] = now
            notify(policy.task_finished(node, p, now), now, "task_finished")
            children, costs = graph.succ_pairs(node)
            for child, cost in zip(children, costs):
                dst = assigned[child]
                if dst == p:
                    # Local handoff under the current assignment; the
                    # trailing try_start(p) is the one re-entry point,
                    # as in static replay.
                    _resolve_edge(missing, ready_time, child, now)
                    local_srcs[child].append(node)
                else:
                    factor = noise.comm_factor()
                    arrival, msg = net.arrival(node, child, p, dst, now,
                                               cost, factor)
                    if msg is not None:
                        executed.record_message(msg)
                    push(arrival, _ARRIVAL, (node, child))
            try_start(p, now)
            if not running[p]:
                notify(policy.worker_idle(p, now), now, "worker_idle")
        else:  # _ARRIVAL
            src, child = payload
            notify(policy.message_arrived(src, child, assigned[child], now),
                   now, "message_arrived")
            if _resolve_edge(missing, ready_time, child, now):
                try_start(assigned[child], now)

    if not executed.is_complete():
        sequences = [[pl.node for pl in executed.tasks_on(p)]
                     + list(pending[p]) for p in range(num_procs)]
        next_idx = [len(executed.tasks_on(p)) for p in range(num_procs)]
        table = render_violations(
            _stall_violations(graph, executed, sequences, next_idx))
        raise ScheduleError(
            "online execution stalled before completing the graph:\n"
            + table)
    return OnlineResult(
        schedule=executed,
        predicted=float(policy.predicted),
        makespan=executed.length,
        num_events=num_events,
        num_replans=num_replans,
        trace=trace,
        replan_log=replan_log,
    )

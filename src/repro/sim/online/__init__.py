"""Online scheduling under partial information.

The paper's schedulers are *static*: they see the whole graph with
exact weights up front and emit a complete schedule before anything
runs.  This package re-drives the same component machinery from the
discrete-event simulator's clock instead — the simulator feeds the
scheduler events (task finished, message arrived, worker idle) and the
scheduler replies with placements — and filters what the scheduler
*observes* through estee-style information modes, separately from what
the simulator *charges*:

* :mod:`repro.sim.online.imodes` — ``exact`` / ``blind`` / ``mean`` /
  ``user`` observed views of task durations and comm costs;
* :mod:`repro.sim.online.spec` — the ``online:`` spec grammar
  (component axes + ``imode`` + ``seed``) accepted by
  :func:`repro.get_scheduler` and the scenario engine;
* :mod:`repro.sim.online.engine` — the event-driven protocol
  (:class:`OnlinePolicy`) and loop (:func:`simulate_online`);
* :mod:`repro.sim.online.scheduler` — the predictive-reactive policy
  porting the six BNP designs online (plan from the observed graph,
  replan when an observed event deviates from the plan), plus the
  registry adapter that makes ``online:`` specs ordinary schedulers.

Under zero noise and the ``exact`` mode no event ever deviates from
the plan, so the online run reproduces the static schedule placement
for placement — the equivalence the sim test-suite pins on the golden
corpus.

>>> from repro import Machine
>>> from repro.generators.random_graphs import rgnos_graph
>>> from repro.sim.online import parse_online_spec, simulate_online
>>> g = rgnos_graph(30, 1.0, 2, seed=7)
>>> res = simulate_online(g, Machine(4), parse_online_spec("online:mcp"))
>>> res.schedule.is_complete() and res.num_replans == 0
True
"""

from .engine import OnlinePolicy, OnlineResult, simulate_online
from .imodes import IMODES, observe
from .scheduler import OnlineScheduler, PlanRescheduler
from .spec import ONLINE_PREFIX, OnlineSchedulerSpec, parse_online_spec

__all__ = [
    "IMODES",
    "ONLINE_PREFIX",
    "OnlinePolicy",
    "OnlineResult",
    "OnlineScheduler",
    "OnlineSchedulerSpec",
    "PlanRescheduler",
    "observe",
    "parse_online_spec",
    "simulate_online",
]

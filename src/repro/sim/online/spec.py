"""``online:`` specs: naming and parsing online scheduler configs.

An :class:`OnlineSchedulerSpec` is a :class:`~repro.algorithms
.components.spec.SchedulerSpec` coordinate plus the information mode
the planner observes the graph through.  Its canonical string

    ``online:prio=<rule>,ready=<policy>,proc=<selector>,``
    ``insert=<policy>,imode=<mode>[,seed=<n>]``

is — like ``param:`` — simultaneously the scheduler's registry-facing
*name*, its cache *fingerprint* and the grammar
:func:`repro.get_scheduler` accepts.  ``seed`` feeds the ``user``
estimate stream only; for the deterministic modes it is normalised to
0 and omitted from the canonical spelling, so two spellings of the
same configuration can never produce two cache keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ...algorithms.components.spec import AXES, BNP_SPECS, SchedulerSpec
from .imodes import IMODES

__all__ = ["ONLINE_PREFIX", "OnlineSchedulerSpec", "parse_online_spec"]

ONLINE_PREFIX = "online:"


@dataclass(frozen=True)
class OnlineSchedulerSpec:
    """One online scheduler: component coordinate + information mode."""

    prio: str = "slevel"
    ready: str = "prio"
    proc: str = "est"
    insert: str = "off"
    imode: str = "exact"
    seed: int = 0

    def __post_init__(self):
        # Component axes validate and normalise through the param-spec
        # dataclass itself, so the two grammars can never drift.
        base = SchedulerSpec(self.prio, self.ready, self.proc, self.insert)
        for axis in AXES:
            object.__setattr__(self, axis, getattr(base, axis))
        imode = str(self.imode).lower()
        if imode not in IMODES:
            raise ValueError(f"unknown information mode {self.imode!r}; "
                             f"known: {', '.join(IMODES)}")
        object.__setattr__(self, "imode", imode)
        seed = int(self.seed)
        if seed < 0:
            raise ValueError(f"online spec seed must be >= 0, got {seed}")
        # Only the user mode draws estimates; normalising the seed away
        # everywhere else keeps canonical() a true identity.
        object.__setattr__(self, "seed", seed if imode == "user" else 0)

    def base(self) -> SchedulerSpec:
        """The underlying static component coordinate."""
        return SchedulerSpec(self.prio, self.ready, self.proc, self.insert)

    def canonical(self) -> str:
        """The spec's one true spelling — also its name and fingerprint."""
        text = (f"{ONLINE_PREFIX}prio={self.prio},ready={self.ready},"
                f"proc={self.proc},insert={self.insert},imode={self.imode}")
        if self.imode == "user":
            text += f",seed={self.seed}"
        return text

    def fingerprint(self) -> str:
        """Cache identity: equal fingerprints schedule identically."""
        return self.canonical()

    def components(self) -> Dict[str, object]:
        """Axis name -> resolved component object, in canonical order."""
        return self.base().components()


def parse_online_spec(text: str) -> OnlineSchedulerSpec:
    """Parse an ``online:`` spec string to an :class:`OnlineSchedulerSpec`.

    Accepts the canonical grammar in any case and field order, with
    unmentioned fields falling back to their defaults, plus the named
    shorthands ``online:hlfet`` ... ``online:last`` for the paper's six
    BNP designs — optionally followed by ``imode=``/``seed=`` (or axis
    overrides): ``online:mcp,imode=mean``.
    """
    body = text.strip()
    if body.lower().startswith(ONLINE_PREFIX):
        body = body[len(ONLINE_PREFIX):]
    body = body.strip()
    if not body:
        raise ValueError(
            f"empty online spec {text!r}; expected "
            f"{ONLINE_PREFIX}prio=...,ready=...,proc=...,insert=...,"
            f"imode=... or {ONLINE_PREFIX}<acronym>[,imode=...]")
    parts = body.split(",")
    values: Dict[str, str] = {}
    if "=" not in parts[0]:
        acro = parts[0].strip().upper()
        if acro not in BNP_SPECS:
            known = ", ".join(sorted(BNP_SPECS))
            raise ValueError(f"unknown named online spec {parts[0].strip()!r} "
                             f"in {text!r}; known: {known}")
        base = BNP_SPECS[acro]
        values.update({axis: getattr(base, axis) for axis in AXES})
        parts = parts[1:]
    fields = (*AXES, "imode", "seed")
    assigned: Dict[str, str] = {}
    for part in parts:
        field, sep, value = part.partition("=")
        field = field.strip().lower()
        value = value.strip()
        if not sep or not value:
            raise ValueError(f"malformed assignment {part!r} in {text!r}; "
                             "expected field=value")
        if field not in fields:
            raise ValueError(f"unknown online-spec field {field!r} in "
                             f"{text!r}; known: {', '.join(fields)}")
        if field in assigned:
            raise ValueError(f"duplicate field {field!r} in {text!r}")
        assigned[field] = value
    values.update(assigned)
    seed_text = values.pop("seed", "0")
    try:
        seed = int(seed_text)
    except ValueError:
        raise ValueError(
            f"online spec seed must be an integer, got {seed_text!r}"
        ) from None
    return OnlineSchedulerSpec(seed=seed, **values)

"""Perturbation models: how executed times deviate from predicted ones.

A static schedule predicts each task's duration from its weight and the
machine model; real executions jitter.  A :class:`PerturbationModel`
bundles up to three independent noise sources, each described by a
:class:`Dist` with **mean 1** (so zero-noise and noisy runs agree in
expectation):

* **duration noise** — an i.i.d. factor per task execution;
* **per-processor speed jitter** — one factor per processor per trial
  (a "slow node" for the whole run), multiplying every duration on it;
* **message-latency noise** — an i.i.d. factor per inter-processor
  message's transport time.

All draws come from the seeded ``numpy.random.Generator`` handed to
:meth:`PerturbationModel.begin_trial`; the model itself is immutable
state-free configuration, so one instance can drive any number of
concurrent trials.  :data:`DETERMINISTIC` (no noise at all) is the
identity model under which the simulator must reproduce the static
schedule exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

__all__ = [
    "Dist",
    "PerturbationModel",
    "TrialNoise",
    "DETERMINISTIC",
    "perturbation_from_dict",
]

#: Distribution kinds a :class:`Dist` understands.
_KINDS = ("uniform", "normal", "lognormal")

#: Executed durations never drop below this fraction of the prediction —
#: keeps pathological normal draws from going non-positive.
_FLOOR = 1e-3


@dataclass(frozen=True)
class Dist:
    """A mean-1 multiplicative noise distribution.

    * ``uniform(spread)`` — ``U(1 - spread, 1 + spread)``, ``spread < 1``;
    * ``normal(sigma)`` — ``N(1, sigma)``, clamped positive;
    * ``lognormal(sigma)`` — ``LogN(-sigma^2 / 2, sigma)`` (mean exactly
      1, right-skewed — the empirical shape of runtime noise).
    """

    kind: str
    param: float

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown distribution {self.kind!r}; "
                f"expected one of {', '.join(_KINDS)}")
        if not 0 <= self.param:
            raise ValueError(f"{self.kind} parameter must be >= 0")
        if self.kind == "uniform" and not self.param < 1:
            raise ValueError("uniform spread must be < 1")

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """``size`` mean-1 factors, floored at a small positive value."""
        if self.param == 0:
            return np.ones(size)
        if self.kind == "uniform":
            out = rng.uniform(1 - self.param, 1 + self.param, size)
        elif self.kind == "normal":
            out = rng.normal(1.0, self.param, size)
        else:  # lognormal
            out = rng.lognormal(-self.param ** 2 / 2, self.param, size)
        return np.maximum(out, _FLOOR)

    def sample_one(self, rng: np.random.Generator) -> float:
        """One factor as a scalar — the per-message hot path.

        Consumes the stream exactly like ``sample(rng, 1)[0]`` (scalar
        and size-1 draws read the same words), without the temporary
        arrays.
        """
        if self.param == 0:
            return 1.0
        if self.kind == "uniform":
            x = rng.uniform(1 - self.param, 1 + self.param)
        elif self.kind == "normal":
            x = rng.normal(1.0, self.param)
        else:  # lognormal
            x = rng.lognormal(-self.param ** 2 / 2, self.param)
        return max(float(x), _FLOOR)

    def spec(self) -> str:
        """Stable text form (part of the sim fingerprint)."""
        return f"{self.kind}:{self.param:g}"


@dataclass(frozen=True)
class TrialNoise:
    """The noise realisation of one trial, drawn up front.

    ``duration_factor[i]`` scales task ``i``'s execution time,
    ``speed_factor[p]`` scales every execution on processor ``p`` for
    the whole trial (a factor of 2 means the processor runs twice as
    slow; drawn directly as a mean-1 duration multiplier, so the
    documented zero-bias contract holds — the reciprocal of a mean-1
    speed would *not* be mean-1), and :meth:`comm_factor` draws one
    factor per message on demand (messages are not enumerable up front
    under contention).
    """

    duration_factor: np.ndarray
    speed_factor: np.ndarray
    _rng: np.random.Generator
    _comm: Optional[Dist]

    def duration(self, node: int, proc: int, base: float) -> float:
        """Executed duration of ``node`` on ``proc``."""
        return (base * float(self.duration_factor[node])
                * float(self.speed_factor[proc]))

    def comm_factor(self) -> float:
        """Noise factor for one message's transport time."""
        if self._comm is None:
            return 1.0
        return self._comm.sample_one(self._rng)


@dataclass(frozen=True)
class PerturbationModel:
    """Configuration of the three noise sources (any may be ``None``)."""

    duration: Optional[Dist] = None
    speed: Optional[Dist] = None
    comm: Optional[Dist] = None

    @property
    def is_deterministic(self) -> bool:
        return (self.duration is None and self.speed is None
                and self.comm is None)

    def begin_trial(self, rng: np.random.Generator, num_nodes: int,
                    num_procs: int) -> TrialNoise:
        """Draw one trial's noise realisation from ``rng``.

        Draw order is fixed (durations, then speeds) so a trial is a
        pure function of the generator's state.
        """
        dur = (self.duration.sample(rng, num_nodes)
               if self.duration is not None else np.ones(num_nodes))
        spd = (self.speed.sample(rng, num_procs)
               if self.speed is not None else np.ones(num_procs))
        return TrialNoise(dur, spd, rng, self.comm)

    def fingerprint(self) -> str:
        """Stable identity for result-store cache keys."""
        parts = []
        for label, dist in (("dur", self.duration), ("spd", self.speed),
                            ("comm", self.comm)):
            if dist is not None:
                parts.append(f"{label}={dist.spec()}")
        return ",".join(parts) or "deterministic"

    def to_dict(self) -> Dict[str, Dict[str, object]]:
        """JSON-compatible form (inverse of :func:`perturbation_from_dict`)."""
        out: Dict[str, Dict[str, object]] = {}
        for label, dist in (("duration", self.duration),
                            ("speed", self.speed), ("comm", self.comm)):
            if dist is not None:
                out[label] = {"dist": dist.kind, "param": dist.param}
        return out

    # convenience constructors -----------------------------------------
    @classmethod
    def uniform(cls, spread: float) -> "PerturbationModel":
        return cls(duration=Dist("uniform", spread))

    @classmethod
    def normal(cls, sigma: float) -> "PerturbationModel":
        return cls(duration=Dist("normal", sigma))

    @classmethod
    def lognormal(cls, sigma: float) -> "PerturbationModel":
        return cls(duration=Dist("lognormal", sigma))


#: The zero-noise identity model: executed == predicted.
DETERMINISTIC = PerturbationModel()


def perturbation_from_dict(data: Mapping) -> PerturbationModel:
    """Build a model from ``{"duration": {"dist": ..., "param": ...}, ...}``.

    The scenario engine's ``simulate.perturb`` block parses through
    here; raises ``ValueError`` with the offending key on bad input.
    """
    dists: Dict[str, Optional[Dist]] = {
        "duration": None, "speed": None, "comm": None}
    for key, value in data.items():
        if key not in dists:
            raise ValueError(
                f"unknown perturbation source {key!r}; expected one of "
                f"{', '.join(dists)}")
        if not isinstance(value, Mapping):
            raise ValueError(f"{key}: expected an object with "
                             "'dist' and 'param'")
        extra = set(value) - {"dist", "param"}
        if extra:
            raise ValueError(
                f"{key}: unknown keys {', '.join(sorted(extra))}")
        try:
            dists[key] = Dist(str(value.get("dist", "")),
                              float(value.get("param", -1.0)))
        except (TypeError, ValueError) as exc:
            raise ValueError(f"{key}: {exc}") from None
    return PerturbationModel(duration=dists["duration"],
                             speed=dists["speed"], comm=dists["comm"])

"""Pluggable network backends for the discrete-event simulator.

A :class:`NetworkModel` answers one question for the engine: *when does
the data of edge ``(u, v)`` arrive at the destination processor, given
that it leaves the source at ``ready``?*  Three backends cover the
model space of the paper:

* :class:`InstantNetwork` — data teleports (zero communication time):
  the lower envelope any schedule degrades towards as links get free;
* :class:`FixedDelayNetwork` — the clique model: every message takes
  ``latency + scale * cost``, no sharing, no contention (the default
  reproduces BNP/UNC predicted times exactly);
* :class:`ContentionNetwork` — store-and-forward over an explicit
  :class:`~repro.network.topology.Topology`, one message per directed
  channel at a time, built on the same
  :class:`~repro.network.contention.LinkSchedule` the APN schedulers
  plan with.

:class:`RecordedDelays` replays the message schedule embedded in an APN
:class:`~repro.core.schedule.Schedule` as fixed per-edge delays — the
zero-noise replay backend under which APN timelines reproduce exactly.

This module also owns :func:`execute_fixed_order`, the fixed-mapping
link-contention executor that used to live in
``repro.algorithms.apn.netsim`` (which is now a thin wrapper around
it): given a task-to-processor mapping and per-processor execution
orders, it computes actual start times while committing every message
to the links in a deterministic receiver-side order.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.exceptions import ScheduleError
from ..core.graph import TaskGraph
from ..core.schedule import Message, Schedule
from ..network.contention import LinkSchedule
from ..network.topology import Topology

__all__ = [
    "NETWORK_KINDS",
    "NetworkModel",
    "InstantNetwork",
    "FixedDelayNetwork",
    "ContentionNetwork",
    "RecordedDelays",
    "replay_network",
    "network_from_spec",
    "execute_fixed_order",
]

#: The backend names every layer (SimConfig, scenario schema, CLI)
#: accepts; ``"auto"`` defers to :func:`replay_network` per schedule.
NETWORK_KINDS = ("auto", "instant", "fixed", "contention")


class NetworkModel:
    """How inter-processor data transport behaves during a trial.

    Backends may carry per-trial state (channel reservations); the
    engine calls :meth:`reset` before every trial.  ``factor`` is the
    perturbation model's latency-noise multiplier for this message.
    """

    def reset(self) -> None:
        """Drop per-trial state (default: stateless)."""

    def arrival(self, u: int, v: int, src: int, dst: int, ready: float,
                cost: float, factor: float = 1.0
                ) -> Tuple[float, Optional[Message]]:
        """Arrival time at ``dst`` of edge ``(u, v)``'s data, plus an
        optional :class:`Message` record for the simulated timeline."""
        raise NotImplementedError

    def fingerprint(self) -> str:
        """Stable identity for result-store cache keys."""
        raise NotImplementedError


class InstantNetwork(NetworkModel):
    """Zero-time communication: data is available the moment it exists."""

    def arrival(self, u, v, src, dst, ready, cost, factor=1.0):
        return ready, None

    def fingerprint(self) -> str:
        return "instant"


class FixedDelayNetwork(NetworkModel):
    """Contention-free transport: ``latency + scale * cost`` per message.

    The default (``scale=1, latency=0``) is exactly the clique model the
    BNP/UNC schedulers plan against; a positive ``latency`` models a
    fixed per-message overhead, ``scale`` a uniformly slower fabric.
    """

    def __init__(self, scale: float = 1.0, latency: float = 0.0):
        if scale < 0 or latency < 0:
            raise ValueError("scale and latency must be >= 0")
        self.scale = float(scale)
        self.latency = float(latency)

    def arrival(self, u, v, src, dst, ready, cost, factor=1.0):
        return ready + factor * (self.latency + self.scale * cost), None

    def fingerprint(self) -> str:
        return f"fixed:scale={self.scale:g}:lat={self.latency:g}"


class ContentionNetwork(NetworkModel):
    """Store-and-forward transport over an explicit topology.

    Messages are committed to the link schedule in the order the engine
    sends them (ascending send time, deterministic tie-break), each hop
    occupying its directed channel for ``factor * cost / bandwidth``.
    """

    def __init__(self, topology: Topology):
        self.topology = topology
        self._links = LinkSchedule(topology)

    def reset(self) -> None:
        self._links = LinkSchedule(self.topology)

    def arrival(self, u, v, src, dst, ready, cost, factor=1.0):
        msg = self._links.commit(u, v, src, dst, ready, cost * factor)
        return msg.arrival, msg

    def fingerprint(self) -> str:
        import hashlib

        links = hashlib.sha256(
            repr(self.topology.links).encode()).hexdigest()[:12]
        fp = (f"contention:{self.topology.name}:"
              f"{self.topology.num_procs}p:{links}")
        if self.topology.bandwidth != 1.0:  # repro: noqa-RPR005 fingerprint identity check on configured value
            fp += f":bw={self.topology.bandwidth:g}"
        return fp


class RecordedDelays(NetworkModel):
    """Replay a schedule's own message plan as fixed per-edge delays.

    For every recorded message the *transport delay* is pinned to
    ``arrival - predicted finish(u)``; during the trial the data arrives
    that long (noise-scaled) after the sender actually finishes.  Edges
    without a recorded message fall back to the plain edge cost.  This
    is the "no re-contention" approximation: link waits shift rigidly
    with the sender instead of being re-fought — and makes zero-noise
    APN replay bit-exact.
    """

    def __init__(self, schedule: Schedule):
        self._delay: Dict[Tuple[int, int], float] = {}
        for (u, v), msg in schedule.messages.items():
            self._delay[(u, v)] = msg.arrival - schedule.finish_of(u)

    def arrival(self, u, v, src, dst, ready, cost, factor=1.0):
        delay = self._delay.get((u, v), cost)
        return ready + factor * delay, None

    def fingerprint(self) -> str:
        return "recorded"


def replay_network(schedule: Schedule) -> NetworkModel:
    """The backend under which a zero-noise replay is exact.

    Clique-model schedules (no recorded messages) replay against the
    fixed-delay clique; APN schedules replay their recorded message
    plan.
    """
    if schedule.messages:
        return RecordedDelays(schedule)
    return FixedDelayNetwork()


def network_from_spec(kind: str, topology: Optional[Topology] = None,
                      scale: float = 1.0,
                      latency: float = 0.0) -> Optional[NetworkModel]:
    """Build a backend from its scenario-spec name.

    ``"auto"`` returns ``None`` — the engine then picks
    :func:`replay_network` per schedule.  ``"contention"`` requires a
    topology.
    """
    if kind == "auto":
        return None
    if kind == "instant":
        return InstantNetwork()
    if kind == "fixed":
        return FixedDelayNetwork(scale=scale, latency=latency)
    if kind == "contention":
        if topology is None:
            raise ValueError("contention network needs a topology")
        return ContentionNetwork(topology)
    raise ValueError(f"unknown network kind {kind!r}; expected one of "
                     + ", ".join(NETWORK_KINDS))


# ----------------------------------------------------------------------
# the fixed-order contention executor (absorbed from algorithms.apn.netsim)
# ----------------------------------------------------------------------
def execute_fixed_order(graph: TaskGraph, topology: Topology,
                        sequences: List[List[int]]) -> Schedule:
    """Schedule ``graph`` with fixed per-processor ``sequences``.

    ``sequences[p]`` lists the tasks of processor ``p`` in execution
    order; orders must be consistent with the precedence order (callers
    keep sequences topologically sorted).  Returns a complete
    :class:`Schedule` with all message records attached.

    Messages are committed receiver-side in a deterministic order:
    nodes in combined (precedence + processor-sequence) readiness
    order; a node's parent messages in ascending (parent finish, parent
    id).  This order is the timing contract of the BU/BSA schedulers —
    event-driven replay through :class:`ContentionNetwork` commits
    sender-side instead and may legitimately differ under contention.
    """
    n = graph.num_nodes
    proc_of: Dict[int, int] = {}
    pos: Dict[int, int] = {}
    for p, seq in enumerate(sequences):
        for i, node in enumerate(seq):
            if node in proc_of:
                raise ScheduleError(f"node {node} appears twice in sequences")
            proc_of[node] = p
            pos[node] = i
    if len(proc_of) != n:
        raise ScheduleError("sequences must cover every node exactly once")

    links = LinkSchedule(topology)
    schedule = Schedule(graph, topology.num_procs)
    remaining = [graph.in_degree(i) for i in range(n)]
    next_slot = [0] * len(sequences)
    ready = [i for i in range(n) if remaining[i] == 0]
    placed = 0
    while placed < n:
        progress = False
        new_ready: List[int] = []
        for node in sorted(ready):
            p = proc_of[node]
            if pos[node] != next_slot[p]:
                continue
            arrival = 0.0
            parents = sorted(
                graph.predecessors(node),
                key=lambda q: (schedule.finish_of(q), q),
            )
            for parent in parents:
                cost = graph.comm_cost(parent, node)
                src = proc_of[parent]
                if src == p:
                    arr = schedule.finish_of(parent)
                else:
                    msg = links.commit(parent, node, src, p,
                                       schedule.finish_of(parent), cost)
                    schedule.record_message(msg)
                    arr = msg.arrival
                if arr > arrival:
                    arrival = arr
            start = max(schedule.proc_ready_time(p), arrival)
            schedule.place(node, p, start)
            ready.remove(node)
            next_slot[p] += 1
            placed += 1
            progress = True
            for child in graph.successors(node):
                remaining[child] -= 1
                if remaining[child] == 0:
                    new_ready.append(child)
        ready.extend(new_ready)
        if not progress:
            raise ScheduleError(
                "per-processor sequences deadlock against the precedence order"
            )
    return schedule

"""The discrete-event engine: *execute* a static schedule.

The paper ranks schedulers by the makespan their schedules *predict*;
this engine measures the makespan a schedule *achieves* when durations
and message latencies deviate from the prediction.  The replay contract
is the standard one for static schedules (estee's fixed-assignment
mode): the task-to-processor mapping and each processor's execution
order are kept exactly as scheduled, while every start time is
recomputed eagerly — a task starts the moment its processor is free,
it is next in the processor's sequence, and all its input data has
arrived.

The loop is a single binary heap of timestamped events:

* **task-finish** — the running task on a processor completes: record
  its executed interval, hand each outgoing edge to the network backend
  (same-processor data is available immediately), and try to start the
  processor's next task;
* **message-arrival** — an inter-processor transfer completes at the
  destination: mark the input satisfied and try to start the waiting
  task.

Task *starts* need no event of their own: a task becomes startable only
while handling one of the two events above, at exactly the current
simulation time.  Ties are broken by event insertion order, which is
itself deterministic, so a trial is a pure function of ``(schedule,
perturbation draw, network backend)``.

Because the combined order (precedence edges + per-processor sequence
edges) is topologically sorted by the original start times, replay can
never deadlock, whatever the noise does to durations.

Under :data:`~repro.sim.perturb.DETERMINISTIC` noise and the
:func:`~repro.sim.netmodel.replay_network` backend, the executed
timeline equals the static schedule placement-for-placement — the
differential anchor the sim test-suite pins on the golden corpus.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional

from ..check import sanitize as _sanitize
from ..core.exceptions import ScheduleError
from ..core.rng import SeedLike, as_generator
from ..core.schedule import Schedule, Violation, render_violations
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from .netmodel import NetworkModel, replay_network
from .perturb import DETERMINISTIC, PerturbationModel

__all__ = ["SimResult", "simulate"]

_FINISH = 0
_ARRIVAL = 1


def _resolve_edge(missing: List[int], ready_time: List[float],
                  child: int, when: float) -> bool:
    """One input of ``child`` became available at time ``when``.

    Decrements the outstanding-input count and advances the child's
    data-ready time; returns ``True`` when the last input just landed
    (the caller may then try to start the child's processor).  Shared
    by the static replay loop below and the online engine
    (:mod:`repro.sim.online`), so the two agree on edge bookkeeping.
    """
    missing[child] -= 1
    if when > ready_time[child]:
        ready_time[child] = when
    return missing[child] == 0


def _stall_violations(graph, executed: Schedule, sequences: List[List[int]],
                      next_idx: List[int]) -> List[Violation]:
    """Diagnose a stalled replay: who is blocked, on which inputs.

    At stall time the event heap is empty, so every finished task has
    delivered all its edges — a head task's outstanding inputs are
    exactly its predecessors that never executed.
    """
    done = {v for v in range(graph.num_nodes) if executed.is_scheduled(v)}
    violations = []
    for p, seq in enumerate(sequences):
        if next_idx[p] >= len(seq):
            continue
        head = seq[next_idx[p]]
        waiting = [u for u in graph.pred_pairs(head)[0] if u not in done]
        violations.append(Violation(
            code="stalled",
            message=f"head task waits on unexecuted predecessor(s) "
                    f"{waiting}",
            node=head, proc=p))
    return violations


@dataclass
class SimResult:
    """One executed trial of a static schedule.

    ``schedule`` is the executed timeline — a real
    :class:`~repro.core.schedule.Schedule` (with per-task duration
    overrides), so every downstream tool (gantt rendering, metrics,
    validation with ``check_durations=False``) applies unchanged.
    """

    schedule: Schedule
    predicted: float
    makespan: float
    num_events: int

    @property
    def degradation_pct(self) -> float:
        """Executed makespan over predicted, as a percentage change.

        A zero (or negative) predicted makespan is only legitimate for
        an empty graph — on any real schedule it means the prediction
        is corrupt, and reporting "no degradation" would hide that.
        """
        if self.predicted <= 0:
            if self.schedule.graph.num_nodes == 0:
                return 0.0
            raise ScheduleError(
                f"predicted makespan {self.predicted!r} is not positive "
                f"for a {self.schedule.graph.num_nodes}-node graph — "
                "corrupt prediction, degradation undefined")
        return 100.0 * (self.makespan - self.predicted) / self.predicted


def simulate(schedule: Schedule,
             perturb: PerturbationModel = DETERMINISTIC,
             network: Optional[NetworkModel] = None,
             rng: SeedLike = None,
             label: Optional[str] = None) -> SimResult:
    """Execute ``schedule`` once under a perturbation model.

    Parameters
    ----------
    schedule:
        A complete static schedule (any algorithm, any machine model).
    perturb:
        Noise configuration; :data:`~repro.sim.perturb.DETERMINISTIC`
        replays the prediction exactly.
    network:
        Transport backend; ``None`` picks
        :func:`~repro.sim.netmodel.replay_network` (the backend that
        makes zero-noise replay exact for this schedule).
    rng:
        Seed or generator for the noise draws.
    label:
        Observability tag (usually the algorithm name).  With tracing
        armed, the first trial per ``(label, graph)`` records its
        executed timeline as a per-processor Perfetto track.
    """
    if not schedule.is_complete():
        raise ScheduleError("can only simulate a complete schedule")
    with _trace.span("sim.run", graph=schedule.graph.name,
                     label=label or "") as sp:
        result = _replay(schedule, perturb, network, rng)
    if sp is not None:
        sp.args["events"] = result.num_events
    _metrics.incr("sim.events", result.num_events)
    key = ("sim", label or "", schedule.graph.name)
    if _trace.wants_timeline(key):  # first trial per key records
        from ..io.gantt import timeline_rows

        _trace.add_timeline(
            key,
            label=f"sim: {label or 'schedule'} on {schedule.graph.name}",
            rows=timeline_rows(result.schedule))
    return result


def _replay(schedule: Schedule, perturb: PerturbationModel,
            network: Optional[NetworkModel], rng: SeedLike) -> SimResult:
    """The replay loop behind :func:`simulate` (input already valid)."""
    graph = schedule.graph
    n = graph.num_nodes
    num_procs = schedule.num_procs
    noise = perturb.begin_trial(as_generator(rng), n, num_procs)
    net = network if network is not None else replay_network(schedule)
    net.reset()

    # Static replay state, all derived from the input schedule.
    proc_of = [schedule.proc_of(v) for v in range(n)]
    sequences: List[List[int]] = [
        [pl.node for pl in schedule.tasks_on(p)] for p in range(num_procs)
    ]
    missing = [graph.in_degree(v) for v in range(n)]
    ready_time = [0.0] * n          # latest input arrival so far
    next_idx = [0] * len(sequences)  # head of each processor's sequence
    proc_free = [0.0] * num_procs
    running = [False] * num_procs

    executed = Schedule(graph, num_procs, speeds=schedule.speeds)
    heap: List[tuple] = []  # (time, insertion seq, kind, payload)
    seq_counter = 0
    num_events = 0

    def push(time: float, kind: int, payload: int) -> None:
        nonlocal seq_counter
        heapq.heappush(heap, (time, seq_counter, kind, payload))
        seq_counter += 1

    def try_start(p: int) -> None:
        if running[p] or next_idx[p] >= len(sequences[p]):
            return
        node = sequences[p][next_idx[p]]
        if missing[node]:
            return
        start = max(proc_free[p], ready_time[node])
        duration = noise.duration(node, p, schedule.duration_of(node, p))
        executed.place(node, p, start, duration=duration)
        running[p] = True
        next_idx[p] += 1
        push(start + duration, _FINISH, node)

    for p in range(num_procs):
        try_start(p)

    sanitizing = _sanitize.enabled()
    last_now = 0.0
    while heap:
        now, _, kind, payload = heapq.heappop(heap)
        num_events += 1
        if sanitizing:
            # Event-heap monotonicity: a pop that travels back in time
            # means heap entries (or their timestamps) were corrupted.
            _sanitize.require(
                now >= last_now - 1e-9,
                f"event heap popped time {now!r} after {last_now!r}")
            last_now = now
        if kind == _FINISH:  # repro: noqa-RPR005 integer event-kind tag, not a time
            node, p = payload, proc_of[payload]
            running[p] = False
            proc_free[p] = now
            children, costs = graph.succ_pairs(node)
            for child, cost in zip(children, costs):
                dst = proc_of[child]
                if dst == p:
                    # Local data is available immediately; no event
                    # needed — resolve in place.  Starting the child is
                    # left to the single trailing try_start(p): dst == p
                    # here, so the head is re-tried exactly once per
                    # finish event.
                    _resolve_edge(missing, ready_time, child, now)
                else:
                    # Every cross-processor edge goes through the
                    # backend, zero-cost ones included: a backend with
                    # per-message latency charges them too (the clique
                    # default adds nothing, keeping zero-noise replay
                    # exact).
                    factor = noise.comm_factor()
                    arrival, msg = net.arrival(node, child, p, dst, now,
                                               cost, factor)
                    if msg is not None:
                        executed.record_message(msg)
                    push(arrival, _ARRIVAL, child)
            try_start(p)
        else:  # _ARRIVAL
            child = payload
            if _resolve_edge(missing, ready_time, child, now):
                try_start(proc_of[child])

    if not executed.is_complete():
        table = render_violations(
            _stall_violations(graph, executed, sequences, next_idx))
        raise ScheduleError(
            "replay stalled before completing the schedule "
            "(inconsistent processor sequences):\n" + table)
    return SimResult(
        schedule=executed,
        predicted=schedule.length,
        makespan=executed.length,
        num_events=num_events,
    )

"""The sim grid: Monte-Carlo robustness as a cacheable benchmark.

Mirrors :mod:`repro.bench.parallel` one layer up: a *sim cell* is
``(algorithm, graph)`` under a :class:`~repro.bench.runner.BenchConfig`
(which machine schedules the graph) plus a :class:`SimConfig` (how the
schedule is then executed).  Cells are pure functions of that triple —
noise streams are derived per cell from the config's seed, never from
execution order — so rows fan out over a worker pool, persist to a
:class:`~repro.bench.store.ResultStore` keyed by the *combined*
fingerprint ``bench|sim``, and resume exactly like the static grid.

The store lives beside the static rows under a ``sim`` basename
(``sim.json`` / ``sim.csv``), so one ``--results`` directory carries
both views of an experiment.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from ..bench.runner import BenchConfig
from ..bench.store import ResultStore
from ..core.graph import TaskGraph
from .netmodel import NETWORK_KINDS, NetworkModel, network_from_spec
from .perturb import DETERMINISTIC, PerturbationModel
from .robustness import RobustnessRow, monte_carlo

__all__ = ["SimConfig", "sim_store", "run_sim_grid"]


@dataclass
class SimConfig:
    """How schedules are executed: noise, transport, trial count, seed.

    ``network="auto"`` replays each schedule against the backend its
    planner assumed (clique fixed-delay, or the recorded APN message
    plan) — the setting under which zero noise reproduces predictions
    exactly.  ``"contention"`` re-executes messages on the bench
    config's APN topology instead.
    """

    perturb: PerturbationModel = field(default_factory=PerturbationModel)
    network: str = "auto"
    trials: int = 100
    seed: int = 0
    net_scale: float = 1.0
    net_latency: float = 0.0

    def __post_init__(self):
        if self.network not in NETWORK_KINDS:
            raise ValueError(
                f"unknown network {self.network!r}; expected one of "
                f"{', '.join(NETWORK_KINDS)}")
        if self.trials < 1:
            raise ValueError("trials must be >= 1")

    def fingerprint(self) -> str:
        """Stable identity of the execution model (cache-key part)."""
        fp = (f"sim:trials={self.trials};seed={self.seed}"
              f";perturb={self.perturb.fingerprint()};net={self.network}")
        if self.network == "fixed" and (
                self.net_scale != 1.0  # repro: noqa-RPR005 fingerprint identity check on configured value
                or self.net_latency != 0.0):  # repro: noqa-RPR005 fingerprint identity check on configured value
            fp += f":scale={self.net_scale:g}:lat={self.net_latency:g}"
        return fp

    def network_for(self, schedule,
                    bench: BenchConfig) -> Optional[NetworkModel]:
        """The backend for one schedule (``None`` = engine's auto pick).

        The contention backend runs over the bench config's APN
        topology — already part of the bench fingerprint, so the
        combined cache key identifies it.
        """
        if self.network != "contention":
            return network_from_spec(self.network, scale=self.net_scale,
                                     latency=self.net_latency)
        from ..bench.suites import default_apn_topology

        topo = bench.apn_topology or default_apn_topology()
        if schedule.num_procs > topo.num_procs:
            raise ValueError(
                f"schedule uses {schedule.num_procs} processors but the "
                f"contention topology has {topo.num_procs}; bound the "
                "machine (bnp_procs) to the topology size")
        return network_from_spec("contention", topology=topo)


def sim_store(directory: str) -> ResultStore:
    """The sim-row store under ``directory`` (``sim.json``/``sim.csv``)."""
    return ResultStore(directory, basename="sim", row_type=RobustnessRow)


def combined_fingerprint(bench: BenchConfig, sim: SimConfig) -> str:
    """The sim grid's cache key: bench model + execution model."""
    return f"{bench.fingerprint()}|{sim.fingerprint()}"


def _run_sim_cell(args) -> RobustnessRow:
    """Pool worker: schedule one graph, Monte-Carlo it (module-level so
    it pickles under the spawn start method too)."""
    name, graph, bench, sim = args
    from ..algorithms import get_scheduler

    scheduler = get_scheduler(name)
    machine = bench.machine_for(name, graph)
    t0 = time.perf_counter()
    schedule = scheduler.schedule(graph, machine)
    row, _ = monte_carlo(
        schedule,
        perturb=sim.perturb,
        network=sim.network_for(schedule, bench),
        trials=sim.trials,
        seed=sim.seed,
        algorithm=scheduler.name,
        klass=scheduler.klass,
    )
    elapsed = time.perf_counter() - t0
    return RobustnessRow(**{**row.__dict__, "runtime_s": elapsed})


def run_sim_grid(names: Sequence[str], graphs: Iterable[TaskGraph],
                 config: Optional[BenchConfig] = None,
                 sim: Optional[SimConfig] = None,
                 jobs: Optional[int] = None,
                 store: Optional[ResultStore] = None,
                 resume: bool = False) -> List[RobustnessRow]:
    """Monte-Carlo every algorithm on every graph; rows in serial order.

    Exactly the static grid's contract — it runs on the same executor
    (:func:`repro.bench.parallel.execute_cells`): graphs outer,
    algorithms inner, ``jobs`` fans cells over worker processes (``0``
    = one per CPU), ``store`` + ``resume`` replay cached rows and
    checkpoint new ones.
    """
    from ..bench.parallel import execute_cells

    config = config or BenchConfig()
    sim = sim or SimConfig(perturb=DETERMINISTIC)
    cells: List[Tuple[str, TaskGraph]] = [
        (name, graph) for graph in graphs for name in names
    ]
    keys = [(name, graph.name) for name, graph in cells]
    work = [(name, graph, config, sim) for name, graph in cells]
    return execute_cells(keys, work, _run_sim_cell,
                         combined_fingerprint(config, sim),
                         jobs=jobs, store=store, resume=resume)

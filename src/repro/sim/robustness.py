"""Monte-Carlo robustness: makespan distributions and schedule slack.

A single simulated trial says little; robustness is a property of the
*distribution* of executed makespans.  :func:`monte_carlo` runs N
seeded trials of one schedule and folds them into a
:class:`RobustnessRow` — mean/std/median/p95/worst makespan, mean and
tail degradation against the predicted makespan, and the schedule's
static *slack* (how much a task can slip before the makespan moves,
averaged over tasks — schedules with more slack absorb more noise).

Trials are reproducible per cell: the noise stream is derived from
``(seed, algorithm, graph name)`` via :func:`repro.core.rng.derive_rng`,
so a cell draws identical noise whether it runs first, last, or in a
worker process — which is what lets the sim bench layer cache rows in a
result store like any other grid cell.

:func:`robustness_ranking` reuses the paper's average-rank machinery
(:mod:`repro.metrics.ranking`) to rank algorithms by *simulated* mean
makespan next to their predicted-makespan ranks: the rank shift is the
headline number of the whole subsystem — how much of the paper's
ranking survives execution noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.exceptions import ScheduleError
from ..core.rng import derive_rng
from ..core.schedule import Schedule
from ..metrics.ranking import average_ranks
from .engine import simulate
from .netmodel import NetworkModel, replay_network
from .perturb import DETERMINISTIC, PerturbationModel

__all__ = [
    "RobustnessRow",
    "schedule_slack",
    "monte_carlo",
    "robustness_ranking",
]


@dataclass(frozen=True)
class RobustnessRow:
    """One (algorithm, graph) Monte-Carlo cell — the sim grid's row type.

    Makespan statistics are over the executed trials;
    ``mean_degradation_pct``/``p95_degradation_pct`` compare them to the
    static schedule's prediction (0 == execution matches prediction).
    ``slack`` is the predicted schedule's mean per-task slack as a
    fraction of its makespan.
    """

    algorithm: str
    klass: str
    graph: str
    num_nodes: int
    predicted: float
    trials: int
    mean: float
    std: float
    p50: float
    p95: float
    worst: float
    mean_degradation_pct: float
    p95_degradation_pct: float
    slack: float
    runtime_s: float = 0.0


def _sequence_edges(schedule: Schedule) -> List[Tuple[int, int]]:
    """Consecutive-task pairs on every processor timeline."""
    pairs: List[Tuple[int, int]] = []
    for p in schedule.used_proc_ids():
        tasks = schedule.tasks_on(p)
        pairs.extend((a.node, b.node) for a, b in zip(tasks, tasks[1:]))
    return pairs


def schedule_slack(schedule: Schedule) -> float:
    """Mean per-task slack of a schedule, as a fraction of its makespan.

    Slack of a task is how far its start can slip — with the mapping,
    the processor orders, and every communication delay held fixed —
    before the makespan grows.  Computed by one backward pass over the
    combined DAG (precedence edges plus per-processor sequence edges);
    communication delays are the ones the schedule actually realised
    (recorded message arrivals for APN schedules, edge costs for the
    clique model).  An all-critical schedule scores 0.
    """
    g = schedule.graph
    n = g.num_nodes
    if n == 0 or schedule.length <= 0:
        return 0.0
    makespan = schedule.length
    latest_finish = [makespan] * n

    # Realised cross-processor delay of each communication edge.
    def comm_delay(u: int, v: int, cost: float) -> float:
        if schedule.proc_of(u) == schedule.proc_of(v):
            return 0.0
        msg = schedule.messages.get((u, v))
        if msg is not None:
            return msg.arrival - schedule.finish_of(u)
        return cost

    # Descending start order is a reverse topological order of the
    # combined DAG (children and processor successors all start later),
    # so every constraint on a node lands before the node is processed.
    order = sorted(range(n), key=schedule.start_of, reverse=True)
    latest_start = [0.0] * n
    prev_on_proc: Dict[int, int] = {
        v: u for u, v in _sequence_edges(schedule)}
    for v in order:
        duration = schedule.finish_of(v) - schedule.start_of(v)
        latest_start[v] = latest_finish[v] - duration
        for u, cost in zip(*g.pred_pairs(v)):
            bound = latest_start[v] - comm_delay(u, v, cost)
            if bound < latest_finish[u]:
                latest_finish[u] = bound
        u = prev_on_proc.get(v)
        if u is not None and latest_start[v] < latest_finish[u]:
            latest_finish[u] = latest_start[v]
    slacks = [latest_start[v] - schedule.start_of(v) for v in range(n)]
    return max(0.0, float(np.mean(slacks))) / makespan


def monte_carlo(schedule: Schedule,
                perturb: PerturbationModel = DETERMINISTIC,
                network: Optional[NetworkModel] = None,
                trials: int = 100,
                seed: int = 0,
                algorithm: str = "",
                klass: str = "") -> Tuple[RobustnessRow, np.ndarray]:
    """Run ``trials`` seeded executions of ``schedule``.

    Returns the aggregated :class:`RobustnessRow` plus the raw makespan
    samples (callers wanting histograms keep the array; the row is what
    stores persist).  ``algorithm``/``klass`` label the row and key the
    noise stream.
    """
    if trials < 1:
        raise ValueError("need at least one trial")
    rng = derive_rng(seed, "mc", algorithm, schedule.graph.name)
    net = network if network is not None else replay_network(schedule)
    # A deterministic model draws nothing, so every trial replays the
    # same timeline: execute once and broadcast the point mass.
    executions = 1 if perturb.is_deterministic else trials
    makespans = np.empty(trials)
    for t in range(executions):
        makespans[t] = simulate(schedule, perturb=perturb, network=net,
                                rng=rng, label=algorithm or None).makespan
    makespans[executions:] = makespans[0]
    predicted = schedule.length
    mean = float(makespans.mean())
    p95 = float(np.percentile(makespans, 95))

    def degr(x: float) -> float:
        # Mirrors SimResult.degradation_pct: a non-positive prediction
        # is only valid for an empty graph; anywhere else it is corrupt
        # input, not "zero degradation".
        if predicted <= 0:
            if schedule.graph.num_nodes == 0:
                return 0.0
            raise ScheduleError(
                f"predicted makespan {predicted!r} is not positive for "
                f"a {schedule.graph.num_nodes}-node graph — corrupt "
                "prediction, degradation undefined")
        return 100.0 * (x - predicted) / predicted

    row = RobustnessRow(
        algorithm=algorithm,
        klass=klass,
        graph=schedule.graph.name,
        num_nodes=schedule.graph.num_nodes,
        predicted=predicted,
        trials=trials,
        mean=mean,
        std=float(makespans.std()),
        p50=float(np.percentile(makespans, 50)),
        p95=p95,
        worst=float(makespans.max()),
        mean_degradation_pct=float(degr(mean)),
        p95_degradation_pct=float(degr(p95)),
        slack=schedule_slack(schedule),
    )
    return row, makespans


@dataclass(frozen=True)
class _RankRow:
    """Adapter row for :func:`repro.metrics.ranking.average_ranks`."""

    algorithm: str
    graph: str
    predicted: float
    simulated: float


def robustness_ranking(rows: Sequence[RobustnessRow]
                       ) -> List[Tuple[str, float, float, float]]:
    """Rank algorithms by simulated mean makespan vs predicted.

    Returns ``(algorithm, predicted rank, simulated rank, shift)``
    sorted by simulated rank; ``shift`` > 0 means the algorithm ranks
    *worse* under execution noise than the paper's static comparison
    suggests.  Ranks are the paper-style per-graph average ranks from
    :mod:`repro.metrics.ranking`.
    """
    adapted = [
        _RankRow(r.algorithm, r.graph, r.predicted, r.mean) for r in rows
    ]
    predicted = dict(average_ranks(adapted, key="predicted"))
    simulated = average_ranks(adapted, key="simulated")
    return [
        (alg, predicted[alg], sim_rank, sim_rank - predicted[alg])
        for alg, sim_rank in simulated
    ]

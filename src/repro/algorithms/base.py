"""Scheduler interface and registry.

Every algorithm is a :class:`Scheduler` subclass exposing
``schedule(graph, machine) -> Schedule`` and three bits of metadata that
mirror the paper's taxonomy (Section 3/4): the class (BNP/UNC/APN) and
the design-decision flags the paper's analysis keys on (critical-path
based?, dynamic priority?, insertion?).

Algorithms self-register via the :func:`register` decorator; lookups go
through :func:`get_scheduler` / :func:`list_schedulers`.  Besides the
registered acronyms, :func:`get_scheduler` resolves *component spec*
strings (``param:prio=blevel,ready=fifo,proc=est,insert=on``) into
parameterized schedulers assembled by
:mod:`repro.algorithms.components` — every layer that takes an
algorithm name (benchmarks, scenarios, adversarial search, the
simulator) therefore accepts synthesized schedulers for free.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Type

from ..core.graph import TaskGraph
from ..core.machine import Machine, NetworkMachine
from ..core.schedule import Schedule
from ..obs import trace as _trace

__all__ = [
    "Scheduler",
    "register",
    "get_scheduler",
    "list_schedulers",
    "SCHEDULER_CLASSES",
]

SCHEDULER_CLASSES = ("BNP", "UNC", "APN")

_REGISTRY: Dict[str, Type["Scheduler"]] = {}


class Scheduler(abc.ABC):
    """Abstract static DAG scheduler.

    Class attributes
    ----------------
    name:
        Paper acronym (``"MCP"``, ``"DSC"``, ...).
    klass:
        ``"BNP"``, ``"UNC"`` or ``"APN"``.
    cp_based / dynamic_priority / uses_insertion:
        Taxonomy flags used by the analysis tables.
    """

    name: str = "?"
    klass: str = "?"
    cp_based: bool = False
    dynamic_priority: bool = False
    uses_insertion: bool = False
    complexity: str = "?"

    def schedule(self, graph: TaskGraph, machine: Machine) -> Schedule:
        """Produce a complete schedule of ``graph`` on ``machine``."""
        self._check_machine(machine)
        with _trace.span("sched.schedule", algorithm=self.name,
                         graph=graph.name, nodes=graph.num_nodes):
            sched = self._run(graph, machine)
        if not sched.is_complete():
            raise RuntimeError(
                f"{self.name} returned an incomplete schedule"
            )  # pragma: no cover - defensive
        return sched

    @abc.abstractmethod
    def _run(self, graph: TaskGraph, machine: Machine) -> Schedule:
        """Algorithm body; subclasses may assume a validated machine."""

    def _check_machine(self, machine: Machine) -> None:
        if self.klass == "APN" and not isinstance(machine, NetworkMachine):
            raise TypeError(
                f"{self.name} is an APN algorithm and needs a NetworkMachine"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.klass} scheduler {self.name}>"


def register(cls: Type[Scheduler]) -> Type[Scheduler]:
    """Class decorator adding ``cls`` to the global registry."""
    key = cls.name.upper()
    if key in _REGISTRY and _REGISTRY[key] is not cls:
        raise ValueError(f"duplicate scheduler name {cls.name!r}")
    if cls.klass not in SCHEDULER_CLASSES:
        raise ValueError(f"{cls.name}: unknown class {cls.klass!r}")
    _REGISTRY[key] = cls
    return cls


_INSTANCES: Dict[str, Scheduler] = {}


def get_scheduler(name: str) -> Scheduler:
    """Resolve ``name`` to a ready-to-call scheduler instance.

    Accepts registered acronyms case-insensitively (``"mcp"``),
    component spec strings (``"param:prio=alap,ready=prio,proc=est,
    insert=on"``; see :mod:`repro.algorithms.components` for the
    grammar), and online spec strings (``"online:mcp,imode=mean"``;
    see :mod:`repro.sim.online` — the schedule is the zero-noise
    event-driven execution under the spec's information mode).
    Schedulers are stateless, so instances are memoized — repeated
    lookups of the same name (or of two spellings of the same spec)
    return the same object.
    """
    if name.strip().lower().startswith("param:"):
        from .components import ParamScheduler, parse_spec

        spec = parse_spec(name)
        key = spec.canonical()
        inst = _INSTANCES.get(key)
        if inst is None:
            inst = ParamScheduler(spec)
            _INSTANCES[key] = inst
        return inst
    if name.strip().lower().startswith("online:"):
        from ..sim.online import OnlineScheduler, parse_online_spec

        ospec = parse_online_spec(name)
        key = ospec.canonical()
        inst = _INSTANCES.get(key)
        if inst is None:
            inst = OnlineScheduler(ospec)
            _INSTANCES[key] = inst
        return inst
    try:
        cls = _REGISTRY[name.upper()]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown scheduler {name!r}; known: {known} "
            f"(or a 'param:' component spec / 'online:' spec)") from None
    inst = _INSTANCES.get(name.upper())
    if inst is None or type(inst) is not cls:
        # ``type(inst) is not cls`` guards against re-registration
        # under an existing key (tests do this): the memo must never
        # outlive the class it instantiated.
        inst = cls()
        _INSTANCES[name.upper()] = inst
    return inst


def list_schedulers(klass: Optional[str] = None) -> List[str]:
    """Registered scheduler names, optionally filtered by class."""
    names = [
        name
        for name, cls in _REGISTRY.items()
        if klass is None or cls.klass == klass.upper()
    ]
    return sorted(names)

"""Scheduler interface and registry.

Every algorithm is a :class:`Scheduler` subclass exposing
``schedule(graph, machine) -> Schedule`` and three bits of metadata that
mirror the paper's taxonomy (Section 3/4): the class (BNP/UNC/APN) and
the design-decision flags the paper's analysis keys on (critical-path
based?, dynamic priority?, insertion?).

Algorithms self-register via the :func:`register` decorator; lookups go
through :func:`get_scheduler` / :func:`list_schedulers`.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Type

from ..core.graph import TaskGraph
from ..core.machine import Machine, NetworkMachine
from ..core.schedule import Schedule

__all__ = [
    "Scheduler",
    "register",
    "get_scheduler",
    "list_schedulers",
    "SCHEDULER_CLASSES",
]

SCHEDULER_CLASSES = ("BNP", "UNC", "APN")

_REGISTRY: Dict[str, Type["Scheduler"]] = {}


class Scheduler(abc.ABC):
    """Abstract static DAG scheduler.

    Class attributes
    ----------------
    name:
        Paper acronym (``"MCP"``, ``"DSC"``, ...).
    klass:
        ``"BNP"``, ``"UNC"`` or ``"APN"``.
    cp_based / dynamic_priority / uses_insertion:
        Taxonomy flags used by the analysis tables.
    """

    name: str = "?"
    klass: str = "?"
    cp_based: bool = False
    dynamic_priority: bool = False
    uses_insertion: bool = False
    complexity: str = "?"

    def schedule(self, graph: TaskGraph, machine: Machine) -> Schedule:
        """Produce a complete schedule of ``graph`` on ``machine``."""
        self._check_machine(machine)
        sched = self._run(graph, machine)
        if not sched.is_complete():
            raise RuntimeError(
                f"{self.name} returned an incomplete schedule"
            )  # pragma: no cover - defensive
        return sched

    @abc.abstractmethod
    def _run(self, graph: TaskGraph, machine: Machine) -> Schedule:
        """Algorithm body; subclasses may assume a validated machine."""

    def _check_machine(self, machine: Machine) -> None:
        if self.klass == "APN" and not isinstance(machine, NetworkMachine):
            raise TypeError(
                f"{self.name} is an APN algorithm and needs a NetworkMachine"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.klass} scheduler {self.name}>"


def register(cls: Type[Scheduler]) -> Type[Scheduler]:
    """Class decorator adding ``cls`` to the global registry."""
    key = cls.name.upper()
    if key in _REGISTRY and _REGISTRY[key] is not cls:
        raise ValueError(f"duplicate scheduler name {cls.name!r}")
    if cls.klass not in SCHEDULER_CLASSES:
        raise ValueError(f"{cls.name}: unknown class {cls.klass!r}")
    _REGISTRY[key] = cls
    return cls


def get_scheduler(name: str) -> Scheduler:
    """Instantiate the scheduler registered under ``name`` (case-insensitive)."""
    try:
        return _REGISTRY[name.upper()]()
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown scheduler {name!r}; known: {known}") from None


def list_schedulers(klass: Optional[str] = None) -> List[str]:
    """Registered scheduler names, optionally filtered by class."""
    names = [
        name
        for name, cls in _REGISTRY.items()
        if klass is None or cls.klass == klass.upper()
    ]
    return sorted(names)

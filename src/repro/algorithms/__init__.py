"""The 15 scheduling algorithms benchmarked in the paper.

Importing this package registers every algorithm; look them up with
:func:`get_scheduler` or enumerate with :func:`list_schedulers`.

==========  =====  =========================================
Acronym     Class  Origin
==========  =====  =========================================
HLFET       BNP    Adam, Chandy & Dickson (1974)
ISH         BNP    Kruatrachue & Lewis (1987)
MCP         BNP    Wu & Gajski (1990)
ETF         BNP    Hwang, Chow, Anger & Lee (1989)
DLS         BNP    Sih & Lee (1993)
LAST        BNP    Baxter & Patel (1989)
EZ          UNC    Sarkar (1989)
LC          UNC    Kim & Browne (1988)
DSC         UNC    Yang & Gerasoulis (1994)
MD          UNC    Wu & Gajski (1990)
DCP         UNC    Kwok & Ahmad (1996)
MH          APN    El-Rewini & Lewis (1990)
DLS-APN     APN    Sih & Lee (1993)
BU          APN    Mehdiratta & Ghose (1994)
BSA         APN    Kwok & Ahmad (1995)
==========  =====  =========================================

Beyond the 15 monoliths, :func:`get_scheduler` also accepts ``param:``
component spec strings (``"param:prio=blevel,ready=prio,proc=etf,
insert=off"``) that synthesize a BNP list scheduler from pluggable
components; the six BNP rows above are reproducible bit-for-bit as
named points of that space (see :mod:`repro.algorithms.components`).
"""

from .base import (
    SCHEDULER_CLASSES,
    Scheduler,
    get_scheduler,
    list_schedulers,
    register,
)
from . import bnp, unc, apn  # noqa: F401  (imports register the algorithms)
from .components import BNP_SPECS, ParamScheduler, SchedulerSpec, parse_spec
from .apn import BSA, BU, DLSAPN, MH, cpn_dominant_list, simulate_on_network
from .bnp import DLS, ETF, HLFET, ISH, LAST, MCP
from .mapping import (
    mapping_makespan,
    schedule_from_mapping,
    simulate_fixed_sequences,
)
from .unc import DCP, DSC, EZ, LC, MD

__all__ = [
    "Scheduler",
    "register",
    "get_scheduler",
    "list_schedulers",
    "SCHEDULER_CLASSES",
    "BNP_SPECS",
    "ParamScheduler",
    "SchedulerSpec",
    "parse_spec",
    "HLFET",
    "ISH",
    "MCP",
    "ETF",
    "DLS",
    "LAST",
    "EZ",
    "LC",
    "DSC",
    "MD",
    "DCP",
    "MH",
    "DLSAPN",
    "BU",
    "BSA",
    "cpn_dominant_list",
    "simulate_on_network",
    "mapping_makespan",
    "schedule_from_mapping",
    "simulate_fixed_sequences",
]

"""Turning mappings and clusterings into concrete schedules.

Several algorithms decide *where* tasks go separately from *when* they
run:

* EZ and LC produce a clustering and rely on a list simulation to order
  and time the tasks (Sarkar's execution model);
* MD and DCP pin tentative start times while deciding the mapping, then
  need a consistency pass to turn (mapping, per-processor order) into a
  feasible schedule;
* BU and BSA (APN) fix a mapping/order and need the same pass with
  network message scheduling (see :mod:`repro.algorithms.apn.netsim`).

This module implements the two clique-model passes.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence

from ..core.attributes import blevel
from ..core.exceptions import ScheduleError
from ..core.graph import TaskGraph
from ..core.schedule import Schedule

__all__ = [
    "schedule_from_mapping",
    "mapping_makespan",
    "simulate_fixed_sequences",
]


def mapping_makespan(graph: TaskGraph, proc_of: Sequence[int],
                     priority: Optional[Sequence[float]] = None) -> float:
    """Makespan of list-simulating ``graph`` under a fixed mapping.

    Sarkar's execution model: every processor runs its tasks serially;
    among ready tasks the one with the highest ``priority`` (default:
    static b-level) starts next on its assigned processor, at
    ``max(processor available, data ready)``.  Communication inside a
    processor is free.  This is the estimator EZ minimises while zeroing
    edges.
    """
    if priority is None:
        priority = blevel(graph)
    n = graph.num_nodes
    remaining = [graph.in_degree(i) for i in range(n)]
    finish = [0.0] * n
    proc_free: Dict[int, float] = {}
    heap = [(-priority[i], i) for i in range(n) if remaining[i] == 0]
    heapq.heapify(heap)
    makespan = 0.0
    weights = graph.weights
    while heap:
        _, node = heapq.heappop(heap)
        p = proc_of[node]
        drt = 0.0
        parents, costs = graph.pred_pairs(node)
        for parent, c in zip(parents, costs):
            arr = finish[parent]
            if proc_of[parent] != p:
                arr += c
            if arr > drt:
                drt = arr
        start = max(proc_free.get(p, 0.0), drt)
        end = start + float(weights[node])
        finish[node] = end
        proc_free[p] = end
        if end > makespan:
            makespan = end
        for child in graph.successors(node):
            remaining[child] -= 1
            if remaining[child] == 0:
                heapq.heappush(heap, (-priority[child], child))
    return makespan


def schedule_from_mapping(graph: TaskGraph, proc_of: Sequence[int],
                          num_procs: int,
                          priority: Optional[Sequence[float]] = None
                          ) -> Schedule:
    """Full :class:`Schedule` version of :func:`mapping_makespan`.

    ``proc_of`` may use arbitrary processor labels; they are compacted
    onto ``0..k-1`` in first-use order (so cluster counts equal
    processors used).
    """
    if priority is None:
        priority = blevel(graph)
    compact: Dict[int, int] = {}
    for node in sorted(graph.nodes(), key=lambda i: (priority[i], -i), reverse=True):
        compact.setdefault(proc_of[node], len(compact))
    if len(compact) > num_procs:
        raise ScheduleError(
            f"mapping uses {len(compact)} processors but machine has {num_procs}"
        )
    n = graph.num_nodes
    remaining = [graph.in_degree(i) for i in range(n)]
    schedule = Schedule(graph, num_procs)
    heap = [(-priority[i], i) for i in range(n) if remaining[i] == 0]
    heapq.heapify(heap)
    while heap:
        _, node = heapq.heappop(heap)
        p = compact[proc_of[node]]
        drt = schedule.data_ready_time(node, p)
        start = max(schedule.proc_ready_time(p), drt)
        schedule.place(node, p, start)
        for child in graph.successors(node):
            remaining[child] -= 1
            if remaining[child] == 0:
                heapq.heappush(heap, (-priority[child], child))
    return schedule


def simulate_fixed_sequences(graph: TaskGraph,
                             sequences: List[List[int]],
                             num_procs: int) -> Schedule:
    """Compute start times for fixed per-processor task sequences.

    Each task waits for its graph parents *and* for the task preceding it
    in its processor's sequence.  If the sequences are inconsistent with
    the precedence order (a descendant queued before an ancestor on the
    same processor), the offending processors' sequences are re-sorted by
    topological index and the pass restarted — schedulers that pin
    tentative orders (MD, DCP) may rarely produce such inversions.
    """
    topo_index = {n: i for i, n in enumerate(graph.topological_order)}
    seqs = [list(s) for s in sequences]
    for _attempt in range(2):
        schedule = _try_sequences(graph, seqs, num_procs)
        if schedule is not None:
            return schedule
        seqs = [sorted(s, key=topo_index.__getitem__) for s in seqs]
    raise ScheduleError("fixed-sequence simulation failed")  # pragma: no cover


def _try_sequences(graph: TaskGraph, sequences: List[List[int]],
                   num_procs: int) -> Optional[Schedule]:
    n = graph.num_nodes
    proc_of: Dict[int, int] = {}
    pos: Dict[int, int] = {}
    for p, seq in enumerate(sequences):
        for i, node in enumerate(seq):
            proc_of[node] = p
            pos[node] = i
    if len(proc_of) != n:
        raise ScheduleError("sequences must cover every node exactly once")
    remaining = [graph.in_degree(i) for i in range(n)]
    next_slot = [0] * len(sequences)
    schedule = Schedule(graph, num_procs)
    ready = [i for i in range(n) if remaining[i] == 0]
    placed = 0
    while placed < n:
        progress = False
        new_ready: List[int] = []
        for node in list(ready):
            p = proc_of[node]
            if pos[node] != next_slot[p]:
                continue  # not yet this node's turn on its processor
            drt = schedule.data_ready_time(node, p)
            start = max(schedule.proc_ready_time(p), drt)
            schedule.place(node, p, start)
            ready.remove(node)
            next_slot[p] += 1
            placed += 1
            progress = True
            for child in graph.successors(node):
                remaining[child] -= 1
                if remaining[child] == 0:
                    new_ready.append(child)
        ready.extend(new_ready)
        if not progress:
            return None  # sequence/precedence deadlock
    return schedule

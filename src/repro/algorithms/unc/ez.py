"""EZ — Edge Zeroing (Sarkar, 1989).

Clustering by edge zeroing: examine edges in descending order of
communication cost; merge the two endpoint clusters ("zero" the edge)
whenever the merge does not increase the estimated parallel time under
Sarkar's list-simulation model.  Ordering within clusters follows static
b-levels.

The paper classifies EZ as a non-CP-based, non-greedy UNC algorithm and
finds it middling on quality and heavy on processors (it never considers
processor economy).  Complexity O(e(v + e)).
"""

from __future__ import annotations

from ...core.attributes import blevel
from ...core.graph import TaskGraph
from ...core.machine import Machine
from ...core.schedule import Schedule
from ..base import Scheduler, register
from ..mapping import mapping_makespan, schedule_from_mapping

__all__ = ["EZ"]


@register
class EZ(Scheduler):
    name = "EZ"
    klass = "UNC"
    cp_based = False
    dynamic_priority = False
    uses_insertion = False
    complexity = "O(e(v+e))"

    def _run(self, graph: TaskGraph, machine: Machine) -> Schedule:
        prio = blevel(graph)
        cluster = list(graph.nodes())  # cluster id per node
        best = mapping_makespan(graph, cluster, prio)
        # Descending cost; ties by (u, v) for determinism.
        edges = sorted(graph.edges(), key=lambda t: (-t[2], t[0], t[1]))
        for u, v, _cost in edges:
            cu, cv = cluster[u], cluster[v]
            if cu == cv:
                continue
            trial = [cu if c == cv else c for c in cluster]
            length = mapping_makespan(graph, trial, prio)
            if length <= best + 1e-9:
                cluster = trial
                best = length
        return schedule_from_mapping(graph, cluster, machine.num_procs, prio)

"""LC — Linear Clustering (Kim & Browne, 1988).

Iterated critical-path extraction: find the longest path (nodes + edges)
over the still-unclustered subgraph, make its nodes one linear cluster
(zeroing the edges along it), remove them, repeat.  Every cluster is
*linear* — its tasks form a chain — which Kim & Browne argue mirrors the
natural structure of parallel computations.

CP-based (each iteration clusters a whole critical path) but pays no
attention to processor economy: the paper observes LC uses more than 100
processors on 500-node graphs (Section 6.4.2).  Complexity O(v(v+e)).
"""

from __future__ import annotations

from typing import List

from ...core.attributes import blevel
from ...core.graph import TaskGraph
from ...core.machine import Machine
from ...core.schedule import Schedule
from ..base import Scheduler, register
from ..mapping import schedule_from_mapping

__all__ = ["LC"]


@register
class LC(Scheduler):
    name = "LC"
    klass = "UNC"
    cp_based = True
    dynamic_priority = False
    uses_insertion = False
    complexity = "O(v(v+e))"

    def _run(self, graph: TaskGraph, machine: Machine) -> Schedule:
        n = graph.num_nodes
        cluster = [-1] * n
        next_cluster = 0
        unclustered = set(graph.nodes())
        while unclustered:
            path = self._longest_path(graph, unclustered)
            for node in path:
                cluster[node] = next_cluster
                unclustered.discard(node)
            next_cluster += 1
        return schedule_from_mapping(graph, cluster, machine.num_procs,
                                     blevel(graph))

    @staticmethod
    def _longest_path(graph: TaskGraph, alive: set) -> List[int]:
        """Longest (node+edge weight) path within the ``alive`` subgraph."""
        best_len = {}
        best_succ = {}
        weights = graph.weights
        for u in reversed(graph.topological_order):
            if u not in alive:
                continue
            wu = float(weights[u])
            length, succ = wu, None
            succs, costs = graph.succ_pairs(u)
            for s, c in zip(succs, costs):
                if s not in alive:
                    continue
                cand = wu + c + best_len[s]
                if cand > length + 1e-12 or (
                    abs(cand - length) <= 1e-12 and succ is not None and s < succ
                ):
                    length, succ = cand, s
            best_len[u] = length
            best_succ[u] = succ
        # Start node: maximise path length; ties toward the smaller id.
        start = max(sorted(best_len), key=lambda u: best_len[u])
        path = [start]
        while best_succ[path[-1]] is not None:
            path.append(best_succ[path[-1]])
        return path

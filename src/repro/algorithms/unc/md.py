"""MD — Mobility Directed scheduling (Wu & Gajski, 1990).

MD schedules nodes in order of *relative mobility*

    M(n) = (L' - (tlevel'(n) + blevel'(n))) / w(n)

where the primed quantities are recomputed on the *partially zeroed*
graph after every placement (edges between co-located nodes cost
nothing) and ``L'`` is the current critical-path length.  Nodes with
zero mobility lie on the current critical path, so MD is CP-based with a
fully dynamic priority.  A node is placed on the first already-used
processor that can hold it without stretching the critical path (start
within its ALAP window, insertion allowed); only if none can is a new
processor opened — which is why the paper finds MD using relatively few
processors (Section 6.4.2) at the cost of the largest UNC running times
(Table 6).

Deviation from the original: Wu & Gajski allow limited re-timing of
already-placed nodes when squeezing a new node in; we pin placed nodes
and resolve any resulting tentative inconsistency with a final
fixed-sequence timing pass (:func:`simulate_fixed_sequences`).
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Set, Tuple

from ...core.graph import TaskGraph
from ...core.kernel import blevel_zeroed
from ...core.machine import Machine
from ...core.schedule import Schedule
from ..base import Scheduler, register
from ..mapping import simulate_fixed_sequences

__all__ = ["MD"]

_EPS = 1e-9


@register
class MD(Scheduler):
    name = "MD"
    klass = "UNC"
    cp_based = True
    dynamic_priority = True
    uses_insertion = True
    complexity = "O(v^3)"

    def _run(self, graph: TaskGraph, machine: Machine) -> Schedule:
        n = graph.num_nodes
        zeroed: Set[Tuple[int, int]] = set()
        pinned: Dict[int, float] = {}
        proc_of: Dict[int, int] = {}
        # Per processor: parallel sorted lists of (start, finish, node).
        proc_starts: List[List[float]] = []
        proc_finishes: List[List[float]] = []
        proc_nodes: List[List[int]] = []

        for _step in range(n):
            t = self._tlevels(graph, zeroed, pinned)
            b = self._blevels(graph, zeroed)
            cp = max(t[i] + b[i] for i in range(n))
            # Min relative mobility; ties toward smaller t-level then id.
            node = min(
                (i for i in range(n) if i not in pinned),
                key=lambda i: ((cp - (t[i] + b[i])) / graph.weight(i), t[i], i),
            )
            alst = cp - b[node]  # latest start not stretching the CP
            choice = None
            for p in range(len(proc_starts)):
                est = self._est_on(graph, node, p, t, pinned, proc_of)
                slot = self._find_slot(proc_starts[p], proc_finishes[p], est,
                                       graph.weight(node))
                if slot <= alst + _EPS:
                    choice = (p, slot)
                    break
            if choice is None:
                # Fresh processor: the node starts at its dynamic t-level,
                # which by definition of cp satisfies the mobility window.
                proc_starts.append([])
                proc_finishes.append([])
                proc_nodes.append([])
                choice = (len(proc_starts) - 1, t[node])
            p, start = choice
            for resident in proc_nodes[p]:
                if graph.has_edge(node, resident):
                    zeroed.add((node, resident))
                if graph.has_edge(resident, node):
                    zeroed.add((resident, node))
            i = bisect.bisect_left(proc_starts[p], start)
            proc_starts[p].insert(i, start)
            proc_finishes[p].insert(i, start + graph.weight(node))
            proc_nodes[p].insert(i, node)
            pinned[node] = start
            proc_of[node] = p

        sequences = [list(nodes) for nodes in proc_nodes]
        return simulate_fixed_sequences(graph, sequences, machine.num_procs)

    # ------------------------------------------------------------------
    @staticmethod
    def _tlevels(graph: TaskGraph, zeroed, pinned) -> List[float]:
        t = [0.0] * graph.num_nodes
        w = graph.weights
        for u in graph.topological_order:
            best = 0.0
            preds, costs = graph.pred_pairs(u)
            for p, c in zip(preds, costs):
                if (p, u) in zeroed:
                    c = 0.0
                cand = t[p] + w[p] + c
                if cand > best:
                    best = cand
            pin = pinned.get(u)
            if pin is not None and pin > best:
                best = pin
            t[u] = best
        return t

    @staticmethod
    def _blevels(graph: TaskGraph, zeroed) -> List[float]:
        # Unlike _tlevels (which folds in the pinned start times), the
        # b-level needs nothing MD-specific: it is exactly the kernel's
        # zeroed-edge sweep.
        return blevel_zeroed(graph, zeroed)

    @staticmethod
    def _est_on(graph: TaskGraph, node: int, proc: int, t, pinned,
                proc_of) -> float:
        """Earliest data-constrained start of ``node`` on ``proc``.

        Edges from parents already resident on ``proc`` are treated as
        zeroed; unscheduled parents contribute their dynamic t-level.
        """
        est = 0.0
        for p in graph.predecessors(node):
            if p in pinned:
                arr = pinned[p] + graph.weight(p)
                if proc_of[p] != proc:
                    arr += graph.comm_cost(p, node)
            else:
                arr = t[p] + graph.weight(p) + graph.comm_cost(p, node)
            if arr > est:
                est = arr
        return est

    @staticmethod
    def _find_slot(starts: List[float], finishes: List[float], est: float,
                   duration: float) -> float:
        """Earliest insertion slot >= est among pinned intervals."""
        if not starts:
            return est
        if est + duration <= starts[0] + _EPS:
            return est
        i = bisect.bisect_right(finishes, est)
        if i > 0:
            i -= 1
        for k in range(i, len(starts) - 1):
            gap = max(est, finishes[k])
            if gap + duration <= starts[k + 1] + _EPS:
                return gap
        return max(est, finishes[-1])

"""DSC — Dominant Sequence Clustering (Yang & Gerasoulis, 1994).

List-driven clustering steered by the *dominant sequence*: the priority
of a free node (one whose parents are all examined) is
``tlevel + blevel``, the length of the longest path through it.  The
highest-priority free node either joins the cluster of (a subset of) its
parents — if appending it there *reduces* its dynamic t-level — or opens
a fresh cluster.  The t-level is dynamic: zeroed edges shrink it as
clusters grow; the b-level is computed once on the original graph.

The paper's findings for DSC: good solution quality (dynamic critical
path, dynamic list), near-minimal running time among UNC algorithms, but
a large processor count — "it uses a new processor for every node whose
start time cannot be reduced on a processor already in use"
(Section 6.4.2).  Complexity O((v + e) log v).

Deviation from the original: the DSRW (dominant sequence reduction
warranty) rule for partially-free nodes is not implemented; merges are
accepted purely on the t-level reduction test.  This affects tie-level
merge choices only and none of the paper's qualitative conclusions.
"""

from __future__ import annotations

import heapq
from typing import Dict, List

from ...core.attributes import blevel
from ...core.graph import TaskGraph
from ...core.kernel import grouped_arrival_profile
from ...core.machine import Machine
from ...core.schedule import Schedule
from ..base import Scheduler, register

__all__ = ["DSC"]


@register
class DSC(Scheduler):
    name = "DSC"
    klass = "UNC"
    cp_based = True
    dynamic_priority = True
    uses_insertion = False
    complexity = "O((v+e) log v)"

    def _run(self, graph: TaskGraph, machine: Machine) -> Schedule:
        n = graph.num_nodes
        b = blevel(graph)
        w = graph.weights
        cluster_of = list(range(n))      # initially one cluster per node
        cluster_tail: Dict[int, float] = {}  # cluster id -> finish of last task
        start = [0.0] * n
        finish = [0.0] * n               # start + weight, set when examined
        examined = [False] * n
        waiting = [graph.in_degree(i) for i in range(n)]

        # Every parent of a popped node is examined, so its finish and
        # cluster are final: one O(deg) arrival profile answers the
        # dynamic t-level of the node on *any* candidate cluster in
        # O(1), instead of rescanning all parents per candidate.
        def profile(node: int):
            return grouped_arrival_profile(graph, node, cluster_of, finish)

        heap: List = []
        for node in graph.entry_nodes:
            heapq.heappush(heap, (-(0.0 + b[node]), node))
        scheduled_count = 0
        while heap:
            _, node = heapq.heappop(heap)
            if examined[node]:  # stale heap entry
                continue
            prof = profile(node)
            # Own cluster is still a singleton: every parent is remote.
            t_alone = prof.drt(cluster_of[node])
            # Candidate destinations: the clusters of the node's parents.
            preds, _costs = graph.pred_pairs(node)
            best_t, best_cluster = t_alone, None
            for c in sorted({cluster_of[p] for p in preds}):
                t = max(cluster_tail.get(c, 0.0), prof.drt(c))
                if t < best_t - 1e-9:
                    best_t, best_cluster = t, c
            if best_cluster is not None:
                cluster_of[node] = best_cluster
            start[node] = best_t
            finish[node] = best_t + w[node]
            cluster_tail[cluster_of[node]] = finish[node]
            examined[node] = True
            scheduled_count += 1
            for child in graph.successors(node):
                waiting[child] -= 1
                if waiting[child] == 0:
                    # Child's dynamic t-level is now fixed (own cluster).
                    t_child = profile(child).drt(cluster_of[child])
                    heapq.heappush(heap, (-(t_child + b[child]), child))
        assert scheduled_count == n
        return self._build(graph, machine, cluster_of, start)

    @staticmethod
    def _build(graph: TaskGraph, machine: Machine, cluster_of: List[int],
               start: List[float]) -> Schedule:
        compact: Dict[int, int] = {}
        order = sorted(graph.nodes(), key=lambda i: (start[i], i))
        for node in order:
            compact.setdefault(cluster_of[node], len(compact))
        schedule = Schedule(graph, machine.num_procs)
        for node in order:
            schedule.place(node, compact[cluster_of[node]], start[node])
        return schedule

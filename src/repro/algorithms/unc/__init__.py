"""UNC (unbounded number of clusters) scheduling algorithms.

Clustering-based schedulers that may use as many processors as they
like; fully connected contention-free interconnect.  The five algorithms
benchmarked in the paper: EZ, LC, DSC, MD and DCP.
"""

from .dcp import DCP
from .dsc import DSC
from .ez import EZ
from .lc import LC
from .md import MD

__all__ = ["EZ", "LC", "DSC", "MD", "DCP"]

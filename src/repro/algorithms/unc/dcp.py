"""DCP — Dynamic Critical Path scheduling (Kwok & Ahmad, 1996).

The best UNC performer in the paper.  Three ideas distinguish DCP:

1. **Dynamic critical path** — after every placement the absolute
   earliest and latest start times (AEST / ALST) of all nodes are
   recomputed on the partially scheduled graph; the next node is the
   unscheduled one with minimum mobility ``ALST - AEST`` (a node on the
   current dynamic critical path), breaking ties toward smaller ALST.
2. **Restricted candidate processors** — only processors already holding
   one of the node's parents or children (plus one fresh processor) are
   examined, which both speeds the search and economises processors: "as
   long as the schedule length is not affected, it tries to schedule a
   child to a processor holding its parent even though its start time
   may not reduce" (Section 6.4.2).
3. **Look-ahead** — a candidate processor is scored by the start time it
   gives the node *plus* the start time it would give the node's
   *critical child* (the unscheduled child with the smallest ALST) on
   that same processor; minimising the sum avoids greedy placements that
   strangle the rest of the critical path.

Complexity O(v^3).  Final start times are produced by a fixed-sequence
timing pass over the (mapping, per-processor order) DCP decides.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Tuple

from ...core.graph import TaskGraph
from ...core.machine import Machine
from ...core.schedule import Schedule
from ..base import Scheduler, register
from ..mapping import simulate_fixed_sequences

__all__ = ["DCP"]

_EPS = 1e-9
_INF = float("inf")


@register
class DCP(Scheduler):
    name = "DCP"
    klass = "UNC"
    cp_based = True
    dynamic_priority = True
    uses_insertion = True
    complexity = "O(v^3)"

    def _run(self, graph: TaskGraph, machine: Machine) -> Schedule:
        n = graph.num_nodes
        pinned: Dict[int, float] = {}
        proc_of: Dict[int, int] = {}
        proc_starts: List[List[float]] = []
        proc_finishes: List[List[float]] = []
        proc_nodes: List[List[int]] = []

        def comm(u: int, v: int) -> float:
            """Edge cost under the current partial assignment."""
            if u in proc_of and v in proc_of and proc_of[u] == proc_of[v]:
                return 0.0
            return graph.comm_cost(u, v)

        for _step in range(n):
            aest = self._aest(graph, pinned, comm)
            alst = self._alst(graph, pinned, comm, aest)
            node = min(
                (i for i in range(n) if i not in pinned),
                key=lambda i: (alst[i] - aest[i], alst[i], i),
            )
            candidates = sorted(
                {proc_of[x] for x in graph.predecessors(node) if x in proc_of}
                | {proc_of[x] for x in graph.successors(node) if x in proc_of}
            )
            if len(proc_starts) < n:
                candidates.append(len(proc_starts))  # one fresh processor
            if not candidates:
                candidates = [len(proc_starts)]
            cc = self._critical_child(graph, node, pinned, alst)
            best: Optional[Tuple[float, float, int, float]] = None
            for p in candidates:
                fresh = p == len(proc_starts)
                starts = [] if fresh else proc_starts[p]
                fins = [] if fresh else proc_finishes[p]
                est = self._est_on(graph, node, p, aest, pinned, proc_of)
                slot = _find_slot(starts, fins, est, graph.weight(node))
                if cc is not None:
                    slot_cc = self._lookahead(graph, cc, node, slot, p, aest,
                                              pinned, proc_of, starts, fins)
                    score = slot + slot_cc
                else:
                    score = slot
                key = (score, slot, p, slot)
                if best is None or key[:3] < (best[0], best[1], best[2]):
                    best = (score, slot, p, slot)
            _, _, p, start = best
            if p == len(proc_starts):
                proc_starts.append([])
                proc_finishes.append([])
                proc_nodes.append([])
            i = bisect.bisect_left(proc_starts[p], start)
            proc_starts[p].insert(i, start)
            proc_finishes[p].insert(i, start + graph.weight(node))
            proc_nodes[p].insert(i, node)
            pinned[node] = start
            proc_of[node] = p

        sequences = [list(nodes) for nodes in proc_nodes]
        return simulate_fixed_sequences(graph, sequences, machine.num_procs)

    # ------------------------------------------------------------------
    @staticmethod
    def _aest(graph: TaskGraph, pinned, comm) -> List[float]:
        """Absolute earliest start times on the partially scheduled graph.

        Scheduled nodes sit at their pinned start (floored up if a parent
        placement has since pushed their inputs later — the final timing
        pass resolves such tentative inconsistencies).
        """
        a = [0.0] * graph.num_nodes
        for u in graph.topological_order:
            best = 0.0
            for p in graph.predecessors(u):
                cand = a[p] + graph.weight(p) + comm(p, u)
                if cand > best:
                    best = cand
            pin = pinned.get(u)
            if pin is not None and pin > best:
                best = pin
            a[u] = best
        return a

    @staticmethod
    def _alst(graph: TaskGraph, pinned, comm, aest) -> List[float]:
        """Absolute latest start times w.r.t. the dynamic CP length."""
        dcpl = max(aest[i] + graph.weight(i) for i in graph.nodes())
        al = [0.0] * graph.num_nodes
        for u in reversed(graph.topological_order):
            pin = pinned.get(u)
            if pin is not None:
                al[u] = pin
                continue
            best = dcpl - graph.weight(u)
            for s in graph.successors(u):
                cand = al[s] - comm(u, s) - graph.weight(u)
                if cand < best:
                    best = cand
            al[u] = best
        return al

    @staticmethod
    def _critical_child(graph: TaskGraph, node: int, pinned,
                        alst) -> Optional[int]:
        """Unscheduled child with the smallest ALST (ties: smaller id)."""
        cands = [s for s in graph.successors(node) if s not in pinned]
        if not cands:
            return None
        return min(cands, key=lambda s: (alst[s], s))

    @staticmethod
    def _est_on(graph: TaskGraph, node: int, proc: int, aest, pinned,
                proc_of) -> float:
        est = 0.0
        for p in graph.predecessors(node):
            arr = aest[p] + graph.weight(p)
            if not (p in proc_of and proc_of[p] == proc):
                arr += graph.comm_cost(p, node)
            if arr > est:
                est = arr
        return est

    @staticmethod
    def _lookahead(graph: TaskGraph, cc: int, node: int, node_slot: float,
                   proc: int, aest, pinned, proc_of, starts, fins) -> float:
        """Start the critical child would get on ``proc`` next to ``node``."""
        est = 0.0
        for q in graph.predecessors(cc):
            if q == node:
                arr = node_slot + graph.weight(node)  # co-located, comm-free
            else:
                arr = aest[q] + graph.weight(q)
                if not (q in proc_of and proc_of[q] == proc):
                    arr += graph.comm_cost(q, cc)
            if arr > est:
                est = arr
        # Search the processor's gaps with the node tentatively inserted.
        i = bisect.bisect_left(starts, node_slot)
        t_starts = starts[:i] + [node_slot] + starts[i:]
        t_fins = fins[:i] + [node_slot + graph.weight(node)] + fins[i:]
        return _find_slot(t_starts, t_fins, est, graph.weight(cc))


def _find_slot(starts: List[float], finishes: List[float], est: float,
               duration: float) -> float:
    """Earliest insertion slot >= est among sorted busy intervals."""
    if not starts:
        return est
    if est + duration <= starts[0] + _EPS:
        return est
    i = bisect.bisect_right(finishes, est)
    if i > 0:
        i -= 1
    for k in range(i, len(starts) - 1):
        gap = max(est, finishes[k])
        if gap + duration <= starts[k + 1] + _EPS:
            return gap
    return max(est, finishes[-1])

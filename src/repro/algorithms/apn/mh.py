"""MH — Mapping Heuristic (El-Rewini & Lewis, 1990).

List scheduling generalised to arbitrary processor networks: node
priority is the b-level; for the selected ready node every processor is
scored by the finish time the node would achieve there, where message
delays are estimated against the current state of the network (the
original keeps a routing table of link utilisation; we query the actual
per-channel timelines, a strictly more precise realisation of the same
idea).  Messages for the chosen processor are then committed to the
links hop by hop.

The paper observes MH "yields fairly long schedule lengths for large
graphs" relative to BSA but behaves reasonably on small ones.
Complexity O(v^2 p^3) in the original analysis.
"""

from __future__ import annotations

from typing import Tuple

from ...core.attributes import blevel
from ...core.graph import TaskGraph
from ...core.machine import Machine, NetworkMachine
from ...core.schedule import Schedule
from ...network.contention import LinkSchedule
from ..base import Scheduler, register
from ...core.listsched import ReadyTracker

__all__ = ["MH"]


@register
class MH(Scheduler):
    name = "MH"
    klass = "APN"
    cp_based = False
    dynamic_priority = False
    uses_insertion = False
    complexity = "O(v^2 p^3)"

    def _run(self, graph: TaskGraph, machine: Machine) -> Schedule:
        assert isinstance(machine, NetworkMachine)
        topo = machine.topology
        prio = blevel(graph)
        links = LinkSchedule(topo)
        schedule = Schedule(graph, topo.num_procs)
        ready = ReadyTracker(graph)
        while not ready.all_scheduled():
            node = max(ready.iter_ready(), key=lambda n: (prio[n], -n))
            best: Tuple[float, int] | None = None
            for p in range(topo.num_procs):
                est = self._probe_est(graph, schedule, links, node, p)
                finish = est + graph.weight(node)
                if best is None or (finish, p) < best:
                    best = (finish, p)
            _, proc = best
            start = self._commit(graph, schedule, links, node, proc)
            schedule.place(node, proc, start)
            ready.mark_scheduled(node)
        return schedule

    @staticmethod
    def _probe_est(graph: TaskGraph, schedule: Schedule, links: LinkSchedule,
                   node: int, proc: int) -> float:
        """Estimated start of ``node`` on ``proc`` (no commitment)."""
        est = schedule.proc_ready_time(proc)
        for parent in graph.predecessors(node):
            src = schedule.proc_of(parent)
            arr = links.probe_arrival(src, proc, schedule.finish_of(parent),
                                      graph.comm_cost(parent, node))
            if arr > est:
                est = arr
        return est

    @staticmethod
    def _commit(graph: TaskGraph, schedule: Schedule, links: LinkSchedule,
                node: int, proc: int) -> float:
        """Reserve the parent messages toward ``proc``; return the start."""
        arrival = 0.0
        parents = sorted(
            graph.predecessors(node),
            key=lambda q: (schedule.finish_of(q), q),
        )
        for parent in parents:
            src = schedule.proc_of(parent)
            cost = graph.comm_cost(parent, node)
            if src == proc:
                arr = schedule.finish_of(parent)
            else:
                msg = links.commit(parent, node, src, proc,
                                   schedule.finish_of(parent), cost)
                schedule.record_message(msg)
                arr = msg.arrival
            if arr > arrival:
                arrival = arr
        return max(schedule.proc_ready_time(proc), arrival)

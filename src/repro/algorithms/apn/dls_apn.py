"""DLS — Dynamic Level Scheduling on processor networks (Sih & Lee, 1993).

The original DLS targets "interconnection-constrained" architectures:
the dynamic level ``DL(n, p) = SL(n) - EST(n, p)`` is evaluated with
message delays taken from the actual state of the interconnect, and the
(ready node, processor) pair with the highest level wins.  This is the
APN member of the DLS family (the clique variant lives in
:mod:`repro.algorithms.bnp.dls`); the paper registers its running time
as the largest of the APN class (it probes every ready-node/processor
pair every step) with performance "relatively stable with respect to the
graph size".
"""

from __future__ import annotations

from ...core.attributes import static_blevel
from ...core.graph import TaskGraph
from ...core.listsched import ReadyTracker
from ...core.machine import Machine, NetworkMachine
from ...core.schedule import Schedule
from ...network.contention import LinkSchedule
from ..base import Scheduler, register
from .mh import MH

__all__ = ["DLSAPN"]


@register
class DLSAPN(Scheduler):
    name = "DLS-APN"
    klass = "APN"
    cp_based = False
    dynamic_priority = True
    uses_insertion = False
    complexity = "O(v^3 p)"

    def _run(self, graph: TaskGraph, machine: Machine) -> Schedule:
        assert isinstance(machine, NetworkMachine)
        topo = machine.topology
        sl = static_blevel(graph)
        links = LinkSchedule(topo)
        schedule = Schedule(graph, topo.num_procs)
        ready = ReadyTracker(graph)
        while not ready.all_scheduled():
            best = None  # (-DL, node, proc)
            for node in ready.iter_ready():
                for proc in range(topo.num_procs):
                    est = MH._probe_est(graph, schedule, links, node, proc)
                    dl = sl[node] - est
                    key = (-dl, node, proc)
                    if best is None or key < best:
                        best = key
            _, node, proc = best
            start = MH._commit(graph, schedule, links, node, proc)
            schedule.place(node, proc, start)
            ready.mark_scheduled(node)
        return schedule

"""Fixed-mapping simulation under the link-contention model.

Given a mapping of tasks to network processors and a per-processor
execution order, compute actual start times while scheduling every
inter-processor message on the links (store-and-forward, one message per
directed channel at a time).  Used as the timing engine of BU and BSA
and by integration tests that need a reference executor.

Messages are committed receiver-side in a deterministic order: nodes in
combined (precedence + processor-sequence) readiness order; a node's
parent messages in ascending (parent finish, parent id).
"""

from __future__ import annotations

from typing import Dict, List

from ...core.exceptions import ScheduleError
from ...core.graph import TaskGraph
from ...core.schedule import Schedule
from ...network.contention import LinkSchedule
from ...network.topology import Topology

__all__ = ["simulate_on_network"]


def simulate_on_network(graph: TaskGraph, topology: Topology,
                        sequences: List[List[int]]) -> Schedule:
    """Schedule ``graph`` with fixed per-processor ``sequences``.

    ``sequences[p]`` lists the tasks of processor ``p`` in execution
    order; orders must be consistent with the precedence order (callers
    keep sequences topologically sorted).  Returns a complete
    :class:`Schedule` with all message records attached.
    """
    n = graph.num_nodes
    proc_of: Dict[int, int] = {}
    pos: Dict[int, int] = {}
    for p, seq in enumerate(sequences):
        for i, node in enumerate(seq):
            if node in proc_of:
                raise ScheduleError(f"node {node} appears twice in sequences")
            proc_of[node] = p
            pos[node] = i
    if len(proc_of) != n:
        raise ScheduleError("sequences must cover every node exactly once")

    links = LinkSchedule(topology)
    schedule = Schedule(graph, topology.num_procs)
    remaining = [graph.in_degree(i) for i in range(n)]
    next_slot = [0] * len(sequences)
    ready = [i for i in range(n) if remaining[i] == 0]
    placed = 0
    while placed < n:
        progress = False
        new_ready: List[int] = []
        for node in sorted(ready):
            p = proc_of[node]
            if pos[node] != next_slot[p]:
                continue
            arrival = 0.0
            parents = sorted(
                graph.predecessors(node),
                key=lambda q: (schedule.finish_of(q), q),
            )
            for parent in parents:
                cost = graph.comm_cost(parent, node)
                src = proc_of[parent]
                if src == p:
                    arr = schedule.finish_of(parent)
                else:
                    msg = links.commit(parent, node, src, p,
                                       schedule.finish_of(parent), cost)
                    schedule.record_message(msg)
                    arr = msg.arrival
                if arr > arrival:
                    arrival = arr
            start = max(schedule.proc_ready_time(p), arrival)
            schedule.place(node, p, start)
            ready.remove(node)
            next_slot[p] += 1
            placed += 1
            progress = True
            for child in graph.successors(node):
                remaining[child] -= 1
                if remaining[child] == 0:
                    new_ready.append(child)
        ready.extend(new_ready)
        if not progress:
            raise ScheduleError(
                "per-processor sequences deadlock against the precedence order"
            )
    return schedule

"""Fixed-mapping simulation under the link-contention model.

Thin compatibility wrapper: the executor itself now lives in
:func:`repro.sim.netmodel.execute_fixed_order`, where the discrete-event
simulator's contention backend absorbed it as its reference
implementation.  BU and BSA (and the integration tests) keep importing
:func:`simulate_on_network` from here; the timing contract — messages
committed receiver-side in deterministic (readiness, parent finish,
parent id) order — is unchanged and pinned by the golden corpus plus a
differential test against the sim package.
"""

from __future__ import annotations

from typing import List

from ...core.graph import TaskGraph
from ...core.schedule import Schedule
from ...network.topology import Topology
from ...sim.netmodel import execute_fixed_order

__all__ = ["simulate_on_network"]


def simulate_on_network(graph: TaskGraph, topology: Topology,
                        sequences: List[List[int]]) -> Schedule:
    """Schedule ``graph`` with fixed per-processor ``sequences``.

    See :func:`repro.sim.netmodel.execute_fixed_order` for the
    semantics; this alias keeps the APN package's historical entry
    point stable.
    """
    return execute_fixed_order(graph, topology, sequences)

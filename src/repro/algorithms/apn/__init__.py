"""APN (arbitrary processor network) scheduling algorithms.

Link-contention-aware schedulers that place tasks on the processors of
an explicit topology and schedule every inter-processor message on the
network links.  The four algorithms benchmarked in the paper: MH,
DLS (network variant), BU and BSA.
"""

from .bsa import BSA, cpn_dominant_list
from .bu import BU
from .dls_apn import DLSAPN
from .mh import MH
from .netsim import simulate_on_network

__all__ = ["MH", "DLSAPN", "BU", "BSA", "cpn_dominant_list",
           "simulate_on_network"]

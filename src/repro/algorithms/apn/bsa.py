"""BSA — Bubble Scheduling and Allocation (Kwok & Ahmad, 1995).

BSA attacks the APN problem incrementally:

1. **Serial injection** — all tasks are placed on a single *pivot*
   processor (the most connected one) in *CPN-dominant* order: critical
   path nodes in path order, each preceded by its not-yet-listed
   ancestors, with the remaining nodes appended in descending b-level
   order.  The CPN-dominant list is a topological order, so the serial
   schedule is trivially feasible.
2. **Bubbling migration** — processors are visited in breadth-first
   order from the pivot; each task on the current pivot may migrate to
   an adjacent processor if that improves its start time without
   worsening the overall schedule (messages are rescheduled on the links
   for every tentative move).  Vacated time "bubbles" the remaining
   tasks earlier.

The paper credits BSA's strong large-graph results to "an efficient
scheduling of communication messages" — the migration step sees actual
link availability, not estimates.  Complexity O(v^2 p).

Deviation from the original: tentative moves are evaluated by re-running
the deterministic fixed-mapping network simulation instead of the
original's in-place incremental updates.  Decisions (migrate/stay) are
made on the same criterion — start-time improvement without schedule
degradation — so the search trajectory matches the published algorithm
on its published examples; only the bookkeeping differs.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Tuple

from ...core.attributes import blevel, critical_path, tlevel
from ...core.graph import TaskGraph
from ...core.machine import Machine, NetworkMachine
from ...core.schedule import Schedule
from ..base import Scheduler, register
from .netsim import simulate_on_network

__all__ = ["BSA", "cpn_dominant_list"]


def cpn_dominant_list(graph: TaskGraph) -> List[int]:
    """CPN-dominant sequence: CP nodes in order, ancestors first.

    Every critical-path node is preceded by its (recursively) unlisted
    predecessors — ordered by ascending t-level, so earlier ancestors come
    first — and the out-branch nodes that remain are appended in
    descending b-level order.  The result is a topological order of the
    whole graph.
    """
    t = tlevel(graph)
    b = blevel(graph)
    listed = [False] * graph.num_nodes
    out: List[int] = []

    def add_with_ancestors(node: int) -> None:
        stack = [node]
        # Iterative DFS that emits ancestors before descendants.
        emit_order: List[int] = []
        seen = set()
        while stack:
            cur = stack.pop()
            if listed[cur] or cur in seen:
                continue
            seen.add(cur)
            emit_order.append(cur)
            for parent in sorted(graph.predecessors(cur),
                                 key=lambda p: (-t[p], -p)):
                if not listed[parent] and parent not in seen:
                    stack.append(parent)
        for cur in sorted(emit_order, key=lambda x: (t[x], x)):
            if not listed[cur]:
                listed[cur] = True
                out.append(cur)

    for cpn in critical_path(graph):
        add_with_ancestors(cpn)
    for node in sorted(graph.nodes(), key=lambda x: (-b[x], x)):
        if not listed[node]:
            listed[node] = True
            out.append(node)
    return out


@register
class BSA(Scheduler):
    name = "BSA"
    klass = "APN"
    cp_based = True
    dynamic_priority = True
    uses_insertion = True
    complexity = "O(v^2 p)"

    def _run(self, graph: TaskGraph, machine: Machine) -> Schedule:
        assert isinstance(machine, NetworkMachine)
        topo = machine.topology
        p_count = topo.num_procs
        order = cpn_dominant_list(graph)
        topo_pos = {n: i for i, n in enumerate(order)}

        pivot = max(range(p_count), key=lambda p: (topo.degree(p), -p))
        sequences: List[List[int]] = [[] for _ in range(p_count)]
        sequences[pivot] = list(order)

        best_sched = simulate_on_network(graph, topo, sequences)
        best_len = best_sched.length

        # Breadth-first processor order from the pivot.
        visited = {pivot}
        bfs = [pivot]
        queue = deque([pivot])
        while queue:
            cur = queue.popleft()
            for nb in topo.neighbors(cur):
                if nb not in visited:
                    visited.add(nb)
                    bfs.append(nb)
                    queue.append(nb)

        for current in bfs:
            # Snapshot: migrating a node mutates the sequence we iterate.
            for node in list(sequences[current]):
                cur_start = best_sched.start_of(node)
                if cur_start <= 1e-12:
                    continue  # already starts at time zero; nothing to gain
                best_move: Tuple[float, float, int] | None = None
                for nb in topo.neighbors(current):
                    trial = [list(s) for s in sequences]
                    trial[current].remove(node)
                    _insert_by_order(trial[nb], node, topo_pos)
                    sched = simulate_on_network(graph, topo, trial)
                    key = (sched.length, sched.start_of(node), nb)
                    if best_move is None or key < best_move:
                        best_move = key
                        best_trial, best_trial_sched = trial, sched
                if best_move is None:
                    continue
                new_len, new_start, _ = best_move
                # Migrate when the schedule shortens, or stays equal while
                # the node itself starts earlier (bubbling the pivot load
                # outward exactly as the original's start-time criterion).
                if new_len < best_len - 1e-9 or (
                    new_len <= best_len + 1e-9 and new_start < cur_start - 1e-9
                ):
                    sequences = best_trial
                    best_sched = best_trial_sched
                    best_len = new_len
        return best_sched


def _insert_by_order(seq: List[int], node: int, topo_pos: Dict[int, int]) -> None:
    """Insert ``node`` keeping the sequence sorted by CPN-dominant rank."""
    rank = topo_pos[node]
    lo = 0
    while lo < len(seq) and topo_pos[seq[lo]] < rank:
        lo += 1
    seq.insert(lo, node)

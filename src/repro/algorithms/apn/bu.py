"""BU — Bottom-Up scheduling (Mehdiratta & Ghose, 1994).

Two phases, working *against* the usual top-down flow:

1. **Assignment (bottom-up)** — nodes are visited in reverse topological
   order, so every node sees its children already assigned.  A node goes
   to the processor minimising the sum of its children's communication
   pull (edge cost × network distance to each child's processor) plus a
   load-balance term (total computation already assigned there).
2. **Scheduling (top-down)** — with the mapping fixed, tasks run in
   topological order per processor and every cross-processor message is
   scheduled on the links.

The paper finds BU the fastest APN algorithm (the assignment pass is a
single sweep) but with erratic schedule quality — visible in the large
NSL differences between BSA and BU in Figure 2(c).
"""

from __future__ import annotations

from typing import Dict, List

from ...core.graph import TaskGraph
from ...core.machine import Machine, NetworkMachine
from ...core.schedule import Schedule
from ..base import Scheduler, register
from .netsim import simulate_on_network

__all__ = ["BU"]


@register
class BU(Scheduler):
    name = "BU"
    klass = "APN"
    cp_based = False
    dynamic_priority = False
    uses_insertion = False
    complexity = "O(v(p + log v) + e p)"

    def _run(self, graph: TaskGraph, machine: Machine) -> Schedule:
        assert isinstance(machine, NetworkMachine)
        topo = machine.topology
        p_count = topo.num_procs
        load = [0.0] * p_count
        proc_of: Dict[int, int] = {}
        # Reverse topological sweep: children are assigned before parents.
        for node in reversed(graph.topological_order):
            best_p, best_score = 0, float("inf")
            for p in range(p_count):
                pull = 0.0
                for child in graph.successors(node):
                    dist = topo.hop_count(p, proc_of[child])
                    pull += graph.comm_cost(node, child) * dist
                # Load term keeps the assignment from collapsing onto one
                # processor when communication dominates.
                score = pull + load[p]
                if score < best_score - 1e-12:
                    best_p, best_score = p, score
            proc_of[node] = best_p
            load[best_p] += graph.weight(node)

        sequences: List[List[int]] = [[] for _ in range(p_count)]
        for node in graph.topological_order:
            sequences[proc_of[node]].append(node)
        return simulate_on_network(graph, topo, sequences)

"""Cluster scheduling: the UNC+CS pipeline from the paper's future work."""

from .assignment import (
    cluster_schedule,
    clusters_from_schedule,
    rcp_assignment,
    sarkar_assignment,
)

__all__ = [
    "cluster_schedule",
    "clusters_from_schedule",
    "sarkar_assignment",
    "rcp_assignment",
]

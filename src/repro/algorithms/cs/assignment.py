"""Cluster scheduling (UNC+CS): mapping clusters onto bounded processors.

The paper's conclusion sketches the missing stage of the UNC pipeline:
"In UNC algorithms, clusters obtained through scheduling are assigned to
a bounded number of processors.  All nodes in a cluster must be
scheduled to the same processor. [...] Two such algorithms called
Sarkar's assignment algorithm and Yang's RCP algorithm [...] Sarkar's
algorithm combines the cluster merging and ordering nodes into one step,
considering the execution order.  RCP merges clusters without
considering the execution order [...] RCP has a lower complexity."

This module implements both, plus the glue that runs any UNC algorithm
and folds its clusters onto ``p`` processors — enabling the comparison
the paper calls "an interesting study": BNP vs UNC+CS
(:mod:`benchmarks.bench_ablation_cluster_scheduling`).
"""

from __future__ import annotations

from typing import List, Sequence

from ...core.attributes import blevel
from ...core.exceptions import MachineError
from ...core.graph import TaskGraph
from ...core.machine import Machine
from ...core.schedule import Schedule
from ..base import get_scheduler
from ..mapping import mapping_makespan, schedule_from_mapping

__all__ = [
    "clusters_from_schedule",
    "sarkar_assignment",
    "rcp_assignment",
    "cluster_schedule",
]


def clusters_from_schedule(schedule: Schedule) -> List[List[int]]:
    """Extract the clusters of a UNC schedule (one per used processor)."""
    return [
        [pl.node for pl in schedule.tasks_on(p)]
        for p in schedule.used_proc_ids()
    ]


def sarkar_assignment(graph: TaskGraph, clusters: Sequence[Sequence[int]],
                      num_procs: int) -> List[int]:
    """Sarkar's cluster-to-processor assignment (execution-order aware).

    Clusters are taken in descending order of total computation; each is
    mapped to the physical processor that minimises the *simulated*
    parallel time of everything assigned so far (unassigned clusters run
    on private virtual processors during the estimate).  O(C p (v + e))
    for C clusters.

    Returns ``proc_of`` per node.
    """
    if num_procs < 1:
        raise MachineError("need at least one physical processor")
    prio = blevel(graph)
    order = sorted(
        range(len(clusters)),
        key=lambda c: (-sum(graph.weight(n) for n in clusters[c]), c),
    )
    # Virtual placement: cluster i starts on virtual proc num_procs + i.
    proc_of = [0] * graph.num_nodes
    for ci, cluster in enumerate(clusters):
        for n in cluster:
            proc_of[n] = num_procs + ci
    for ci in order:
        best_p, best_len = 0, float("inf")
        for p in range(num_procs):
            trial = list(proc_of)
            for n in clusters[ci]:
                trial[n] = p
            length = mapping_makespan(graph, trial, prio)
            if length < best_len - 1e-12:
                best_p, best_len = p, length
        for n in clusters[ci]:
            proc_of[n] = best_p
    return proc_of


def rcp_assignment(graph: TaskGraph, clusters: Sequence[Sequence[int]],
                   num_procs: int) -> List[int]:
    """Yang's RCP-style assignment: load balancing, order-oblivious.

    Clusters in descending total computation go to the currently
    least-loaded processor (LPT rule) — O(C log C).  Cheaper than
    Sarkar's but blind to execution order, the trade-off the paper
    describes.
    """
    if num_procs < 1:
        raise MachineError("need at least one physical processor")
    loads = [0.0] * num_procs
    proc_of = [0] * graph.num_nodes
    order = sorted(
        range(len(clusters)),
        key=lambda c: (-sum(graph.weight(n) for n in clusters[c]), c),
    )
    for ci in order:
        p = min(range(num_procs), key=lambda q: (loads[q], q))
        for n in clusters[ci]:
            proc_of[n] = p
        loads[p] += sum(graph.weight(n) for n in clusters[ci])
    return proc_of


def cluster_schedule(graph: TaskGraph, num_procs: int,
                     unc: str = "DSC", method: str = "sarkar") -> Schedule:
    """Full UNC+CS pipeline: cluster with ``unc``, fold onto ``num_procs``.

    Parameters
    ----------
    unc:
        Name of the UNC algorithm producing the clustering.
    method:
        ``"sarkar"`` (order-aware) or ``"rcp"`` (load balancing).
    """
    scheduler = get_scheduler(unc)
    if scheduler.klass != "UNC":
        raise ValueError(f"{unc} is not a UNC algorithm")
    unc_schedule = scheduler.schedule(graph, Machine.unbounded(graph))
    clusters = clusters_from_schedule(unc_schedule)
    if method == "sarkar":
        proc_of = sarkar_assignment(graph, clusters, num_procs)
    elif method == "rcp":
        proc_of = rcp_assignment(graph, clusters, num_procs)
    else:
        raise ValueError(f"unknown assignment method {method!r}")
    return schedule_from_mapping(graph, proc_of, num_procs, blevel(graph))

"""Composable scheduler components (Coleman et al.'s design space).

The paper's six BNP schedulers are hand-written monoliths, but each is
one point in a four-axis space: **priority rule** × **ready-pool
policy** × **processor selector** × **insertion policy**.  This package
makes the axes explicit —

=========  =============================  ==========================
Axis       Registry                       Values
=========  =============================  ==========================
``prio``   :data:`PRIORITY_RULES`         slevel, blevel, tlevel,
                                          btlevel, alap, alaplist,
                                          dnode
``ready``  :data:`READY_POLICIES`         prio, fifo
``proc``   :data:`PROC_SELECTORS`         est, eft, etf, dls
``insert`` :data:`INSERTION_POLICIES`     off, on, hole
=========  =============================  ==========================

— and :class:`ParamScheduler` executes any :class:`SchedulerSpec`
combination on the flat-array kernel.  ``repro.get_scheduler`` resolves
spec strings (``param:prio=blevel,ready=fifo,proc=est,insert=on``)
directly, so synthesized schedulers flow through benchmarks, scenarios
and the adversarial engine as ordinary names.  :data:`BNP_SPECS` names
the six paper designs; each is placement-identical to its monolith on
the golden differential corpus.
"""

from .insertion import INSERTION_POLICIES, InsertionPolicy
from .pools import READY_POLICIES, ReadyPolicy, ReadyPool
from .priorities import PRIORITY_RULES, PriorityRule, PriorityState
from .scheduler import ParamScheduler
from .selectors import PROC_SELECTORS, ProcSelector
from .spec import (
    AXES,
    BNP_SPECS,
    SPEC_PREFIX,
    SchedulerSpec,
    expand_param_grid,
    parse_spec,
)

__all__ = [
    "AXES",
    "BNP_SPECS",
    "SPEC_PREFIX",
    "INSERTION_POLICIES",
    "PRIORITY_RULES",
    "PROC_SELECTORS",
    "READY_POLICIES",
    "InsertionPolicy",
    "ParamScheduler",
    "PriorityRule",
    "PriorityState",
    "ProcSelector",
    "ReadyPolicy",
    "ReadyPool",
    "SchedulerSpec",
    "expand_param_grid",
    "parse_spec",
]

"""Scheduler specs: naming, parsing and enumerating component combos.

A :class:`SchedulerSpec` picks one value per axis; its canonical string

    ``param:prio=<rule>,ready=<policy>,proc=<selector>,insert=<policy>``

is simultaneously the scheduler's registry-facing *name*, its cache
*fingerprint* and the grammar :func:`repro.get_scheduler` accepts — one
identity for lookup, result stores and scenario documents alike.  Axes
always render in the fixed order above with every axis spelled out, so
two spellings of the same combination can never produce two cache keys.

:data:`BNP_SPECS` pins the paper's six BNP schedulers to their
component coordinates; the differential-corpus tests hold each of these
specs placement-identical to its hand-written monolith.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, fields
from typing import Dict, List, Mapping, Sequence

from .insertion import INSERTION_POLICIES
from .pools import READY_POLICIES
from .priorities import PRIORITY_RULES
from .selectors import PROC_SELECTORS

__all__ = [
    "AXES",
    "BNP_SPECS",
    "SPEC_PREFIX",
    "SchedulerSpec",
    "expand_param_grid",
    "parse_spec",
]

SPEC_PREFIX = "param:"

#: Axis name -> component registry, in canonical rendering order.
AXES: Dict[str, Mapping[str, object]] = {
    "prio": PRIORITY_RULES,
    "ready": READY_POLICIES,
    "proc": PROC_SELECTORS,
    "insert": INSERTION_POLICIES,
}


def _check_axis(axis: str, value: str) -> str:
    value = value.lower()
    options = AXES[axis]
    if value not in options:
        known = ", ".join(sorted(options))
        raise ValueError(
            f"unknown {axis!r} component {value!r}; known: {known}")
    return value


@dataclass(frozen=True)
class SchedulerSpec:
    """One point of the component space (defaults reproduce HLFET)."""

    prio: str = "slevel"
    ready: str = "prio"
    proc: str = "est"
    insert: str = "off"

    def __post_init__(self):
        for f in fields(self):
            object.__setattr__(self, f.name,
                               _check_axis(f.name, getattr(self, f.name)))

    def canonical(self) -> str:
        """The spec's one true spelling — also its name and fingerprint."""
        return (f"{SPEC_PREFIX}prio={self.prio},ready={self.ready},"
                f"proc={self.proc},insert={self.insert}")

    def fingerprint(self) -> str:
        """Cache identity: equal fingerprints schedule identically."""
        return self.canonical()

    def components(self) -> Dict[str, object]:
        """Axis name -> resolved component object, in canonical order."""
        return {axis: registry[getattr(self, axis)]
                for axis, registry in AXES.items()}


#: The paper's six BNP schedulers as component coordinates.
BNP_SPECS: Dict[str, SchedulerSpec] = {
    "HLFET": SchedulerSpec("slevel", "prio", "est", "off"),
    "ISH": SchedulerSpec("slevel", "prio", "est", "hole"),
    "MCP": SchedulerSpec("alaplist", "prio", "est", "on"),
    "ETF": SchedulerSpec("slevel", "prio", "etf", "off"),
    "DLS": SchedulerSpec("slevel", "prio", "dls", "off"),
    "LAST": SchedulerSpec("dnode", "prio", "est", "off"),
}


def parse_spec(text: str) -> SchedulerSpec:
    """Parse a ``param:`` spec string (or bare axis list) to a spec.

    Accepts the canonical grammar in any case and axis order, with
    unmentioned axes falling back to their defaults, plus the named
    shorthands ``param:hlfet`` ... ``param:last`` for the paper's six.
    """
    body = text.strip()
    if body.lower().startswith(SPEC_PREFIX):
        body = body[len(SPEC_PREFIX):]
    body = body.strip()
    if body.upper() in BNP_SPECS:
        return BNP_SPECS[body.upper()]
    if not body:
        raise ValueError(
            f"empty component spec {text!r}; expected "
            f"{SPEC_PREFIX}prio=...,ready=...,proc=...,insert=...")
    values: Dict[str, str] = {}
    for part in body.split(","):
        axis, sep, value = part.partition("=")
        axis = axis.strip().lower()
        if not sep or not value.strip():
            raise ValueError(
                f"malformed component assignment {part!r} in {text!r}; "
                f"expected axis=value")
        if axis not in AXES:
            known = ", ".join(AXES)
            raise ValueError(
                f"unknown component axis {axis!r} in {text!r}; "
                f"known: {known}")
        if axis in values:
            raise ValueError(f"duplicate axis {axis!r} in {text!r}")
        values[axis] = value.strip()
    return SchedulerSpec(**values)


def expand_param_grid(grid: Mapping[str, Sequence[str]]
                      ) -> List[SchedulerSpec]:
    """Cartesian product of a per-axis value grid, in canonical order.

    Axes iterate in canonical order with later axes fastest, matching
    ``itertools.product``; axes missing from ``grid`` stay at their
    defaults.  Values are validated (and de-duplicated, first
    occurrence wins) before expansion so an error names the offending
    axis instead of surfacing mid-sweep.
    """
    canon: Dict[str, List[str]] = {}
    for axis, options in grid.items():
        axis_l = str(axis).lower()
        if axis_l not in AXES:
            known = ", ".join(AXES)
            raise ValueError(
                f"unknown component axis {axis!r}; known: {known}")
        seen: List[str] = []
        for value in options:
            checked = _check_axis(axis_l, str(value))
            if checked not in seen:
                seen.append(checked)
        if not seen:
            raise ValueError(f"component axis {axis!r} has no values")
        canon[axis_l] = seen
    pools = [canon.get(axis, [getattr(SchedulerSpec(), axis)])
             for axis in AXES]
    return [SchedulerSpec(*combo) for combo in itertools.product(*pools)]

"""The parameterized list scheduler that executes a component spec.

One loop, four plug points.  Every step: the processor selector picks
the next ``(node, proc, start)`` placement — either by popping the
ready pool (decoupled) or by scanning all (node, processor) pairs
(coupled) — the node is placed, newly-ready children are released into
the pool *after* the priority rule's dynamic update (the order the LAST
invariant requires), and the insertion policy may back-fill the idle
window the placement opened.

For the six named specs in
:data:`~repro.algorithms.components.spec.BNP_SPECS` this loop performs
the monolith's operations in the monolith's order — same kernel calls,
same tie-breaks, same epsilons — which is what the differential-corpus
pinning tests lock down placement-for-placement.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ...core.graph import TaskGraph
from ...core.listsched import ReadyTracker, best_proc_min_est
from ...core.machine import Machine
from ...core.schedule import Schedule
from ...obs import metrics as _metrics
from ...obs import trace as _trace
from ..base import Scheduler
from .pools import ReadyPool
from .priorities import PriorityState
from .spec import SchedulerSpec

__all__ = ["ParamScheduler", "run_component_loop"]


class ParamScheduler(Scheduler):
    """A BNP list scheduler assembled from a :class:`SchedulerSpec`.

    Instances are stateless between runs (all per-run state lives in
    the component *states*, created fresh inside :meth:`_run`), so
    :func:`repro.get_scheduler` can safely memoize them.  Taxonomy
    flags are derived from the components: the scheduler is CP-based
    iff its priority rule is, dynamic iff the priority updates or the
    selector couples node and processor choice, and inserting iff the
    insertion policy is not ``off``.
    """

    klass = "BNP"

    def __init__(self, spec: SchedulerSpec):
        self.spec = spec
        parts = spec.components()
        self._prio_rule = parts["prio"]
        self._ready_policy = parts["ready"]
        self._selector = parts["proc"]
        self._insertion = parts["insert"]
        self.name = spec.canonical()
        self.cp_based = self._prio_rule.cp_based
        self.dynamic_priority = (self._prio_rule.dynamic
                                 or self._selector.coupled)
        self.uses_insertion = (self._insertion.slot
                               or self._insertion.hole_fill)
        self.complexity = "O(p v^2)" if self._selector.coupled else "O(v^2)"

    def _run(self, graph: TaskGraph, machine: Machine) -> Schedule:
        return run_component_loop(self.spec.components(), graph, machine)


def run_component_loop(
    parts: Dict[str, object],
    graph: TaskGraph,
    machine: Machine,
    pinned: Sequence[Tuple[int, int, float, Optional[float]]] = (),
) -> Schedule:
    """Drive the four-axis component loop to a complete schedule.

    ``parts`` is a :meth:`SchedulerSpec.components` mapping.  ``pinned``
    pre-places execution history before the loop runs — ``(node, proc,
    start, duration)`` tuples in a precedence-consistent order
    (ascending start time) — which is how the online replanner
    (:mod:`repro.sim.online`) re-decides only the unstarted remainder of
    a plan: pinned tasks go through the same :func:`_settle`
    bookkeeping as loop placements, so dynamic priorities and ready
    pools see them exactly as if the loop had chosen them.  With no
    pins this is byte-for-byte the static :class:`ParamScheduler` run.
    """
    with _trace.span("sched.component_loop", graph=graph.name,
                     nodes=graph.num_nodes, pinned=len(pinned)):
        prio = parts["prio"].start(graph)
        schedule = Schedule(graph, machine.num_procs, speeds=machine.speeds)
        ready = ReadyTracker(graph)
        pool = parts["ready"].start(ready, prio)
        for node, proc, start, duration in pinned:
            schedule.place(node, proc, start, duration=duration)
            _settle(ready, prio, pool, node)
        selector = parts["proc"]
        slot = parts["insert"].slot
        hole = parts["insert"].hole_fill
        gap_begin = 0.0
        while not ready.all_scheduled():
            node, proc, start = selector.pick(schedule, ready, pool,
                                              prio, slot)
            if hole:
                gap_begin = schedule.proc_ready_time(proc)
            schedule.place(node, proc, start)
            _settle(ready, prio, pool, node)
            if hole:
                _fill_hole(schedule, ready, pool, prio, proc,
                           gap_begin, start)
    return schedule


def _settle(ready: ReadyTracker, prio: PriorityState, pool: ReadyPool,
            node: int) -> None:
    """Post-placement bookkeeping, in the order dynamic rules need.

    The priority update runs *between* computing the released children
    and pushing them: a dynamic rule (D_NODE) must see the placement
    reflected before any child's pool key is evaluated, and a child's
    own priority is frozen from that moment on — the invariant that
    keeps lazily-heaped keys current.
    """
    released = ready.mark_scheduled(node)
    prio.on_scheduled(node)
    for child in released:
        pool.push(child)


def _fill_hole(schedule: Schedule, ready: ReadyTracker, pool: ReadyPool,
               prio: PriorityState, proc: int, gap_begin: float,
               gap_end: float) -> None:
    """ISH's hole filler, generalised to any priority rule.

    The idle window ``[gap_begin, gap_end)`` on ``proc`` may host other
    ready nodes, best priority first.  Following Kruatrachue & Lewis, a
    node is inserted only when it (a) fits entirely inside the hole and
    (b) could not start earlier on any other processor — otherwise
    stealing it into the hole trades global placement quality for local
    utilisation.
    """
    while gap_end - gap_begin > 1e-12:
        placed_any = False
        for cand in sorted(ready.iter_ready(), key=prio.key):
            drt = schedule.data_ready_time(cand, proc)
            cand_start = max(gap_begin, drt)
            cand_dur = schedule.duration_of(cand, proc)
            if cand_start + cand_dur > gap_end + 1e-9:
                continue
            _, elsewhere = best_proc_min_est(schedule, cand,
                                             insertion=False)
            if cand_start > elsewhere + 1e-9:
                continue
            schedule.place(cand, proc, cand_start)
            _metrics.incr("sched.insertion_holes")
            _settle(ready, prio, pool, cand)
            gap_begin = cand_start + cand_dur
            placed_any = True
            break
        if not placed_any:
            break

"""Processor-selection rules: the ``proc=`` axis of the component space.

Two shapes exist, mirroring the split the paper draws between the
"greedy" BNP schedulers and the exhaustive pair-searchers:

*Decoupled* selectors (``est``, ``eft``) let the ready pool decide
*which* node is next, then choose the processor for that node alone.
*Coupled* selectors (``etf``, ``dls``) scan every (ready node,
candidate processor) pair each step and decide node and processor
together — the ready-pool ordering is irrelevant to them, and the
priority rule participates through its scalar ``value`` (ETF's
tie-break, DLS's dynamic-level term).

Each coupled selector reproduces the corresponding monolith's scan —
same candidate shortlist, same arrival-profile reuse, same comparison
keys — so composing it with the monolith's priority rule is
placement-identical to the hand-written algorithm.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ...core.listsched import (
    best_proc_min_eft,
    best_proc_min_est,
    candidate_procs,
    est_on_proc,
    ReadyTracker,
)
from ...core.schedule import Schedule
from .pools import ReadyPool
from .priorities import PriorityState

__all__ = ["ProcSelector", "PROC_SELECTORS"]


class ProcSelector:
    """One value of the ``proc=`` axis.

    ``pick`` returns the next ``(node, proc, start)`` placement;
    ``slot`` forwards the insertion policy's earliest-slot flag.
    """

    key: str = "?"
    summary: str = "?"
    coupled: bool = False

    def pick(self, schedule: Schedule, ready: ReadyTracker,
             pool: ReadyPool, prio: PriorityState,
             slot: bool) -> Tuple[int, int, float]:
        raise NotImplementedError


class _MinEstSelector(ProcSelector):
    key = "est"
    summary = ("pop the pool's best node; place on the processor "
               "minimising its start time")
    coupled = False

    def pick(self, schedule: Schedule, ready: ReadyTracker,
             pool: ReadyPool, prio: PriorityState,
             slot: bool) -> Tuple[int, int, float]:
        node = pool.pop()
        proc, start = best_proc_min_est(schedule, node, insertion=slot)
        return node, proc, start


class _MinEftSelector(ProcSelector):
    key = "eft"
    summary = ("pop the pool's best node; place on the processor "
               "minimising its finish time (HEFT-style; differs from "
               "est only under heterogeneous speeds)")
    coupled = False

    def pick(self, schedule: Schedule, ready: ReadyTracker,
             pool: ReadyPool, prio: PriorityState,
             slot: bool) -> Tuple[int, int, float]:
        node = pool.pop()
        proc, _finish = best_proc_min_eft(schedule, node, insertion=slot)
        return node, proc, est_on_proc(schedule, node, proc, slot)


class _EtfSelector(ProcSelector):
    key = "etf"
    summary = ("ETF's global scan: the (ready node, processor) pair "
               "with the overall earliest start wins; priority value "
               "breaks ties")
    coupled = True

    def pick(self, schedule: Schedule, ready: ReadyTracker,
             pool: ReadyPool, prio: PriorityState,
             slot: bool) -> Tuple[int, int, float]:
        # The schedule does not change within one step, so the
        # candidate shortlist is loop-invariant; each ready node
        # contributes one O(deg) arrival profile, then every
        # (node, proc) EST is an O(1) query.
        procs = candidate_procs(schedule)
        homogeneous = schedule.speeds is None
        best = None  # (est, -value, node, proc)
        for node in ready.iter_ready():
            profile = schedule.arrival_profile(node)
            neg = -prio.value(node)
            dur = schedule.duration_of(node, 0) if homogeneous else None
            for proc in procs:
                if not homogeneous:
                    dur = schedule.duration_of(node, proc)
                est = schedule.earliest_slot(proc, profile.drt(proc),
                                             dur, insertion=slot)
                key = (est, neg, node, proc)
                if best is None or key < best:
                    best = key
        est, _, node, proc = best
        return node, proc, est


class _DlsSelector(ProcSelector):
    key = "dls"
    summary = ("DLS's dynamic level: maximise priority value minus "
               "start time over all (ready node, processor) pairs")
    coupled = True

    def pick(self, schedule: Schedule, ready: ReadyTracker,
             pool: ReadyPool, prio: PriorityState,
             slot: bool) -> Tuple[int, int, float]:
        procs = candidate_procs(schedule)
        homogeneous = schedule.speeds is None
        best = None  # (-DL, node, proc, est)
        for node in ready.iter_ready():
            profile = schedule.arrival_profile(node)
            level = prio.value(node)
            dur = schedule.duration_of(node, 0) if homogeneous else None
            for proc in procs:
                if not homogeneous:
                    dur = schedule.duration_of(node, proc)
                est = schedule.earliest_slot(proc, profile.drt(proc),
                                             dur, insertion=slot)
                dl = level - est
                key = (-dl, node, proc)
                if best is None or key < best[:3]:
                    best = (key[0], node, proc, est)
        _, node, proc, est = best
        return node, proc, est


PROC_SELECTORS: Dict[str, ProcSelector] = {
    "est": _MinEstSelector(),
    "eft": _MinEftSelector(),
    "etf": _EtfSelector(),
    "dls": _DlsSelector(),
}

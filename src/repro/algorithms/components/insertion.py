"""Insertion policies: how a placement may exploit idle gaps.

Three values, covering the paper's insertion/non-insertion split plus
ISH's distinct third way:

``off``
    Append-only: a node starts no earlier than its processor's ready
    time (HLFET, ETF, DLS, LAST).
``on``
    Earliest-slot search: the node may slide into any idle gap that
    fits it (MCP).  Implemented by passing ``insertion=True`` down to
    the kernel's slot search, so it composes with every selector.
``hole``
    ISH's scheduling-hole heuristic: processors are chosen append-only,
    but after each placement the idle window it opened is back-filled
    with other ready nodes that fit and would not have started earlier
    elsewhere.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["InsertionPolicy", "INSERTION_POLICIES"]


class InsertionPolicy:
    """One value of the ``insert=`` axis.

    ``slot`` switches the kernel's earliest-slot search into gaps;
    ``hole_fill`` enables the ISH-style back-filling pass after each
    placement.  The two are independent flags of the same axis rather
    than separate axes because combining them is redundant: slot search
    already claims every gap a hole-filling pass could use.
    """

    __slots__ = ("key", "summary", "slot", "hole_fill")

    def __init__(self, key: str, summary: str, slot: bool,
                 hole_fill: bool):
        self.key = key
        self.summary = summary
        self.slot = slot
        self.hole_fill = hole_fill


INSERTION_POLICIES: Dict[str, InsertionPolicy] = {
    "off": InsertionPolicy(
        "off",
        "append-only: never start before the processor's ready time",
        slot=False, hole_fill=False,
    ),
    "on": InsertionPolicy(
        "on",
        "earliest-slot search: placements may slide into idle gaps",
        slot=True, hole_fill=False,
    ),
    "hole": InsertionPolicy(
        "hole",
        "ISH-style hole filling: append-only placement, then back-fill "
        "the idle window it opened with fitting ready nodes",
        slot=False, hole_fill=True,
    ),
}

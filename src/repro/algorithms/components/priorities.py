"""Priority rules: the node-ordering axis of the component space.

A :class:`PriorityRule` is a stateless description of *how to rank
nodes*; calling :meth:`PriorityRule.start` on a graph returns a
:class:`PriorityState` holding the per-run data.  The state exposes two
views of the same ranking:

``key(node)``
    An ascending heap tuple — the best node has the *smallest* key.
    This is what ready pools and the ISH-style hole filler sort by,
    and every key ends with the node id so ordering is total and
    deterministic.
``value(node)``
    The larger-is-better scalar behind the key.  Coupled processor
    selectors consume this directly: ETF breaks EST ties toward the
    largest value, DLS maximises ``value - EST``.

Static rules precompute one array per run.  Dynamic rules (``dnode``)
additionally receive :meth:`PriorityState.on_scheduled` after every
placement; the LAST invariant — a node's D_NODE is frozen the moment it
becomes ready — is what keeps lazily-heaped keys current, so new
dynamic rules must preserve an equivalent property.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from ...core.attributes import (
    alap,
    blevel,
    priority_blevel_plus_tlevel,
    static_blevel,
    tlevel,
)
from ...core.graph import TaskGraph

__all__ = ["PriorityRule", "PriorityState", "PRIORITY_RULES"]


class PriorityState:
    """Per-run ranking state produced by :meth:`PriorityRule.start`."""

    def key(self, node: int) -> Tuple:
        """Ascending heap key; the best node compares smallest."""
        raise NotImplementedError

    def value(self, node: int) -> float:
        """Larger-is-better priority scalar (feeds ETF/DLS selectors)."""
        raise NotImplementedError

    def on_scheduled(self, node: int) -> None:
        """Hook called once per placement; static rules ignore it."""


class _StaticState(PriorityState):
    """Ranking frozen at start-up: one float per node, larger first."""

    __slots__ = ("_value",)

    def __init__(self, values: List[float]):
        self._value = values

    def key(self, node: int) -> Tuple[float, int]:
        return (-self._value[node], node)

    def value(self, node: int) -> float:
        return self._value[node]


class _DnodeState(PriorityState):
    """LAST's D_NODE: settled fraction of a node's incident edge weight.

    Mirrors :class:`repro.algorithms.bnp.last.LAST` exactly, including
    the ``1.0`` convention for communication-isolated nodes and the
    static-level tie-break inside :meth:`key`.
    """

    __slots__ = ("_graph", "_sl", "_incident", "_settled")

    def __init__(self, graph: TaskGraph):
        self._graph = graph
        self._sl = static_blevel(graph)
        incident = [0.0] * graph.num_nodes
        for u, v, c in graph.edges():
            incident[u] += c
            incident[v] += c
        self._incident = incident
        self._settled = [0.0] * graph.num_nodes

    def _d(self, node: int) -> float:
        if self._incident[node] <= 0:
            return 1.0  # isolated w.r.t. communication: fully localised
        return self._settled[node] / self._incident[node]

    def key(self, node: int) -> Tuple[float, float, int]:
        return (-self._d(node), -self._sl[node], node)

    def value(self, node: int) -> float:
        return self._d(node)

    def on_scheduled(self, node: int) -> None:
        succs, succ_costs = self._graph.succ_pairs(node)
        for s, c in zip(succs, succ_costs):
            self._settled[s] += c
        preds, pred_costs = self._graph.pred_pairs(node)
        for p, c in zip(preds, pred_costs):
            self._settled[p] += c


class PriorityRule:
    """One value of the ``prio=`` axis.

    ``cp_based``/``dynamic`` feed the taxonomy flags a composed
    :class:`~repro.algorithms.components.scheduler.ParamScheduler`
    reports, so synthesized schedulers land in the right rows of the
    paper's analysis tables.
    """

    __slots__ = ("key", "summary", "cp_based", "dynamic", "_factory")

    def __init__(self, key: str, summary: str, cp_based: bool,
                 dynamic: bool,
                 factory: Callable[[TaskGraph], PriorityState]):
        self.key = key
        self.summary = summary
        self.cp_based = cp_based
        self.dynamic = dynamic
        self._factory = factory

    def start(self, graph: TaskGraph) -> PriorityState:
        """Per-run ranking state for ``graph``."""
        return self._factory(graph)


def _alaplist_state(graph: TaskGraph) -> PriorityState:
    # MCP's full ordering: ascending lexicographic descendant-ALAP
    # lists.  The list order is topologically consistent (an ancestor's
    # list is strictly smaller than any descendant's), so ranking nodes
    # by their position in it and popping the smallest-rank *ready*
    # node reproduces the monolith's static sequence exactly.
    from ..bnp.mcp import _descendant_alap_lists

    lists = _descendant_alap_lists(graph, alap(graph))
    order = sorted(graph.nodes(), key=lambda n: (lists[n], n))
    rank = [0.0] * graph.num_nodes
    for r, n in enumerate(order):
        rank[n] = float(r)
    return _StaticState([-r for r in rank])


PRIORITY_RULES: Dict[str, PriorityRule] = {
    "slevel": PriorityRule(
        "slevel",
        "static level: longest computation-only path to an exit "
        "(HLFET/ISH ordering; ETF/DLS tie-break level)",
        cp_based=False, dynamic=False,
        factory=lambda g: _StaticState(static_blevel(g)),
    ),
    "blevel": PriorityRule(
        "blevel",
        "bottom level including edge weights: longest path to an exit",
        cp_based=True, dynamic=False,
        factory=lambda g: _StaticState(blevel(g)),
    ),
    "tlevel": PriorityRule(
        "tlevel",
        "smallest top level first: nodes closest to the entry go early",
        cp_based=False, dynamic=False,
        factory=lambda g: _StaticState([-t for t in tlevel(g)]),
    ),
    "btlevel": PriorityRule(
        "btlevel",
        "blevel + tlevel: DSC's dominant-sequence priority",
        cp_based=True, dynamic=False,
        factory=lambda g: _StaticState(priority_blevel_plus_tlevel(g)),
    ),
    "alap": PriorityRule(
        "alap",
        "least slack first: ascending as-late-as-possible start time",
        cp_based=True, dynamic=False,
        factory=lambda g: _StaticState([-a for a in alap(g)]),
    ),
    "alaplist": PriorityRule(
        "alaplist",
        "MCP's lexicographic descendant-ALAP lists (full static order)",
        cp_based=True, dynamic=False,
        factory=_alaplist_state,
    ),
    "dnode": PriorityRule(
        "dnode",
        "LAST's D_NODE: fraction of incident edge weight already "
        "settled next to scheduled neighbours",
        cp_based=False, dynamic=True,
        factory=_DnodeState,
    ),
}

"""Ready-pool policies: how the set of ready nodes is ordered.

The ``ready=`` axis only matters to *decoupled* processor selectors
(``est``/``eft``), which pop one node from the pool and then choose its
processor.  Coupled selectors (``etf``/``dls``) scan the whole ready
set every step and ignore the pool order entirely — the pool still
tracks membership so a spec with a coupled selector remains valid.
"""

from __future__ import annotations

from typing import Dict

from ...core.listsched import ReadyTracker
from .priorities import PriorityState

__all__ = ["ReadyPolicy", "ReadyPool", "READY_POLICIES"]


class ReadyPool:
    """Per-run pool state produced by :meth:`ReadyPolicy.start`."""

    def pop(self) -> int:
        """Remove and return the pool's best ready node."""
        raise NotImplementedError

    def push(self, node: int) -> None:
        """Admit a newly-released node."""
        raise NotImplementedError


class _SortedPool(ReadyPool):
    """Re-sorted pool: a lazy heap over the priority rule's keys."""

    __slots__ = ("_queue",)

    def __init__(self, ready: ReadyTracker, prio: PriorityState):
        self._queue = ready.priority_queue(prio.key)

    def pop(self) -> int:
        return self._queue.pop_best()

    def push(self, node: int) -> None:
        self._queue.push(node)


class _FifoPool(ReadyPool):
    """First-ready-first-served: nodes pop in becoming-ready order.

    The :class:`~repro.core.listsched.ReadyTracker` already records
    becoming-ready order, so the pool holds no state of its own.
    """

    __slots__ = ("_ready",)

    def __init__(self, ready: ReadyTracker, prio: PriorityState):
        self._ready = ready

    def pop(self) -> int:
        return next(self._ready.iter_ready())

    def push(self, node: int) -> None:
        pass  # ordering comes from the tracker itself


class ReadyPolicy:
    """One value of the ``ready=`` axis."""

    __slots__ = ("key", "summary", "resorted")

    def __init__(self, key: str, summary: str, resorted: bool):
        self.key = key
        self.summary = summary
        self.resorted = resorted

    def start(self, ready: ReadyTracker, prio: PriorityState) -> ReadyPool:
        """Per-run pool over ``ready`` ordered per this policy."""
        if self.resorted:
            return _SortedPool(ready, prio)
        return _FifoPool(ready, prio)


READY_POLICIES: Dict[str, ReadyPolicy] = {
    "prio": ReadyPolicy(
        "prio",
        "re-sorted pool: always pop the highest-priority ready node",
        resorted=True,
    ),
    "fifo": ReadyPolicy(
        "fifo",
        "first-ready-first-served: pop in becoming-ready order, "
        "ignoring the priority rule",
        resorted=False,
    ),
}

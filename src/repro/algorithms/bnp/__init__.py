"""BNP (bounded number of processors) scheduling algorithms.

Fully connected homogeneous processors, contention-free links, a
processor count given as input.  The six algorithms benchmarked in the
paper: HLFET, ISH, MCP, ETF, DLS and LAST.
"""

from .dls import DLS
from .etf import ETF
from .hlfet import HLFET
from .ish import ISH
from .last import LAST
from .mcp import MCP

__all__ = ["HLFET", "ISH", "MCP", "ETF", "DLS", "LAST"]

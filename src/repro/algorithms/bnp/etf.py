"""ETF — Earliest Time First (Hwang, Chow, Anger & Lee, 1989).

At every step ETF computes the earliest start time of *every* ready node
on *every* processor and schedules the (node, processor) pair that can
start soonest; ties are resolved toward the node with the higher static
level.  The exhaustive pair search is what the paper blames for ETF's
high running time (Table 6): a dynamic-priority, greedy, non-insertion
algorithm of complexity O(p v^2).
"""

from __future__ import annotations

from ...core.attributes import static_blevel
from ...core.graph import TaskGraph
from ...core.listsched import ReadyTracker, candidate_procs
from ...core.machine import Machine
from ...core.schedule import Schedule
from ..base import Scheduler, register

__all__ = ["ETF"]


@register
class ETF(Scheduler):
    name = "ETF"
    klass = "BNP"
    cp_based = False
    dynamic_priority = True
    uses_insertion = False
    complexity = "O(p v^2)"

    def _run(self, graph: TaskGraph, machine: Machine) -> Schedule:
        sl = static_blevel(graph)
        schedule = Schedule(graph, machine.num_procs, speeds=machine.speeds)
        ready = ReadyTracker(graph)
        homogeneous = schedule.speeds is None
        while not ready.all_scheduled():
            # The schedule does not change within one step, so the
            # candidate shortlist is loop-invariant; each ready node
            # contributes one O(deg) arrival profile, then every
            # (node, proc) EST is an O(1) query.
            procs = candidate_procs(schedule)
            best = None  # (est, -sl, node, proc)
            for node in ready.iter_ready():
                profile = schedule.arrival_profile(node)
                neg_sl = -sl[node]
                dur = schedule.duration_of(node, 0) if homogeneous else None
                for proc in procs:
                    if not homogeneous:
                        dur = schedule.duration_of(node, proc)
                    est = schedule.earliest_slot(proc, profile.drt(proc),
                                                 dur, insertion=False)
                    key = (est, neg_sl, node, proc)
                    if best is None or key < best:
                        best = key
            _, _, node, proc = best
            schedule.place(node, proc, best[0])
            ready.mark_scheduled(node)
        return schedule

"""DLS — Dynamic Level Scheduling (Sih & Lee, 1993), clique variant.

DLS maximises the *dynamic level* ``DL(n, p) = SL(n) - EST(n, p)`` over
all ready-node/processor pairs: a node high in the graph scheduled on a
processor where it can start early wins.  Unlike ETF (which minimises
EST globally and uses the static level only for ties), DLS trades the
two terms off against each other, so its choices drift from ETF's as the
schedule fills up.

The original targets "interconnection-constrained" architectures; the
contention-aware variant lives in :mod:`repro.algorithms.apn.dls_apn`.
This clique version is the BNP family member the paper evaluates.
Dynamic-priority, greedy, non-insertion; O(p v^3) worst case (the paper
reports DLS and ETF as the slowest BNP algorithms, and DLS as using the
fewest processors).
"""

from __future__ import annotations

from ...core.attributes import static_blevel
from ...core.graph import TaskGraph
from ...core.listsched import ReadyTracker, candidate_procs
from ...core.machine import Machine
from ...core.schedule import Schedule
from ..base import Scheduler, register

__all__ = ["DLS"]


@register
class DLS(Scheduler):
    name = "DLS"
    klass = "BNP"
    cp_based = False
    dynamic_priority = True
    uses_insertion = False
    complexity = "O(p v^3)"

    def _run(self, graph: TaskGraph, machine: Machine) -> Schedule:
        sl = static_blevel(graph)
        schedule = Schedule(graph, machine.num_procs, speeds=machine.speeds)
        ready = ReadyTracker(graph)
        homogeneous = schedule.speeds is None
        while not ready.all_scheduled():
            # Candidate shortlist is loop-invariant within a step; one
            # arrival profile per ready node makes each pair O(1).
            procs = candidate_procs(schedule)
            best = None  # (-DL, node, proc, est)
            for node in ready.iter_ready():
                profile = schedule.arrival_profile(node)
                level = sl[node]
                dur = schedule.duration_of(node, 0) if homogeneous else None
                for proc in procs:
                    if not homogeneous:
                        dur = schedule.duration_of(node, proc)
                    est = schedule.earliest_slot(proc, profile.drt(proc),
                                                 dur, insertion=False)
                    dl = level - est
                    key = (-dl, node, proc)
                    if best is None or key < best[:3]:
                        best = (key[0], node, proc, est)
            _, node, proc, est = best
            schedule.place(node, proc, est)
            ready.mark_scheduled(node)
        return schedule

"""ISH — Insertion Scheduling Heuristic (Kruatrachue & Lewis, 1987).

HLFET plus *hole filling*: when placing the selected node leaves an idle
gap on its processor (because the node must wait for data), ISH tries to
fill the gap with other ready nodes that fit without delaying the node
just scheduled.  The paper singles ISH out as evidence that "insertion
is better than non-insertion — a simple algorithm employing insertion
can yield dramatic performance" (Section 7).
"""

from __future__ import annotations

from ...core.attributes import static_blevel
from ...core.graph import TaskGraph
from ...core.listsched import ReadyTracker, best_proc_min_est
from ...core.machine import Machine
from ...core.schedule import Schedule
from ..base import Scheduler, register

__all__ = ["ISH"]


@register
class ISH(Scheduler):
    name = "ISH"
    klass = "BNP"
    cp_based = False
    dynamic_priority = False
    uses_insertion = True
    complexity = "O(v^2)"

    def _run(self, graph: TaskGraph, machine: Machine) -> Schedule:
        sl = static_blevel(graph)
        schedule = Schedule(graph, machine.num_procs, speeds=machine.speeds)
        ready = ReadyTracker(graph)
        queue = ready.priority_queue(lambda n: (-sl[n], n))
        while not ready.all_scheduled():
            node = queue.pop_best()
            # Processor choice is HLFET's: min EST without insertion.
            proc, start = best_proc_min_est(schedule, node, insertion=False)
            gap_begin = schedule.proc_ready_time(proc)
            schedule.place(node, proc, start)
            for child in ready.mark_scheduled(node):
                queue.push(child)
            # Hole filling: the idle window [gap_begin, start) may host
            # other ready nodes, highest static level first.  Following
            # Kruatrachue & Lewis, a node is inserted only when it (a)
            # fits entirely inside the hole and (b) could not start
            # earlier on any other processor — otherwise stealing it
            # into the hole trades global placement quality for local
            # utilisation.
            gap_end = start
            while gap_end - gap_begin > 1e-12:
                placed_any = False
                for cand in sorted(ready.iter_ready(),
                                   key=lambda n: (-sl[n], n)):
                    drt = schedule.data_ready_time(cand, proc)
                    cand_start = max(gap_begin, drt)
                    cand_dur = schedule.duration_of(cand, proc)
                    if cand_start + cand_dur > gap_end + 1e-9:
                        continue
                    _, elsewhere = best_proc_min_est(schedule, cand,
                                                     insertion=False)
                    if cand_start > elsewhere + 1e-9:
                        continue
                    schedule.place(cand, proc, cand_start)
                    for child in ready.mark_scheduled(cand):
                        queue.push(child)
                    gap_begin = cand_start + cand_dur
                    placed_any = True
                    break
                if not placed_any:
                    break
        return schedule

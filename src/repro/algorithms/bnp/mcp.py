"""MCP — Modified Critical Path (Wu & Gajski, 1990).

Node priority is the ALAP (as-late-as-possible start) time: nodes with
less slack — critical-path nodes have zero slack — go first.  Each node
carries a list of the ALAPs of itself and all of its descendants in
ascending order; nodes are scheduled in ascending lexicographic order of
these lists, each on the processor giving the earliest start time *with
insertion*.

The paper found MCP both the best-performing and the fastest BNP
algorithm, and notes it is the one exception to "dynamic priority beats
static priority".  Classified CP-based, static-list, greedy; O(v^2 log v).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ...core.attributes import alap
from ...core.graph import TaskGraph
from ...core.listsched import best_proc_min_est
from ...core.machine import Machine
from ...core.schedule import Schedule
from ..base import Scheduler, register

__all__ = ["MCP"]


def _descendant_alap_lists(graph: TaskGraph, al: List[float]) -> List[List[float]]:
    """For each node: ascending ALAPs of the node and all its descendants.

    Descendant sets are kept as packed bitsets (one row of bits per
    node) so the transitive closure is v*e/8 bytes of vectorised ORs
    instead of Python set unions — the dominant cost of MCP on large
    graphs.
    """
    n = graph.num_nodes
    al_arr = np.asarray(al, dtype=np.float64)
    words = (n + 7) // 8
    desc = np.zeros((n, words), dtype=np.uint8)
    for u in reversed(graph.topological_order):
        row = desc[u]
        for s in graph.successors(u):
            row |= desc[s]
            row[s >> 3] |= 128 >> (s & 7)
    lists: List[List[float]] = []
    for u in graph.nodes():
        ids = np.flatnonzero(np.unpackbits(desc[u], count=n))
        vals = np.empty(ids.size + 1)
        vals[0] = al_arr[u]
        vals[1:] = al_arr[ids]
        vals.sort()
        lists.append(vals.tolist())
    return lists


@register
class MCP(Scheduler):
    name = "MCP"
    klass = "BNP"
    cp_based = True
    dynamic_priority = False
    uses_insertion = True
    complexity = "O(v^2 log v)"

    def _run(self, graph: TaskGraph, machine: Machine) -> Schedule:
        al = alap(graph)
        lists = _descendant_alap_lists(graph, al)
        # Ascending lexicographic order of ALAP lists; ALAP of an ancestor
        # is strictly smaller than any descendant's (weights are positive),
        # so this order is topologically consistent.
        order = sorted(graph.nodes(), key=lambda n: (lists[n], n))
        schedule = Schedule(graph, machine.num_procs, speeds=machine.speeds)
        for node in order:
            proc, start = best_proc_min_est(schedule, node, insertion=True)
            schedule.place(node, proc, start)
        return schedule

"""MCP — Modified Critical Path (Wu & Gajski, 1990).

Node priority is the ALAP (as-late-as-possible start) time: nodes with
less slack — critical-path nodes have zero slack — go first.  Each node
carries a list of the ALAPs of itself and all of its descendants in
ascending order; nodes are scheduled in ascending lexicographic order of
these lists, each on the processor giving the earliest start time *with
insertion*.

The paper found MCP both the best-performing and the fastest BNP
algorithm, and notes it is the one exception to "dynamic priority beats
static priority".  Classified CP-based, static-list, greedy; O(v^2 log v).
"""

from __future__ import annotations

from typing import List, Set

from ...core.attributes import alap
from ...core.graph import TaskGraph
from ...core.listsched import best_proc_min_est
from ...core.machine import Machine
from ...core.schedule import Schedule
from ..base import Scheduler, register

__all__ = ["MCP"]


def _descendant_alap_lists(graph: TaskGraph, al: List[float]) -> List[List[float]]:
    """For each node: ascending ALAPs of the node and all its descendants."""
    desc: List[Set[int]] = [set() for _ in range(graph.num_nodes)]
    for u in reversed(graph.topological_order):
        d: Set[int] = set()
        for s in graph.successors(u):
            d.add(s)
            d.update(desc[s])
        desc[u] = d
    lists: List[List[float]] = []
    for n in graph.nodes():
        vals = [al[n]] + [al[d] for d in desc[n]]
        vals.sort()
        lists.append(vals)
    return lists


@register
class MCP(Scheduler):
    name = "MCP"
    klass = "BNP"
    cp_based = True
    dynamic_priority = False
    uses_insertion = True
    complexity = "O(v^2 log v)"

    def _run(self, graph: TaskGraph, machine: Machine) -> Schedule:
        al = alap(graph)
        lists = _descendant_alap_lists(graph, al)
        # Ascending lexicographic order of ALAP lists; ALAP of an ancestor
        # is strictly smaller than any descendant's (weights are positive),
        # so this order is topologically consistent.
        order = sorted(graph.nodes(), key=lambda n: (lists[n], n))
        schedule = Schedule(graph, machine.num_procs, speeds=machine.speeds)
        for node in order:
            proc, start = best_proc_min_est(schedule, node, insertion=True)
            schedule.place(node, proc, start)
        return schedule

"""HLFET — Highest Level First with Estimated Times (Adam et al., 1974).

One of the earliest list schedulers.  Node priority is the *static
level* (longest computation-only path to an exit node); at each step the
highest-level ready node is placed on the processor that allows the
earliest start time, **without** insertion.  The paper classifies HLFET
as non-CP-based, static-list, greedy; complexity O(v^2).
"""

from __future__ import annotations

from ...core.graph import TaskGraph
from ...core.listsched import ReadyTracker, best_proc_min_est
from ...core.machine import Machine
from ...core.attributes import static_blevel
from ...core.schedule import Schedule
from ..base import Scheduler, register

__all__ = ["HLFET"]


@register
class HLFET(Scheduler):
    name = "HLFET"
    klass = "BNP"
    cp_based = False
    dynamic_priority = False
    uses_insertion = False
    complexity = "O(v^2)"

    def _run(self, graph: TaskGraph, machine: Machine) -> Schedule:
        sl = static_blevel(graph)
        schedule = Schedule(graph, machine.num_procs, speeds=machine.speeds)
        ready = ReadyTracker(graph)
        # Highest static level first; ties toward the smaller node id.
        queue = ready.priority_queue(lambda n: (-sl[n], n))
        while not ready.all_scheduled():
            node = queue.pop_best()
            proc, start = best_proc_min_est(schedule, node, insertion=False)
            schedule.place(node, proc, start)
            for child in ready.mark_scheduled(node):
                queue.push(child)
        return schedule

"""LAST — Localized Allocation of Static Tasks (Baxter & Patel, 1989).

LAST is *edge-driven* rather than level-driven: the priority of a ready
node is ``D_NODE``, the fraction of its incident edge weight that
connects it to already-scheduled nodes.  Nodes strongly coupled to the
scheduled region are allocated next, on the processor minimising their
start time — the goal is localising communication, not shortening the
critical path.

The paper consistently finds LAST the worst BNP performer (Tables 3/5,
Figure 4), which it attributes to exactly this design: ignoring node
levels lets the critical path drift.  Non-CP-based, dynamic-list,
non-greedy; O(v(e+v)).
"""

from __future__ import annotations

from ...core.attributes import static_blevel
from ...core.graph import TaskGraph
from ...core.listsched import ReadyTracker, best_proc_min_est
from ...core.machine import Machine
from ...core.schedule import Schedule
from ..base import Scheduler, register

__all__ = ["LAST"]


@register
class LAST(Scheduler):
    name = "LAST"
    klass = "BNP"
    cp_based = False
    dynamic_priority = True
    uses_insertion = False
    complexity = "O(v(e+v))"

    def _run(self, graph: TaskGraph, machine: Machine) -> Schedule:
        sl = static_blevel(graph)  # tie-break only
        # Total incident edge weight per node (denominator of D_NODE).
        incident = [0.0] * graph.num_nodes
        for u, v, c in graph.edges():
            incident[u] += c
            incident[v] += c
        # Weight of edges joining a node to already-scheduled neighbours.
        settled = [0.0] * graph.num_nodes

        def d_node(n: int) -> float:
            if incident[n] <= 0:
                return 1.0  # isolated w.r.t. communication: fully localised
            return settled[n] / incident[n]

        schedule = Schedule(graph, machine.num_procs, speeds=machine.speeds)
        ready = ReadyTracker(graph)
        while not ready.all_scheduled():
            node = max(ready.ready, key=lambda n: (d_node(n), sl[n], -n))
            proc, start = best_proc_min_est(schedule, node, insertion=False)
            schedule.place(node, proc, start)
            ready.mark_scheduled(node)
            for s in graph.successors(node):
                settled[s] += graph.comm_cost(node, s)
            for p in graph.predecessors(node):
                settled[p] += graph.comm_cost(p, node)
        return schedule

"""LAST — Localized Allocation of Static Tasks (Baxter & Patel, 1989).

LAST is *edge-driven* rather than level-driven: the priority of a ready
node is ``D_NODE``, the fraction of its incident edge weight that
connects it to already-scheduled nodes.  Nodes strongly coupled to the
scheduled region are allocated next, on the processor minimising their
start time — the goal is localising communication, not shortening the
critical path.

The paper consistently finds LAST the worst BNP performer (Tables 3/5,
Figure 4), which it attributes to exactly this design: ignoring node
levels lets the critical path drift.  Non-CP-based, dynamic-list,
non-greedy; O(v(e+v)).
"""

from __future__ import annotations

from ...core.attributes import static_blevel
from ...core.graph import TaskGraph
from ...core.listsched import ReadyTracker, best_proc_min_est
from ...core.machine import Machine
from ...core.schedule import Schedule
from ..base import Scheduler, register

__all__ = ["LAST"]


@register
class LAST(Scheduler):
    name = "LAST"
    klass = "BNP"
    cp_based = False
    dynamic_priority = True
    uses_insertion = False
    complexity = "O(v(e+v))"

    def _run(self, graph: TaskGraph, machine: Machine) -> Schedule:
        sl = static_blevel(graph)  # tie-break only
        # Total incident edge weight per node (denominator of D_NODE).
        incident = [0.0] * graph.num_nodes
        for u, v, c in graph.edges():
            incident[u] += c
            incident[v] += c
        # Weight of edges joining a node to already-scheduled neighbours.
        settled = [0.0] * graph.num_nodes

        def d_node(n: int) -> float:
            if incident[n] <= 0:
                return 1.0  # isolated w.r.t. communication: fully localised
            return settled[n] / incident[n]

        schedule = Schedule(graph, machine.num_procs, speeds=machine.speeds)
        ready = ReadyTracker(graph)
        # A ready node's D_NODE is fixed: all its parents are already
        # scheduled (that is what ready means) and its children cannot
        # be scheduled before it, so ``settled`` can no longer change
        # for it.  Pushing children only *after* the settled update
        # below therefore keeps every heap entry's key current.
        queue = ready.priority_queue(lambda n: (-d_node(n), -sl[n], n))
        while not ready.all_scheduled():
            node = queue.pop_best()
            proc, start = best_proc_min_est(schedule, node, insertion=False)
            schedule.place(node, proc, start)
            released = ready.mark_scheduled(node)
            succs, succ_costs = graph.succ_pairs(node)
            for s, c in zip(succs, succ_costs):
                settled[s] += c
            preds, pred_costs = graph.pred_pairs(node)
            for p, c in zip(preds, pred_costs):
                settled[p] += c
            for child in released:
                queue.push(child)
        return schedule

"""Benchmark task-graph generators: the paper's five suites.

* :mod:`.psg` — peer set graphs (small documented examples);
* :mod:`.random_graphs` — RGBOS / RGNOS random constructions;
* :mod:`.rgpos` — random graphs with pre-determined optimal schedules;
* :mod:`.traced` — numerical-application graphs (Cholesky and friends).
"""

from .psg import peer_set_graphs
from .random_graphs import rgbos_graph, rgnos_graph
from .rgpos import RGPOSInstance, rgpos_instance
from .traced import (
    cholesky_graph,
    fft_graph,
    gaussian_elimination_graph,
    laplace_graph,
)

__all__ = [
    "peer_set_graphs",
    "rgbos_graph",
    "rgnos_graph",
    "rgpos_instance",
    "RGPOSInstance",
    "cholesky_graph",
    "gaussian_elimination_graph",
    "fft_graph",
    "laplace_graph",
]

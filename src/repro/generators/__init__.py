"""Benchmark task-graph generators: the paper's five suites.

* :mod:`.psg` — peer set graphs (small documented examples);
* :mod:`.random_graphs` — RGBOS / RGNOS random constructions;
* :mod:`.rgpos` — random graphs with pre-determined optimal schedules;
* :mod:`.traced` — numerical-application graphs (Cholesky and friends).

Beyond the generated families, :func:`load_graph` reads a graph back
from an STG-format file — the interchange path for instances found by
the adversarial search (``repro-bench adv export``) or produced by
external tools.
"""

from __future__ import annotations

import os

from ..core.graph import TaskGraph
from .psg import peer_set_graphs
from .random_graphs import rgbos_graph, rgnos_graph
from .rgpos import RGPOSInstance, rgpos_instance
from .traced import (
    cholesky_graph,
    fft_graph,
    gaussian_elimination_graph,
    laplace_graph,
)

__all__ = [
    "peer_set_graphs",
    "rgbos_graph",
    "rgnos_graph",
    "rgpos_instance",
    "RGPOSInstance",
    "cholesky_graph",
    "gaussian_elimination_graph",
    "fft_graph",
    "laplace_graph",
    "load_graph",
]


def load_graph(path: str, name: str | None = None) -> TaskGraph:
    """Load a task graph from an ``.stg`` file (see :mod:`repro.io.stg`).

    The graph's name defaults to the file's stem, so exported
    adversarial instances keep their identity through a round trip.
    """
    from ..io.stg import load_stg

    stem = os.path.splitext(os.path.basename(path))[0]
    with open(path) as fh:
        return load_stg(fh, name=name or stem)

"""RGPOS: random graphs with pre-determined optimal schedules.

Section 5.3 of the paper inverts the usual generator: build the optimal
schedule *first*, then derive a task graph for which that schedule is
feasible.  Given a target length ``L_opt`` and processor count ``p``:

1. each processor's ``[0, L_opt]`` interval is randomly partitioned into
   task execution spans with **no idle time** — so the reference
   schedule's length equals ``total work / p``, which no ``p``-processor
   schedule can beat;
2. edges are drawn between random task pairs ``(a, b)`` with
   ``FT(a) <= ST(b)``; a cross-processor edge's weight is capped by the
   receiver's slack ``ST(b) - FT(a)`` so it cannot delay ``b``; a
   same-processor edge's weight is arbitrary (it is never paid);
3. (our strengthening, on by default) consecutive tasks on each
   processor are chained with an edge, which makes each processor's task
   sequence a dependency chain of total computation ``L_opt``.  The
   computation-only critical path then equals ``L_opt``, so the
   reference schedule is optimal over *any* number of processors — the
   paper's construction only guarantees optimality for exactly ``p``.

:class:`RGPOSInstance` carries the graph, the reference schedule, and
the provable optimum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..core.exceptions import GeneratorError
from ..core.graph import TaskGraph
from ..core.rng import SeedLike, as_generator, seed_label
from ..core.schedule import Schedule

__all__ = ["RGPOSInstance", "rgpos_instance"]

_MEAN_WEIGHT = 40


@dataclass(frozen=True)
class RGPOSInstance:
    """An RGPOS benchmark case: graph + known-optimal reference schedule."""

    graph: TaskGraph
    optimal_length: float
    num_procs: int
    reference: Dict[int, Tuple[int, float]]  # node -> (proc, start)

    def reference_schedule(self) -> Schedule:
        """Materialise the generating schedule (useful for tests)."""
        sched = Schedule(self.graph, self.num_procs)
        for node in sorted(self.reference,
                           key=lambda n: self.reference[n][1]):
            proc, start = self.reference[node]
            sched.place(node, proc, start)
        return sched


def rgpos_instance(v: int, ccr: float, num_procs: int = 8,
                   seed: SeedLike = 0,
                   ensure_chains: bool = True,
                   extra_edge_factor: float = 1.5,
                   chain_processors: int | None = None,
                   name: str | None = None) -> RGPOSInstance:
    """Generate one RGPOS case (paper Section 5.3).

    Parameters
    ----------
    v:
        Total number of tasks (the paper sweeps 50..500).
    ccr:
        Drives the edge-weight distribution (0.1, 1.0, 10.0 in the paper).
    num_procs:
        Processors in the reference schedule (``p``).
    ensure_chains:
        Add same-processor chain edges on **all** processors, making
        ``L_opt`` a critical-path lower bound (provable optimality on any
        machine size) at the cost of leaking the reference order to list
        schedulers.  Shorthand for ``chain_processors=num_procs``.
    extra_edge_factor:
        Random cross edges attempted, as a multiple of ``v``.
    chain_processors:
        Chain only the first ``k`` processors' sequences.  ``1`` is the
        benchmark sweet spot: the single chain pins the computation-only
        critical path to exactly ``L_opt`` (machine-independent
        optimality certificate) while the other processors' packing
        stays hard.  Overrides ``ensure_chains`` when given.
    """
    if v < num_procs:
        raise GeneratorError("need at least one task per processor")
    if ccr <= 0:
        raise GeneratorError("ccr must be positive")
    rng = as_generator(seed)

    # Spread tasks over processors: mean v/p each, at least 1.
    counts = rng.multinomial(v - num_procs, [1.0 / num_procs] * num_procs)
    counts = [int(c) + 1 for c in counts]

    l_opt = int(round(_MEAN_WEIGHT * (v / num_procs)))
    # Partition [0, l_opt] into counts[i] integer spans of length >= 1.
    starts_of: List[List[int]] = []
    for c in counts:
        if c > l_opt:
            raise GeneratorError(
                f"cannot fit {c} unit tasks into optimal length {l_opt}"
            )
        cuts = rng.choice(np.arange(1, l_opt), size=c - 1, replace=False)
        starts_of.append([0] + sorted(int(x) for x in cuts))

    # Node ids in (start, proc) order keep the graph naturally topological.
    tasks: List[Tuple[int, int, int]] = []  # (start, proc, finish)
    for proc, starts in enumerate(starts_of):
        spans = starts + [l_opt]
        for i in range(len(starts)):
            tasks.append((starts[i], proc, spans[i + 1]))
    tasks.sort(key=lambda t: (t[0], t[1]))
    weights = [finish - start for (start, _proc, finish) in tasks]
    reference = {
        node: (proc, float(start))
        for node, (start, proc, _f) in enumerate(tasks)
    }
    finish_time = [float(f) for (_s, _p, f) in tasks]
    start_time = [float(s) for (s, _p, _f) in tasks]
    proc_of = [p for (_s, p, _f) in tasks]

    edges: Dict[Tuple[int, int], float] = {}
    mean_c = _MEAN_WEIGHT * ccr

    def comm_draw(cap: float | None) -> float:
        """Weight with mean ~ mean_c, optionally capped by the slack."""
        hi = max(1, int(round(2 * mean_c)) - 1)
        w = float(rng.integers(1, hi + 1))
        if cap is not None:
            w = min(w, cap)
        return max(1.0, w)

    if chain_processors is None:
        chain_processors = num_procs if ensure_chains else 0
    if chain_processors:
        by_proc: Dict[int, List[int]] = {}
        for node in range(v):
            by_proc.setdefault(proc_of[node], []).append(node)
        for proc in range(min(chain_processors, num_procs)):
            nodes = sorted(by_proc.get(proc, []),
                           key=lambda n: start_time[n])
            for a, b in zip(nodes, nodes[1:]):
                edges[(a, b)] = comm_draw(None)  # never paid: same proc

    attempts = int(extra_edge_factor * v)
    for _ in range(attempts):
        a, b = int(rng.integers(0, v)), int(rng.integers(0, v))
        if a == b or (a, b) in edges:
            continue
        if finish_time[a] > start_time[b]:
            continue
        if proc_of[a] == proc_of[b]:
            edges[(a, b)] = comm_draw(None)
        else:
            slack = start_time[b] - finish_time[a]
            if slack < 1.0:
                continue
            edges[(a, b)] = comm_draw(slack)

    graph = TaskGraph(
        weights, edges,
        name=name or (f"rgpos-v{v}-ccr{ccr:g}-p{num_procs}"
                      f"-s{seed_label(seed)}"),
    )
    return RGPOSInstance(graph, float(l_opt), num_procs, reference)

"""Random task-graph generators: the RGBOS and RGNOS construction.

Section 5.2 of the paper describes the random-graph recipe shared by the
RGBOS ("random graphs with branch-and-bound optimal solutions") and
RGNOS ("random graphs with no known optimal solutions") suites:

* computation costs drawn uniformly with mean 40 (range 2..78);
* each node, in index order, receives a number of children drawn
  uniformly with mean ``v/10``, connected to higher-indexed nodes;
* communication costs drawn uniformly with mean ``40 * CCR``.

RGNOS additionally controls *parallelism*: a parameter ``1..5`` setting
the average graph width to ``parallelism * sqrt(v)``; we realise it by
layering the nodes (layer sizes jittered around the target width) and
drawing children only from strictly later layers, with the immediately
following layer guaranteed reachable so the width target is tight.

All draws come from an explicitly seeded ``numpy.random.Generator`` and
no module holds global RNG state — every graph in every suite is
reproducible bit for bit.  ``seed`` parameters accept either an ``int``
(an independent stream per call, the historical behaviour) or a live
``numpy.random.Generator`` (one shared stream threaded through several
calls — how the simulator keeps graph generation and Monte-Carlo trials
jointly reproducible, see :mod:`repro.core.rng`).
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import numpy as np

from ..core.exceptions import GeneratorError
from ..core.graph import TaskGraph
from ..core.rng import SeedLike, as_generator, seed_label

__all__ = ["rgbos_graph", "rgnos_graph", "uniform_weights"]

_MEAN_WEIGHT = 40
_WEIGHT_LOW, _WEIGHT_HIGH = 2, 78  # inclusive; mean 40 as in the paper


def uniform_weights(rng: np.random.Generator, count: int) -> np.ndarray:
    """Computation costs: integer uniform on [2, 78], mean 40."""
    return rng.integers(_WEIGHT_LOW, _WEIGHT_HIGH + 1, size=count)


def _comm_cost(rng: np.random.Generator, ccr: float) -> int:
    """Communication cost: integer uniform with mean ``40 * ccr``, >= 1."""
    mean = _MEAN_WEIGHT * ccr
    high = max(1, int(round(2 * mean)) - 1)
    return int(rng.integers(1, high + 1))


def rgbos_graph(v: int, ccr: float, seed: SeedLike = 0,
                name: str | None = None) -> TaskGraph:
    """One RGBOS-style random graph (paper Section 5.2).

    Parameters
    ----------
    v:
        Number of nodes (the paper uses 10..32 in steps of 2).
    ccr:
        Target communication-to-computation ratio (0.1, 1.0 or 10.0 in
        the paper).
    seed:
        RNG seed — graphs are deterministic in (v, ccr, seed) — or a
        live ``numpy.random.Generator`` to draw from a shared stream.
    """
    if v < 2:
        raise GeneratorError("need at least two nodes")
    if ccr <= 0:
        raise GeneratorError("ccr must be positive")
    rng = as_generator(seed)
    weights = uniform_weights(rng, v)
    mean_children = max(1.0, v / 10.0)
    edges: Dict[Tuple[int, int], float] = {}
    for u in range(v - 1):
        n_children = int(rng.integers(0, int(round(2 * mean_children)) + 1))
        n_children = min(n_children, v - 1 - u)
        if n_children == 0:
            continue
        children = rng.choice(
            np.arange(u + 1, v), size=n_children, replace=False
        )
        for child in sorted(int(c) for c in children):
            edges[(u, child)] = _comm_cost(rng, ccr)
    # Keep the graph weakly useful for scheduling studies: ensure no node
    # besides node 0 is fully isolated (isolated nodes are trivially
    # schedulable and dilute the benchmark).
    for node in range(1, v):
        has_any = any((p, node) in edges for p in range(node)) or any(
            (node, s) in edges for s in range(node + 1, v)
        )
        if not has_any:
            parent = int(rng.integers(0, node))
            edges[(parent, node)] = _comm_cost(rng, ccr)
    return TaskGraph(
        weights, edges,
        name=name or f"rgbos-v{v}-ccr{ccr:g}-s{seed_label(seed)}",
    )


def _layer_sizes(rng: np.random.Generator, v: int, width: float) -> List[int]:
    """Layer sizes jittered around ``width`` summing exactly to ``v``."""
    sizes: List[int] = []
    remaining = v
    while remaining > 0:
        size = int(round(rng.normal(width, max(0.5, width / 4))))
        size = max(1, min(size, remaining))
        sizes.append(size)
        remaining -= size
    return sizes


def rgnos_graph(v: int, ccr: float, parallelism: int, seed: SeedLike = 0,
                name: str | None = None) -> TaskGraph:
    """One RGNOS-style random graph (paper Section 5.4).

    ``parallelism`` of ``k`` targets an average width of ``k * sqrt(v)``
    (the paper uses 1..5).  ``seed`` accepts an int or a live
    ``numpy.random.Generator``.
    """
    if v < 2:
        raise GeneratorError("need at least two nodes")
    if ccr <= 0 or parallelism < 1:
        raise GeneratorError("ccr must be positive, parallelism >= 1")
    rng = as_generator(seed)
    width = min(float(v), parallelism * math.sqrt(v))
    sizes = _layer_sizes(rng, v, width)
    layer_of: List[int] = []
    for layer, size in enumerate(sizes):
        layer_of.extend([layer] * size)
    starts = np.cumsum([0] + sizes)  # first node id of each layer

    weights = uniform_weights(rng, v)
    edges: Dict[Tuple[int, int], float] = {}
    mean_children = max(1.0, v / 10.0)
    num_layers = len(sizes)
    for u in range(v):
        lu = layer_of[u]
        if lu == num_layers - 1:
            continue
        pool = np.arange(starts[lu + 1], v)
        n_children = int(rng.integers(0, int(round(2 * mean_children)) + 1))
        n_children = min(n_children, pool.size)
        if n_children:
            for child in rng.choice(pool, size=n_children, replace=False):
                edges[(u, int(child))] = _comm_cost(rng, ccr)
    # Guarantee the layer structure is real: every node below the top has
    # at least one parent in the previous layer, so the width of the
    # level decomposition matches the requested parallelism.
    for node in range(v):
        ln = layer_of[node]
        if ln == 0:
            continue
        if not any((p, node) in edges
                   for p in range(starts[ln - 1], starts[ln])):
            parent = int(rng.integers(starts[ln - 1], starts[ln]))
            edges[(parent, node)] = _comm_cost(rng, ccr)
    return TaskGraph(
        weights, edges,
        name=name or (f"rgnos-v{v}-ccr{ccr:g}-par{parallelism}"
                      f"-s{seed_label(seed)}"),
    )

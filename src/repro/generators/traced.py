"""Traced graphs: task graphs of real numerical parallel applications.

Section 5.5 of the paper uses task graphs "obtained via a parallelizing
compiler" — Cholesky factorization for the published results (graph size
O(N^2) in the matrix dimension N).  We generate the same DAG shapes
analytically, with node weights proportional to floating-point work and
edge weights proportional to the data volume moved, then scale the edge
weights to hit a requested CCR (the compiler in the original produced
fixed machine-specific costs; scaling to a CCR keeps the suite
parameterisable the same way the random suites are).

Also provided, as extensions in the same spirit: Gaussian elimination,
FFT butterflies, and Laplace (wavefront) stencil graphs — the other
workloads classically used by the scheduling literature this paper
benchmarks.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.exceptions import GeneratorError
from ..core.graph import TaskGraph

__all__ = [
    "cholesky_graph",
    "gaussian_elimination_graph",
    "fft_graph",
    "laplace_graph",
]


def _scale_to_ccr(weights: List[float], edges: Dict[Tuple[int, int], float],
                  ccr: float) -> Dict[Tuple[int, int], float]:
    """Scale edge volumes so the graph's CCR equals ``ccr``."""
    if not edges:
        return edges
    avg_w = sum(weights) / len(weights)
    avg_c = sum(edges.values()) / len(edges)
    if avg_c <= 0:
        raise GeneratorError("traced graph has zero communication volume")
    factor = (ccr * avg_w) / avg_c
    return {k: max(1e-3, v * factor) for k, v in edges.items()}


def cholesky_graph(n: int, ccr: float = 1.0) -> TaskGraph:
    """Column-oriented Cholesky factorization task graph, O(N^2) nodes.

    Tasks (the classic macro-dataflow decomposition):

    * ``cdiv(k)`` — scale/normalise column ``k`` (weight ~ N - k);
    * ``cmod(j, k)`` — update column ``j`` with column ``k`` (k < j,
      weight ~ 2 (N - j)).

    Dependencies: ``cdiv(k) -> cmod(j, k)`` for every ``j > k`` (column
    ``k`` is broadcast), and per column ``j`` the updates apply serially
    ``cmod(j, 0) -> cmod(j, 1) -> ... -> cmod(j, j-1) -> cdiv(j)``.

    ``v = N (N + 1) / 2`` nodes — the O(N^2) scaling the paper notes for
    its matrix-dimension sweep (Figure 4).
    """
    if n < 1:
        raise GeneratorError("matrix dimension must be >= 1")
    index: Dict[Tuple[str, int, int], int] = {}
    weights: List[float] = []

    def add(kind: str, j: int, k: int, weight: float) -> int:
        node = len(weights)
        index[(kind, j, k)] = node
        weights.append(max(1.0, weight))
        return node

    for k in range(n):
        add("cdiv", k, k, float(n - k))
        for j in range(k + 1, n):
            add("cmod", j, k, 2.0 * (n - j))

    edges: Dict[Tuple[int, int], float] = {}
    for k in range(n):
        cdiv_k = index[("cdiv", k, k)]
        for j in range(k + 1, n):
            # Broadcast of column k (length N - k) to each update task.
            edges[(cdiv_k, index[("cmod", j, k)])] = float(n - k)
        if k > 0:
            # Final update of column k feeds its own cdiv.
            edges[(index[("cmod", k, k - 1)], cdiv_k)] = float(n - k)
    for j in range(n):
        for k in range(1, j):
            # Serial accumulation chain on column j (length N - j data).
            edges[(index[("cmod", j, k - 1)], index[("cmod", j, k)])] = float(
                n - j
            )

    return TaskGraph(weights, _scale_to_ccr(weights, edges, ccr),
                     name=f"cholesky-n{n}-ccr{ccr:g}")


def gaussian_elimination_graph(n: int, ccr: float = 1.0) -> TaskGraph:
    """Gaussian elimination task graph (pivot + row updates), O(N^2) nodes.

    ``pivot(k)`` prepares column ``k`` (weight ~ N - k); ``update(k, j)``
    eliminates column ``k`` from row ``j`` (weight ~ 2 (N - k)).
    ``pivot(k) -> update(k, j)`` for ``j > k``;
    ``update(k, k+1) -> pivot(k+1)`` and
    ``update(k, j) -> update(k+1, j)`` for ``j > k + 1``.
    """
    if n < 2:
        raise GeneratorError("need a matrix of dimension >= 2")
    index: Dict[Tuple[str, int, int], int] = {}
    weights: List[float] = []

    def add(kind: str, k: int, j: int, weight: float) -> int:
        node = len(weights)
        index[(kind, k, j)] = node
        weights.append(max(1.0, weight))
        return node

    for k in range(n - 1):
        add("pivot", k, k, float(n - k))
        for j in range(k + 1, n):
            add("update", k, j, 2.0 * (n - k))

    edges: Dict[Tuple[int, int], float] = {}
    for k in range(n - 1):
        pk = index[("pivot", k, k)]
        for j in range(k + 1, n):
            edges[(pk, index[("update", k, j)])] = float(n - k)
        if k + 1 < n - 1:
            edges[(index[("update", k, k + 1)],
                   index[("pivot", k + 1, k + 1)])] = float(n - k - 1)
            for j in range(k + 2, n):
                edges[(index[("update", k, j)],
                       index[("update", k + 1, j)])] = float(n - k - 1)

    return TaskGraph(weights, _scale_to_ccr(weights, edges, ccr),
                     name=f"gauss-n{n}-ccr{ccr:g}")


def fft_graph(m: int, ccr: float = 1.0) -> TaskGraph:
    """Radix-2 FFT butterfly graph: ``2^m`` points, ``m`` stages.

    Node ``(stage, i)`` combines its same-index and butterfly-partner
    parents from the previous stage.  All tasks cost one butterfly; all
    edges move one complex point.  ``v = 2^m (m + 1)``.
    """
    if m < 1:
        raise GeneratorError("need at least one FFT stage")
    points = 1 << m
    weights = [1.0] * (points * (m + 1))

    def node(stage: int, i: int) -> int:
        return stage * points + i

    edges: Dict[Tuple[int, int], float] = {}
    for stage in range(1, m + 1):
        stride = 1 << (stage - 1)
        for i in range(points):
            edges[(node(stage - 1, i), node(stage, i))] = 1.0
            edges[(node(stage - 1, i ^ stride), node(stage, i))] = 1.0

    return TaskGraph(weights, _scale_to_ccr(weights, edges, ccr),
                     name=f"fft-m{m}-ccr{ccr:g}")


def laplace_graph(rows: int, cols: int | None = None,
                  ccr: float = 1.0) -> TaskGraph:
    """Wavefront (Laplace/Gauss-Seidel sweep) grid: point (i, j) waits for
    its north and west neighbours.  ``v = rows * cols``."""
    cols = rows if cols is None else cols
    if rows < 1 or cols < 1:
        raise GeneratorError("grid dimensions must be positive")
    weights = [1.0] * (rows * cols)
    edges: Dict[Tuple[int, int], float] = {}
    for i in range(rows):
        for j in range(cols):
            node = i * cols + j
            if i + 1 < rows:
                edges[(node, node + cols)] = 1.0
            if j + 1 < cols:
                edges[(node, node + 1)] = 1.0
    return TaskGraph(weights, _scale_to_ccr(weights, edges, ccr),
                     name=f"laplace-{rows}x{cols}-ccr{ccr:g}")

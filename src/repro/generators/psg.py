"""PSG — Peer Set Graphs (paper Section 5.1).

Small example task graphs "used by various researchers and documented in
publications"; their value is traceability — a schedule on ten nodes can
be inspected by hand.  Table 1 of the paper runs every UNC and BNP
algorithm over this set and observes that schedule lengths vary
considerably despite the tiny sizes.

Fidelity note: the 1998 paper does not print the peer graphs themselves.
The Kwok–Ahmad 9-node graph is reproduced exactly from the authors'
companion survey, where it is fully specified.  The remaining entries
are constructed in the documented *style* of the cited works (the
structures each paper's heuristic was designed around: linear clusters,
fork–join, out/in-trees, diamonds, small numerical kernels); exact
historical node weights are not recoverable from the text.  Table 1's
finding — substantial cross-algorithm variance on small graphs — is a
property of the structures, not of particular weight values.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..core.graph import TaskGraph
from .traced import cholesky_graph, fft_graph, gaussian_elimination_graph

__all__ = [
    "kwok_ahmad_9",
    "dsc_style_7",
    "fork_join_13",
    "out_tree_15",
    "in_tree_15",
    "diamond_14",
    "stencil_9",
    "irregular_16",
    "ge_style_14",
    "fft_style_12",
    "peer_set_graphs",
]


def kwok_ahmad_9() -> TaskGraph:
    """The 9-node example of Kwok & Ahmad (used across their papers).

    Node weights n1..n9 = (2, 3, 3, 4, 5, 4, 4, 4, 1); the single entry
    fans out to five nodes, three join stages lead into the exit.
    """
    weights = [2, 3, 3, 4, 5, 4, 4, 4, 1]
    edges = {
        (0, 1): 4, (0, 2): 1, (0, 3): 1, (0, 4): 1, (0, 5): 10,
        (1, 6): 1, (2, 6): 1,
        (3, 7): 1, (4, 7): 1,
        (5, 8): 5, (6, 8): 5, (7, 8): 10,
    }
    return TaskGraph(weights, edges, name="psg-kwok-ahmad-9")


def dsc_style_7() -> TaskGraph:
    """Seven-node join-heavy example in the style of Yang & Gerasoulis's
    DSC paper: two chains merging into a common exit, with one expensive
    cross edge that rewards clustering the dominant sequence."""
    weights = [2, 3, 3, 4, 5, 4, 1]
    edges = {
        (0, 1): 6, (0, 2): 1,
        (1, 3): 2, (2, 3): 4,
        (1, 4): 1, (2, 5): 8,
        (3, 6): 3, (4, 6): 5, (5, 6): 1,
    }
    return TaskGraph(weights, edges, name="psg-dsc-style-7")


def fork_join_13(width: int = 5) -> TaskGraph:
    """Fork–join: one source fans out to ``width`` two-task chains that
    join at a sink — the shape motivating duplication and clustering
    heuristics (Kruatrachue & Lewis; Chung & Ranka)."""
    weights: List[float] = [3.0]
    edges: Dict[tuple, float] = {}
    for i in range(width):
        a = len(weights)
        weights.append(4.0 + (i % 3))
        b = len(weights)
        weights.append(2.0 + (i % 2))
        edges[(0, a)] = 8.0 - i
        edges[(a, b)] = 2.0
    sink = len(weights)
    weights.append(1.0)
    for i in range(width):
        edges[(2 + 2 * i, sink)] = 3.0 + (i % 4)
    return TaskGraph(weights, edges, name=f"psg-forkjoin-{len(weights)}")


def out_tree_15(depth: int = 3) -> TaskGraph:
    """Complete binary out-tree (Hu's scheduling model)."""
    count = (1 << (depth + 1)) - 1
    weights = [float(2 + (i % 4)) for i in range(count)]
    edges = {}
    for i in range(count):
        for child in (2 * i + 1, 2 * i + 2):
            if child < count:
                edges[(i, child)] = float(1 + (child % 5))
    return TaskGraph(weights, edges, name=f"psg-outtree-{count}")


def in_tree_15(depth: int = 3) -> TaskGraph:
    """Complete binary in-tree (reduction), the mirror of Hu's model."""
    count = (1 << (depth + 1)) - 1
    weights = [float(2 + (i % 4)) for i in range(count)]
    edges = {}
    for i in range(count):
        for child in (2 * i + 1, 2 * i + 2):
            if child < count:
                edges[(child, i)] = float(1 + (child % 5))
    return TaskGraph(weights, edges, name=f"psg-intree-{count}")


def diamond_14() -> TaskGraph:
    """Layered diamond (expand then contract) with asymmetric edge costs,
    the macro-pipeline shape of the MCP/MD examples."""
    # Layers: 1 / 3 / 4 / 3 / 2 / 1 nodes.
    sizes = [1, 3, 4, 3, 2, 1]
    weights: List[float] = []
    layer_nodes: List[List[int]] = []
    for li, size in enumerate(sizes):
        ids = []
        for i in range(size):
            ids.append(len(weights))
            weights.append(float(2 + ((li + i) % 5)))
        layer_nodes.append(ids)
    edges: Dict[tuple, float] = {}
    for upper, lower in zip(layer_nodes, layer_nodes[1:]):
        for i, u in enumerate(upper):
            for j, v in enumerate(lower):
                if abs(i - j) <= 1:
                    edges[(u, v)] = float(1 + ((i + 2 * j) % 6))
    return TaskGraph(weights, edges, name="psg-diamond-14")


def stencil_9() -> TaskGraph:
    """3x3 wavefront grid (Laplace sweep), unit-ish weights."""
    weights = [float(2 + (i % 3)) for i in range(9)]
    edges = {}
    for i in range(3):
        for j in range(3):
            node = 3 * i + j
            if i + 1 < 3:
                edges[(node, node + 3)] = float(2 + j)
            if j + 1 < 3:
                edges[(node, node + 1)] = float(1 + i)
    return TaskGraph(weights, edges, name="psg-stencil-9")


def irregular_16() -> TaskGraph:
    """Irregular multi-entry/multi-exit graph in the style of the MH and
    LAST papers' examples: uneven fan-in/fan-out, mixed edge costs."""
    weights = [3, 2, 5, 4, 3, 6, 2, 4, 5, 3, 2, 4, 6, 3, 2, 5]
    edges = {
        (0, 3): 2, (0, 4): 7, (1, 4): 3, (1, 5): 1, (2, 5): 9, (2, 6): 2,
        (3, 7): 4, (4, 7): 1, (4, 8): 6, (5, 8): 2, (5, 9): 5, (6, 9): 3,
        (7, 10): 2, (7, 11): 8, (8, 11): 1, (8, 12): 4, (9, 12): 7,
        (10, 13): 3, (11, 13): 2, (11, 14): 5, (12, 14): 1,
        (13, 15): 6, (14, 15): 2,
    }
    return TaskGraph([float(w) for w in weights], edges,
                     name="psg-irregular-16")


def ge_style_14() -> TaskGraph:
    """Gaussian-elimination kernel for N=5 (14 tasks) — the shape of the
    Wu–Gajski (Hypertool) running example."""
    return gaussian_elimination_graph(5, ccr=1.0).relabeled("psg-ge-14")


def fft_style_12() -> TaskGraph:
    """Four-point FFT butterfly (3 ranks of 4); CCR 2 so that the
    communication structure actually differentiates the algorithms."""
    return fft_graph(2, ccr=2.0).relabeled("psg-fft-12")


def cholesky_style_10() -> TaskGraph:
    """Cholesky kernel for N=4 (10 tasks)."""
    return cholesky_graph(4, ccr=1.0).relabeled("psg-cholesky-10")


def peer_set_graphs() -> List[TaskGraph]:
    """The PSG suite, deterministic order (rows of Table 1)."""
    builders: List[Callable[[], TaskGraph]] = [
        kwok_ahmad_9,
        dsc_style_7,
        fork_join_13,
        out_tree_15,
        in_tree_15,
        diamond_14,
        stencil_9,
        irregular_16,
        ge_style_14,
        fft_style_12,
        cholesky_style_10,
    ]
    return [b() for b in builders]

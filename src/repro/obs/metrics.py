"""Named counters, gauges and histograms with near-free disarmed hooks.

The registry shares the tracer's arming model (``REPRO_TRACE=1``, see
:mod:`repro.obs.trace`): disarmed, :func:`incr`/:func:`observe` return
after one module-global load and one environment probe — cheap enough
to sit inside ``LazyPriorityQueue.pop_best`` and the arrival-profile
builder without moving the bench gate.

Counter names form a small registry (see DESIGN.md "Observability"):

===================== ==================================================
``kernel.sweeps``      level-batched attribute sweeps executed (local)
``kernel.profiles``    arrival profiles built
``sched.heap_pops``    successful lazy-heap pops
``sched.insertion_holes``  hole-filled placements (ISH-style back-fill)
``sim.events``         static-replay heap events popped
``online.events``      online-engine heap events popped
``online.replans``     accepted replan directives
``online.migrations``  pending tasks moved between processors by replans
``store.cache_hits``   grid cells served from a ResultStore (local)
``service.requests``   HTTP requests answered by the schedule service
``service.cache_hits`` requests served from the schedule cache (local)
``service.rejected``   requests bounced with 429 backpressure (local)
``service.timeouts``   requests answered 504 past the deadline (local)
===================== ==================================================

Counters marked *local* depend on per-process memo caches (a worker
recomputes what a serial run memoizes) or on request timing (how a
storm interleaves decides which requests find the cache warm, hit the
queue bound or outrun the deadline), so the manifest keeps them in a
separate ``local`` section that is excluded from the cross-``--jobs``
determinism contract and from the regression gate.

This module must stay import-light (stdlib only).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .trace import armed

__all__ = [
    "LOCAL_COUNTERS",
    "incr",
    "gauge",
    "observe",
    "counters",
    "local_counters",
    "gauges",
    "histograms",
    "snapshot",
    "swap",
    "absorb",
    "reset",
]

#: Counter names whose totals depend on per-process caches or request
#: timing, not on the work itself; kept out of the deterministic
#: manifest section.
LOCAL_COUNTERS = frozenset({
    "kernel.sweeps",
    "store.cache_hits",
    "service.cache_hits",
    "service.rejected",
    "service.timeouts",
})

# The registry: {"counters": {...}, "local": {...}, "gauges": {...},
# "hists": {name: {"count", "total", "min", "max"}}} — or None while
# nothing has been recorded (the disarmed fast path).
_STATE: Optional[Dict[str, Dict[str, Any]]] = None


def _fresh() -> Dict[str, Dict[str, Any]]:
    return {"counters": {}, "local": {}, "gauges": {}, "hists": {}}


def _state() -> Optional[Dict[str, Dict[str, Any]]]:
    global _STATE
    state = _STATE
    if state is None:
        if not armed():
            return None
        state = _STATE = _fresh()
    return state


def incr(name: str, n: int = 1) -> None:
    """Add ``n`` to counter ``name`` (no-op while disarmed)."""
    state = _STATE
    if state is None:
        if not armed():
            return
        state = _state()
        assert state is not None
    section = state["local" if name in LOCAL_COUNTERS else "counters"]
    section[name] = section.get(name, 0) + n


def gauge(name: str, value: float) -> None:
    """Set gauge ``name`` to its latest ``value`` (no-op disarmed)."""
    state = _state()
    if state is None:
        return
    state["gauges"][name] = value


def observe(name: str, value: float) -> None:
    """Fold ``value`` into histogram ``name`` (no-op disarmed).

    Histograms keep a constant-size summary (count/total/min/max) so
    observing per-decision quantities never grows memory.
    """
    state = _state()
    if state is None:
        return
    hist = state["hists"].get(name)
    if hist is None:
        state["hists"][name] = {"count": 1, "total": value,
                                "min": value, "max": value}
        return
    hist["count"] += 1
    hist["total"] += value
    if value < hist["min"]:
        hist["min"] = value
    if value > hist["max"]:
        hist["max"] = value


# ----------------------------------------------------------------------
# snapshots and cross-process merge
# ----------------------------------------------------------------------
def counters() -> Dict[str, int]:
    """Deterministic counters recorded so far (sorted copy)."""
    state = _STATE
    if state is None:
        return {}
    return dict(sorted(state["counters"].items()))


def local_counters() -> Dict[str, int]:
    """Cache-dependent counters (excluded from determinism contracts)."""
    state = _STATE
    if state is None:
        return {}
    return dict(sorted(state["local"].items()))


def gauges() -> Dict[str, float]:
    state = _STATE
    if state is None:
        return {}
    return dict(sorted(state["gauges"].items()))


def histograms() -> Dict[str, Dict[str, float]]:
    state = _STATE
    if state is None:
        return {}
    return {k: dict(v) for k, v in sorted(state["hists"].items())}


def snapshot() -> Dict[str, Dict[str, Any]]:
    """Picklable copy of every section (for :func:`repro.obs.collect`)."""
    return {"counters": counters(), "local": local_counters(),
            "gauges": gauges(), "hists": histograms()}


def swap(state: Optional[Dict[str, Dict[str, Any]]] = None
         ) -> Optional[Dict[str, Dict[str, Any]]]:
    """Install ``state`` (default: empty) and return the outgoing state.

    The scoped-collection primitive behind
    :func:`repro.obs.trace.collect`: swap in ``None`` to start a fresh
    scope, swap the previous handle back to restore it — the return
    value is the scope's recorded sections.
    """
    global _STATE
    old = _STATE
    _STATE = state
    return old


def absorb(payload: Dict[str, Any]) -> None:
    """Merge a collected payload's metric sections (counters add up,
    gauges take the latest value, histogram summaries fold together)."""
    if not any(payload.get(k) for k in ("counters", "local", "gauges",
                                        "hists")):
        return
    state = _state()
    if state is None:  # disarmed mid-flight; nothing to merge into
        return
    for section in ("counters", "local"):
        dest = state[section]
        for name, n in payload.get(section, {}).items():
            dest[name] = dest.get(name, 0) + n
    state["gauges"].update(payload.get("gauges", {}))
    dest_h = state["hists"]
    for name, hist in payload.get("hists", {}).items():
        mine = dest_h.get(name)
        if mine is None:
            dest_h[name] = dict(hist)
            continue
        mine["count"] += hist["count"]
        mine["total"] += hist["total"]
        mine["min"] = min(mine["min"], hist["min"])
        mine["max"] = max(mine["max"], hist["max"])


def reset() -> None:
    """Drop everything recorded (tests and verb boundaries)."""
    global _STATE
    _STATE = None

"""Run manifests and self-time profiles.

A *manifest* is the JSON summary persisted beside a run's trace (and,
via the CLI, beside the ResultStore): the counter registry split into
its deterministic and cache-local sections, gauge/histogram summaries,
and a per-span-name aggregate (count, total and *self* time — total
minus time attributed to child spans).  The ``counters`` section is the
determinism contract: same seed + same spec must produce the same
values under any ``--jobs`` setting, which both the trace-determinism
tests and ``benchmarks/check_regression.py`` gate on.  Durations are
wall-clock and therefore reported but never compared.

:func:`render_profile` prints the top-N self-time table backing the
``repro-bench profile`` verb and ``examples/profile_ladder_table.py``.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

from . import metrics as _metrics
from .export import write_trace
from .trace import ENV_PATH_VAR, Span, Tracer, current

__all__ = [
    "MANIFEST_SCHEMA",
    "build_manifest",
    "self_times",
    "write_manifest",
    "manifest_path_for",
    "render_manifest",
    "render_profile",
    "flush",
]

MANIFEST_SCHEMA = 1


def self_times(spans: Sequence[Span]) -> Dict[str, Tuple[int, int, int]]:
    """Aggregate spans by name: ``{name: (count, total_ns, self_ns)}``.

    Self time is a span's duration minus its direct children's — the
    quantity a profiler sorts by.  Open spans (``dur_ns < 0``) count as
    zero so a crashed run still renders.
    """
    child_ns: Dict[int, int] = {}
    for sp in spans:
        if sp.parent >= 0 and sp.dur_ns > 0:
            child_ns[sp.parent] = child_ns.get(sp.parent, 0) + sp.dur_ns
    agg: Dict[str, List[int]] = {}
    for sp in spans:
        dur = max(sp.dur_ns, 0)
        own = max(dur - child_ns.get(sp.sid, 0), 0)
        entry = agg.setdefault(sp.name, [0, 0, 0])
        entry[0] += 1
        entry[1] += dur
        entry[2] += own
    return {name: (c, t, s) for name, (c, t, s) in sorted(agg.items())}


def build_manifest(tracer: Optional[Tracer] = None) -> Dict[str, Any]:
    """The JSON-able run manifest for ``tracer`` (default: the process
    tracer) plus the process metric registry."""
    if tracer is None:
        tracer = current()
    spans = tracer.spans if tracer is not None else []
    timelines = tracer.timelines if tracer is not None else []
    return {
        "schema": MANIFEST_SCHEMA,
        "counters": _metrics.counters(),
        "local": _metrics.local_counters(),
        "gauges": _metrics.gauges(),
        "hists": _metrics.histograms(),
        "spans": {
            name: {"count": count,
                   "total_ms": round(total / 1e6, 3),
                   "self_ms": round(own / 1e6, 3)}
            for name, (count, total, own) in self_times(spans).items()
        },
        "timelines": [list(tl["key"]) for tl in timelines],
    }


def write_manifest(path: str, manifest: Dict[str, Any]) -> None:
    with open(path, "w") as fh:
        json.dump(manifest, fh, indent=1, sort_keys=True)
        fh.write("\n")


def manifest_path_for(trace_path: str) -> str:
    """Sibling manifest path: ``trace.json`` -> ``trace.manifest.json``."""
    root, ext = os.path.splitext(trace_path)
    if ext == ".json":
        return f"{root}.manifest.json"
    return f"{trace_path}.manifest.json"


def render_manifest(manifest: Dict[str, Any]) -> str:
    """Human-readable summary of a manifest (``trace show``)."""
    lines: List[str] = []
    for section, title in (("counters", "counters"),
                           ("local", "counters (process-local)")):
        values = manifest.get(section) or {}
        if values:
            lines.append(f"{title}:")
            width = max(len(n) for n in values)
            for name in sorted(values):
                lines.append(f"  {name:<{width}}  {values[name]}")
    gauges = manifest.get("gauges") or {}
    if gauges:
        lines.append("gauges:")
        for name in sorted(gauges):
            lines.append(f"  {name}  {gauges[name]:g}")
    hists = manifest.get("hists") or {}
    if hists:
        lines.append("histograms:")
        for name in sorted(hists):
            h = hists[name]
            mean = h["total"] / h["count"] if h["count"] else 0.0
            lines.append(f"  {name}  n={h['count']} mean={mean:g} "
                         f"min={h['min']:g} max={h['max']:g}")
    timelines = manifest.get("timelines") or []
    if timelines:
        lines.append(f"timelines: {len(timelines)}")
        for key in timelines[:10]:
            lines.append("  " + ":".join(str(k) for k in key))
        if len(timelines) > 10:
            lines.append(f"  ... and {len(timelines) - 10} more")
    spans = manifest.get("spans") or {}
    if spans:
        lines.append(render_profile(manifest, top=10))
    if not lines:
        return "(empty manifest: run with REPRO_TRACE=1 or --trace)"
    return "\n".join(lines)


def render_profile(manifest: Dict[str, Any], top: int = 10) -> str:
    """The top-N self-time table of a manifest's span aggregates."""
    spans: Dict[str, Dict[str, Any]] = manifest.get("spans") or {}
    if not spans:
        return "(no spans recorded)"
    ranked = sorted(spans.items(),
                    key=lambda kv: (-kv[1]["self_ms"], kv[0]))[:top]
    name_w = max(len("span"), max(len(n) for n, _ in ranked))
    lines = [f"{'span':<{name_w}}  {'count':>8}  {'total ms':>10}  "
             f"{'self ms':>10}  {'self %':>7}"]
    total_self = sum(s["self_ms"] for s in spans.values()) or 1.0
    for name, s in ranked:
        pct = 100.0 * s["self_ms"] / total_self
        lines.append(f"{name:<{name_w}}  {s['count']:>8}  "
                     f"{s['total_ms']:>10.3f}  {s['self_ms']:>10.3f}  "
                     f"{pct:>6.1f}%")
    return "\n".join(lines)


def flush(path: Optional[str] = None) -> Optional[Tuple[str, str]]:
    """Write the process trace + manifest if anything was recorded.

    ``path`` defaults to ``$REPRO_TRACE_PATH`` or ``trace.json``; the
    manifest lands at the :func:`manifest_path_for` sibling.  Returns
    the ``(trace_path, manifest_path)`` pair, or ``None`` when there is
    nothing to write — the CLI calls this after every verb, so a verb
    that recorded nothing stays silent.
    """
    tracer = current()
    has_metrics = bool(_metrics.counters() or _metrics.local_counters()
                       or _metrics.gauges() or _metrics.histograms())
    if tracer is None or (not tracer.spans and not tracer.timelines
                          and not has_metrics):
        return None
    trace_path = path or os.environ.get(ENV_PATH_VAR) or "trace.json"
    parent = os.path.dirname(trace_path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    manifest = build_manifest(tracer)
    write_trace(trace_path, tracer, manifest=manifest)
    manifest_path = manifest_path_for(trace_path)
    write_manifest(manifest_path, manifest)
    return trace_path, manifest_path

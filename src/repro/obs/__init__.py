"""Observability: opt-in tracing, metrics and profiling (``repro.obs``).

The subsystem is armed exactly like the runtime sanitizer
(:mod:`repro.check.sanitize`): ``REPRO_TRACE=1`` in the environment —
the CLI's global ``--trace[=PATH]`` flag sets it for the process and
any worker pools that inherit the environment.  Disarmed, every hook is
a no-op costing one dict probe, so the golden corpus stays bit-identical
and the bench-smoke gate is untouched.

Layers:

* :mod:`repro.obs.trace` — nested wall-clock spans plus recorded
  simulated-time *timelines* (per-processor execution tracks);
* :mod:`repro.obs.metrics` — named counters/gauges/histograms
  (``kernel.sweeps``, ``sched.heap_pops``, ``online.replans``, ...);
* :mod:`repro.obs.export` — Chrome/Perfetto ``trace.json`` writer;
* :mod:`repro.obs.report` — run manifests and top-N self-time tables.

Everything here is stdlib-only: the core modules consult these hooks
from their hot paths.
"""

from __future__ import annotations

from .trace import (
    ENV_PATH_VAR,
    ENV_VAR,
    Span,
    Tracer,
    absorb,
    add_timeline,
    armed,
    collect,
    current,
    reset,
    span,
    validate_nesting,
)
from . import metrics
from .export import trace_document, write_trace
from .report import (
    build_manifest,
    flush,
    manifest_path_for,
    render_manifest,
    render_profile,
    write_manifest,
)

__all__ = [
    "ENV_VAR",
    "ENV_PATH_VAR",
    "Span",
    "Tracer",
    "armed",
    "current",
    "span",
    "add_timeline",
    "collect",
    "absorb",
    "reset",
    "validate_nesting",
    "metrics",
    "trace_document",
    "write_trace",
    "build_manifest",
    "write_manifest",
    "manifest_path_for",
    "render_manifest",
    "render_profile",
    "flush",
]

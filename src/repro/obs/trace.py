"""Nested wall-clock spans and simulated-time timelines.

Mirrors the :mod:`repro.check.sanitize` arming pattern: the tracer is a
process-wide no-op until ``REPRO_TRACE=1`` appears in the environment
(:func:`armed` reads it on every call so tests and long-lived processes
can toggle).  :func:`span` is the one hot-path entry point — disarmed it
returns a shared null context after a single dict probe.

Two kinds of data are recorded:

* **spans** — nested wall-clock intervals (``perf_counter_ns``) with a
  name, a logical *track*, per-span attributes and a parent link.  The
  per-thread span stack makes nesting explicit; siblings on one track
  must not overlap, which :func:`validate_nesting` asserts (the
  sanitizer-armed export path runs it).
* **timelines** — *simulated*-time per-processor execution tracks
  (``(proc, node, start, finish)`` rows plus instant events such as
  replans).  They are keyed so the first recording wins: a Monte-Carlo
  cell records one representative execution, not one per trial.

Worker processes inherit the arming environment variable and record
into their own tracer; :func:`collect`/:func:`absorb` move one cell's
data across the process boundary deterministically (the grid executor
absorbs payloads in serial cell order, so the merged trace is canonical
regardless of ``--jobs``).

This module must stay import-light (stdlib only): the core modules
consult it from their hot paths.
"""

from __future__ import annotations

import contextlib
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "ENV_VAR",
    "ENV_PATH_VAR",
    "Span",
    "Tracer",
    "armed",
    "current",
    "span",
    "add_timeline",
    "wants_timeline",
    "collect",
    "absorb",
    "reset",
    "validate_nesting",
]

#: Environment variable that arms the tracer ("" / "0" = off).
ENV_VAR = "REPRO_TRACE"

#: Optional output path for the CLI's end-of-run flush.
ENV_PATH_VAR = "REPRO_TRACE_PATH"

#: Track name for spans recorded outside any cell/thread context.
MAIN_TRACK = "main"


def armed() -> bool:
    """True when tracing is armed for this process.

    Read from the environment on every call so tests (and worker
    processes that inherit the variable) agree with the parent; the
    lookup is a single dict probe — the entire disarmed cost.
    """
    return os.environ.get(ENV_VAR, "") not in ("", "0")


@dataclass
class Span:
    """One recorded wall-clock interval.

    ``sid``/``parent`` link the nesting tree (``parent == -1`` for
    roots); ``track`` is the logical lane the span renders on (the
    worker-merge step retags it with the cell label).  ``dur_ns`` is
    ``-1`` while the span is still open.
    """

    sid: int
    parent: int
    name: str
    track: str
    start_ns: int
    dur_ns: int = -1
    args: Dict[str, Any] = field(default_factory=dict)


class _NullSpanContext:
    """The disarmed ``span()`` result: reusable, re-entrant, yields None."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: Any) -> None:
        return None


_NULL_SPAN = _NullSpanContext()


class _SpanContext:
    """Context manager closing one armed span (cheaper than a generator)."""

    __slots__ = ("_span",)

    def __init__(self, sp: Span):
        self._span = sp

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc: Any) -> None:
        sp = self._span
        sp.dur_ns = time.perf_counter_ns() - sp.start_ns
        stack = _tracer_stack()
        if stack and stack[-1] is sp:
            stack.pop()


_TLS = threading.local()


def _tracer_stack() -> List[Span]:
    stack = getattr(_TLS, "stack", None)
    if stack is None:
        stack = []
        _TLS.stack = stack
    return stack


class Tracer:
    """Thread-safe collector of spans and timelines for one process."""

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self.timelines: List[Dict[str, Any]] = []
        self._timeline_keys: set = set()
        self._lock = threading.Lock()
        self._next_sid = 0

    # ------------------------------------------------------------------
    # spans
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: Any) -> _SpanContext:
        stack = _tracer_stack()
        parent = stack[-1].sid if stack else -1
        track = stack[-1].track if stack else _default_track()
        with self._lock:
            sid = self._next_sid
            self._next_sid += 1
        sp = Span(sid=sid, parent=parent, name=name, track=track,
                  start_ns=time.perf_counter_ns(), args=attrs)
        with self._lock:
            self.spans.append(sp)
        stack.append(sp)
        return _SpanContext(sp)

    # ------------------------------------------------------------------
    # timelines
    # ------------------------------------------------------------------
    def add_timeline(self, key: Tuple, label: str,
                     rows: Sequence[Tuple[int, int, float, float]],
                     events: Sequence[Tuple[int, float, str, Dict]] = (),
                     ) -> bool:
        """Record a simulated-time execution timeline once per ``key``.

        ``rows`` are ``(proc, node, start, finish)``; ``events`` are
        ``(proc, time, name, attrs)`` instants (``proc == -1`` renders
        on a dedicated policy lane).  Returns True when recorded, False
        when the key was already present (first recording wins — this
        is what keeps a 100-trial Monte-Carlo cell at one timeline).
        """
        with self._lock:
            if key in self._timeline_keys:
                return False
            self._timeline_keys.add(key)
            self.timelines.append({
                "key": tuple(key),
                "label": label,
                "rows": [tuple(r) for r in rows],
                "events": [(p, t, n, dict(a)) for p, t, n, a in events],
            })
        return True

    def has_timeline(self, key: Tuple) -> bool:
        """True when ``key`` was already recorded.

        Lets hot loops (a Monte-Carlo cell re-executing one schedule
        per trial) skip building the row list that
        :meth:`add_timeline` would discard anyway.
        """
        with self._lock:
            return key in self._timeline_keys

    # ------------------------------------------------------------------
    # cross-process merge
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Picklable payload of everything recorded so far."""
        with self._lock:
            return {"spans": list(self.spans),
                    "timelines": list(self.timelines)}

    def absorb(self, payload: Dict[str, Any],
               track: Optional[str] = None) -> None:
        """Merge a :func:`collect` payload (e.g. from a worker process).

        Span ids are rebased past this tracer's counter so parent links
        stay valid; when ``track`` is given every absorbed span is
        retagged onto that lane (the cell label), which canonicalises
        the merged trace across ``--jobs`` settings.
        """
        spans: List[Span] = payload.get("spans", [])
        with self._lock:
            offset = self._next_sid
            for sp in spans:
                sp.sid += offset
                if sp.parent >= 0:
                    sp.parent += offset
                if track is not None:
                    sp.track = track
                self.spans.append(sp)
            if spans:
                self._next_sid = max(sp.sid for sp in spans) + 1
        for tl in payload.get("timelines", []):
            self.add_timeline(tuple(tl["key"]), tl["label"], tl["rows"],
                              tl["events"])


def _default_track() -> str:
    name = threading.current_thread().name
    return MAIN_TRACK if name == "MainThread" else name


# ----------------------------------------------------------------------
# module-level state and entry points
# ----------------------------------------------------------------------
_TRACER: Optional[Tracer] = None
_STATE_LOCK = threading.Lock()


def current() -> Optional[Tracer]:
    """The process tracer, lazily created when armed; None when not.

    Once created the tracer keeps collecting for the process lifetime
    (until :func:`reset`), so flipping the environment variable off
    mid-run never discards recorded data.
    """
    global _TRACER
    tracer = _TRACER
    if tracer is None and armed():
        with _STATE_LOCK:
            if _TRACER is None:
                _TRACER = Tracer()
            tracer = _TRACER
    return tracer


def span(name: str, **attrs: Any):
    """Open a span on the process tracer; a shared no-op when disarmed.

    Usage::

        with span("sched.schedule", algorithm="MCP") as sp:
            ...          # sp is None when tracing is disarmed
    """
    tracer = current()
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attrs)


def add_timeline(key: Tuple, label: str,
                 rows: Sequence[Tuple[int, int, float, float]],
                 events: Sequence[Tuple[int, float, str, Dict]] = (),
                 ) -> bool:
    """Record a timeline on the process tracer (no-op disarmed)."""
    tracer = current()
    if tracer is None:
        return False
    return tracer.add_timeline(key, label, rows, events)


def wants_timeline(key: Tuple) -> bool:
    """True when a recording for ``key`` would be kept.

    The cheap pre-check for callers whose ``rows`` are expensive to
    build: False when disarmed or when the key already recorded.
    """
    tracer = current()
    return tracer is not None and not tracer.has_timeline(key)


def reset() -> None:
    """Drop the process tracer and metrics (tests and verb boundaries)."""
    global _TRACER
    from . import metrics as _metrics

    with _STATE_LOCK:
        _TRACER = None
        _TLS.stack = []
    _metrics.reset()


@contextlib.contextmanager
def collect() -> Iterator[Dict[str, Any]]:
    """Run a block under a *fresh* tracer/registry; yield its payload.

    The payload dict is populated when the block exits: ``spans``,
    ``timelines`` plus the metrics sections from
    :func:`repro.obs.metrics.snapshot`.  Used by the grid executor to
    isolate one cell's data (in-process and in workers alike) so the
    parent can merge cells in canonical serial order.  Disarmed, the
    block runs untouched and the payload stays empty.
    """
    from . import metrics as _metrics

    payload: Dict[str, Any] = {}
    if not armed():
        yield payload
        return
    global _TRACER
    with _STATE_LOCK:
        prev_tracer = _TRACER
        prev_stack = getattr(_TLS, "stack", [])
        _TRACER = Tracer()
        _TLS.stack = []
    prev_metrics = _metrics.swap()
    try:
        yield payload
    finally:
        with _STATE_LOCK:
            scoped = _TRACER
            _TRACER = prev_tracer
            _TLS.stack = prev_stack
        payload.update(scoped.snapshot() if scoped else {})
        payload.update(_metrics.swap(prev_metrics) or {})


def absorb(payload: Dict[str, Any], track: Optional[str] = None) -> None:
    """Merge a :func:`collect` payload into the process tracer/metrics."""
    from . import metrics as _metrics

    if not payload:
        return
    tracer = current()
    if tracer is not None:
        tracer.absorb(payload, track=track)
    _metrics.absorb(payload)


# ----------------------------------------------------------------------
# nesting validation
# ----------------------------------------------------------------------
def validate_nesting(spans: Sequence[Span]) -> None:
    """Assert spans form a forest: children inside parents, siblings
    on one track non-overlapping.

    Raises :class:`repro.check.sanitize.SanitizeError` on violation —
    overlap means the span stack was corrupted (e.g. a span closed out
    of order), which would render as garbage slices in Perfetto.  The
    export path runs this automatically when the sanitizer is armed.
    """
    from ..check.sanitize import require

    by_id = {sp.sid: sp for sp in spans}
    children: Dict[int, List[Span]] = {}
    for sp in spans:
        require(sp.dur_ns >= 0,
                f"span {sp.name!r} (sid {sp.sid}) was never closed")
        parent = by_id.get(sp.parent)
        if parent is not None:
            require(
                sp.start_ns >= parent.start_ns
                and sp.start_ns + sp.dur_ns
                <= parent.start_ns + parent.dur_ns,
                f"span {sp.name!r} [{sp.start_ns}, "
                f"{sp.start_ns + sp.dur_ns}) escapes its parent "
                f"{parent.name!r} [{parent.start_ns}, "
                f"{parent.start_ns + parent.dur_ns})")
        children.setdefault(sp.parent if parent is not None else -1,
                            []).append(sp)
    for group in children.values():
        by_track: Dict[str, List[Span]] = {}
        for sp in group:
            by_track.setdefault(sp.track, []).append(sp)
        for track, sibs in by_track.items():
            sibs.sort(key=lambda s: (s.start_ns, s.sid))
            for a, b in zip(sibs, sibs[1:]):
                require(
                    a.start_ns + a.dur_ns <= b.start_ns,
                    f"sibling spans {a.name!r} and {b.name!r} overlap "
                    f"on track {track!r}")

"""Chrome/Perfetto ``trace.json`` writer.

Emits the Chrome Trace Event Format (the JSON array flavour inside a
``{"traceEvents": [...]}`` document), which both ``chrome://tracing``
and https://ui.perfetto.dev load directly:

* every wall-clock :class:`~repro.obs.trace.Span` becomes a complete
  (``"ph": "X"``) slice on one *scheduler* process, one thread per
  logical track — so per-cell compute cost lines up lane by lane;
* every recorded simulated-time timeline becomes its own process with
  one thread per processor: task rows render as slices, replans and
  other instants as ``"ph": "i"`` markers (processor ``-1`` renders on
  a dedicated ``policy`` lane);
* the run manifest is embedded under the non-standard ``reproManifest``
  key (viewers ignore unknown keys; ``repro-bench trace show`` and
  ``profile`` read it back).

Simulated time units are scaled by :data:`SIM_TIME_SCALE` so one unit
displays as one millisecond; wall-clock spans are rebased to the
earliest recorded start.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from ..check import sanitize as _sanitize
from .trace import Span, Tracer, validate_nesting

__all__ = ["SIM_TIME_SCALE", "trace_document", "write_trace"]

#: Microseconds per simulated time unit (1 unit renders as 1 ms).
SIM_TIME_SCALE = 1000.0

#: pid of the wall-clock span process; timelines take 2, 3, ...
_SPAN_PID = 1


def _span_events(spans: Sequence[Span]) -> List[Dict[str, Any]]:
    if not spans:
        return []
    tracks = sorted({sp.track for sp in spans},
                    key=lambda t: (t != "main", t))
    tids = {track: i for i, track in enumerate(tracks)}
    base = min(sp.start_ns for sp in spans)
    events: List[Dict[str, Any]] = [{
        "ph": "M", "pid": _SPAN_PID, "tid": 0, "name": "process_name",
        "args": {"name": "scheduler (wall clock)"},
    }]
    for track, tid in tids.items():
        events.append({"ph": "M", "pid": _SPAN_PID, "tid": tid,
                       "name": "thread_name", "args": {"name": track}})
    for sp in spans:
        events.append({
            "ph": "X",
            "pid": _SPAN_PID,
            "tid": tids[sp.track],
            "ts": (sp.start_ns - base) / 1000.0,
            "dur": max(sp.dur_ns, 0) / 1000.0,
            "name": sp.name,
            "cat": "span",
            "args": {k: _jsonable(v) for k, v in sp.args.items()},
        })
    return events


def _timeline_events(timeline: Dict[str, Any],
                     pid: int) -> List[Dict[str, Any]]:
    events: List[Dict[str, Any]] = [{
        "ph": "M", "pid": pid, "tid": 0, "name": "process_name",
        "args": {"name": timeline["label"]},
    }]
    procs = sorted({row[0] for row in timeline["rows"]}
                   | {ev[0] for ev in timeline["events"]})
    for proc in procs:
        label = "policy" if proc < 0 else f"P{proc}"
        events.append({"ph": "M", "pid": pid, "tid": proc,
                       "name": "thread_name", "args": {"name": label}})
    for proc, node, start, finish in timeline["rows"]:
        events.append({
            "ph": "X",
            "pid": pid,
            "tid": proc,
            "ts": start * SIM_TIME_SCALE,
            "dur": max(finish - start, 0.0) * SIM_TIME_SCALE,
            "name": f"task {node}",
            "cat": "task",
            "args": {"node": node},
        })
    for proc, when, name, attrs in timeline["events"]:
        events.append({
            "ph": "i",
            "s": "t",
            "pid": pid,
            "tid": proc,
            "ts": when * SIM_TIME_SCALE,
            "name": name,
            "cat": "event",
            "args": {k: _jsonable(v) for k, v in attrs.items()},
        })
    return events


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def trace_document(tracer: Optional[Tracer],
                   manifest: Optional[Dict[str, Any]] = None
                   ) -> Dict[str, Any]:
    """Build the Chrome trace document for a tracer's recorded data.

    With the sanitizer armed the span forest is validated first
    (overlapping siblings on one track mean corrupted nesting, which
    Perfetto would render as interleaved garbage).
    """
    events: List[Dict[str, Any]] = []
    if tracer is not None:
        if _sanitize.enabled():
            validate_nesting(tracer.spans)
        events.extend(_span_events(tracer.spans))
        for i, timeline in enumerate(tracer.timelines):
            events.extend(_timeline_events(timeline, pid=_SPAN_PID + 1 + i))
    doc: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if manifest is not None:
        doc["reproManifest"] = manifest
    return doc


def write_trace(path: str, tracer: Optional[Tracer],
                manifest: Optional[Dict[str, Any]] = None
                ) -> Dict[str, Any]:
    """Write the Perfetto-loadable trace document to ``path``."""
    doc = trace_document(tracer, manifest=manifest)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    return doc

"""Automated Section-6/7 analysis: from raw results to the paper's
conclusions.

The paper closes with four design-philosophy findings (Section 7):

1. CP-based algorithms beat non-CP-based ones;
2. dynamic critical path beats static critical path;
3. insertion beats non-insertion;
4. dynamic priority generally beats static priority (MCP the exception).

Given a set of :class:`RunResult` rows, this module aggregates mean NSL
by each taxonomy flag of the participating schedulers and renders the
comparison — so the conclusions can be regenerated from any suite, not
just eyeballed from the tables.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from ..algorithms import get_scheduler
from ..metrics.measures import RunResult

__all__ = [
    "DecisionReport",
    "PairReport",
    "design_decision_report",
    "matched_pair_report",
    "render_report",
    "render_pairs",
]

_FLAGS = (
    ("cp_based", "critical-path-based", "non-CP-based"),
    ("dynamic_priority", "dynamic priority", "static priority"),
    ("uses_insertion", "insertion", "non-insertion"),
)


@dataclass
class DecisionReport:
    """Mean NSL split by one taxonomy flag."""

    flag: str
    yes_label: str
    no_label: str
    yes_mean_nsl: float
    no_mean_nsl: float
    yes_algorithms: List[str]
    no_algorithms: List[str]

    @property
    def advantage(self) -> float:
        """Positive when the 'yes' side wins (lower NSL)."""
        return self.no_mean_nsl - self.yes_mean_nsl


def design_decision_report(results: Iterable[RunResult]
                           ) -> List[DecisionReport]:
    """Aggregate mean NSL per taxonomy flag over ``results``.

    Only clique-model classes (BNP/UNC) participate — APN NSLs embed
    topology effects that would confound the design-decision comparison.
    """
    rows = [r for r in results if r.klass in ("BNP", "UNC")]
    by_alg: Dict[str, List[float]] = defaultdict(list)
    for r in rows:
        by_alg[r.algorithm].append(r.nsl)
    reports: List[DecisionReport] = []
    for attr, yes_label, no_label in _FLAGS:
        yes_vals, no_vals = [], []
        yes_algs, no_algs = [], []
        for alg, nsls in by_alg.items():
            flag = getattr(get_scheduler(alg), attr)
            mean = sum(nsls) / len(nsls)
            if flag:
                yes_vals.append(mean)
                yes_algs.append(alg)
            else:
                no_vals.append(mean)
                no_algs.append(alg)
        if not yes_vals or not no_vals:
            continue
        reports.append(DecisionReport(
            flag=attr,
            yes_label=yes_label,
            no_label=no_label,
            yes_mean_nsl=sum(yes_vals) / len(yes_vals),
            no_mean_nsl=sum(no_vals) / len(no_vals),
            yes_algorithms=sorted(yes_algs),
            no_algorithms=sorted(no_algs),
        ))
    return reports


@dataclass
class PairReport:
    """Head-to-head comparison of two algorithms differing in one
    design decision (the clean way to test the paper's conclusions —
    group means confound the decision with everything else about the
    group's members)."""

    decision: str
    favoured: str           # algorithm embodying the decision
    baseline: str
    favoured_mean_nsl: float
    baseline_mean_nsl: float
    wins: int               # graphs where favoured is strictly better
    losses: int

    @property
    def advantage(self) -> float:
        return self.baseline_mean_nsl - self.favoured_mean_nsl


# The canonical pairs: each differs from its baseline (almost) only in
# the named decision.
_PAIRS = (
    ("insertion (ISH vs HLFET)", "ISH", "HLFET"),
    ("CP-based priorities (MCP vs HLFET)", "MCP", "HLFET"),
    ("dynamic critical path (DCP vs DSC)", "DCP", "DSC"),
    ("dynamic priority (ETF vs HLFET)", "ETF", "HLFET"),
)


def matched_pair_report(results: Iterable[RunResult]) -> List[PairReport]:
    """Per-graph head-to-head comparison along the canonical pairs."""
    by_graph_alg: Dict[Tuple[str, str], float] = {}
    for r in results:
        by_graph_alg[(r.graph, r.algorithm)] = r.nsl
    graphs = sorted({g for (g, _a) in by_graph_alg})
    out: List[PairReport] = []
    for decision, fav, base in _PAIRS:
        fav_vals, base_vals = [], []
        wins = losses = 0
        for g in graphs:
            fv = by_graph_alg.get((g, fav))
            bv = by_graph_alg.get((g, base))
            if fv is None or bv is None:
                continue
            fav_vals.append(fv)
            base_vals.append(bv)
            if fv < bv - 1e-9:
                wins += 1
            elif fv > bv + 1e-9:
                losses += 1
        if not fav_vals:
            continue
        out.append(PairReport(
            decision, fav, base,
            sum(fav_vals) / len(fav_vals),
            sum(base_vals) / len(base_vals),
            wins, losses,
        ))
    return out


def render_pairs(pairs: List[PairReport]) -> str:
    """ASCII rendering of the matched-pair conclusions."""
    lines = ["Matched-pair design-decision analysis (NSL; lower is better)"]
    for p in pairs:
        verdict = "confirms" if p.advantage >= 0 else "CONTRADICTS"
        lines.append(
            f"  {p.decision}: {p.favoured} {p.favoured_mean_nsl:.3f} vs "
            f"{p.baseline} {p.baseline_mean_nsl:.3f} "
            f"(wins {p.wins}, losses {p.losses}) -> {verdict} the paper"
        )
    return "\n".join(lines)


def render_report(reports: List[DecisionReport]) -> str:
    """ASCII rendering of the design-decision comparison."""
    lines = ["Design-decision analysis (mean NSL; lower is better)"]
    for r in reports:
        winner = r.yes_label if r.advantage > 0 else r.no_label
        lines.append(
            f"  {r.yes_label:>22}: {r.yes_mean_nsl:6.3f}  "
            f"({', '.join(r.yes_algorithms)})"
        )
        lines.append(
            f"  {r.no_label:>22}: {r.no_mean_nsl:6.3f}  "
            f"({', '.join(r.no_algorithms)})"
        )
        lines.append(f"  {'-> winner':>22}: {winner} "
                     f"(by {abs(r.advantage):.3f} NSL)")
        lines.append("")
    return "\n".join(lines).rstrip()

"""Regenerating the paper's figures (2, 3 and 4) as data series.

Figures are returned as :class:`FigureSeries` — x values plus one y
series per algorithm — and rendered as aligned ASCII tables with a
sparkline-style bar per row (this repo regenerates the *data*; plotting
libraries are intentionally not a dependency).

=========  ==========================================================
Figure 2   average NSL vs graph size on RGNOS (a: UNC, b: BNP, c: APN)
Figure 3   average processors used vs graph size (a: UNC, b: BNP)
Figure 4   average NSL on Cholesky traced graphs vs matrix dimension
=========  ==========================================================
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..metrics.measures import RunResult
from .runner import (
    APN_ALGORITHMS,
    BNP_ALGORITHMS,
    UNC_ALGORITHMS,
    run_grid,
)
from .suites import (
    rgnos_sizes,
    rgnos_suite,
    traced_dimensions,
    traced_suite,
)

__all__ = ["FigureSeries", "render_figure", "fig2", "fig3", "fig4"]


@dataclass
class FigureSeries:
    """One panel: x axis plus named y series."""

    id: str
    title: str
    x_label: str
    y_label: str
    x: List[float]
    series: Dict[str, List[float]] = field(default_factory=dict)

    def as_csv(self) -> str:
        lines = [",".join([self.x_label] + list(self.series))]
        for i, xv in enumerate(self.x):
            lines.append(
                ",".join(
                    [f"{xv:g}"]
                    + [f"{ys[i]:.4f}" for ys in self.series.values()]
                )
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-compatible form (the CLI's ``--format json``)."""
        return {
            "id": self.id,
            "title": self.title,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "x": list(self.x),
            "series": {name: list(ys) for name, ys in self.series.items()},
        }


def render_figure(fig: FigureSeries) -> str:
    """ASCII rendering: aligned numbers plus a bar per series at max x."""
    lines = [f"{fig.id}: {fig.title}",
             f"  ({fig.y_label} vs {fig.x_label})"]
    names = list(fig.series)
    head = f"{fig.x_label:>8} | " + " | ".join(f"{n:>8}" for n in names)
    lines.append(head)
    lines.append("-" * len(head))
    for i, xv in enumerate(fig.x):
        row = f"{xv:8g} | " + " | ".join(
            f"{fig.series[n][i]:8.3f}" for n in names
        )
        lines.append(row)
    # Simple comparative bars at the largest size.
    if fig.x:
        lines.append("")
        last = {n: fig.series[n][-1] for n in names}
        top = max(last.values()) or 1.0
        for n in names:
            bar = "#" * max(1, int(round(30 * last[n] / top)))
            lines.append(f"  {n:>8} at x={fig.x[-1]:g}: {bar} {last[n]:.3f}")
    return "\n".join(lines)


def _nsl_panel(panel_id: str, title: str, algorithms: Sequence[str],
               results: List[RunResult], sizes: List[int]) -> FigureSeries:
    acc: Dict[tuple, List[float]] = defaultdict(list)
    for r in results:
        if r.algorithm in algorithms:
            acc[(r.num_nodes, r.algorithm)].append(r.nsl)
    fig = FigureSeries(panel_id, title, "v", "avg NSL", [float(s) for s in sizes])
    for a in algorithms:
        fig.series[a] = [
            sum(acc[(v, a)]) / len(acc[(v, a)]) if acc[(v, a)] else float("nan")
            for v in sizes
        ]
    return fig


def fig2(full: Optional[bool] = None, jobs: Optional[int] = None,
         store=None, resume: bool = False) -> Dict[str, FigureSeries]:
    """Average NSL of UNC, BNP and APN algorithms on RGNOS (Figure 2).

    Each point averages over the CCR x parallelism grid at that size,
    exactly as the paper aggregates its 25 graphs per size.
    """
    graphs = rgnos_suite(full)
    sizes = rgnos_sizes(full)
    names = (list(UNC_ALGORITHMS) + list(BNP_ALGORITHMS)
             + list(APN_ALGORITHMS))
    results = run_grid(names, graphs, jobs=jobs, store=store, resume=resume)
    return {
        "UNC": _nsl_panel("Figure 2(a)", "Average NSL, UNC algorithms, RGNOS",
                          UNC_ALGORITHMS, results, sizes),
        "BNP": _nsl_panel("Figure 2(b)", "Average NSL, BNP algorithms, RGNOS",
                          BNP_ALGORITHMS, results, sizes),
        "APN": _nsl_panel("Figure 2(c)", "Average NSL, APN algorithms, RGNOS",
                          APN_ALGORITHMS, results, sizes),
    }


def fig3(full: Optional[bool] = None, jobs: Optional[int] = None,
         store=None, resume: bool = False) -> Dict[str, FigureSeries]:
    """Average processors used by UNC and BNP on RGNOS (Figure 3).

    BNP algorithms run with a virtually unlimited processor supply and
    the plot reports how many they actually used (Section 6.4.2).
    """
    graphs = rgnos_suite(full)
    sizes = rgnos_sizes(full)
    names = list(UNC_ALGORITHMS) + list(BNP_ALGORITHMS)
    results = run_grid(names, graphs, jobs=jobs, store=store, resume=resume)
    out: Dict[str, FigureSeries] = {}
    for key, algorithms, panel in (
        ("UNC", UNC_ALGORITHMS, "Figure 3(a)"),
        ("BNP", BNP_ALGORITHMS, "Figure 3(b)"),
    ):
        acc: Dict[tuple, List[float]] = defaultdict(list)
        for r in results:
            if r.algorithm in algorithms:
                acc[(r.num_nodes, r.algorithm)].append(float(r.procs_used))
        fig = FigureSeries(panel,
                           f"Average processors used, {key} algorithms, RGNOS",
                           "v", "processors", [float(s) for s in sizes])
        for a in algorithms:
            fig.series[a] = [
                sum(acc[(v, a)]) / len(acc[(v, a)]) if acc[(v, a)] else 0.0
                for v in sizes
            ]
        out[key] = fig
    return out


def fig4(full: Optional[bool] = None, ccr: float = 1.0,
         jobs: Optional[int] = None, store=None,
         resume: bool = False) -> Dict[str, FigureSeries]:
    """Average NSL on Cholesky factorization graphs (Figure 4).

    The x axis is the matrix dimension N; graph size grows as O(N^2).
    """
    graphs = traced_suite(full, ccr=ccr)
    dims = traced_dimensions(full)
    names = (list(UNC_ALGORITHMS) + list(BNP_ALGORITHMS)
             + list(APN_ALGORITHMS))
    results = run_grid(names, graphs, jobs=jobs, store=store, resume=resume)
    size_to_dim = {g.num_nodes: d for g, d in zip(graphs, dims)}
    out: Dict[str, FigureSeries] = {}
    for key, algorithms, panel in (
        ("UNC", UNC_ALGORITHMS, "Figure 4(a)"),
        ("BNP", BNP_ALGORITHMS, "Figure 4(b)"),
        ("APN", APN_ALGORITHMS, "Figure 4(c)"),
    ):
        fig = FigureSeries(panel,
                           f"Average NSL on Cholesky graphs, {key} algorithms",
                           "N", "NSL", [float(d) for d in dims])
        for a in algorithms:
            cells = {
                size_to_dim[r.num_nodes]: r.nsl
                for r in results
                if r.algorithm == a and r.num_nodes in size_to_dim
            }
            fig.series[a] = [cells.get(d, float("nan")) for d in dims]
        out[key] = fig
    return out

"""Deterministic construction of the paper's five benchmark suites.

Every suite is seeded from (size, CCR, parallelism, replicate) so runs
are bit-reproducible.  Two scales are supported:

* **reduced** (default) — the same parameter grid shapes at sizes a pure
  Python implementation sweeps in seconds; preserves every qualitative
  comparison in the paper;
* **full** (``REPRO_FULL=1`` or ``full=True``) — the paper's exact grid
  (250 RGNOS graphs up to 500 nodes, RGPOS up to 500 nodes, ...).

The paper's APN experiments place large graphs on a small machine ("a
500-node task graph is scheduled to 8 processors"); we default APN runs
to an 8-processor hypercube and expose other topologies for the ablation
benches.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence

from ..core.graph import TaskGraph
from ..generators.psg import peer_set_graphs
from ..generators.random_graphs import rgbos_graph, rgnos_graph
from ..generators.rgpos import RGPOSInstance, rgpos_instance
from ..generators.traced import cholesky_graph
from ..network.topology import Topology

__all__ = [
    "is_full_scale",
    "psg_suite",
    "rgbos_suite",
    "rgpos_suite",
    "rgnos_suite",
    "rgnos_sizes",
    "traced_suite",
    "traced_dimensions",
    "suite_names",
    "get_suite",
    "default_apn_topology",
    "RGBOS_CCRS",
    "RGPOS_CCRS",
    "RGNOS_CCRS",
    "RGNOS_PARALLELISMS",
]

RGBOS_CCRS = (0.1, 1.0, 10.0)
RGPOS_CCRS = (0.1, 1.0, 10.0)
RGNOS_CCRS_FULL = (0.1, 0.5, 1.0, 2.0, 10.0)
RGNOS_CCRS_REDUCED = (0.1, 1.0, 10.0)
RGNOS_CCRS = RGNOS_CCRS_FULL  # paper grid, for reference
RGNOS_PARALLELISMS_FULL = (1, 2, 3, 4, 5)
RGNOS_PARALLELISMS_REDUCED = (1, 3, 5)
RGNOS_PARALLELISMS = RGNOS_PARALLELISMS_FULL


def is_full_scale(full: Optional[bool] = None) -> bool:
    """Resolve the scale flag (explicit argument beats ``REPRO_FULL``)."""
    if full is not None:
        return full
    return os.environ.get("REPRO_FULL", "0") not in ("", "0", "false", "no")


def psg_suite() -> List[TaskGraph]:
    """Peer set graphs (Section 5.1); identical at both scales."""
    return peer_set_graphs()


def rgbos_suite(full: Optional[bool] = None) -> List[TaskGraph]:
    """RGBOS (Section 5.2): v = 10..32 step 2 for each CCR.

    Reduced scale trims to v = 10..24 step 2 — the branch-and-bound
    proof rate at the upper sizes dominates runtime, not the heuristics.
    """
    hi = 32 if is_full_scale(full) else 24
    sizes = range(10, hi + 1, 2)
    return [
        rgbos_graph(v, ccr, seed=1000 * int(10 * ccr) + v)
        for ccr in RGBOS_CCRS
        for v in sizes
    ]


def rgpos_suite(full: Optional[bool] = None,
                num_procs: int = 8) -> List[RGPOSInstance]:
    """RGPOS (Section 5.3): v = 50..500 step 50 per CCR (reduced: ..150).

    Suite instances mostly follow the paper's construction (random
    slack-capped cross edges) with two hardening choices: edge density
    of ``0.6 v^2`` attempts, and exactly **one** chained processor.  The
    single chain pins the computation-only critical path to ``L_opt``,
    so the constructed optimum is a floor for *any* machine size (the
    paper's construction only certifies it for ``num_procs``); density
    keeps the remaining seven processors' packing genuinely hard.
    """
    hi = 500 if is_full_scale(full) else 150
    sizes = range(50, hi + 1, 50)
    return [
        rgpos_instance(v, ccr, num_procs=num_procs,
                       seed=2000 * int(10 * ccr) + v,
                       chain_processors=1,
                       extra_edge_factor=0.6 * v)
        for ccr in RGPOS_CCRS
        for v in sizes
    ]


def rgnos_sizes(full: Optional[bool] = None) -> List[int]:
    if is_full_scale(full):
        return list(range(50, 501, 50))
    return [50, 100, 150]


def rgnos_suite(full: Optional[bool] = None,
                sizes: Optional[Sequence[int]] = None) -> List[TaskGraph]:
    """RGNOS (Section 5.4): size x CCR x parallelism grid.

    Full scale: 10 sizes x 5 CCRs x 5 parallelism = 250 graphs, the
    paper's count.  Reduced: 3 sizes x 3 CCRs x 3 parallelism = 27.
    """
    fullscale = is_full_scale(full)
    sizes = list(sizes) if sizes is not None else rgnos_sizes(fullscale)
    ccrs = RGNOS_CCRS_FULL if fullscale else RGNOS_CCRS_REDUCED
    pars = RGNOS_PARALLELISMS_FULL if fullscale else RGNOS_PARALLELISMS_REDUCED
    return [
        rgnos_graph(v, ccr, par,
                    seed=3_000_000 + 10_000 * int(10 * ccr) + 100 * par + v)
        for v in sizes
        for ccr in ccrs
        for par in pars
    ]


def traced_dimensions(full: Optional[bool] = None) -> List[int]:
    """Cholesky matrix dimensions for Figure 4 (graph size is O(N^2))."""
    if is_full_scale(full):
        return list(range(6, 25, 2))
    return [6, 8, 10, 12]


def traced_suite(full: Optional[bool] = None,
                 ccr: float = 1.0) -> List[TaskGraph]:
    """Traced graphs (Section 5.5): Cholesky factorization DAGs."""
    return [cholesky_graph(n, ccr=ccr) for n in traced_dimensions(full)]


def suite_names() -> List[str]:
    """Names accepted by :func:`get_suite`."""
    return ["psg", "rgbos", "rgpos", "rgnos", "traced"]


def get_suite(name: str, full: Optional[bool] = None) -> List[TaskGraph]:
    """The named benchmark suite as a flat list of task graphs.

    Convenience dispatch for ad-hoc sweeps and tooling that take a
    suite name as input (e.g. ``run_grid(names, get_suite("rgnos"))``).
    RGPOS instances are unwrapped to their graphs; use
    :func:`rgpos_suite` directly when the constructed optima are needed.
    """
    builders = {
        "psg": lambda: psg_suite(),
        "rgbos": lambda: rgbos_suite(full),
        "rgpos": lambda: [inst.graph for inst in rgpos_suite(full)],
        "rgnos": lambda: rgnos_suite(full),
        "traced": lambda: traced_suite(full),
    }
    try:
        return builders[name]()
    except KeyError:
        raise ValueError(
            f"unknown suite {name!r}; expected one of {suite_names()}"
        ) from None


def default_apn_topology(num_procs: int = 8) -> Topology:
    """The 8-processor machine of the paper's APN runs, as a hypercube."""
    if num_procs == 8:
        return Topology.hypercube(3)
    if num_procs & (num_procs - 1) == 0:
        return Topology.hypercube(num_procs.bit_length() - 1)
    return Topology.ring(num_procs)

"""Command line entry point: ``repro-bench`` / ``python -m repro.bench``.

Regenerates any paper artifact on demand::

    repro-bench --artifact table1
    repro-bench --artifact fig2 --full
    repro-bench --artifact all --out results/

Reduced-scale suites run in seconds; ``--full`` (or ``REPRO_FULL=1``)
switches to the paper's exact grids.

Execution engine flags
----------------------
``--jobs N``
    Fan the (algorithm, graph) grid cells out over ``N`` worker
    processes (``0`` = one per CPU).  Output is identical to a serial
    run — the engine preserves the serial row order.
``--results DIR``
    Persist every benchmark row to ``DIR/results.json`` (plus a
    ``results.csv`` export), checkpointing every few cells; Tables 2-3
    also persist their branch-and-bound reference optima to
    ``DIR/optima.json``.  Without ``--resume`` the store is write-only:
    cells are recomputed and overwrite any cached rows.
``--resume``
    With ``--results``, reuse rows cached by previous runs instead of
    re-scheduling; only missing cells are executed.  An interrupted
    ``--full`` regeneration picks up from its last checkpoint, and the
    store is shared across artifacts — e.g. ``table6`` and ``fig2``
    reuse each other's RGNOS cells.
``--format {text,json,csv}``
    Artifact output format.  ``text`` is the paper-style ASCII block;
    ``json``/``csv`` emit machine-readable data and change the file
    extension written under ``--out``.  The ``analysis`` artifact is
    prose and is always rendered as text.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Callable, Dict, List, Optional

from . import figures, tables
from .store import OptimaStore, ResultStore

__all__ = ["main"]

_TABLE_BUILDERS: Dict[str, Callable] = {
    "table1": tables.table1,
    "table2": tables.table2,
    "table3": tables.table3,
    "table4": tables.table4,
    "table5": tables.table5,
    "table6": tables.table6,
}
_FIGURE_BUILDERS: Dict[str, Callable] = {
    "fig2": figures.fig2,
    "fig3": figures.fig3,
    "fig4": figures.fig4,
}


def _analysis_artifact(full, jobs=None, store=None, resume=False) -> str:
    """Section 7 conclusions: matched pairs + taxonomy-group means."""
    from .analysis import (
        design_decision_report,
        matched_pair_report,
        render_pairs,
        render_report,
    )
    from .runner import BNP_ALGORITHMS, UNC_ALGORITHMS, run_grid
    from .suites import rgnos_suite

    graphs = rgnos_suite(full)
    rows = run_grid(list(BNP_ALGORITHMS) + list(UNC_ALGORITHMS), graphs,
                    jobs=jobs, store=store, resume=resume)
    return (render_pairs(matched_pair_report(rows)) + "\n\n"
            + render_report(design_decision_report(rows)))


_EXTENSIONS = {"text": "txt", "json": "json", "csv": "csv"}


def _render_table(table: tables.Table, fmt: str) -> str:
    if fmt == "json":
        return json.dumps(table.to_dict(), indent=2)
    if fmt == "csv":
        return table.as_csv()
    return tables.render(table)


def _render_panel(fig: figures.FigureSeries, fmt: str) -> str:
    if fmt == "json":
        return json.dumps(fig.to_dict(), indent=2)
    if fmt == "csv":
        return fig.as_csv()
    return figures.render_figure(fig)


def _emit(text: str, name: str, out_dir: Optional[str],
          fmt: str = "text") -> None:
    print(text)
    print()
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
        path = os.path.join(out_dir, f"{name}.{_EXTENSIONS[fmt]}")
        with open(path, "w") as fh:
            fh.write(text + "\n")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the tables and figures of Kwok & Ahmad "
                    "(IPPS 1998).",
    )
    parser.add_argument(
        "--artifact", default="all",
        choices=(["all"] + sorted(_TABLE_BUILDERS)
                 + sorted(_FIGURE_BUILDERS) + ["analysis"]),
        help="which artifact to regenerate (default: all)",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="paper-scale suites (large; pure Python takes a while)",
    )
    parser.add_argument(
        "--budget", type=int, default=150_000,
        help="branch-and-bound expansion budget for the RGBOS optima",
    )
    parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="also write each artifact to DIR/<name>.<ext> "
             "(+ .csv for figures in text mode)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the benchmark grid "
             "(1 = serial, 0 = one per CPU; default: 1)",
    )
    parser.add_argument(
        "--format", default="text", choices=sorted(_EXTENSIONS),
        dest="fmt", metavar="{text,json,csv}",
        help="artifact output format (default: text; "
             "'analysis' is always text)",
    )
    parser.add_argument(
        "--results", default=None, metavar="DIR",
        help="persist benchmark rows to DIR/results.json (+ .csv export)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="with --results: reuse cached rows, run only missing cells",
    )
    args = parser.parse_args(argv)
    if args.resume and not args.results:
        parser.error("--resume requires --results DIR")
    full = True if args.full else None
    try:
        store = ResultStore(args.results) if args.results else None
        if args.results:
            OptimaStore(args.results)  # validate the sidecar up front
    except ValueError as exc:
        parser.error(str(exc))
    engine = {"jobs": args.jobs, "store": store, "resume": args.resume}

    wanted = (
        sorted(_TABLE_BUILDERS) + sorted(_FIGURE_BUILDERS) + ["analysis"]
        if args.artifact == "all"
        else [args.artifact]
    )
    for name in wanted:
        if name == "analysis":
            _emit(_analysis_artifact(full, **engine), name, args.out)
        elif name in _TABLE_BUILDERS:
            builder = _TABLE_BUILDERS[name]
            kwargs = {"full": full, **engine}
            if name in ("table2", "table3"):
                kwargs["budget"] = args.budget
            table = builder(**kwargs)
            _emit(_render_table(table, args.fmt), name, args.out, args.fmt)
        else:
            panels = _FIGURE_BUILDERS[name](full=full, **engine)
            for key, fig in panels.items():
                _emit(_render_panel(fig, args.fmt), f"{name}_{key.lower()}",
                      args.out, args.fmt)
                if args.out and args.fmt == "text":
                    path = os.path.join(args.out, f"{name}_{key.lower()}.csv")
                    with open(path, "w") as fh:
                        fh.write(fig.as_csv() + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

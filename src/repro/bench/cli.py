"""Command line entry point: ``repro-bench`` / ``python -m repro.bench``.

Regenerates any paper artifact on demand::

    repro-bench --artifact table1
    repro-bench --artifact fig2 --full
    repro-bench --artifact all --out results/

Reduced-scale suites run in seconds; ``--full`` (or ``REPRO_FULL=1``)
switches to the paper's exact grids.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict, List, Optional

from . import figures, tables

__all__ = ["main"]

_TABLE_BUILDERS: Dict[str, Callable] = {
    "table1": tables.table1,
    "table2": tables.table2,
    "table3": tables.table3,
    "table4": tables.table4,
    "table5": tables.table5,
    "table6": tables.table6,
}
_FIGURE_BUILDERS: Dict[str, Callable] = {
    "fig2": figures.fig2,
    "fig3": figures.fig3,
    "fig4": figures.fig4,
}


def _analysis_artifact(full) -> str:
    """Section 7 conclusions: matched pairs + taxonomy-group means."""
    from .analysis import (
        design_decision_report,
        matched_pair_report,
        render_pairs,
        render_report,
    )
    from .runner import BNP_ALGORITHMS, UNC_ALGORITHMS, run_grid
    from .suites import rgnos_suite

    graphs = rgnos_suite(full)
    rows = run_grid(list(BNP_ALGORITHMS) + list(UNC_ALGORITHMS), graphs)
    return (render_pairs(matched_pair_report(rows)) + "\n\n"
            + render_report(design_decision_report(rows)))


def _emit(text: str, name: str, out_dir: Optional[str]) -> None:
    print(text)
    print()
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
        path = os.path.join(out_dir, f"{name}.txt")
        with open(path, "w") as fh:
            fh.write(text + "\n")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the tables and figures of Kwok & Ahmad "
                    "(IPPS 1998).",
    )
    parser.add_argument(
        "--artifact", default="all",
        choices=(["all"] + sorted(_TABLE_BUILDERS)
                 + sorted(_FIGURE_BUILDERS) + ["analysis"]),
        help="which artifact to regenerate (default: all)",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="paper-scale suites (large; pure Python takes a while)",
    )
    parser.add_argument(
        "--budget", type=int, default=150_000,
        help="branch-and-bound expansion budget for the RGBOS optima",
    )
    parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="also write each artifact to DIR/<name>.txt (+ .csv for figures)",
    )
    args = parser.parse_args(argv)
    full = True if args.full else None

    wanted = (
        sorted(_TABLE_BUILDERS) + sorted(_FIGURE_BUILDERS) + ["analysis"]
        if args.artifact == "all"
        else [args.artifact]
    )
    for name in wanted:
        if name == "analysis":
            _emit(_analysis_artifact(full), name, args.out)
        elif name in _TABLE_BUILDERS:
            builder = _TABLE_BUILDERS[name]
            kwargs = {"full": full}
            if name in ("table2", "table3"):
                kwargs["budget"] = args.budget
            table = builder(**kwargs)
            _emit(tables.render(table), name, args.out)
        else:
            panels = _FIGURE_BUILDERS[name](full=full)
            for key, fig in panels.items():
                _emit(figures.render_figure(fig), f"{name}_{key.lower()}",
                      args.out)
                if args.out:
                    path = os.path.join(args.out, f"{name}_{key.lower()}.csv")
                    with open(path, "w") as fh:
                        fh.write(fig.as_csv() + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Command line entry point: ``repro-bench`` / ``python -m repro.bench``.

Regenerates any paper artifact on demand::

    repro-bench --artifact table1
    repro-bench --artifact fig2 --full
    repro-bench --artifact all --out results/

Beyond the paper grid, the ``scenario`` verbs drive the declarative
scenario engine (:mod:`repro.scenarios`)::

    repro-bench scenario list
    repro-bench scenario validate examples/scenario_hetero.json
    repro-bench scenario run hetero-speeds --jobs 4
    repro-bench scenario run my_sweep.toml --results out/ --resume

``scenario run`` persists every row to a ResultStore (default:
``results/scenarios/<name>/``) so ``--resume`` replays cached cells
verbatim; ``--format``/``--out`` mirror the artifact flags.

The ``sim`` verbs execute schedules in the discrete-event simulator
(:mod:`repro.sim`) instead of trusting their predicted times::

    repro-bench sim run robustness-bnp --jobs 4
    repro-bench sim run my_spec.toml --noise lognormal:0.3 --trials 200
    repro-bench sim compare nightly-grid --noise uniform:0.2

``sim run`` prints each cell's executed-makespan distribution plus the
robustness ranking; ``sim compare`` prints just the ranking (predicted
vs simulated average ranks).  Rows persist to ``results/sim/<name>/``
by default and resume like any grid run.

The ``adv`` verbs run the PISA-style adversarial instance search
(:mod:`repro.adversarial`) instead of sampling graph space::

    repro-bench adv search adversarial-bnp --jobs 4
    repro-bench adv search my_spec.json --pair LAST MCP --steps 300
    repro-bench adv show adversarial-bnp
    repro-bench adv export adversarial-bnp --out instances/

``adv search`` anneals mutation chains that maximise a scheduler
pair's gap, persisting every chain plus a per-pair Pareto front
(instance size vs score) under ``results/adv/<name>`` by default;
``show`` re-renders a finished search from the store, and ``export``
writes the frontier instances as ``.stg`` files that
:func:`repro.generators.load_graph` reads back.

The ``serve`` / ``loadtest`` verbs run scheduling as a service
(:mod:`repro.service`)::

    repro-bench serve --port 8080 --jobs 4 --cache-dir results/cache
    repro-bench loadtest                       # self-hosted storm
    repro-bench loadtest --url 127.0.0.1:8080 --requests 500 --skew 1.3

``serve`` answers ``POST /schedule`` (task graph + machine + spec, as
JSON or bare STG text) with batching onto a persistent worker pool and
a fingerprint-keyed schedule cache, and drains cleanly on SIGTERM;
``loadtest`` replays a seeded Zipf-skewed traffic storm
(:mod:`repro.scenarios.storm`) and prints the RPS/p50/p99 table with
the cold-vs-warm cache speedup.

The ``check`` verb runs the domain-aware static analysis
(:mod:`repro.check`) over the repo's own source::

    repro-bench check
    repro-bench check --format=github
    repro-bench check --rules RPR001,RPR005 --list-rules

It exits 0 when the tree is clean and 1 with rule-coded findings
otherwise (CI runs it as a blocking job).  Orthogonally, the global
``--sanitize`` flag (equivalent to ``REPRO_SANITIZE=1`` in the
environment) arms the runtime sanitizer for any verb: TaskGraph /
Schedule arrays are frozen and kernel/simulator assertion hooks check
CSR round-trips, timeline ordering and event-heap monotonicity.

The global ``--trace[=PATH]`` flag (equivalent to ``REPRO_TRACE=1``,
plus ``REPRO_TRACE_PATH`` for the ``=PATH`` form) arms the tracing and
metrics layer (:mod:`repro.obs`) for any verb: scheduler spans, kernel
counters and executed sim/online timelines are recorded — worker
processes included — and flushed after the verb as a Perfetto-loadable
``trace.json`` plus a ``trace.manifest.json`` run summary.  The
companion verbs read those files back::

    repro-bench --trace sim run online-gap --no-store
    repro-bench trace show            # manifest summary
    repro-bench trace export --out clean.json   # viewer-ready document
    repro-bench profile --top 15      # self-time table

Reduced-scale suites run in seconds; ``--full`` (or ``REPRO_FULL=1``)
switches to the paper's exact grids.

Execution engine flags
----------------------
``--jobs N``
    Fan the (algorithm, graph) grid cells out over ``N`` worker
    processes (``0`` = one per CPU).  Output is identical to a serial
    run — the engine preserves the serial row order.
``--results DIR``
    Persist every benchmark row to ``DIR/results.json`` (plus a
    ``results.csv`` export), checkpointing every few cells; Tables 2-3
    also persist their branch-and-bound reference optima to
    ``DIR/optima.json``.  Without ``--resume`` the store is write-only:
    cells are recomputed and overwrite any cached rows.
``--resume``
    With ``--results``, reuse rows cached by previous runs instead of
    re-scheduling; only missing cells are executed.  An interrupted
    ``--full`` regeneration picks up from its last checkpoint, and the
    store is shared across artifacts — e.g. ``table6`` and ``fig2``
    reuse each other's RGNOS cells.
``--format {text,json,csv}``
    Artifact output format.  ``text`` is the paper-style ASCII block;
    ``json``/``csv`` emit machine-readable data and change the file
    extension written under ``--out``.  The ``analysis`` artifact is
    prose and is always rendered as text.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Callable, Dict, List, Optional

from . import figures, tables
from ..obs import report as _obs_report
from ..obs import trace as _trace
from .store import OptimaStore, ResultStore, open_store

__all__ = ["main", "algo_main", "scenario_main", "sim_main", "adv_main",
           "trace_main", "profile_main", "serve_main", "loadtest_main"]


def _fail(message: str) -> int:
    """One-line diagnostic on stderr; the CLI's error exit code is 2."""
    print(f"repro-bench: error: {message}", file=sys.stderr)
    return 2


def _open_results(directory: str, opener):
    """The one validated store-opening path shared by every verb family.

    The artifact flags, ``scenario run``, ``sim run/compare``, the
    ``adv`` verbs and the service's persistent schedule cache all
    funnel their store directory through
    :func:`repro.bench.store.open_store`: it turns an unwritable or
    invalid path into a ``ValueError`` whose one-line message every
    caller prints as the exit-2 diagnostic, and ``opener`` then loads —
    and thereby validates — the family's store files, so a corrupt
    store fails the same way on every verb.
    """
    return open_store(directory, opener=opener)


def _open_store(directory: str) -> ResultStore:
    """A validated, writable ResultStore (optima sidecar checked too).

    Raises ``ValueError`` with a one-line message on an unwritable or
    invalid path, or on corrupt/unsupported store files.
    """
    def opener(d: str) -> ResultStore:
        store = ResultStore(d)
        OptimaStore(d)  # validate the sidecar up front
        return store

    return _open_results(directory, opener)

_TABLE_BUILDERS: Dict[str, Callable] = {
    "table1": tables.table1,
    "table2": tables.table2,
    "table3": tables.table3,
    "table4": tables.table4,
    "table5": tables.table5,
    "table6": tables.table6,
}
_FIGURE_BUILDERS: Dict[str, Callable] = {
    "fig2": figures.fig2,
    "fig3": figures.fig3,
    "fig4": figures.fig4,
}


def _analysis_artifact(full, jobs=None, store=None, resume=False) -> str:
    """Section 7 conclusions: matched pairs + taxonomy-group means."""
    from .analysis import (
        design_decision_report,
        matched_pair_report,
        render_pairs,
        render_report,
    )
    from .runner import BNP_ALGORITHMS, UNC_ALGORITHMS, run_grid
    from .suites import rgnos_suite

    graphs = rgnos_suite(full)
    rows = run_grid(list(BNP_ALGORITHMS) + list(UNC_ALGORITHMS), graphs,
                    jobs=jobs, store=store, resume=resume)
    return (render_pairs(matched_pair_report(rows)) + "\n\n"
            + render_report(design_decision_report(rows)))


_EXTENSIONS = {"text": "txt", "json": "json", "csv": "csv"}


def _render_table(table: tables.Table, fmt: str) -> str:
    if fmt == "json":
        return json.dumps(table.to_dict(), indent=2)
    if fmt == "csv":
        return table.as_csv()
    return tables.render(table)


def _render_panel(fig: figures.FigureSeries, fmt: str) -> str:
    if fmt == "json":
        return json.dumps(fig.to_dict(), indent=2)
    if fmt == "csv":
        return fig.as_csv()
    return figures.render_figure(fig)


def _emit(text: str, name: str, out_dir: Optional[str],
          fmt: str = "text") -> None:
    print(text)
    print()
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
        path = os.path.join(out_dir, f"{name}.{_EXTENSIONS[fmt]}")
        with open(path, "w") as fh:
            fh.write(text + "\n")


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if "--sanitize" in argv:
        # Arm the runtime sanitizer for this process (and any workers
        # that inherit the environment) before any verb touches data.
        argv = [a for a in argv if a != "--sanitize"]
        os.environ["REPRO_SANITIZE"] = "1"
    kept = []
    for arg in argv:
        # Arm the tracing layer (repro.obs) the same way; workers
        # inherit the environment, so per-cell spans and counters are
        # recorded wherever the cell runs.
        if arg == "--trace":
            os.environ[_trace.ENV_VAR] = "1"
        elif arg.startswith("--trace="):
            os.environ[_trace.ENV_VAR] = "1"
            os.environ[_trace.ENV_PATH_VAR] = arg.split("=", 1)[1]
        else:
            kept.append(arg)
    argv = kept
    try:
        code = _dispatch(argv)
    except BrokenPipeError:
        # Downstream pipe (e.g. `repro-bench ... | head`) closed early;
        # suppress the traceback and exit quietly like other CLIs.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0
    written = _obs_report.flush()
    if written is not None:
        trace_path, manifest_path = written
        print(f"[trace written to {trace_path}; "
              f"manifest: {manifest_path}]")
        # One flush per invocation: repeated in-process main() calls
        # (tests, notebooks) each write only their own data.
        _trace.reset()
    return code


def _dispatch(argv: List[str]) -> int:
    """Route one cleaned argv to its verb family."""
    if argv and argv[0] == "check":
        from ..check import check_main
        return check_main(argv[1:])
    if argv and argv[0] == "algo":
        return algo_main(argv[1:])
    if argv and argv[0] == "scenario":
        return scenario_main(argv[1:])
    if argv and argv[0] == "sim":
        return sim_main(argv[1:])
    if argv and argv[0] == "adv":
        return adv_main(argv[1:])
    if argv and argv[0] == "trace":
        return trace_main(argv[1:])
    if argv and argv[0] == "profile":
        return profile_main(argv[1:])
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "loadtest":
        return loadtest_main(argv[1:])
    return _artifact_main(argv)


def _artifact_main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the tables and figures of Kwok & Ahmad "
                    "(IPPS 1998).  The 'scenario' verbs (scenario "
                    "list/validate/run) drive arbitrary declarative "
                    "sweeps instead.",
    )
    parser.add_argument(
        "--artifact", default="all",
        choices=(["all"] + sorted(_TABLE_BUILDERS)
                 + sorted(_FIGURE_BUILDERS) + ["analysis"]),
        help="which artifact to regenerate (default: all)",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="paper-scale suites (large; pure Python takes a while)",
    )
    parser.add_argument(
        "--budget", type=int, default=150_000,
        help="branch-and-bound expansion budget for the RGBOS optima",
    )
    parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="also write each artifact to DIR/<name>.<ext> "
             "(+ .csv for figures in text mode)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the benchmark grid "
             "(1 = serial, 0 = one per CPU; default: 1)",
    )
    parser.add_argument(
        "--format", default="text", choices=sorted(_EXTENSIONS),
        dest="fmt", metavar="{text,json,csv}",
        help="artifact output format (default: text; "
             "'analysis' is always text)",
    )
    parser.add_argument(
        "--results", default=None, metavar="DIR",
        help="persist benchmark rows to DIR/results.json (+ .csv export)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="with --results: reuse cached rows, run only missing cells",
    )
    args = parser.parse_args(argv)
    if args.resume and not args.results:
        parser.error("--resume requires --results DIR")
    full = True if args.full else None
    try:
        store = _open_store(args.results) if args.results else None
    except ValueError as exc:
        return _fail(str(exc))
    engine = {"jobs": args.jobs, "store": store, "resume": args.resume}

    wanted = (
        sorted(_TABLE_BUILDERS) + sorted(_FIGURE_BUILDERS) + ["analysis"]
        if args.artifact == "all"
        else [args.artifact]
    )
    for name in wanted:
        if name == "analysis":
            _emit(_analysis_artifact(full, **engine), name, args.out)
        elif name in _TABLE_BUILDERS:
            builder = _TABLE_BUILDERS[name]
            kwargs = {"full": full, **engine}
            if name in ("table2", "table3"):
                kwargs["budget"] = args.budget
            table = builder(**kwargs)
            _emit(_render_table(table, args.fmt), name, args.out, args.fmt)
        else:
            panels = _FIGURE_BUILDERS[name](full=full, **engine)
            for key, fig in panels.items():
                _emit(_render_panel(fig, args.fmt), f"{name}_{key.lower()}",
                      args.out, args.fmt)
                if args.out and args.fmt == "text":
                    path = os.path.join(args.out, f"{name}_{key.lower()}.csv")
                    with open(path, "w") as fh:
                        fh.write(fig.as_csv() + "\n")
    return 0


# ----------------------------------------------------------------------
# scenario verbs
# ----------------------------------------------------------------------
def _flag(value: bool) -> str:
    return "yes" if value else "-"


def algo_main(argv: Optional[List[str]] = None) -> int:
    """``repro-bench algo {list,describe}``.

    The one user-facing view of the scheduler namespace: everything
    this verb prints — registered acronyms and ``param:`` component
    specs alike — is accepted verbatim wherever an algorithm name goes
    (artifact flags, scenario documents, ``sim``/``adv`` pairs).
    """
    parser = argparse.ArgumentParser(
        prog="repro-bench algo",
        description="Inspect the scheduler registry and the component "
                    "space behind 'param:' spec strings.",
    )
    sub = parser.add_subparsers(dest="verb", required=True)

    p_list = sub.add_parser(
        "list", help="registered schedulers, taxonomy flags and the "
                     "component-spec grammar")
    p_list.add_argument("--class", dest="klass", default=None,
                        choices=("BNP", "UNC", "APN"),
                        help="restrict to one algorithm class")

    p_desc = sub.add_parser(
        "describe", help="one scheduler in full — for param schedulers, "
                         "the resolved component configuration")
    p_desc.add_argument("name", help="acronym (e.g. MCP) or component "
                                     "spec (param:prio=...,proc=...)")
    args = parser.parse_args(argv)

    from ..algorithms import get_scheduler, list_schedulers
    from ..algorithms.components import AXES, BNP_SPECS, ParamScheduler

    if args.verb == "list":
        print(f"{'name':<8} {'class':<5} {'cp':<4} {'dyn':<4} "
              f"{'ins':<4} complexity")
        for name in list_schedulers(args.klass):
            s = get_scheduler(name)
            print(f"{s.name:<8} {s.klass:<5} {_flag(s.cp_based):<4} "
                  f"{_flag(s.dynamic_priority):<4} "
                  f"{_flag(s.uses_insertion):<4} {s.complexity}")
        print()
        print("Component specs (accepted wherever a name is):")
        print("  param:" + ",".join(f"{axis}=<{axis}>" for axis in AXES))
        for axis, registry in AXES.items():
            print(f"  {axis:<7} {' '.join(sorted(registry))}")
        print("  named coordinates: "
              + " ".join(f"param:{acro.lower()}" for acro in BNP_SPECS))
        print()
        print("Online specs (event-driven execution under an "
              "information mode):")
        print("  online:<name-or-axes>[,imode=<imode>][,seed=<n>]")
        from ..sim.online import IMODES

        print(f"  imode   {' '.join(IMODES)}   (e.g. "
              "online:mcp,imode=mean)")
        return 0

    try:
        sched = get_scheduler(args.name)
    except (KeyError, ValueError) as exc:
        # str(KeyError) wraps the message in repr quotes; args[0] is
        # the message itself.
        return _fail(str(exc.args[0]) if exc.args else str(exc))
    mod = sys.modules[type(sched).__module__]
    headline = (mod.__doc__ or "").strip().splitlines()
    print(f"{sched.name}  [{sched.klass}]")
    if headline:
        print(f"  {headline[0]}")
    print(f"  cp-based:         {_flag(sched.cp_based)}")
    print(f"  dynamic priority: {_flag(sched.dynamic_priority)}")
    print(f"  insertion:        {_flag(sched.uses_insertion)}")
    print(f"  complexity:       {sched.complexity}")
    from ..sim.online import OnlineScheduler

    if isinstance(sched, (ParamScheduler, OnlineScheduler)):
        print("  components:")
        for axis, component in sched.spec.components().items():
            label = f"{axis}={getattr(sched.spec, axis)}"
            print(f"    {label:<16} {component.summary}")
        if isinstance(sched, OnlineScheduler):
            print(f"  information mode: {sched.spec.imode}")
        monoliths = [acro for acro, spec in BNP_SPECS.items()
                     if spec == sched.spec.base()] \
            if isinstance(sched, OnlineScheduler) else \
            [acro for acro, spec in BNP_SPECS.items()
             if spec == sched.spec]
        if monoliths:
            print(f"  equivalent monolith: {monoliths[0]}")
    elif sched.name in BNP_SPECS:
        print(f"  component spec:   {BNP_SPECS[sched.name].canonical()}")
    return 0


def scenario_main(argv: Optional[List[str]] = None) -> int:
    """``repro-bench scenario {list,validate,run}``."""
    parser = argparse.ArgumentParser(
        prog="repro-bench scenario",
        description="Define and sweep arbitrary scheduling scenarios "
                    "from declarative JSON/TOML specs "
                    "(see repro.scenarios).",
    )
    sub = parser.add_subparsers(dest="verb", required=True)

    sub.add_parser("list", help="registered ready-made scenarios")

    p_val = sub.add_parser(
        "validate", help="schema-check a spec file or registered name")
    p_val.add_argument("spec", help="spec file (.json/.toml) or "
                                    "registered scenario name")

    p_run = sub.add_parser(
        "run", help="compile a spec and run it through the grid engine")
    p_run.add_argument("spec", help="spec file (.json/.toml) or "
                                    "registered scenario name")
    p_run.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes (0 = one per CPU)")
    p_run.add_argument("--results", default=None, metavar="DIR",
                       help="ResultStore directory (default: "
                            "results/scenarios/<name>)")
    p_run.add_argument("--no-store", action="store_true",
                       help="do not persist rows")
    p_run.add_argument("--resume", action="store_true",
                       help="reuse rows cached by previous runs")
    p_run.add_argument("--format", default="text",
                       choices=sorted(_EXTENSIONS), dest="fmt",
                       metavar="{text,json,csv}",
                       help="output format (default: text)")
    p_run.add_argument("--out", default=None, metavar="DIR",
                       help="also write the tables to DIR")
    p_run.add_argument("--full", action="store_true",
                       help="paper-scale suites for 'graphs.suite' axes")
    args = parser.parse_args(argv)

    from ..scenarios import (
        SpecError,
        compile_scenario,
        get_scenario,
        load_spec,
        online_tables,
        run_scenario,
        scenario_names,
        scenario_tables,
    )

    if args.verb == "list":
        for name in scenario_names():
            spec = get_scenario(name)
            print(f"{name:20s} {spec.num_variants():3d} variant(s)  "
                  f"{spec.description}")
        return 0

    try:
        spec = load_spec(args.spec)
    except SpecError as exc:
        return _fail(str(exc))
    except OSError as exc:
        return _fail(f"cannot read {args.spec!r} ({exc.strerror or exc})")

    if args.verb == "validate":
        try:
            compiled = compile_scenario(spec)
        except SpecError as exc:
            return _fail(str(exc))
        graphs = sum(len(v.graphs) for v in compiled.variants)
        print(f"OK: scenario {spec.name!r} — "
              f"{len(compiled.variants)} variant(s), {graphs} graph(s), "
              f"{compiled.num_cells} grid cell(s), "
              f"algorithms: {', '.join(compiled.variants[0].algorithms)}")
        return 0

    # run
    try:
        compiled = compile_scenario(spec, full=True if args.full else None)
    except SpecError as exc:
        return _fail(str(exc))
    store = None
    if not args.no_store:
        results_dir = args.results or os.path.join(
            "results", "scenarios", spec.name)
        try:
            store = _open_store(results_dir)
        except ValueError as exc:
            return _fail(str(exc))
    result = run_scenario(compiled, jobs=args.jobs, store=store,
                          resume=args.resume)
    detail, summary = scenario_tables(result)
    _emit(_render_table(detail, args.fmt), f"scenario_{spec.name}",
          args.out, args.fmt)
    _emit(_render_table(summary, args.fmt),
          f"scenario_{spec.name}_summary", args.out, args.fmt)
    if spec.online or any(v.online for v in compiled.variants):
        _emit(_render_table(online_tables(result), args.fmt),
              f"scenario_{spec.name}_online", args.out, args.fmt)
    if store is not None:
        print(f"[{len(store)} rows persisted under {store.directory}]")
    return 0


# ----------------------------------------------------------------------
# sim verbs
# ----------------------------------------------------------------------
def _parse_noise(text: str, flag: str):
    """``dist:param`` (e.g. ``lognormal:0.3``) -> perturb-block dict."""
    kind, sep, param = text.partition(":")
    if not sep:
        raise ValueError(f"{flag}: expected DIST:PARAM, got {text!r}")
    try:
        value = float(param)
    except ValueError:
        raise ValueError(f"{flag}: parameter {param!r} is not a number"
                         ) from None
    return {"dist": kind, "param": value}


def sim_main(argv: Optional[List[str]] = None) -> int:
    """``repro-bench sim {run,compare}``.

    Both verbs execute a scenario's schedules through the discrete-event
    Monte-Carlo layer (:mod:`repro.sim`); ``run`` prints the per-cell
    distribution table plus the robustness ranking, ``compare`` only the
    ranking.  The spec's ``simulate:`` block configures the execution
    model; the flags below override it ad hoc.
    """
    from ..sim.netmodel import NETWORK_KINDS
    from ..sim.online import IMODES

    parser = argparse.ArgumentParser(
        prog="repro-bench sim",
        description="Execute scheduled graphs in the discrete-event "
                    "simulator under stochastic runtimes and rank the "
                    "algorithms by robustness (see repro.sim).",
    )
    sub = parser.add_subparsers(dest="verb", required=True)
    for verb, text in (
        ("run", "Monte-Carlo a scenario; print distributions + ranking"),
        ("compare", "Monte-Carlo a scenario; print only the robustness "
                    "ranking"),
    ):
        p = sub.add_parser(verb, help=text)
        p.add_argument("spec", help="spec file (.json/.toml) or "
                                    "registered scenario name")
        p.add_argument("--trials", type=int, default=None, metavar="N",
                       help="Monte-Carlo trials per cell "
                            "(default: spec value or 100)")
        p.add_argument("--seed", type=int, default=None,
                       help="noise-stream seed (default: spec value or 0)")
        p.add_argument("--noise", default=None, metavar="DIST:PARAM",
                       help="duration noise, e.g. lognormal:0.3 or "
                            "uniform:0.2 (overrides the spec)")
        p.add_argument("--speed-noise", default=None, metavar="DIST:PARAM",
                       help="per-processor speed jitter per trial")
        p.add_argument("--comm-noise", default=None, metavar="DIST:PARAM",
                       help="message-latency noise")
        p.add_argument("--network", default=None, choices=NETWORK_KINDS,
                       help="transport backend (default: spec value or "
                            "'auto' — each schedule's own model)")
        p.add_argument("--online", action="store_true",
                       help="also run each algorithm's event-driven "
                            "online counterpart (adds an 'online' block "
                            "to the spec; see repro.sim.online)")
        p.add_argument("--imode", default=None, metavar="MODE[,MODE...]",
                       help="information modes for --online (default: "
                            "all of exact, blind, mean, user); implies "
                            "--online")
        p.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes (0 = one per CPU)")
        p.add_argument("--results", default=None, metavar="DIR",
                       help="ResultStore directory (default: "
                            "results/sim/<name>)")
        p.add_argument("--no-store", action="store_true",
                       help="do not persist rows")
        p.add_argument("--resume", action="store_true",
                       help="reuse rows cached by previous runs")
        p.add_argument("--format", default="text",
                       choices=sorted(_EXTENSIONS), dest="fmt",
                       metavar="{text,json,csv}",
                       help="output format (default: text)")
        p.add_argument("--out", default=None, metavar="DIR",
                       help="also write the tables to DIR")
        p.add_argument("--full", action="store_true",
                       help="paper-scale suites for 'graphs.suite' axes")
    args = parser.parse_args(argv)

    from ..scenarios import (
        SpecError,
        compile_scenario,
        load_spec,
        run_sim_scenario,
        sim_tables,
        validate_spec,
    )
    from ..sim import sim_store

    try:
        spec = load_spec(args.spec)
    except SpecError as exc:
        return _fail(str(exc))
    except OSError as exc:
        return _fail(f"cannot read {args.spec!r} ({exc.strerror or exc})")

    # Fold the CLI's execution-model overrides back into the document and
    # re-validate, so flag errors surface as the same one-line dotted
    # diagnostics as spec errors.  An override of a *swept* simulate
    # field cannot win (the sweep replaces the field per variant), so
    # that combination is an explicit error, never a silent no-op.
    doc = spec.to_dict()
    block = dict(doc.get("simulate", {}))
    perturb = dict(block.get("perturb", {}))
    online_block = dict(doc.get("online", {}))
    overridden = []
    try:
        if args.trials is not None:
            block["trials"] = args.trials
            overridden.append(("--trials", "trials"))
        if args.seed is not None:
            block["seed"] = args.seed
            overridden.append(("--seed", "seed"))
        if args.network is not None:
            block["network"] = args.network
            overridden.append(("--network", "network"))
        for flag, source, text in (
            ("--noise", "duration", args.noise),
            ("--speed-noise", "speed", args.speed_noise),
            ("--comm-noise", "comm", args.comm_noise),
        ):
            if text is not None:
                perturb[source] = _parse_noise(text, flag)
                overridden.append((flag, "perturb"))
    except ValueError as exc:
        return _fail(str(exc))
    online_overridden = []
    if args.imode is not None:
        online_block["imodes"] = [m.strip()
                                  for m in args.imode.split(",") if m.strip()]
        online_overridden.append(("--imode", "imodes"))
    if args.online and not online_block:
        # Bare --online: all modes, spec-or-default seed.
        online_block["imodes"] = list(IMODES)
        online_overridden.append(("--online", "imodes"))
    for flag, leaf in overridden:
        for axis in spec.sweep:
            if (axis == "simulate"
                    or axis == f"simulate.{leaf}"
                    or axis.startswith(f"simulate.{leaf}.")):
                return _fail(
                    f"{flag} conflicts with the spec's sweep axis "
                    f"{axis!r} — drop the flag or remove the axis")
    for flag, leaf in online_overridden:
        for axis in spec.sweep:
            if (axis == "online"
                    or axis == f"online.{leaf}"
                    or axis.startswith(f"online.{leaf}.")):
                return _fail(
                    f"{flag} conflicts with the spec's sweep axis "
                    f"{axis!r} — drop the flag or remove the axis")
    if perturb:
        block["perturb"] = perturb
    if block:
        doc["simulate"] = block
    if online_block:
        doc["online"] = online_block
    try:
        spec = validate_spec(doc)
        compiled = compile_scenario(spec, full=True if args.full else None)
    except SpecError as exc:
        return _fail(str(exc))

    store = None
    if not args.no_store:
        results_dir = args.results or os.path.join(
            "results", "sim", spec.name)
        try:
            store = _open_results(results_dir, sim_store)
        except ValueError as exc:
            return _fail(str(exc))
    try:
        result = run_sim_scenario(compiled, jobs=args.jobs, store=store,
                                  resume=args.resume)
    except ValueError as exc:
        # e.g. a contention backend whose topology is smaller than the
        # scenario's machine — a config error, not a crash.
        return _fail(str(exc))
    detail, ranking = sim_tables(result)
    if args.verb == "run":
        _emit(_render_table(detail, args.fmt), f"sim_{spec.name}",
              args.out, args.fmt)
    _emit(_render_table(ranking, args.fmt), f"sim_{spec.name}_ranking",
          args.out, args.fmt)
    if store is not None:
        print(f"[{len(store)} sim rows persisted under {store.directory}]")
    return 0


# ----------------------------------------------------------------------
# trace / profile verbs
# ----------------------------------------------------------------------
def _load_trace_file(path: str):
    """Read a trace.json (or bare manifest) -> ``(document, manifest)``.

    A flushed ``trace.json`` embeds its manifest under ``reproManifest``
    (extra top-level keys are ignored by Perfetto); a sibling
    ``*.manifest.json`` is the manifest alone, in which case there is no
    document.  Raises ``ValueError`` with a one-line diagnostic.
    """
    try:
        with open(path) as fh:
            data = json.load(fh)
    except OSError as exc:
        raise ValueError(
            f"cannot read {path!r} ({exc.strerror or exc}) — record one "
            "with --trace or REPRO_TRACE=1 first") from None
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path!r} is not valid JSON ({exc})") from None
    if not isinstance(data, dict):
        raise ValueError(f"{path!r} is neither a trace nor a manifest")
    if "traceEvents" in data:
        return data, data.get("reproManifest") or {}
    if "schema" in data and "counters" in data:
        return None, data
    raise ValueError(f"{path!r} is neither a trace nor a manifest")


def trace_main(argv: Optional[List[str]] = None) -> int:
    """``repro-bench trace {show,export}``.

    Post-mortem views of a recorded run: ``show`` prints the manifest
    summary (counters, timelines, top self-time spans) embedded in a
    flushed ``trace.json``; ``export`` re-emits the Perfetto document
    alone — the manifest key stripped — for loading into
    https://ui.perfetto.dev or ``chrome://tracing``.
    """
    parser = argparse.ArgumentParser(
        prog="repro-bench trace",
        description="Inspect or re-export a trace recorded with "
                    "--trace / REPRO_TRACE=1 (see repro.obs).",
    )
    sub = parser.add_subparsers(dest="verb", required=True)
    p_show = sub.add_parser(
        "show", help="summarise a recorded trace's manifest")
    p_show.add_argument("path", nargs="?", default="trace.json",
                        help="trace.json or *.manifest.json "
                             "(default: trace.json)")
    p_exp = sub.add_parser(
        "export", help="write the viewer-ready Perfetto document")
    p_exp.add_argument("path", nargs="?", default="trace.json",
                       help="recorded trace.json (default: trace.json)")
    p_exp.add_argument("--out", default=None, metavar="PATH",
                       help="output path (default: stdout)")
    args = parser.parse_args(argv)

    try:
        doc, manifest = _load_trace_file(args.path)
    except ValueError as exc:
        return _fail(str(exc))
    if args.verb == "show":
        print(_obs_report.render_manifest(manifest))
        return 0
    if doc is None:
        return _fail(f"{args.path!r} is a manifest without trace events "
                     "— point at the trace.json")
    doc = {k: v for k, v in doc.items() if k != "reproManifest"}
    text = json.dumps(doc, indent=1)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(f"[perfetto document written to {args.out}]")
    else:
        print(text)
    return 0


def profile_main(argv: Optional[List[str]] = None) -> int:
    """``repro-bench profile``: the top-N self-time table of a trace."""
    parser = argparse.ArgumentParser(
        prog="repro-bench profile",
        description="Print the self-time profile of a recorded trace "
                    "(see repro.obs; record one with --trace).",
    )
    parser.add_argument("path", nargs="?", default="trace.json",
                        help="trace.json or *.manifest.json "
                             "(default: trace.json)")
    parser.add_argument("--top", type=int, default=10, metavar="N",
                        help="rows to print (default: 10)")
    args = parser.parse_args(argv)
    try:
        _, manifest = _load_trace_file(args.path)
    except ValueError as exc:
        return _fail(str(exc))
    print(_obs_report.render_profile(manifest, top=args.top))
    return 0


# ----------------------------------------------------------------------
# service verbs
# ----------------------------------------------------------------------
def serve_main(argv: Optional[List[str]] = None) -> int:
    """``repro-bench serve``: run the scheduling service until SIGTERM.

    Stands up :class:`repro.service.ScheduleService` — async batching
    front end, fingerprint-keyed schedule cache, persistent worker
    pool — and blocks until SIGTERM/SIGINT triggers a clean drain
    (stop accepting, finish queued work, flush the cache).
    """
    import asyncio

    parser = argparse.ArgumentParser(
        prog="repro-bench serve",
        description="Serve POST /schedule (task graph + machine + spec "
                    "-> schedule) with batching and a fingerprint-keyed "
                    "cache; GET /healthz and /stats for monitoring.",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8080,
                        help="bind port, 0 = ephemeral (default: 8080)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes; 0 = one per CPU, "
                             "1 = in-process (default: 1)")
    parser.add_argument("--queue-limit", type=int, default=64,
                        metavar="N",
                        help="pending-request bound before 429s "
                             "(default: 64)")
    parser.add_argument("--max-batch", type=int, default=8, metavar="N",
                        help="max requests batched per pool dispatch "
                             "(default: 8)")
    parser.add_argument("--timeout", type=float, default=30.0,
                        metavar="SECONDS",
                        help="per-request deadline before a 504 "
                             "(default: 30)")
    parser.add_argument("--cache-capacity", type=int, default=1024,
                        metavar="N",
                        help="in-memory LRU entries (default: 1024)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persist the schedule cache in DIR "
                             "(default: memory only)")
    args = parser.parse_args(argv)

    from ..service import ScheduleService, ServiceConfig

    config = ServiceConfig(
        host=args.host, port=args.port, jobs=args.jobs,
        queue_limit=args.queue_limit, max_batch=args.max_batch,
        timeout_s=args.timeout, cache_capacity=args.cache_capacity,
        cache_dir=args.cache_dir)

    async def run() -> None:
        service = ScheduleService(config)
        await service.start()
        service.install_signal_handlers()
        print(f"repro-bench serve: listening on "
              f"http://{config.host}:{service.port} "
              f"(jobs={service.pool.jobs}, "
              f"queue-limit={config.queue_limit}, "
              f"timeout={config.timeout_s:g}s)")
        try:
            await service.serve_forever()
        finally:
            await service.drain()
            print("repro-bench serve: drained, bye")

    try:
        asyncio.run(run())
    except ValueError as exc:          # e.g. unusable --cache-dir
        return _fail(str(exc))
    except KeyboardInterrupt:
        pass
    return 0


def loadtest_main(argv: Optional[List[str]] = None) -> int:
    """``repro-bench loadtest``: fire a seeded traffic storm, print the
    RPS/p50/p99 table.

    Self-hosts an in-process service by default (a from-cold
    measurement including cache warm-up); ``--url HOST:PORT`` targets
    a server started with ``repro-bench serve`` instead.
    """
    parser = argparse.ArgumentParser(
        prog="repro-bench loadtest",
        description="Replay a seeded, Zipf-skewed storm of scheduling "
                    "requests and report RPS, latency percentiles and "
                    "the cold-vs-warm cache speedup.",
    )
    parser.add_argument("--url", default=None, metavar="HOST:PORT",
                        help="target a running server (default: "
                             "self-host one in process)")
    parser.add_argument("--requests", type=int, default=200, metavar="N",
                        help="storm length (default: 200)")
    parser.add_argument("--templates", type=int, default=8, metavar="N",
                        help="distinct (graph, spec) templates "
                             "(default: 8)")
    parser.add_argument("--sizes", default="150,250,400", metavar="LIST",
                        help="comma-separated graph sizes the templates "
                             "cycle over (default: 150,250,400)")
    parser.add_argument("--ccr", type=float, default=1.0,
                        help="graph CCR (default: 1.0)")
    parser.add_argument("--specs", default=None, metavar="LIST",
                        help="comma-separated scheduler specs "
                             "(default: mcp,dls,param:prio=blevel,"
                             "proc=est)")
    parser.add_argument("--procs", type=int, default=8, metavar="P",
                        help="processors per request (default: 8)")
    parser.add_argument("--rate", type=float, default=500.0,
                        help="mean arrival rate in req/s (default: 500)")
    parser.add_argument("--skew", type=float, default=1.1,
                        help="Zipf popularity exponent (default: 1.1)")
    parser.add_argument("--seed", type=int, default=0,
                        help="storm seed (default: 0)")
    parser.add_argument("--jobs", type=int, default=2, metavar="N",
                        help="self-hosted server workers; worker "
                             "processes keep cold scheduling off the "
                             "event loop (default: 2)")
    parser.add_argument("--concurrency", type=int, default=16,
                        metavar="N",
                        help="client connections in flight "
                             "(default: 16)")
    parser.add_argument("--pace", type=float, default=0.0,
                        metavar="SCALE",
                        help="scale seeded arrival times; 0 = fire as "
                             "fast as --concurrency allows (default: 0)")
    parser.add_argument("--timeout", type=float, default=30.0,
                        metavar="SECONDS",
                        help="per-request deadline (default: 30)")
    parser.add_argument("--format", default="text",
                        choices=sorted(_EXTENSIONS),
                        help="output format (default: text)")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="also write the table under DIR")
    args = parser.parse_args(argv)

    from ..scenarios.storm import StormConfig
    from ..service import loadtest_table, run_loadtest

    url = None
    if args.url is not None:
        host, sep, port = args.url.rpartition(":")
        if not sep or not port.isdigit():
            return _fail(f"--url must be HOST:PORT, got {args.url!r}")
        url = (host or "127.0.0.1", int(port))

    try:
        sizes = tuple(int(s) for s in args.sizes.split(",") if s)
        if not sizes:
            raise ValueError
    except ValueError:
        return _fail(f"--sizes must be comma-separated integers, "
                     f"got {args.sizes!r}")
    spec_field = StormConfig.__dataclass_fields__["specs"]
    if args.specs is None:
        specs = spec_field.default
    else:
        # Commas both separate specs and appear inside param specs
        # (``param:prio=blevel,proc=est``); a fragment that is a bare
        # key=value continues the previous spec.
        merged: List[str] = []
        for part in args.specs.split(","):
            if not part:
                continue
            if merged and "=" in part and ":" not in part:
                merged[-1] += "," + part
            else:
                merged.append(part)
        if not merged:
            return _fail(f"--specs must name at least one scheduler "
                         f"spec, got {args.specs!r}")
        specs = tuple(merged)

    config = StormConfig(requests=args.requests,
                         templates=args.templates, sizes=sizes,
                         ccr=args.ccr, specs=specs, procs=args.procs,
                         rate=args.rate, skew=args.skew, seed=args.seed)
    try:
        report = run_loadtest(config, url=url, jobs=args.jobs,
                              concurrency=args.concurrency,
                              pace=args.pace, timeout_s=args.timeout)
    except OSError as exc:
        return _fail(f"cannot reach {args.url}: {exc}")
    table = loadtest_table(report, config)
    _emit(_render_table(table, args.format), "loadtest", args.out,
          args.format)
    return 0


# ----------------------------------------------------------------------
# adv verbs
# ----------------------------------------------------------------------
def _adv_load(args):
    """Shared front half of the adv verbs: spec + results directory.

    Returns ``(spec, results_dir)`` or raises ``ValueError`` with the
    one-line diagnostic.  ``search`` additionally folds the CLI's
    override flags into the ``adversarial:`` block and re-validates.
    """
    from ..scenarios import SpecError, load_spec, validate_spec

    try:
        spec = load_spec(args.spec)
    except SpecError as exc:
        raise ValueError(str(exc)) from None
    except OSError as exc:
        raise ValueError(
            f"cannot read {args.spec!r} ({exc.strerror or exc})") from None

    overrides = {
        leaf: getattr(args, attr, None)
        for leaf, attr in (("pair", "pair"), ("objective", "objective"),
                           ("steps", "steps"), ("chains", "chains"),
                           ("temperature", "temperature"),
                           ("seed", "seed"))
        if getattr(args, attr, None) is not None
    }
    if overrides:
        doc = spec.to_dict()
        block = dict(doc.get("adversarial", {}))
        block.update(overrides)
        doc["adversarial"] = block
        for leaf in overrides:
            for axis in spec.sweep:
                if (axis == "adversarial"
                        or axis == f"adversarial.{leaf}"
                        or axis.startswith(f"adversarial.{leaf}.")):
                    raise ValueError(
                        f"--{leaf} conflicts with the spec's sweep axis "
                        f"{axis!r} — drop the flag or remove the axis")
        try:
            spec = validate_spec(doc)
        except SpecError as exc:
            raise ValueError(str(exc)) from None
    # Only `search` needs the block; `show`/`export` work off the
    # persisted store alone (e.g. after an ad-hoc --pair search).
    if (args.verb == "search" and not spec.adversarial
            and not spec.sweep):
        raise ValueError(
            f"scenario {spec.name!r} has no adversarial block — add one "
            "to the spec, or pass --pair A B (plus optional --objective/"
            "--steps/...) to search it ad hoc")
    results_dir = args.results or os.path.join("results", "adv", spec.name)
    return spec, results_dir


def adv_main(argv: Optional[List[str]] = None) -> int:
    """``repro-bench adv {search,show,export}``.

    ``search`` anneals mutation chains over graph space to maximise a
    scheduler pair's gap (see :mod:`repro.adversarial`), persisting
    every finished chain plus the per-pair Pareto front; ``show``
    re-renders a previous search's store without recomputing; and
    ``export`` writes the frontier instances out as reloadable ``.stg``
    graph files (:func:`repro.generators.load_graph` reads them back).
    """
    from ..adversarial import OBJECTIVES

    parser = argparse.ArgumentParser(
        prog="repro-bench adv",
        description="Search graph space for adversarial instances — "
                    "graphs where one scheduler loses maximally to "
                    "another (see repro.adversarial).",
    )
    sub = parser.add_subparsers(dest="verb", required=True)

    p_search = sub.add_parser(
        "search", help="run the annealing search for a scenario's pair")
    p_search.add_argument("spec", help="spec file (.json/.toml) or "
                                       "registered scenario name")
    p_search.add_argument("--pair", nargs=2, default=None,
                          metavar=("A", "B"),
                          help="ordered scheduler pair to maximise "
                               "against (overrides the spec)")
    p_search.add_argument("--objective", default=None, choices=OBJECTIVES,
                          help="score to maximise (default: spec value "
                               "or 'ratio')")
    p_search.add_argument("--steps", type=int, default=None, metavar="N",
                          help="mutations per chain")
    p_search.add_argument("--chains", type=int, default=None, metavar="N",
                          help="independent annealing chains")
    p_search.add_argument("--temperature", type=float, default=None,
                          metavar="T",
                          help="initial acceptance temperature (0 = "
                               "greedy hill climb)")
    p_search.add_argument("--seed", type=int, default=None,
                          help="search seed (chains derive their own "
                               "streams from it)")
    p_search.add_argument("--jobs", type=int, default=1, metavar="N",
                          help="worker processes (0 = one per CPU)")
    p_search.add_argument("--results", default=None, metavar="DIR",
                          help="ResultStore directory (default: "
                               "results/adv/<name>)")
    p_search.add_argument("--no-store", action="store_true",
                          help="do not persist chains or the frontier")
    p_search.add_argument("--resume", action="store_true",
                          help="replay chains cached by previous runs")
    p_search.add_argument("--format", default="text",
                          choices=sorted(_EXTENSIONS), dest="fmt",
                          metavar="{text,json,csv}",
                          help="output format (default: text)")
    p_search.add_argument("--out", default=None, metavar="DIR",
                          help="also write the tables to DIR")
    p_search.add_argument("--full", action="store_true",
                          help="paper-scale suites for 'graphs.suite' "
                               "axes")

    p_show = sub.add_parser(
        "show", help="re-render a previous search's store and frontier")
    p_show.add_argument("spec", help="spec file or registered name "
                                     "(locates the default store)")
    p_show.add_argument("--results", default=None, metavar="DIR",
                        help="ResultStore directory (default: "
                             "results/adv/<name>)")
    p_show.add_argument("--format", default="text",
                        choices=sorted(_EXTENSIONS), dest="fmt",
                        metavar="{text,json,csv}",
                        help="output format (default: text)")
    p_show.add_argument("--out", default=None, metavar="DIR",
                        help="also write the tables to DIR")

    p_exp = sub.add_parser(
        "export", help="write found instances as reloadable .stg files")
    p_exp.add_argument("spec", help="spec file or registered name "
                                    "(locates the default store)")
    p_exp.add_argument("--results", default=None, metavar="DIR",
                       help="ResultStore directory (default: "
                            "results/adv/<name>)")
    p_exp.add_argument("--out", required=True, metavar="DIR",
                       help="directory for the .stg files")
    p_exp.add_argument("--all", action="store_true",
                       help="export every chain's best instance, not "
                            "just the Pareto front")
    args = parser.parse_args(argv)

    from ..adversarial import ParetoFrontier, adv_store
    from ..scenarios import (
        SpecError,
        adv_tables,
        compile_scenario,
        run_adv_scenario,
    )
    from ..scenarios.compile import AdvScenarioResult, CompiledScenario

    try:
        spec, results_dir = _adv_load(args)
    except ValueError as exc:
        return _fail(str(exc))
    frontier_path = os.path.join(results_dir, "frontier.json")

    if args.verb == "search":
        try:
            compiled = compile_scenario(
                spec, full=True if args.full else None)
        except SpecError as exc:
            return _fail(str(exc))
        store = None
        frontier = ParetoFrontier()
        if not args.no_store:
            try:
                store = _open_results(results_dir, adv_store)
                frontier = ParetoFrontier(frontier_path)
            except ValueError as exc:
                return _fail(str(exc))
        try:
            result = run_adv_scenario(compiled, jobs=args.jobs,
                                      store=store, resume=args.resume)
        except (SpecError, ValueError) as exc:
            return _fail(str(exc))
        frontier.update(result.all_rows())
        if store is not None:
            frontier.save(frontier_path)
        detail, front = adv_tables(result, frontier)
        _emit(_render_table(detail, args.fmt), f"adv_{spec.name}",
              args.out, args.fmt)
        _emit(_render_table(front, args.fmt), f"adv_{spec.name}_frontier",
              args.out, args.fmt)
        if store is not None:
            print(f"[{len(store)} chain(s) persisted under "
                  f"{store.directory}; frontier: {len(frontier)} "
                  "point(s)]")
        return 0

    # show / export work off the persisted store alone — no search runs.
    try:
        store = _open_results(results_dir, adv_store)
        frontier = ParetoFrontier(frontier_path)
    except ValueError as exc:
        return _fail(str(exc))
    rows = store.rows()
    if not rows:
        return _fail(f"no chains stored under {results_dir!r} — run "
                     f"'adv search {args.spec}' first")
    if not len(frontier):
        frontier.update(rows)

    if args.verb == "show":
        from .runner import BenchConfig
        from ..scenarios.compile import Variant

        stub = Variant(label="store", overrides={}, graphs=[],
                       config=BenchConfig(), algorithms=())
        result = AdvScenarioResult(
            CompiledScenario(spec=spec, variants=[stub]),
            rows=[(stub, rows)])
        detail, front = adv_tables(result, frontier)
        _emit(_render_table(detail, args.fmt), f"adv_{spec.name}",
              args.out, args.fmt)
        _emit(_render_table(front, args.fmt), f"adv_{spec.name}_frontier",
              args.out, args.fmt)
        return 0

    # export
    import hashlib

    points = []
    if args.all:
        points = [(r.instance, r.stg) for r in rows]
    else:
        for pair in frontier.pairs():
            points.extend((p.instance, p.stg) for p in frontier.front(pair))
    # Instance names encode pair/objective/chain but not the search
    # knobs, so one store can hold several *different* graphs under one
    # name (e.g. reruns with other --steps).  Identical content dedups;
    # colliding content gets a short content-hash suffix — nothing is
    # silently dropped or overwritten.
    exported: Dict[str, str] = {}  # file stem -> content
    os.makedirs(args.out, exist_ok=True)
    written = []
    for instance, stg in points:
        if not stg:
            continue
        name = instance
        if exported.get(name, stg) != stg:  # same name, different graph
            digest = hashlib.sha256(stg.encode()).hexdigest()[:8]
            name = f"{instance}-{digest}"
        if name in exported:  # identical content already written
            continue
        exported[name] = stg
        path = os.path.join(args.out, f"{name}.stg")
        with open(path, "w") as fh:
            fh.write(stg)
        written.append(path)
    for path in written:
        print(path)
    print(f"[{len(written)} instance(s) exported to {args.out}; reload "
          "with repro.generators.load_graph]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

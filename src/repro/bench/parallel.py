"""Parallel, cached execution of algorithm x graph benchmark grids.

This is the engine behind every artifact builder: it expands a grid
into ``(algorithm, graph)`` cells in the canonical serial order, skips
cells already present in a :class:`~repro.bench.store.ResultStore`
(``resume=True``), fans the remaining cells out over a
``multiprocessing`` worker pool (``jobs > 1``), and returns rows in an
order *identical* to the serial double loop — graphs outer, algorithms
inner — so tables and figures are byte-stable regardless of ``jobs``.

Scheduling a cell is a pure function of ``(algorithm, graph, config)``
— the suites are seeded and the heuristics deterministic — so the only
field that varies between runs is the measured ``runtime_s``.  That is
what makes both the cache and the fan-out safe.

The requested per-graph optimum is intentionally *not* part of the
cache key: it feeds the degradation measure only, never the schedule,
so cached rows are rebased onto the currently requested optimum via
``dataclasses.replace`` instead of being recomputed.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.graph import TaskGraph
from ..metrics.measures import RunResult
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from .store import ResultStore

__all__ = ["grid_cells", "execute_cells", "run_grid", "default_jobs",
           "WorkerPool"]

# One cell of work: (algorithm name, graph, requested optimum or None).
Cell = Tuple[str, TaskGraph, Optional[float]]

#: Checkpoint cadence: the store is saved after this many new rows, so
#: an interrupted grid loses at most this much work.
SAVE_EVERY = 25


def default_jobs() -> int:
    """Worker count used for ``jobs=0`` ("auto"): one per usable CPU."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # platforms without sched_getaffinity
        return max(1, os.cpu_count() or 1)


class WorkerPool:
    """A long-lived worker pool: the grid engine's fan-out, persistent.

    ``execute_cells`` forks a fresh ``multiprocessing.Pool`` per call —
    right for a batch CLI run, wrong for a service handling requests
    for hours.  A ``WorkerPool`` keeps the same workers alive across
    any number of :meth:`run_batch` / :meth:`imap` calls (created
    lazily on first use, so constructing one is free) and is handed to
    ``execute_cells(pool=...)`` to reuse them for grid work too.

    ``jobs`` follows the CLI convention: ``None``/``1`` — run
    in-process with no subprocesses at all; ``N > 1`` — ``N`` workers;
    ``0`` — one per usable CPU.  :meth:`drain` finishes all submitted
    work and releases the workers (the SIGTERM path of the service);
    :meth:`shutdown` with ``wait=False`` kills them immediately.  The
    object is reusable after either — the next submission simply forks
    a fresh pool — and works as a context manager.
    """

    def __init__(self, jobs: Optional[int] = None):
        self.jobs = default_jobs() if jobs == 0 else max(1, int(jobs or 1))
        self._pool: Optional[multiprocessing.pool.Pool] = None

    # ------------------------------------------------------------------
    def _ensure(self) -> multiprocessing.pool.Pool:
        if self._pool is None:
            self._pool = multiprocessing.Pool(processes=self.jobs)
        return self._pool

    @property
    def alive(self) -> bool:
        """Whether worker processes currently exist."""
        return self._pool is not None

    def imap(self, fn, batch: Sequence, chunksize: int = 1):
        """Order-preserving lazy map over the persistent workers.

        Falls back to an in-process generator when ``jobs <= 1`` or the
        batch has a single item (same policy as ``execute_cells``), so
        callers never pay pool overhead for degenerate batches.
        """
        if self.jobs <= 1 or len(batch) <= 1:
            return (fn(args) for args in batch)
        return self._ensure().imap(fn, batch, chunksize=chunksize)

    def run_batch(self, fn, batch: Sequence) -> List:
        """Run ``fn`` over ``batch`` on the persistent workers; returns
        results in submission order (the service's per-batch call)."""
        return list(self.imap(fn, batch))

    # ------------------------------------------------------------------
    def drain(self) -> None:
        """Finish everything submitted, then release the workers."""
        self.shutdown(wait=True)

    def shutdown(self, wait: bool = True) -> None:
        """Release the workers; ``wait=False`` terminates them."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        if wait:
            pool.close()
        else:
            pool.terminate()
        pool.join()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(wait=exc_type is None)


def grid_cells(names: Sequence[str], graphs: Iterable[TaskGraph],
               optima: Optional[Dict[str, float]] = None) -> List[Cell]:
    """Expand a grid into cells in the canonical serial order."""
    cells: List[Cell] = []
    for graph in graphs:
        opt = optima.get(graph.name) if optima else None
        for name in names:
            cells.append((name, graph, opt))
    return cells


def _run_cell(args) -> RunResult:
    """Pool worker: schedule and measure one cell (must be module-level
    so it pickles under the spawn start method too)."""
    name, graph, config, optimal = args
    from . import runner

    return runner.run_one(name, graph, config=config, optimal=optimal)


def _observed_cell(args):
    """Run one cell inside a trace-collection scope.

    Wraps the real ``worker`` when tracing is armed (workers inherit
    ``REPRO_TRACE`` through the environment): the cell's spans, counters
    and timelines are isolated into a picklable payload and shipped home
    with the row, where the parent absorbs them in serial cell order —
    the same canonical merge whether the cell ran in-process or in any
    worker of any pool.  Must be module-level so it pickles.
    """
    cell_worker, cell_args, label = args
    with _trace.collect() as payload:
        with _trace.span("bench.cell", cell=label):
            row = cell_worker(cell_args)
    return row, payload


def execute_cells(keys: Sequence[Tuple[str, str]], work: Sequence,
                  worker, fingerprint: str,
                  jobs: Optional[int] = None,
                  store: Optional[ResultStore] = None,
                  resume: bool = False,
                  rebase=None,
                  pool: Optional[WorkerPool] = None) -> List:
    """The grid executor every cell-shaped benchmark shares.

    ``keys[i] = (algorithm, graph name)`` is cell *i*'s store cache key
    (with ``fingerprint``); ``work[i]`` is the picklable argument tuple
    handed to the module-level ``worker`` function.  Rows land at their
    serial indices regardless of ``jobs``; cached rows are reused under
    ``resume`` (optionally adapted by ``rebase(row, i)``, e.g. to point
    degradation at the currently requested optimum); computed rows are
    written back and checkpointed every :data:`SAVE_EVERY` cells plus
    once at the end.  Both the static grid (:func:`run_grid`) and the
    Monte-Carlo sim grid (:func:`repro.sim.bench.run_sim_grid`) run on
    this one implementation.

    ``pool`` hands in a persistent :class:`WorkerPool` to run the
    fan-out on instead of forking a fresh ``multiprocessing.Pool`` for
    this call — the service mode, where workers outlive any one batch;
    ``jobs`` is then ignored in favour of the pool's worker count.
    """
    rows: List = [None] * len(keys)
    todo: List[int] = []
    for i, (alg, gname) in enumerate(keys):
        cached = (store.get(alg, gname, fingerprint)
                  if store is not None and resume else None)
        if cached is not None:
            _metrics.incr("store.cache_hits")
            rows[i] = rebase(cached, i) if rebase is not None else cached
        else:
            todo.append(i)

    unsaved = 0

    def record(row) -> None:
        nonlocal unsaved
        if store is None:
            return
        store.put(row, fingerprint)
        unsaved += 1
        if unsaved >= SAVE_EVERY:
            store.save()
            unsaved = 0

    # Under armed tracing every cell runs through _observed_cell: its
    # spans/counters come back as a payload absorbed here in serial cell
    # order, so the merged trace and counter manifest are canonical
    # across every --jobs setting.
    observing = _trace.armed()

    def cell_label(i: int) -> str:
        alg, gname = keys[i]
        return f"{alg} on {gname}"

    if pool is not None:
        jobs = pool.jobs
    else:
        jobs = default_jobs() if jobs == 0 else max(1, int(jobs or 1))

    def consume(results) -> None:
        # imap preserves submission order: rows land at their serial
        # indices no matter which worker finishes first.
        for i, res in zip(todo, results):
            if observing:
                res, payload = res
                _trace.absorb(payload, track=cell_label(i))
            rows[i] = res
            record(res)

    try:
        if jobs > 1 and len(todo) > 1:
            if observing:
                fn = _observed_cell
                batch = [(worker, work[i], cell_label(i)) for i in todo]
            else:
                fn = worker
                batch = [work[i] for i in todo]
            chunksize = max(1, len(batch) // (min(jobs, len(batch)) * 4))
            if pool is not None:
                consume(pool.imap(fn, batch, chunksize=chunksize))
            else:
                processes = min(jobs, len(batch))
                with multiprocessing.Pool(processes=processes) as mp_pool:
                    consume(mp_pool.imap(fn, batch, chunksize=chunksize))
        else:
            for i in todo:
                if observing:
                    row, payload = _observed_cell(
                        (worker, work[i], cell_label(i)))
                    _trace.absorb(payload, track=cell_label(i))
                    rows[i] = row
                else:
                    rows[i] = worker(work[i])
                record(rows[i])
    finally:
        if store is not None and unsaved:
            store.save()
    return rows


def run_grid(names: Sequence[str], graphs: Iterable[TaskGraph],
             config=None,
             optima: Optional[Dict[str, float]] = None,
             jobs: Optional[int] = None,
             store: Optional[ResultStore] = None,
             resume: bool = False) -> List[RunResult]:
    """Run every algorithm on every graph; returns flat result rows.

    Parameters
    ----------
    jobs:
        ``None``/``1`` — run in-process; ``N > 1`` — fan cells out over
        ``N`` worker processes; ``0`` — one worker per CPU.  Row order
        and values (modulo measured runtimes) are identical across all
        settings.
    store:
        When given, every computed row is written back and the store is
        saved after the grid, so later runs can resume.
    resume:
        With ``store``, reuse cached rows for matching ``(algorithm,
        graph, config fingerprint)`` keys instead of re-scheduling;
        only missing cells are executed.
    optima:
        Optional map of graph name to known optimal length; populates
        the degradation measure on each row (cached rows included).
    """
    from . import runner  # late import; runner imports this module lazily

    config = config or runner.BenchConfig()
    cells = grid_cells(names, graphs, optima)
    keys = [(name, graph.name) for name, graph, _opt in cells]
    work = [(name, graph, config, opt) for name, graph, opt in cells]
    return execute_cells(
        keys, work, _run_cell, config.fingerprint(),
        jobs=jobs, store=store, resume=resume,
        # Cached rows rebase onto the currently requested optimum: the
        # optimum feeds only the degradation measure, never the schedule.
        rebase=lambda row, i: dataclasses.replace(row,
                                                  optimal=cells[i][2]),
    )

"""Persisted benchmark results: the :class:`ResultStore`.

A store is a directory holding every :class:`~repro.metrics.measures.RunResult`
row ever produced for it, keyed by ``(algorithm, graph name, config
fingerprint)``.  The grid engine (:mod:`repro.bench.parallel`) consults
the store before scheduling a cell, so ``--resume`` runs only the cells
that are missing — a ``--full`` paper-grid regeneration interrupted
halfway resumes instead of starting over.

Formats
-------
* ``results.json`` — the durable format: a schema-versioned document
  ``{"schema": 1, "rows": [...]}`` that :meth:`ResultStore.load` reads
  back and :meth:`ResultStore.merge` can combine across stores (e.g.
  shards produced by independent machines).
* ``results.csv`` — a flat export written alongside the JSON on every
  save, one row per cell, for spreadsheets / pandas; it is write-only.

Keys are exact: a row is reused only when the algorithm, the graph's
name and the :meth:`BenchConfig.fingerprint` all match.  The requested
optimum is *not* part of the key — it feeds only the degradation
measure, never the schedule, so cached rows are rebased onto the
currently requested optimum at load time (see the engine).
"""

from __future__ import annotations

import csv
import io
import json
import os
import tempfile
from dataclasses import asdict, fields
from typing import Dict, Iterable, List, Optional, Tuple

from ..metrics.measures import RunResult

__all__ = [
    "SCHEMA_VERSION",
    "RESULT_FIELDS",
    "row_fields",
    "row_to_dict",
    "row_from_dict",
    "result_to_dict",
    "result_from_dict",
    "ensure_writable",
    "open_store",
    "ResultStore",
    "OptimaStore",
]


def ensure_writable(directory: str) -> None:
    """Check that ``directory`` can host a store; raise ``ValueError``.

    Creates the directory (like the first :meth:`ResultStore.save`
    would) and probes it with a scratch file, so CLIs can turn an
    unwritable or invalid ``--results`` path into a clean one-line
    diagnostic instead of a traceback deep inside a grid run.
    """
    try:
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, prefix=".probe-",
                                   suffix=".tmp")
        os.close(fd)
        os.unlink(tmp)
    except OSError as exc:
        raise ValueError(
            f"results path {directory!r} is not a writable directory "
            f"({exc.strerror or exc})"
        ) from exc

def open_store(directory: str, basename: str = "results",
               row_type: Optional[type] = None, opener=None):
    """Validate ``directory`` and open a store in it — the one path
    every ``--results`` flag and the service cache go through.

    Probes writability first (:func:`ensure_writable`), so every
    caller fails the same way — a ``ValueError`` whose message the
    CLIs turn into their one-line exit-2 diagnostic — instead of a
    traceback from deep inside a grid run.  ``opener`` customizes
    construction (e.g. ``sim_store`` / ``adv_store``); the default
    builds a :class:`ResultStore` with ``basename`` and ``row_type``.
    """
    ensure_writable(directory)
    if opener is not None:
        return opener(directory)
    return ResultStore(directory, basename=basename,
                       row_type=row_type or RunResult)


SCHEMA_VERSION = 1

#: Stable column order of the serialized schema (matches ``RunResult``).
RESULT_FIELDS: Tuple[str, ...] = tuple(f.name for f in fields(RunResult))

Key = Tuple[str, str, str]  # (algorithm, graph name, config fingerprint)


def row_fields(row_type: type) -> Tuple[str, ...]:
    """Stable column order of any dataclass row type."""
    return tuple(f.name for f in fields(row_type))


def row_to_dict(row) -> Dict:
    """Serialize one dataclass row to a plain JSON-compatible dict."""
    return asdict(row)


def row_from_dict(data: Dict, row_type: type):
    """Rebuild a dataclass row from :func:`row_to_dict` output.

    Unknown keys (e.g. the store's ``fingerprint`` column, or fields
    added by a future schema) are ignored, so old code can read newer
    stores as long as the known columns keep their meaning.
    """
    names = row_fields(row_type)
    kwargs = {name: data[name] for name in names if name in data}
    return row_type(**kwargs)


def result_to_dict(row: RunResult) -> Dict:
    """Serialize one row to a plain JSON-compatible dict."""
    return row_to_dict(row)


def result_from_dict(data: Dict) -> RunResult:
    """Rebuild a :class:`RunResult` from :func:`result_to_dict` output."""
    return row_from_dict(data, RunResult)


class ResultStore:
    """Cache of benchmark rows persisted under ``directory``.

    Parameters
    ----------
    directory:
        Where ``results.json`` / ``results.csv`` live.  Created on the
        first :meth:`save`.  An existing ``results.json`` is loaded
        eagerly so a fresh store object sees previous runs.
    basename:
        Stem of the two files (default ``results``), letting several
        stores share one directory.
    row_type:
        Dataclass the rows deserialize into.  The default is the grid
        engine's :class:`~repro.metrics.measures.RunResult`; the sim
        bench layer stores :class:`~repro.sim.robustness.RobustnessRow`
        cells under a different basename with exactly the same caching,
        checkpointing and merge semantics.  Rows must expose
        ``algorithm`` and ``graph`` attributes (the first two key
        parts).
    """

    def __init__(self, directory: str, basename: str = "results",
                 row_type: type = RunResult):
        self.directory = directory
        self.basename = basename
        self.row_type = row_type
        self._fields = row_fields(row_type)
        self._rows: Dict[Key, Dict] = {}
        #: Lifetime lookup counters (process-local, never persisted):
        #: every :meth:`get` bumps exactly one of the two.  The service
        #: surfaces them per cache; the grid engine's aggregate
        #: ``store.cache_hits`` obs counter is separate and unchanged.
        self.hits = 0
        self.misses = 0
        if os.path.exists(self.json_path):
            self.load()

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    @property
    def json_path(self) -> str:
        return os.path.join(self.directory, f"{self.basename}.json")

    @property
    def csv_path(self) -> str:
        return os.path.join(self.directory, f"{self.basename}.csv")

    # ------------------------------------------------------------------
    # cache interface
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    @staticmethod
    def key(algorithm: str, graph: str, fingerprint: str) -> Key:
        return (str(algorithm), str(graph), str(fingerprint))

    def __contains__(self, key: Key) -> bool:
        return tuple(key) in self._rows

    def get(self, algorithm: str, graph: str,
            fingerprint: str) -> Optional[RunResult]:
        """The cached row for a cell, or ``None`` on a miss."""
        data = self._rows.get(self.key(algorithm, graph, fingerprint))
        if data is None:
            self.misses += 1
            return None
        self.hits += 1
        return row_from_dict(data, self.row_type)

    def put(self, row, fingerprint: str) -> None:
        """Insert or overwrite one cell."""
        data = row_to_dict(row)
        data["fingerprint"] = str(fingerprint)
        self._rows[self.key(row.algorithm, row.graph, fingerprint)] = data

    def update(self, rows: Iterable, fingerprint: str) -> None:
        """Insert or overwrite many cells sharing one fingerprint."""
        for row in rows:
            self.put(row, fingerprint)

    def rows(self, fingerprint: Optional[str] = None) -> List:
        """All rows (optionally only one fingerprint), in stable key order."""
        out = []
        for key in sorted(self._rows):
            if fingerprint is not None and key[2] != fingerprint:
                continue
            out.append(row_from_dict(self._rows[key], self.row_type))
        return out

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def load(self, path: Optional[str] = None) -> int:
        """Merge rows from a JSON document into the store.

        Returns the number of rows read.  Raises ``ValueError`` on a
        schema the store does not understand.
        """
        path = path or self.json_path
        with open(path) as fh:
            try:
                doc = json.load(fh)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}: not valid JSON ({exc})") from exc
        schema = doc.get("schema")
        if schema != SCHEMA_VERSION:
            raise ValueError(
                f"{path}: unsupported results schema {schema!r} "
                f"(this build reads schema {SCHEMA_VERSION})"
            )
        rows = doc.get("rows", [])
        for data in rows:
            key = self.key(data["algorithm"], data["graph"],
                           data.get("fingerprint", ""))
            self._rows[key] = dict(data)
        return len(rows)

    def merge(self, other: "ResultStore") -> int:
        """Fold another store's rows into this one (incoming rows win).

        Returns the number of rows merged; used to combine shards run on
        separate machines or in separate sessions.
        """
        for key, data in other._rows.items():
            self._rows[key] = dict(data)
        return len(other._rows)

    def as_csv(self) -> str:
        """The whole store as CSV text (stable header and row order)."""
        buf = io.StringIO()
        header = ("fingerprint",) + self._fields
        writer = csv.writer(buf, lineterminator="\n")
        writer.writerow(header)
        for key in sorted(self._rows):
            data = self._rows[key]
            writer.writerow([data.get(col, "") for col in header])
        return buf.getvalue()

    def save(self) -> None:
        """Atomically write ``results.json`` and the ``results.csv`` export."""
        os.makedirs(self.directory, exist_ok=True)
        doc = {
            "schema": SCHEMA_VERSION,
            "rows": [self._rows[key] for key in sorted(self._rows)],
        }
        self._atomic_write(self.json_path, json.dumps(doc, indent=1) + "\n")
        self._atomic_write(self.csv_path, self.as_csv())

    def _atomic_write(self, path: str, text: str) -> None:
        fd, tmp = tempfile.mkstemp(dir=self.directory,
                                   prefix=f".{self.basename}-", suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(text)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise


class OptimaStore:
    """Persisted ``(best length, proved)`` reference optima.

    The RGBOS tables measure degradation against a branch-and-bound
    reference that costs far more than the heuristics themselves; this
    sidecar (``optima.json`` next to ``results.json``) caches it keyed
    by ``(graph name, search budget)``, so a resumed run skips the
    search as well as the grid.
    """

    def __init__(self, directory: str, basename: str = "optima"):
        self.directory = directory
        self.path = os.path.join(directory, f"{basename}.json")
        self._data: Dict[str, List] = {}
        if os.path.exists(self.path):
            with open(self.path) as fh:
                try:
                    doc = json.load(fh)
                except json.JSONDecodeError as exc:
                    raise ValueError(
                        f"{self.path}: not valid JSON ({exc})"
                    ) from exc
            if doc.get("schema") != SCHEMA_VERSION:
                raise ValueError(
                    f"{self.path}: unsupported optima schema "
                    f"{doc.get('schema')!r}"
                )
            self._data = dict(doc.get("optima", {}))

    @staticmethod
    def key(graph: str, budget: int) -> str:
        return f"{graph}@{int(budget)}"

    def __len__(self) -> int:
        return len(self._data)

    def get(self, graph: str, budget: int) -> Optional[Tuple[float, bool]]:
        entry = self._data.get(self.key(graph, budget))
        return (float(entry[0]), bool(entry[1])) if entry else None

    def put(self, graph: str, budget: int, length: float,
            proved: bool) -> None:
        self._data[self.key(graph, budget)] = [float(length), bool(proved)]

    def save(self) -> None:
        os.makedirs(self.directory, exist_ok=True)
        doc = {
            "schema": SCHEMA_VERSION,
            "optima": {k: self._data[k] for k in sorted(self._data)},
        }
        fd, tmp = tempfile.mkstemp(dir=self.directory, prefix=".optima-",
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(json.dumps(doc, indent=1) + "\n")
            os.replace(tmp, self.path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

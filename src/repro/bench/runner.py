"""Running algorithm x graph grids and collecting measurements.

The runner owns the machine-model conventions of the paper's evaluation:

* UNC algorithms always get an unbounded (one-processor-per-task) clique;
* BNP algorithms get a "virtually unlimited" clique by default — the
  paper runs them that way and then counts processors actually used
  (Section 6.4.2) — or a bounded machine when a table calls for one;
* APN algorithms get a :class:`NetworkMachine` over the configured
  topology (default: the 8-processor hypercube).

Every schedule produced is validated against the full model invariants
before it is measured — a benchmark row can never come from an invalid
schedule.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..algorithms import get_scheduler
from ..core.graph import TaskGraph
from ..core.machine import Machine, NetworkMachine
from ..core.exceptions import ScheduleError
from ..core.schedule import render_violations, validate
from ..metrics.measures import RunResult, nsl
from ..network.topology import Topology
from .suites import default_apn_topology

__all__ = ["BenchConfig", "run_one", "run_grid", "BNP_ALGORITHMS",
           "UNC_ALGORITHMS", "APN_ALGORITHMS"]

BNP_ALGORITHMS = ("HLFET", "ISH", "MCP", "ETF", "DLS", "LAST")
UNC_ALGORITHMS = ("EZ", "LC", "DSC", "MD", "DCP")
APN_ALGORITHMS = ("MH", "DLS-APN", "BU", "BSA")


@dataclass
class BenchConfig:
    """Machine-model conventions for a grid run.

    ``bnp_speeds`` opts BNP runs into the heterogeneous (uniform-speed)
    machine model: a tuple of per-processor speed factors, implying a
    bounded machine of ``len(bnp_speeds)`` processors.  The paper grid
    never sets it; the scenario engine does.
    """

    bnp_procs: Optional[int] = None  # None -> virtually unlimited (v procs)
    bnp_speeds: Optional[Tuple[float, ...]] = None
    apn_topology: Optional[Topology] = None
    validate_schedules: bool = True

    def __post_init__(self):
        if self.bnp_speeds is not None:
            self.bnp_speeds = tuple(float(s) for s in self.bnp_speeds)
            if any(s <= 0 for s in self.bnp_speeds):
                raise ValueError("bnp_speeds must all be positive")
            if (self.bnp_procs is not None
                    and self.bnp_procs != len(self.bnp_speeds)):
                raise ValueError(
                    f"bnp_procs={self.bnp_procs} disagrees with "
                    f"{len(self.bnp_speeds)} speed factors"
                )
            if all(s == 1.0 for s in self.bnp_speeds):
                # Uniform speeds are the bounded homogeneous machine;
                # normalise so the cache key (and cells) are shared.
                self.bnp_procs = len(self.bnp_speeds)
                self.bnp_speeds = None

    def machine_for(self, name: str, graph: TaskGraph) -> Machine:
        klass = get_scheduler(name).klass
        if klass == "APN":
            topo = self.apn_topology or default_apn_topology()
            return NetworkMachine(topo)
        if klass == "BNP" and self.bnp_speeds is not None:
            return Machine(len(self.bnp_speeds), speeds=self.bnp_speeds)
        if klass == "UNC" or self.bnp_procs is None:
            return Machine.unbounded(graph)
        return Machine(self.bnp_procs)

    def fingerprint(self) -> str:
        """Stable identity of the machine-model conventions.

        Part of the :class:`~repro.bench.store.ResultStore` cache key:
        two configs with equal fingerprints schedule every cell
        identically, so their rows are interchangeable.  The APN
        topology is identified by its exact link set (hashed), not just
        its name — two structurally different custom topologies never
        share a fingerprint.  Heterogeneous speeds and non-unit link
        bandwidth extend the fingerprint only when set, so the paper
        grid's fingerprints are unchanged from earlier releases.
        """
        import hashlib

        topo = self.apn_topology or default_apn_topology()
        links = hashlib.sha256(repr(topo.links).encode()).hexdigest()[:12]
        fp = (
            f"bnp={'v' if self.bnp_procs is None else self.bnp_procs}"
            f";apn={topo.name}:{topo.num_procs}p:{links}"
            f";validate={int(self.validate_schedules)}"
        )
        if self.bnp_speeds is not None:
            speeds = ",".join(f"{s:g}" for s in self.bnp_speeds)
            fp += f";speeds={speeds}"
        if topo.bandwidth != 1.0:
            fp += f";bw={topo.bandwidth:g}"
        return fp


def run_one(name: str, graph: TaskGraph,
            machine: Optional[Machine] = None,
            config: Optional[BenchConfig] = None,
            optimal: Optional[float] = None) -> RunResult:
    """Schedule ``graph`` with algorithm ``name`` and measure the result."""
    config = config or BenchConfig()
    scheduler = get_scheduler(name)
    machine = machine or config.machine_for(name, graph)
    t0 = time.perf_counter()
    schedule = scheduler.schedule(graph, machine)
    elapsed = time.perf_counter() - t0
    if config.validate_schedules:
        network = machine.topology if isinstance(machine, NetworkMachine) else None
        violations = validate(schedule, network=network, collect=True)
        if violations:
            # Collect mode gathers *every* violation so a broken
            # scheduler fails with the full table, not just the first
            # symptom; the CLI prints this message verbatim.
            raise ScheduleError(
                f"{scheduler.name} produced an invalid schedule for "
                f"{graph.name}:\n{render_violations(violations)}")
    return RunResult(
        algorithm=scheduler.name,
        klass=scheduler.klass,
        graph=graph.name,
        num_nodes=graph.num_nodes,
        length=schedule.length,
        nsl=nsl(schedule),
        procs_used=schedule.processors_used(),
        runtime_s=elapsed,
        optimal=optimal,
    )


def run_grid(names: Sequence[str], graphs: Iterable[TaskGraph],
             config: Optional[BenchConfig] = None,
             optima: Optional[Dict[str, float]] = None,
             jobs: Optional[int] = None,
             store=None,
             resume: bool = False) -> List[RunResult]:
    """Run every algorithm on every graph; returns flat result rows.

    ``optima`` optionally maps graph names to known optimal lengths,
    which populates the degradation measure on each row.

    The grid executes through the engine in :mod:`repro.bench.parallel`:
    ``jobs`` fans cells out over a worker pool (``0`` = one per CPU),
    and a :class:`~repro.bench.store.ResultStore` plus ``resume=True``
    reuses rows cached from previous runs.  Row order is always the
    serial order — graphs outer, algorithms inner.
    """
    from .parallel import run_grid as _engine  # lazy: avoid import cycle

    return _engine(names, graphs, config=config, optima=optima,
                   jobs=jobs, store=store, resume=resume)

"""Benchmark harness: suites, runner, and the paper's tables/figures."""

from .analysis import (
    DecisionReport,
    PairReport,
    design_decision_report,
    matched_pair_report,
    render_pairs,
    render_report,
)
from .figures import FigureSeries, fig2, fig3, fig4, render_figure
from .runner import (
    APN_ALGORITHMS,
    BNP_ALGORITHMS,
    UNC_ALGORITHMS,
    BenchConfig,
    run_grid,
    run_one,
)
from .suites import (
    default_apn_topology,
    is_full_scale,
    psg_suite,
    rgbos_suite,
    rgnos_suite,
    rgpos_suite,
    traced_suite,
)
from .tables import (
    Table,
    render,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
)

__all__ = [
    "BenchConfig",
    "run_one",
    "run_grid",
    "DecisionReport",
    "PairReport",
    "design_decision_report",
    "matched_pair_report",
    "render_report",
    "render_pairs",
    "BNP_ALGORITHMS",
    "UNC_ALGORITHMS",
    "APN_ALGORITHMS",
    "psg_suite",
    "rgbos_suite",
    "rgpos_suite",
    "rgnos_suite",
    "traced_suite",
    "default_apn_topology",
    "is_full_scale",
    "Table",
    "render",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "FigureSeries",
    "render_figure",
    "fig2",
    "fig3",
    "fig4",
]

"""The loadtest harness: fire a seeded storm at a running service.

Drives a :class:`~repro.scenarios.storm.StormConfig` request stream
against a server — an external one (``url``) or a self-hosted
in-process instance on an ephemeral port (the default of
``repro-bench loadtest``, so one command measures a cold server).
Requests are paced by the storm's seeded arrival times (``pace``
scales them; 0 fires as fast as ``concurrency`` allows) and posted as
pre-serialized bytes, so repeats of a template are byte-identical and
exercise the server's digest memo exactly like real repeated traffic.

The report separates cold (``cached: false``) from warm latencies —
the cold/warm p50 ratio is the cache's headline number, gated by the
CI service-smoke case — and ends with the server's own ``/stats``
snapshot for the warm-hit ratio.
"""

from __future__ import annotations

import asyncio
import json
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..bench.tables import Table
from ..scenarios.storm import StormConfig, make_storm
from .client import ServiceClient

__all__ = ["LoadtestReport", "run_loadtest", "loadtest_table"]


def _percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


@dataclass
class LoadtestReport:
    """Everything one storm run measured."""

    requests: int = 0
    ok: int = 0
    rejected: int = 0          # 429 backpressure
    timeouts: int = 0          # 504 deadline
    errors: int = 0            # anything else non-200
    duration_s: float = 0.0
    rps: float = 0.0
    p50_ms: float = 0.0
    p99_ms: float = 0.0
    cold: int = 0
    warm: int = 0
    cold_p50_ms: float = 0.0
    warm_p50_ms: float = 0.0
    warm_hit_ratio: float = 0.0
    server_stats: Dict = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        """Cold p50 over warm p50 — the cache's payoff."""
        if self.warm_p50_ms <= 0:
            return 0.0
        return self.cold_p50_ms / self.warm_p50_ms


async def _drive(config: StormConfig, client: ServiceClient,
                 concurrency: int, pace: float) -> LoadtestReport:
    requests = make_storm(config)
    loop = asyncio.get_running_loop()
    gate = asyncio.Semaphore(max(1, concurrency))
    bodies = {id(r): json.dumps(r.body, sort_keys=True).encode()
              for r in requests}
    outcomes: List[Tuple[int, bool, float]] = []

    start = time.perf_counter()

    async def one(req) -> None:
        if pace > 0:
            delay = req.arrival * pace - (time.perf_counter() - start)
            if delay > 0:
                await asyncio.sleep(delay)
        async with gate:
            t0 = time.perf_counter()
            status, payload = await loop.run_in_executor(
                executor, client.post_body, bodies[id(req)])
            latency_ms = (time.perf_counter() - t0) * 1000.0
        outcomes.append((status, bool(payload.get("cached")), latency_ms))

    with ThreadPoolExecutor(max_workers=max(1, concurrency)) as executor:
        await asyncio.gather(*(one(r) for r in requests))
        duration = time.perf_counter() - start
        stats_status, server_stats = await loop.run_in_executor(
            executor, client.stats)

    report = LoadtestReport(requests=len(requests), duration_s=duration)
    all_ms: List[float] = []
    cold_ms: List[float] = []
    warm_ms: List[float] = []
    for status, cached, latency_ms in outcomes:
        if status == 200:
            report.ok += 1
            all_ms.append(latency_ms)
            (warm_ms if cached else cold_ms).append(latency_ms)
        elif status == 429:
            report.rejected += 1
        elif status == 504:
            report.timeouts += 1
        else:
            report.errors += 1
    report.rps = report.requests / duration if duration > 0 else 0.0
    report.p50_ms = _percentile(all_ms, 0.50)
    report.p99_ms = _percentile(all_ms, 0.99)
    report.cold = len(cold_ms)
    report.warm = len(warm_ms)
    report.cold_p50_ms = _percentile(cold_ms, 0.50)
    report.warm_p50_ms = _percentile(warm_ms, 0.50)
    if report.ok:
        report.warm_hit_ratio = report.warm / report.ok
    if stats_status == 200:
        report.server_stats = server_stats
    return report


async def _run_selfhosted(config: StormConfig, jobs: int,
                          concurrency: int, pace: float,
                          timeout_s: float) -> LoadtestReport:
    from .server import ScheduleService, ServiceConfig

    service = ScheduleService(ServiceConfig(port=0, jobs=jobs,
                                            timeout_s=timeout_s))
    await service.start()
    try:
        client = ServiceClient(service.config.host, service.port,
                               timeout=timeout_s + 5.0)
        return await _drive(config, client, concurrency, pace)
    finally:
        await service.drain()


def run_loadtest(config: Optional[StormConfig] = None,
                 url: Optional[Tuple[str, int]] = None,
                 jobs: int = 2, concurrency: int = 16,
                 pace: float = 0.0,
                 timeout_s: float = 30.0) -> LoadtestReport:
    """Run one storm and return its report (blocking entry point).

    ``url=(host, port)`` targets a running server; ``None``
    self-hosts a fresh in-process service with ``jobs`` workers for
    the duration of the storm — a from-cold measurement.  ``jobs``
    defaults to 2 because with worker *processes* the cold scheduling
    work leaves the event loop (and the GIL) alone, so warm hits stay
    fast during cold bursts; ``jobs=1`` schedules in the server's own
    process and measures the contended worst case.
    """
    config = config or StormConfig()
    if url is not None:
        client = ServiceClient(url[0], url[1], timeout=timeout_s + 5.0)
        return asyncio.run(_drive(config, client, concurrency, pace))
    return asyncio.run(_run_selfhosted(config, jobs, concurrency, pace,
                                       timeout_s))


def loadtest_table(report: LoadtestReport,
                   config: StormConfig) -> Table:
    """The RPS/p50/p99 table ``repro-bench loadtest`` renders."""
    rows = [
        ["requests", str(report.requests)],
        ["ok / 429 / 504 / err",
         f"{report.ok} / {report.rejected} / {report.timeouts} / "
         f"{report.errors}"],
        ["duration", f"{report.duration_s:.3f} s"],
        ["RPS", f"{report.rps:.1f}"],
        ["p50", f"{report.p50_ms:.2f} ms"],
        ["p99", f"{report.p99_ms:.2f} ms"],
        ["cold p50", f"{report.cold_p50_ms:.2f} ms ({report.cold} reqs)"],
        ["warm p50", f"{report.warm_p50_ms:.2f} ms ({report.warm} reqs)"],
        ["warm/cold speedup", f"{report.speedup:.1f}x"],
        ["warm-hit ratio", f"{report.warm_hit_ratio:.2f}"],
    ]
    return Table(
        id="loadtest",
        title=f"traffic storm [{config.fingerprint()}]",
        columns=["metric", "value"],
        rows=rows,
        notes=["cold = scheduled on the pool; warm = served from the "
               "fingerprint-keyed schedule cache"],
    )
